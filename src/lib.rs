//! # evilbloom
//!
//! A reproduction of *"The Power of Evil Choices in Bloom Filters"*
//! (Thomas Gerbet, Amrit Kumar, Cédric Lauradoux — DSN 2015) as a Rust
//! workspace: adversary models for Bloom filters, worst-case parameter
//! analysis, end-to-end attacks on three simulated applications (a Scrapy-
//! like web spider, a Bitly/Dablooms-like spam filter, a Squid-like cache
//! proxy pair) and the proposed countermeasures.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`hashes`] | `evilbloom-hashes` | Murmur/FNV/Jenkins/SipHash/MD5/SHA, HMAC, truncation, recycling, index strategies, inversions |
//! | [`analysis`] | `evilbloom-analysis` | closed-form honest and adversarial false-positive analysis, Table 1 probabilities |
//! | [`filters`] | `evilbloom-filters` | classic/counting/scalable/Dablooms filters, Squid cache digests, hardened variants |
//! | [`attacks`] | `evilbloom-attacks` | pollution, saturation, false-positive forgery, latency queries, deletion, pre-image search |
//! | [`urlgen`] | `evilbloom-urlgen` | deterministic fake URL generation |
//! | [`webspider`] | `evilbloom-webspider` | Scrapy-like crawler simulation and attacks |
//! | [`spamfilter`] | `evilbloom-spamfilter` | Bitly/Dablooms simulation and attacks |
//! | [`webcache`] | `evilbloom-webcache` | Squid sibling-proxy simulation and attacks |
//! | [`core`] | `evilbloom-core` | deployment assessment and hardened-filter builder |
//! | [`store`] | `evilbloom-store` | sharded lock-free concurrent serving layer: keyed routing, key rotation, pollution alarms |
//! | [`server`] | `evilbloom-server` | TCP serving layer: length-prefixed wire protocol, threaded server, pipelining client |
//! | [`fault`] | `evilbloom-fault` | deterministic seeded fault injection: named fault points, replayable chaos schedules |
//!
//! ## Quick start
//!
//! ```
//! use evilbloom::core::{assess, DeploymentSpec, StrategyKind};
//!
//! let report = assess(&DeploymentSpec {
//!     capacity: 100_000,
//!     target_fpp: 0.01,
//!     strategy: StrategyKind::MurmurKirschMitzenmacher,
//! });
//! // A chosen-insertion adversary blows straight past the designed rate.
//! assert!(report.adversarial_fpp > 10.0 * report.honest_fpp);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use evilbloom_analysis as analysis;
pub use evilbloom_attacks as attacks;
pub use evilbloom_core as core;
pub use evilbloom_fault as fault;
pub use evilbloom_filters as filters;
pub use evilbloom_hashes as hashes;
pub use evilbloom_server as server;
pub use evilbloom_spamfilter as spamfilter;
pub use evilbloom_store as store;
pub use evilbloom_urlgen as urlgen;
pub use evilbloom_webcache as webcache;
pub use evilbloom_webspider as webspider;

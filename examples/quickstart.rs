//! Quickstart: build a Bloom filter the way an application developer would,
//! assess its adversarial exposure, and harden it.
//!
//! Run with: `cargo run --example quickstart`

use evilbloom::attacks::craft_polluting_items;
use evilbloom::core::{assess, DeploymentSpec, SecureBloomBuilder, StrategyKind};
use evilbloom::filters::{BloomFilter, FilterParams, HardeningLevel};
use evilbloom::hashes::{KirschMitzenmacher, Murmur3_128};
use evilbloom::urlgen::UrlGenerator;

fn main() {
    // 1. A textbook deployment: 100k URLs, 1% false positives, MurmurHash.
    let spec = DeploymentSpec {
        capacity: 100_000,
        target_fpp: 0.01,
        strategy: StrategyKind::MurmurKirschMitzenmacher,
    };
    let report = assess(&spec);
    println!("designed false-positive probability : {:.4}", report.honest_fpp);
    println!("worst-case (chosen insertions)      : {:.4}", report.adversarial_fpp);
    println!("insertions to cross the design FPP  : {}", report.insertions_to_design_threshold);
    println!("insertions to saturate the filter   : {}", report.saturation_items);
    println!("indexes predictable by an adversary : {}", report.predictable_indexes);

    // 2. Demonstrate the pollution attack on a small filter (Figure 3 size).
    let mut filter = BloomFilter::new(
        FilterParams::explicit(3200, 4, 600),
        KirschMitzenmacher::new(Murmur3_128),
    );
    let plan = craft_polluting_items(&filter, &UrlGenerator::new("quickstart"), 422, u64::MAX);
    for url in &plan.items {
        filter.insert(url.as_bytes());
    }
    println!(
        "after 422 crafted insertions the FPP is {:.3} (honest design expected 0.077 after 600)",
        filter.current_false_positive_probability()
    );

    // 3. Harden the deployment with a keyed filter: same parameters, but the
    //    adversary can no longer predict the indexes.
    let hardened =
        SecureBloomBuilder::new(100_000, 0.01).level(HardeningLevel::KeyedSipHash).build();
    println!("hardened filter strategy            : {}", hardened.strategy_name());
}

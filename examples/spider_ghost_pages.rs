//! Section 5.2 / Figure 7 — hiding pages from a spider with ghost URLs.
//!
//! The adversary publishes decoy pages whose leaves link to "ghost" pages.
//! The ghosts' URLs are forged false positives of the spider's visited-URL
//! filter, so the spider never fetches them.
//!
//! Run with: `cargo run --example spider_ghost_pages`

use evilbloom::webspider::{build_hidden_site, Crawler, DedupStore, WebGraph};

fn main() {
    // The spider has already crawled a sizeable honest site.
    let (mut graph, root) = WebGraph::honest_site("honest.example", 800);
    let mut crawler = Crawler::new(DedupStore::bloom(1_000, 0.05));
    crawler.crawl(&graph, &root, 1_000_000);
    println!("pages crawled before the attack : {}", crawler.report().fetched);

    // The adversary hides 4 ghost pages behind a 3-level decoy chain.
    let hidden = build_hidden_site(&crawler, &mut graph, "evil.example", 3, 4);
    println!("decoy chain  : {:?}", hidden.decoys);
    println!("ghost pages  : {:?}", hidden.ghosts);

    // The spider crawls the adversary's site: decoys are fetched, ghosts are
    // skipped as "already visited".
    crawler.crawl(&graph, &hidden.decoys[0], 1_000_000);
    for ghost in &hidden.ghosts {
        let hidden_ok = !crawler.fetched_urls().contains(ghost);
        println!("ghost {ghost} hidden: {hidden_ok}");
    }
    println!("total wrongly skipped URLs      : {}", crawler.report().wrongly_skipped);
}

//! High-connection-count smoke for the async (epoll reactor) backend,
//! sized for CI: opens 1000 concurrent loopback connections against one
//! server, proves every one of them is *served* (one PING each), then does
//! real batch work while they all stay open. This is the C10k claim scaled
//! to a smoke test — the threaded backend would need 1000 dedicated worker
//! threads for the same feat.
//!
//! Run with: `cargo run --release --example c10k_smoke`
//! (the process needs a soft fd limit of at least ~2300; the example checks
//! `/proc/self/limits` and scales down rather than crashing into EMFILE).

use std::sync::Arc;
use std::time::{Duration, Instant};

use evilbloom::server::{loopback_connection_budget, Backend, Client, Server, ServerConfig};
use evilbloom::store::BloomStore;

const CONNECTIONS: usize = 1000;

fn main() {
    // Belt and braces against hangs: CI also wraps this in `timeout`.
    std::thread::spawn(|| {
        std::thread::sleep(Duration::from_secs(90));
        eprintln!("c10k_smoke: watchdog fired after 90s, aborting");
        std::process::exit(1);
    });

    if !Backend::Async.is_supported() {
        println!("c10k smoke skipped: the async backend needs Linux epoll");
        return;
    }
    let connections = match loopback_connection_budget() {
        Some(budget) if (budget as usize) < CONNECTIONS => {
            eprintln!("fd budget {budget}: scaling down from {CONNECTIONS} connections");
            (budget as usize).max(64)
        }
        _ => CONNECTIONS,
    };

    let store = Arc::new(
        BloomStore::builder()
            .shards(8)
            .capacity(50_000)
            .target_fpp(0.01)
            .hardened()
            .seed(42)
            .build(),
    );
    let handle = Server::spawn(
        Arc::clone(&store),
        "127.0.0.1:0",
        ServerConfig::with_backend(Backend::Async),
    )
    .expect("bind");
    println!(
        "serving on {} (async backend), opening {connections} connections",
        handle.local_addr()
    );

    let started = Instant::now();
    let mut clients: Vec<Client> = Vec::with_capacity(connections);
    for i in 0..connections {
        clients.push(
            Client::connect(handle.local_addr())
                .unwrap_or_else(|e| panic!("connect {i} failed: {e}")),
        );
        // Pace the storm just below the listen backlog so a single-core
        // host never drops a SYN into a 1s retransmission stall.
        if i % 64 == 63 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    println!("opened  {connections} connections in {:?}", started.elapsed());

    // Served, not merely accepted: every connection answers a PING.
    let started = Instant::now();
    for (i, client) in clients.iter_mut().enumerate() {
        client.ping().unwrap_or_else(|e| panic!("ping on connection {i} failed: {e}"));
    }
    println!("pinged  {connections} connections in {:?}", started.elapsed());

    // Real work while the whole herd stays open.
    let members: Vec<String> = (0..2_000).map(|i| format!("https://c10k.example/{i}")).collect();
    clients[0].insert_batch(&members).expect("insert under load");
    let answers = clients[connections - 1].query_batch(&members).expect("query under load");
    assert!(answers.iter().all(|&a| a), "no false negatives under load");
    assert_eq!(store.stats().total_inserted, 2_000);

    let served = handle.requests_served();
    assert!(served >= connections as u64 + 2, "only {served} requests recorded");
    drop(clients);
    handle.shutdown();
    println!("c10k smoke OK ({connections} concurrent connections, {served} requests served)");
}

//! Section 8 — countermeasures in practice.
//!
//! Compares the three hardening levels (worst-case parameters, keyed SipHash,
//! keyed HMAC) against the same chosen-insertion adversary.
//!
//! Run with: `cargo run --example hardened_filter`

use evilbloom::attacks::craft_polluting_items;
use evilbloom::filters::{audit, hardened_filter, FilterKey, FilterParams, HardeningLevel};
use evilbloom::hashes::{KirschMitzenmacher, Murmur3_128};
use evilbloom::urlgen::UrlGenerator;

fn main() {
    let capacity = 2_000u64;
    let target = 0.01;

    // Baseline audit of a classic deployment.
    let params = FilterParams::optimal(capacity, target);
    let strategy = KirschMitzenmacher::new(Murmur3_128);
    for level in [
        HardeningLevel::WorstCaseParameters,
        HardeningLevel::KeyedSipHash,
        HardeningLevel::KeyedHmac,
    ] {
        let report = audit(params, &strategy, level);
        println!("{level:?}");
        println!("  honest FPP      : {:.4} -> {:.4}", report.baseline_fpp, report.hardened_fpp);
        println!(
            "  adversarial FPP : {:.4} -> {:.4}",
            report.baseline_adversarial_fpp, report.hardened_adversarial_fpp
        );
    }

    // Show that the attack actually fails against a keyed filter: the
    // adversary plans against her best guess (a filter with a key she made
    // up) and gains nothing against the real one.
    let real_key = FilterKey::from_bytes([42u8; 32]);
    let mut real = hardened_filter(capacity, target, HardeningLevel::KeyedSipHash, &real_key);
    let guessed_key = FilterKey::from_bytes([1u8; 32]);
    let shadow = hardened_filter(capacity, target, HardeningLevel::KeyedSipHash, &guessed_key);
    let plan = craft_polluting_items(&shadow, &UrlGenerator::new("hardened"), 500, u64::MAX);
    for url in &plan.items {
        real.insert(url.as_bytes());
    }
    println!(
        "keyed filter after 500 'crafted' insertions: weight {} (adversarial target would be {})",
        real.hamming_weight(),
        500 * u64::from(real.k())
    );
}

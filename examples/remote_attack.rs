//! The paper's threat model, end to end over TCP: a *remote* chosen-insertion
//! adversary degrades an unhardened Bloom-filter service purely through the
//! wire protocol, while a hardened server under the identical attack stays
//! on the honest curve.
//!
//! The scenario mirrors the paper's web-crawler setting: the service indexes
//! a *public* URL corpus (so the adversary knows exactly what was inserted),
//! and the unhardened deployment uses public, key-free routing and index
//! derivation. The adversary therefore rebuilds the server's state in a
//! local mirror — no access beyond the public corpus and the source code —
//! crafts items whose `k` indexes all land on unset bits, and delivers them
//! with pipelined `MINSERT` frames like any other client, striped over a
//! small pool of connections (`ClientPool`) the way a real crawler-facing
//! client would spread its load. The hardened server's keyed
//! routing/indexes make the mirror impossible; the same crafted traffic is
//! no better than random there.
//!
//! Run with: `cargo run --release --example remote_attack`

use std::sync::Arc;

use evilbloom::server::{ClientPool, RemoteStore, Server, ServerConfig, ServerHandle};
use evilbloom::store::{craft_store_pollution, BloomStore};
use evilbloom::urlgen::UrlGenerator;

const SHARDS: usize = 8;
const CAPACITY: u64 = 8_000;
const TARGET_FPP: f64 = 0.01;
/// Public URL corpus the honest service indexes (known to the adversary).
const CORPUS: u64 = 6_000;
/// Chosen insertions the adversary crafts and delivers over the wire.
const CRAFTED: usize = 4_000;
/// Non-member probes per false-positive measurement.
const PROBES: u64 = 60_000;
/// Pooled connections the adversary stripes its frames over.
const POOL: usize = 4;
/// Offline crafting budget (the run needs ~22M evaluations).
const CRAFT_BUDGET: u64 = 500_000_000;

fn spawn_server(hardened: bool, seed: u64) -> (ServerHandle, ClientPool) {
    let builder =
        BloomStore::builder().shards(SHARDS).capacity(CAPACITY).target_fpp(TARGET_FPP).seed(seed);
    let builder = if hardened { builder.hardened() } else { builder.unhardened() };
    let store = Arc::new(builder.build());
    let handle =
        Server::spawn(store, "127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
    let pool = ClientPool::connect(handle.local_addr(), POOL).expect("connect pool");
    (handle, pool)
}

// The delivery and measurement helpers are generic over [`RemoteStore`]:
// the attack runs unchanged over one pipelined socket or a striped pool —
// swapping the transport is the caller's choice, not a second code path.

/// Inserts `count` URLs from `namespace` through batch `MINSERT` frames.
fn load_remote<R: RemoteStore>(remote: &mut R, namespace: &str, count: u64) {
    let generator = UrlGenerator::new(namespace);
    let urls: Vec<String> = (0..count).map(|i| generator.url(i)).collect();
    send_batches(remote, &urls);
}

/// Delivers `items` as batch `MINSERT` traffic (the pool stripes the frames
/// over several sockets, all in flight before the first response).
fn send_batches<R: RemoteStore>(remote: &mut R, items: &[String]) {
    remote.minsert(items).expect("remote MINSERT");
}

/// Observed false-positive rate over `PROBES` non-member URLs, measured
/// through `MQUERY` frames.
fn remote_fpp<R: RemoteStore>(remote: &mut R) -> f64 {
    let generator = UrlGenerator::new("probe-nonmember");
    let probes: Vec<String> = (0..PROBES).map(|i| generator.url(i)).collect();
    let answers = remote.mquery(&probes).expect("remote MQUERY");
    answers.iter().filter(|&&a| a).count() as f64 / PROBES as f64
}

fn main() {
    println!(
        "available_parallelism: {}",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );
    println!(
        "remote chosen-insertion attack: {SHARDS} shards, capacity {CAPACITY}, \
         corpus {CORPUS}, {CRAFTED} crafted items, {PROBES} probes, \
         {POOL} pooled connections\n"
    );

    // Honest baseline: a server carrying the same *total* load, all honest.
    let (baseline_handle, mut baseline) = spawn_server(true, 3);
    load_remote(&mut baseline, "public-web", CORPUS);
    load_remote(&mut baseline, "extra-honest", CRAFTED as u64);
    let baseline_fpp = remote_fpp(&mut baseline);
    drop(baseline);
    baseline_handle.shutdown();
    println!("honest baseline at the same load      : {baseline_fpp:.5}");

    // The victims: one unhardened (the attacked deployments' posture), one
    // hardened (Section 8), both serving the public corpus.
    let (unhardened_handle, mut unhardened) = spawn_server(false, 2);
    let (hardened_handle, mut hardened) = spawn_server(true, 2);
    load_remote(&mut unhardened, "public-web", CORPUS);
    load_remote(&mut hardened, "public-web", CORPUS);

    // The adversary's side: rebuild the unhardened server's state in a local
    // mirror (routing and index derivation are public and key-free, and the
    // corpus is public), then craft items offline. Any seed works — an
    // unhardened store has no secrets.
    let mirror = BloomStore::builder()
        .shards(SHARDS)
        .capacity(CAPACITY)
        .target_fpp(TARGET_FPP)
        .unhardened()
        .seed(777)
        .build();
    let corpus_generator = UrlGenerator::new("public-web");
    let corpus: Vec<String> = (0..CORPUS).map(|i| corpus_generator.url(i)).collect();
    mirror.insert_batch(&corpus);
    let plan = craft_store_pollution(&mirror, &UrlGenerator::new("evil"), CRAFTED, CRAFT_BUDGET)
        .expect("unhardened stores can be mirrored");
    assert_eq!(plan.items.len(), CRAFTED, "crafting search exhausted its budget");
    println!(
        "offline crafting against the mirror   : {} hash evaluations for {CRAFTED} items",
        plan.stats.attempts
    );

    // Deliver the identical crafted traffic to both servers over the wire.
    send_batches(&mut unhardened, &plan.items);
    send_batches(&mut hardened, &plan.items);

    let attacked_unhardened = remote_fpp(&mut unhardened);
    let attacked_hardened = remote_fpp(&mut hardened);
    let unhardened_ratio = attacked_unhardened / baseline_fpp;
    let hardened_ratio = attacked_hardened / baseline_fpp;
    println!(
        "unhardened server after the attack    : {attacked_unhardened:.5}  ({unhardened_ratio:.1}x honest)"
    );
    println!(
        "hardened server after the same attack : {attacked_hardened:.5}  ({hardened_ratio:.1}x honest)"
    );

    // STATS carries the pollution alarms to the (remote) operator.
    let mut operator = unhardened.checkout_validated().expect("operator connection");
    let unhardened_stats = operator.stats().expect("stats");
    unhardened.checkin(operator);
    let mut operator = hardened.checkout_validated().expect("operator connection");
    let hardened_stats = operator.stats().expect("stats");
    hardened.checkin(operator);
    println!(
        "pollution alarms over STATS           : unhardened {}/{SHARDS}, hardened {}/{SHARDS}",
        unhardened_stats.alarms, hardened_stats.alarms
    );

    assert!(
        unhardened_ratio >= 4.0,
        "remote attack must degrade the unhardened server at least 4x (got {unhardened_ratio:.2}x)"
    );
    assert!(
        hardened_ratio <= 1.3,
        "hardened server must stay near the honest curve (got {hardened_ratio:.2}x)"
    );
    assert!(unhardened_stats.alarms > 0, "the attacked store must raise alarms");
    assert_eq!(hardened_stats.alarms, 0, "the hardened store must not alarm");

    // Incident response over the wire: rotate every shard, replay the
    // corpus, complete — the polluted generations are dropped remotely.
    let mut operator = unhardened.checkout_validated().expect("operator connection");
    for shard in 0..SHARDS as u32 {
        operator.rotate_begin(shard).expect("rotate begin");
    }
    unhardened.checkin(operator);
    load_remote(&mut unhardened, "public-web", CORPUS);
    let mut operator = unhardened.checkout_validated().expect("operator connection");
    for shard in 0..SHARDS as u32 {
        operator.rotate_complete(shard).expect("rotate complete");
    }
    unhardened.checkin(operator);
    let rotated_fpp = remote_fpp(&mut unhardened);
    println!(
        "unhardened after ROTATE + replay      : {rotated_fpp:.5}  \
         (damage control only — the adversary can simply re-craft)"
    );

    drop(unhardened);
    drop(hardened);
    unhardened_handle.shutdown();
    hardened_handle.shutdown();
    println!("\nremote attack demonstrated: >= 4x drift over TCP, hardened posture held");
}

//! The cache-line blocked fast path, end to end: the speed/accuracy trade
//! against the classic filter, the corrected false-positive analysis, and —
//! the paper's point — the pollution attack carrying over unchanged.
//!
//! ```text
//! cargo run --release --example blocked_filter
//! ```

use std::time::Instant;

use evilbloom::analysis::blocked::blocked_false_positive;
use evilbloom::attacks::pollution::craft_polluting_items;
use evilbloom::filters::{BlockedBloomFilter, BloomFilter, FilterParams, BLOCK_BITS};
use evilbloom::hashes::{KirschMitzenmacher, Murmur128Pair, Murmur3_128};
use evilbloom::urlgen::UrlGenerator;

fn main() {
    let n = 200_000u64;
    let params = FilterParams::optimal(n, 0.01);
    println!("budget: {params}\n");

    // Same (m, k) budget, two layouts.
    let mut standard = BloomFilter::new(params, KirschMitzenmacher::new(Murmur3_128));
    let mut blocked = BlockedBloomFilter::new(params, Murmur128Pair);
    let members: Vec<String> = (0..n).map(|i| format!("https://host{i}.example/{i}")).collect();

    let start = Instant::now();
    for item in &members {
        standard.insert(item.as_bytes());
    }
    let standard_insert = start.elapsed();
    let start = Instant::now();
    blocked.insert_batch(&members);
    let blocked_insert = start.elapsed();

    let probes: Vec<String> = (0..n).map(|i| format!("https://absent{i}.example/{i}")).collect();
    let start = Instant::now();
    let mut standard_fp = 0u64;
    for probe in &probes {
        standard_fp += u64::from(standard.contains(probe.as_bytes()));
    }
    let standard_query = start.elapsed();
    let start = Instant::now();
    let blocked_fp = blocked.query_batch(&probes).iter().filter(|&&hit| hit).count() as u64;
    let blocked_query = start.elapsed();

    println!("== speed (single thread, {n} ops) ==");
    println!(
        "insert   standard {:>8.0?}   blocked(batch) {:>8.0?}   ({:.2}x)",
        standard_insert,
        blocked_insert,
        standard_insert.as_secs_f64() / blocked_insert.as_secs_f64()
    );
    println!(
        "query    standard {:>8.0?}   blocked(batch) {:>8.0?}   ({:.2}x)",
        standard_query,
        blocked_query,
        standard_query.as_secs_f64() / blocked_query.as_secs_f64()
    );

    println!("\n== accuracy: the corrected analysis ==");
    let naive = params.expected_fpp();
    let corrected = blocked_false_positive(blocked.m(), n, blocked.k(), BLOCK_BITS);
    println!("standard observed fpp  {:.5}  (designed {naive:.5})", standard_fp as f64 / n as f64);
    println!(
        "blocked  observed fpp  {:.5}  (naive formula {naive:.5}, corrected {corrected:.5})",
        blocked_fp as f64 / n as f64
    );
    println!(
        "block-load variance costs a factor {:.2} in fpp — the price of one",
        corrected / naive
    );
    println!("cache line per op; the measured speedup above is what it buys.");

    // The fast path is not a hardened path: the pollution engine drives the
    // blocked filter through the same TargetFilter view it uses everywhere.
    println!("\n== the attacks carry over (Section 4.1 on the blocked layout) ==");
    let mut victim = BlockedBloomFilter::new(FilterParams::explicit(3200, 4, 600), Murmur128Pair);
    for i in 0..300 {
        victim.insert(format!("honest-{i}").as_bytes());
    }
    let before = victim.fill_ratio();
    let plan = craft_polluting_items(&victim, &UrlGenerator::new("evil"), 150, 10_000_000);
    for item in &plan.items {
        let fresh = victim.insert(item.as_bytes());
        assert_eq!(fresh, 4, "every crafted item sets exactly k fresh bits");
    }
    println!(
        "150 crafted insertions: fill {before:.3} -> {:.3}, predicted fpp {:.3} \
         (search cost: {:.1} candidates/item)",
        victim.fill_ratio(),
        plan.predicted_false_positive,
        plan.stats.attempts_per_accepted()
    );
    println!("hardening is the same as ever: a keyed pair source (evilbloom_hashes::KeyedPair).");
}

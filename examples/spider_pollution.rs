//! Section 5.2 — blinding a Bloom-filter-backed web spider.
//!
//! The adversary's start page links to crafted URLs; crawling them pollutes
//! the de-duplication filter so that an honest site is partly skipped as
//! "already visited".
//!
//! Run with: `cargo run --example spider_pollution`

use evilbloom::webspider::{build_link_farm, install_link_farm, Crawler, DedupStore, WebGraph};

fn main() {
    let capacity = 2_000u64;
    let mut crawler = Crawler::new(DedupStore::bloom(capacity, 0.05));

    // The adversary crafts a link farm against the (public) filter layout.
    let farm = build_link_farm(&crawler, "evil.example", 1_800);
    println!(
        "crafted {} polluting URLs in {} candidate attempts",
        farm.crafted_urls.len(),
        farm.stats.attempts
    );

    // Crawl starts on the adversary's page, then proceeds to the honest site.
    let (mut graph, honest_root) = WebGraph::honest_site("victim.example", 400);
    install_link_farm(&mut graph, &farm);
    let mut links = farm.crafted_urls.clone();
    links.push(honest_root);
    graph.add_page(farm.root.clone(), links);

    let report = crawler.crawl(&graph, &farm.root, 1_000_000);
    let filter = crawler.store().filter().expect("bloom store");
    println!("pages fetched                  : {}", report.fetched);
    println!("honest pages wrongly skipped   : {}", report.wrongly_skipped);
    println!("filter fill ratio after attack : {:.3}", filter.fill_ratio());
    println!("filter false-positive estimate : {:.3}", filter.current_false_positive_probability());
}

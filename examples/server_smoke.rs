//! Smoke test for the TCP serving layer, sized for CI: starts a server on
//! an ephemeral loopback port, drives every protocol command through the
//! client (INSERT/QUERY, the MINSERT/MQUERY batch forms, STATS, ROTATE,
//! PING), asserts the responses, and shuts down cleanly. A watchdog thread
//! aborts the process if anything wedges, so the run is bounded even
//! without an external `timeout`.
//!
//! Run with: `cargo run --release --example server_smoke`
//! (append `-- --backend async` to smoke the Linux epoll reactor instead
//! of the default threaded worker pool).

use std::sync::Arc;
use std::time::Duration;

use evilbloom::server::{Backend, Client, Server, ServerConfig};
use evilbloom::store::BloomStore;

fn backend_from_args() -> Backend {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().position(|a| a == "--backend") {
        None => Backend::Threaded,
        Some(i) => args
            .get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--backend requires a value (threaded|async)");
                std::process::exit(2);
            })
            .parse()
            .unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            }),
    }
}

fn main() {
    // Belt and braces against hangs: CI also wraps this in `timeout`.
    std::thread::spawn(|| {
        std::thread::sleep(Duration::from_secs(90));
        eprintln!("server_smoke: watchdog fired after 90s, aborting");
        std::process::exit(1);
    });

    let backend = backend_from_args();
    let store = Arc::new(
        BloomStore::builder()
            .shards(4)
            .capacity(2_000)
            .target_fpp(0.01)
            .hardened()
            .seed(42)
            .build(),
    );
    let handle =
        Server::spawn(Arc::clone(&store), "127.0.0.1:0", ServerConfig::with_backend(backend))
            .expect("bind");
    println!("serving on {} ({backend} backend)", handle.local_addr());

    let mut client = Client::connect(handle.local_addr()).expect("connect");
    client.ping().expect("ping");

    // Single-op path.
    let fresh = client.insert(b"https://smoke.example/first").expect("insert");
    assert!(fresh > 0, "first insertion must set fresh bits");
    assert!(client.query(b"https://smoke.example/first").expect("query"));
    assert!(
        !client.query(b"https://smoke.example/never-inserted").expect("query"),
        "a near-empty 1% filter cannot plausibly false-positive here"
    );

    // Batch path: one frame per direction, each shard lock visited once.
    let members: Vec<String> =
        (0..500).map(|i| format!("https://smoke.example/page/{i}")).collect();
    let outcome = client.insert_batch(&members).expect("minsert");
    assert_eq!(outcome.items, 500);
    assert!(outcome.fresh_bits > 0);
    let probes: Vec<String> = members
        .iter()
        .cloned()
        .chain((0..100).map(|i| format!("https://absent.example/{i}")))
        .collect();
    let answers = client.query_batch(&probes).expect("mquery");
    assert!(answers[..500].iter().all(|&a| a), "no false negatives over the wire");

    // Stats expose the store's health, including pollution-alarm state.
    let stats = client.stats().expect("stats");
    assert!(stats.hardened);
    assert_eq!(stats.total_inserted, 501);
    assert_eq!(stats.alarms, 0, "honest smoke traffic must not alarm");
    assert_eq!(stats.shards.len(), 4);
    println!(
        "stats: {} inserted, mean fill {:.4}, alarms {}",
        stats.total_inserted, stats.mean_fill, stats.alarms
    );

    // Rotation over the wire: begin, replay, complete — members still answer.
    for shard in 0..4 {
        assert_eq!(client.rotate_begin(shard).expect("rotate begin"), Some(1));
    }
    client.insert_batch(&members).expect("replay");
    for shard in 0..4 {
        assert!(client.rotate_complete(shard).expect("rotate complete"));
    }
    assert!(client.query_batch(&members).expect("post-rotation mquery").iter().all(|&a| a));

    // Out-of-range shard is a clean remote error, not a dead connection.
    assert!(client.rotate_begin(99).is_err());
    client.ping().expect("connection survives a semantic error");

    let served = handle.requests_served();
    assert!(served >= 15, "only {served} requests recorded");
    drop(client);
    handle.shutdown();
    println!("server smoke OK on the {backend} backend ({served} requests served)");
}

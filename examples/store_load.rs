//! Adversarial load harness for the `evilbloom-store` serving layer.
//!
//! Drives a sharded concurrent Bloom-filter store from `std::thread::scope`
//! workers under three traffic mixes (implemented once, for this example and
//! the `store_throughput` bench, in `evilbloom::store::harness`):
//!
//! * **honest** — workers insert and query plausible random URLs (the
//!   deployment the average-case parameters were designed for);
//! * **query-only adversary** — workers replay a probe set of non-member
//!   URLs, hunting for false positives;
//! * **chosen-insertion adversary** — the pollution engine of
//!   `evilbloom-attacks` crafts items against the (unhardened) store and
//!   workers insert them, then the observed false-positive rate is compared
//!   between an unhardened and a hardened store — the paper's Table 2 story
//!   at serving scale.
//!
//! Run with: `cargo run --release --example store_load -- [--shards N] [--threads N]`
//!
//! `--shards` must be a power of two (default 8); `--threads` sets the
//! worker count for the adversarial phases and the top of the honest
//! scaling ladder (default 4). Thread scaling is only observable when
//! `available_parallelism` exceeds 1 — the CI container has a single CPU.

use evilbloom::store::harness::{
    adversarial_mix, fresh_store, honest_throughput, observed_fpp, prefill, LoadScale,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Args {
    shards: usize,
    threads: usize,
}

fn parse_args() -> Args {
    let mut args = Args { shards: 8, threads: 4 };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> usize {
            *i += 1;
            argv.get(*i)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die("flag requires a positive integer value"))
        };
        match argv[i].as_str() {
            "--shards" => args.shards = value(&mut i),
            "--threads" => args.threads = value(&mut i),
            "--help" | "-h" => {
                eprintln!("usage: store_load [--shards N] [--threads N]");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument: {other}")),
        }
        i += 1;
    }
    if args.shards == 0 || !args.shards.is_power_of_two() {
        die("--shards must be a power of two");
    }
    if args.threads == 0 {
        die("--threads must be positive");
    }
    args
}

fn die(message: &str) -> ! {
    eprintln!("store_load: {message}");
    eprintln!("usage: store_load [--shards N] [--threads N]");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    println!(
        "available_parallelism: {} (thread scaling needs a multi-core host; CI runs on 1 CPU)",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );
    let mut scale = LoadScale::full();
    scale.shards = args.shards;
    let threads = args.threads;
    println!("shards: {}, adversarial-phase threads: {threads}", scale.shards);

    println!("\n== honest mix: throughput scaling ==");
    let single = honest_throughput(&scale, 1);
    println!("  1 thread : {single:>10.0} ops/sec");
    // Powers of two up to --threads, always ending on the requested count
    // itself so the honest ladder tops out at the same concurrency the
    // adversarial phases use.
    let mut ladder: Vec<usize> =
        std::iter::successors(Some(2usize), |t| Some(t * 2)).take_while(|&t| t < threads).collect();
    if threads > 1 {
        ladder.push(threads);
    }
    for t in ladder {
        let rate = honest_throughput(&scale, t);
        println!("  {t} threads: {rate:>10.0} ops/sec  ({:.2}x)", rate / single);
    }

    println!("\n== query-only adversary: observed FPP under honest load ==");
    let unhardened = fresh_store(&scale, false, 2);
    let hardened = fresh_store(&scale, true, 2);
    prefill(&unhardened, "prefill", scale.prefill);
    prefill(&hardened, "prefill", scale.prefill);
    println!("  unhardened store: {:.5}", observed_fpp(&scale, &unhardened, threads as u64));
    println!("  hardened store  : {:.5}", observed_fpp(&scale, &hardened, threads as u64));

    println!("\n== chosen-insertion adversary: {} crafted items ==", scale.crafted);
    let report = adversarial_mix(&scale, threads);
    println!("  crafting cost: {} hash evaluations", report.search_attempts);
    println!("  honest baseline at same load : {:.5}", report.baseline_fpp);
    println!(
        "  unhardened store after attack: {:.5}  ({:.1}x honest)",
        report.attacked_unhardened_fpp,
        report.unhardened_ratio()
    );
    println!(
        "  hardened store after attack  : {:.5}  ({:.1}x honest)",
        report.attacked_hardened_fpp,
        report.hardened_ratio()
    );
    println!(
        "  pollution alarms: unhardened {}/{}, hardened {}/{}",
        report.unhardened_alarms, scale.shards, report.hardened_alarms, scale.shards
    );

    // Rotation closes the incident: rotate every shard, replay the honest
    // set, and the polluted bits are dropped with the old generations. (On
    // an unhardened store this is damage control, not a re-key — the
    // derivation stays public, so the adversary can simply re-craft; the
    // durable fix is hardening.)
    println!("\n== rotation: recovering the attacked unhardened store ==");
    let polluted = report.unhardened;
    let mut rng = StdRng::seed_from_u64(99);
    for shard in 0..polluted.shard_count() {
        polluted.begin_rotation(shard, &mut rng);
    }
    prefill(&polluted, "prefill", scale.prefill); // replay from the source of truth
    for shard in 0..polluted.shard_count() {
        polluted.complete_rotation(shard);
    }
    println!(
        "  observed FPP after rotation: {:.5}",
        observed_fpp(&scale, &polluted, threads as u64)
    );
}

//! Adversarial load harness for the `evilbloom-store` serving layer.
//!
//! Drives a sharded concurrent Bloom-filter store from `std::thread::scope`
//! workers under three traffic mixes (implemented once, for this example and
//! the `store_throughput` bench, in `evilbloom::store::harness`):
//!
//! * **honest** — workers insert and query plausible random URLs (the
//!   deployment the average-case parameters were designed for);
//! * **query-only adversary** — workers replay a probe set of non-member
//!   URLs, hunting for false positives;
//! * **chosen-insertion adversary** — the pollution engine of
//!   `evilbloom-attacks` crafts items against the (unhardened) store and
//!   workers insert them, then the observed false-positive rate is compared
//!   between an unhardened and a hardened store — the paper's Table 2 story
//!   at serving scale.
//!
//! Run with: `cargo run --release --example store_load`

use evilbloom::store::harness::{
    adversarial_mix, fresh_store, honest_throughput, observed_fpp, prefill, LoadScale,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = LoadScale::full();

    println!("== honest mix: throughput scaling ==");
    let single = honest_throughput(&scale, 1);
    println!("  1 thread : {single:>10.0} ops/sec");
    for threads in [2, 4, 8] {
        let rate = honest_throughput(&scale, threads);
        println!("  {threads} threads: {rate:>10.0} ops/sec  ({:.2}x)", rate / single);
    }

    println!("\n== query-only adversary: observed FPP under honest load ==");
    let unhardened = fresh_store(&scale, false, 2);
    let hardened = fresh_store(&scale, true, 2);
    prefill(&unhardened, "prefill", scale.prefill);
    prefill(&hardened, "prefill", scale.prefill);
    println!("  unhardened store: {:.5}", observed_fpp(&scale, &unhardened, 4));
    println!("  hardened store  : {:.5}", observed_fpp(&scale, &hardened, 4));

    println!("\n== chosen-insertion adversary: {} crafted items ==", scale.crafted);
    let report = adversarial_mix(&scale, 4);
    println!("  crafting cost: {} hash evaluations", report.search_attempts);
    println!("  honest baseline at same load : {:.5}", report.baseline_fpp);
    println!(
        "  unhardened store after attack: {:.5}  ({:.1}x honest)",
        report.attacked_unhardened_fpp,
        report.unhardened_ratio()
    );
    println!(
        "  hardened store after attack  : {:.5}  ({:.1}x honest)",
        report.attacked_hardened_fpp,
        report.hardened_ratio()
    );
    println!(
        "  pollution alarms: unhardened {}/{}, hardened {}/{}",
        report.unhardened_alarms, scale.shards, report.hardened_alarms, scale.shards
    );

    // Rotation closes the incident: rotate every shard, replay the honest
    // set, and the polluted bits are dropped with the old generations. (On
    // an unhardened store this is damage control, not a re-key — the
    // derivation stays public, so the adversary can simply re-craft; the
    // durable fix is hardening.)
    println!("\n== rotation: recovering the attacked unhardened store ==");
    let polluted = report.unhardened;
    let mut rng = StdRng::seed_from_u64(99);
    for shard in 0..polluted.shard_count() {
        polluted.begin_rotation(shard, &mut rng);
    }
    prefill(&polluted, "prefill", scale.prefill); // replay from the source of truth
    for shard in 0..polluted.shard_count() {
        polluted.complete_rotation(shard);
    }
    println!("  observed FPP after rotation: {:.5}", observed_fpp(&scale, &polluted, 4));
}

//! Crash-recovery smoke test for the durability layer, sized for CI: the
//! parent re-execs itself as a child server process with a persistent
//! unhardened store, populates it over TCP, takes a remote `SNAPSHOT`,
//! keeps inserting (those frames land only in the write-ahead log), then
//! **SIGKILLs** the child — no shutdown hook runs. A second child restarts
//! from the same directory via `BloomStore::recover` and must answer the
//! exact probe set bit-for-bit identically over the wire, with zero false
//! negatives among the acknowledged inserts.
//!
//! The default `SyncPolicy::OsOnly` writes every record to the OS before
//! acknowledging, so a SIGKILL (process death, not power loss) can never
//! eat an acknowledged insert — that is precisely what this smoke proves.
//!
//! Run with: `cargo run --release --example recovery_smoke`
//! (append `-- --backend async` to smoke the Linux epoll reactor instead
//! of the default threaded worker pool).

use std::io::{BufRead, BufReader};
use std::process::{Child, Command as ProcCommand, Stdio};
use std::sync::Arc;
use std::time::Duration;

use evilbloom::server::{Backend, Client, Server, ServerConfig};
use evilbloom::store::{BloomStore, PersistConfig};

fn backend_from_args(args: &[String]) -> Backend {
    match args.iter().position(|a| a == "--backend") {
        None => Backend::Threaded,
        Some(i) => args
            .get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--backend requires a value (threaded|async)");
                std::process::exit(2);
            })
            .parse()
            .unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            }),
    }
}

/// Child mode: serve a persistent store out of `dir` on an ephemeral
/// loopback port, printing the address on stdout for the parent. A fresh
/// directory gets a new store; a populated one is recovered first. The
/// child never exits on its own (the parent kills it) beyond a watchdog
/// that keeps CI bounded if the parent dies.
fn serve_child(dir: &str, backend: Backend) -> ! {
    std::thread::spawn(|| {
        std::thread::sleep(Duration::from_secs(120));
        eprintln!("recovery_smoke child: watchdog fired after 120s, aborting");
        std::process::exit(1);
    });

    let persist = PersistConfig::new(dir);
    let store = match BloomStore::<_>::recover(&persist) {
        Ok((store, report)) => {
            eprintln!(
                "child: recovered snapshot {} (+{} WAL inserts, {} rotations, torn tail: {})",
                report.snapshot_seq,
                report.replayed_inserts,
                report.replayed_rotations,
                report.torn_tail
            );
            store
        }
        Err(_) => {
            let mut store = BloomStore::builder()
                .shards(4)
                .capacity(4_000)
                .target_fpp(0.01)
                .unhardened()
                .seed(7)
                .build();
            store.enable_persistence(&persist).expect("enable persistence");
            store
        }
    };
    let handle = Server::spawn(Arc::new(store), "127.0.0.1:0", ServerConfig::with_backend(backend))
        .expect("bind");
    // The parent parses this exact line to find the port.
    println!("serving on {}", handle.local_addr());
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Spawns a child server on `dir` and waits for its address line.
fn spawn_server(dir: &str, backend: Backend) -> (Child, String) {
    let exe = std::env::current_exe().expect("own path");
    let mut child = ProcCommand::new(exe)
        .args(["--serve", dir, "--backend", &backend.to_string()])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn child server");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(addr) = line.strip_prefix("serving on ") {
                    break addr.to_string();
                }
            }
            _ => panic!("child exited before announcing its address"),
        }
    };
    (child, addr)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let backend = backend_from_args(&args);
    if let Some(i) = args.iter().position(|a| a == "--serve") {
        let dir = args.get(i + 1).expect("--serve requires a directory").clone();
        serve_child(&dir, backend);
    }

    // Belt and braces against hangs: CI also wraps this in `timeout`.
    std::thread::spawn(|| {
        std::thread::sleep(Duration::from_secs(90));
        eprintln!("recovery_smoke: watchdog fired after 90s, aborting");
        std::process::exit(1);
    });

    let dir = std::env::temp_dir()
        .join(format!("evilbloom-recovery-smoke-{}-{backend}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create store dir");
    let dir = dir.to_str().expect("utf-8 temp path").to_string();

    // Phase 1: populate, snapshot remotely, keep inserting into the WAL.
    let (mut child, addr) = spawn_server(&dir, backend);
    let mut client = Client::connect(&addr).expect("connect");
    let before: Vec<String> = (0..600).map(|i| format!("https://pre.example/{i}")).collect();
    client.insert_batch(&before).expect("minsert before snapshot");
    let info = client.snapshot().expect("remote SNAPSHOT");
    println!("snapshot {} written ({} bytes), WAL segment {}", info.seq, info.bytes, info.wal_seq);

    let after: Vec<String> = (0..400).map(|i| format!("https://post.example/{i}")).collect();
    client.insert_batch(&after).expect("minsert after snapshot (WAL only)");

    let probes: Vec<String> = before
        .iter()
        .chain(after.iter())
        .cloned()
        .chain((0..2_000).map(|i| format!("https://absent.example/{i}")))
        .collect();
    let original = client.query_batch(&probes).expect("mquery");
    assert!(original[..1_000].iter().all(|&a| a), "acknowledged members answer true");

    // Phase 2: SIGKILL — no flush, no shutdown hook, nothing graceful.
    drop(client);
    child.kill().expect("SIGKILL child");
    child.wait().expect("reap child");
    println!("child killed; restarting from {dir}");

    // Phase 3: restart from disk and demand bit-for-bit equivalence.
    let (mut child, addr) = spawn_server(&dir, backend);
    let mut client = Client::connect(&addr).expect("reconnect");
    let replayed = client.query_batch(&probes).expect("mquery after recovery");
    assert!(
        replayed[..1_000].iter().all(|&a| a),
        "an acknowledged insert disappeared across the crash"
    );
    assert_eq!(replayed, original, "recovered store must answer bit-for-bit identically");

    drop(client);
    child.kill().expect("kill second child");
    child.wait().expect("reap second child");
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "recovery smoke OK on the {backend} backend ({} probes bit-for-bit identical)",
        probes.len()
    );
}

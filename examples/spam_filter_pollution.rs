//! Section 6 — polluting a Dablooms-backed URL blocklist.
//!
//! The adversary reports crafted "phishing" URLs to the blocklist feed; once
//! enough sub-filters are polluted, a large fraction of benign shortening
//! requests are wrongly refused (Figure 8).
//!
//! Run with: `cargo run --example spam_filter_pollution`

use evilbloom::filters::ScalableConfig;
use evilbloom::spamfilter::{run_pollution_campaign, ShorteningService, Verdict};

fn main() {
    let mut service = ShorteningService::with_config(ScalableConfig {
        slice_capacity: 500,
        base_fpp: 0.01,
        tightening_ratio: 0.9,
    });

    // Honest operation: some genuine phishing reports.
    for i in 0..100 {
        service.report_malicious(&format!("http://real-phish-{i}.example/"));
    }
    let benign: Vec<String> =
        (0..2_000).map(|i| format!("http://legit-{i}.example/post")).collect();
    let baseline = benign.iter().filter(|u| service.shorten(u) == Verdict::Refused).count() as f64
        / benign.len() as f64;
    println!("false refusal rate before the attack : {:.2}%", baseline * 100.0);

    // The adversary floods the feed with 2 000 crafted URLs.
    let reported = run_pollution_campaign(&mut service, 2_000);
    println!("crafted URLs reported as malicious   : {reported}");

    let probe: Vec<String> =
        (0..2_000).map(|i| format!("http://other-legit-{i}.example/page")).collect();
    let polluted = probe.iter().filter(|u| service.shorten(u) == Verdict::Refused).count() as f64
        / probe.len() as f64;
    println!("false refusal rate after the attack  : {:.2}%", polluted * 100.0);
    println!(
        "compound false-positive estimate     : {:.3}",
        service.blocklist().current_false_positive_probability()
    );
}

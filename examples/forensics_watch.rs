//! Watches the `TRACE` forensic surface attribute a chosen-insertion
//! pollution attack to the one connection that carried it, sized for CI.
//!
//! One unhardened server receives traffic from five connections: four
//! honest clients inserting random URLs, and one attacker replaying a
//! crafted pollution set (every item's every index landing on a
//! currently-zero bit, the paper's attack). The forensic signal is the
//! per-connection fresh-bits-per-insert EWMA the server maintains from the
//! fresh-bit counts its own responses already carry:
//!
//! * the honest connections' EWMAs decay toward `k · (1 − fill)` as the
//!   filter fills;
//! * the attacker's EWMA pins at `k`, so its conn id rises to rank 1 of
//!   the suspect table — attribution, not just detection.
//!
//! The smoke drives the full incident timeline: honest warm-up → attack →
//! a `TRACE` scrape that samples the store (tripping the pollution alarm)
//! → operator rotates the alarming shard → a final scrape. It asserts the
//! attacker's conn id ranks top-1 with every honest connection below it,
//! and that the flight recorder replays the alarm → rotate-begin →
//! rotate-complete sequence in order.
//!
//! Run with: `cargo run --release --example forensics_watch`
//! (append `-- --backend async` for the Linux epoll reactor).

use std::sync::Arc;

use evilbloom::server::{
    Backend, Client, Server, ServerConfig, ServerHandle, TraceEvent, WireTrace,
};
use evilbloom::store::{craft_store_pollution, BloomStore};
use evilbloom::urlgen::UrlGenerator;

const SHARDS: usize = 4;
const CAPACITY: u64 = 4_000;
const TARGET_FPP: f64 = 0.01;
/// Honest warm-up inserts, split over the four honest connections.
const HONEST: usize = 2_000;
/// Crafted attack inserts: enough that the per-shard weight crosses the
/// pollution-alarm midpoint between the honest and adversarial curves.
const ATTACK: usize = 1_200;
const BATCH: usize = 100;
const HONEST_CONNS: usize = 4;

fn backend_from_args() -> Backend {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--backend") {
        None => Backend::Threaded,
        Some(i) => args
            .get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--backend requires a value (threaded|async)");
                std::process::exit(2);
            })
            .parse()
            .unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            }),
    }
}

fn spawn(backend: Backend) -> (ServerHandle, Arc<BloomStore>) {
    let store = Arc::new(
        BloomStore::builder()
            .shards(SHARDS)
            .capacity(CAPACITY)
            .target_fpp(TARGET_FPP)
            .unhardened()
            .seed(42)
            .build(),
    );
    // The threaded backend serves one connection per worker; this smoke
    // holds five connections open at once (four honest + the attacker).
    let mut config = ServerConfig::with_backend(backend);
    config.workers = HONEST_CONNS + 2;
    let handle = Server::spawn(Arc::clone(&store), "127.0.0.1:0", config).expect("bind loopback");
    (handle, store)
}

/// Connects one client and pings it. The ping forces the backend to fully
/// register the connection (allocating its forensic conn id) before the
/// next connect is accepted, so ids are deterministic: honest connections
/// get 1..=4 in connect order, the attacker gets 5.
fn connect(handle: &ServerHandle) -> Client {
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    client.ping().expect("ping");
    client
}

fn seq_of(trace: &WireTrace, want: &TraceEvent) -> u64 {
    trace
        .events
        .iter()
        .find(|e| e.event == *want)
        .unwrap_or_else(|| panic!("event {want:?} missing from trace:\n{}", trace.render()))
        .seq
}

fn main() {
    let backend = backend_from_args();
    println!("forensics_watch: backend={backend}");

    // Craft the pollution set against a mirror of the server's exact state
    // at attack time: same config, same seed, same honest warm-up — the
    // reconstruction the paper's remote adversary performs from public
    // parameters.
    let mirror = BloomStore::builder()
        .shards(SHARDS)
        .capacity(CAPACITY)
        .target_fpp(TARGET_FPP)
        .unhardened()
        .seed(42)
        .build();
    let honest: Vec<String> =
        (0..HONEST).map(|i| format!("https://honest.example/page/{i}")).collect();
    for url in &honest {
        mirror.insert(url.as_bytes());
    }
    let plan =
        craft_store_pollution(&mirror, &UrlGenerator::new("evil.example"), ATTACK, 8_000_000)
            .expect("unhardened mirror yields an adversarial view");
    assert_eq!(plan.items.len(), ATTACK, "crafting fell short");

    let (handle, _store) = spawn(backend);

    // Honest connections first (conn ids 1..=4), then the attacker (5).
    let mut honest_clients: Vec<Client> = (0..HONEST_CONNS).map(|_| connect(&handle)).collect();
    let mut attacker = connect(&handle);
    let attacker_id = (HONEST_CONNS + 1) as u64;

    // Honest warm-up: round-robin the batches over the honest connections
    // so each accumulates a decaying fresh-bits EWMA.
    for (i, chunk) in honest.chunks(BATCH).enumerate() {
        honest_clients[i % HONEST_CONNS].insert_batch(chunk).expect("honest minsert");
    }
    // The attack: crafted batches on the one attacking connection.
    for chunk in plan.items.chunks(BATCH) {
        attacker.insert_batch(chunk).expect("attack minsert");
    }

    // First scrape: samples the store, detecting (and recording) the
    // pollution alarm the crafted weight tripped.
    let mid = honest_clients[0].trace().expect("trace");
    let alarm_shard = mid
        .events
        .iter()
        .find_map(|e| match e.event {
            TraceEvent::AlarmTripped { shard } => Some(shard),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no pollution alarm in trace:\n{}", mid.render()));
    println!("alarm tripped on shard {alarm_shard}; rotating it");

    // The operator's response: rotate the alarming shard.
    let generation = honest_clients[0]
        .rotate_begin(alarm_shard as u32)
        .expect("rotate begin")
        .expect("shard was not already rotating");
    assert!(honest_clients[0].rotate_complete(alarm_shard as u32).expect("rotate complete"));

    // Final scrape: the full incident timeline plus the suspect ranking.
    let trace = honest_clients[0].trace().expect("trace");
    println!("{}", trace.render());

    // Attribution: the attacker's conn id ranks top-1, every honest
    // connection strictly below it.
    assert!(!trace.suspects.is_empty(), "empty suspect table");
    assert_eq!(
        trace.suspects[0].conn_id, attacker_id,
        "suspect rank 1 is conn {} (ewma {:.3}), expected the attacker conn {attacker_id}",
        trace.suspects[0].conn_id, trace.suspects[0].ewma_bits_per_item
    );
    for row in &trace.suspects[1..] {
        assert!(
            row.ewma_bits_per_item < trace.suspects[0].ewma_bits_per_item,
            "conn {} ties the attacker's EWMA {:.3}",
            row.conn_id,
            trace.suspects[0].ewma_bits_per_item
        );
    }
    assert_eq!(trace.suspects.len(), HONEST_CONNS + 1, "expected all five connections ranked");

    // The recorder replays the incident in order: alarm, then the
    // operator's rotation begin/complete.
    let alarm_seq = seq_of(&trace, &TraceEvent::AlarmTripped { shard: alarm_shard });
    let begin_seq = seq_of(&trace, &TraceEvent::RotationBegun { shard: alarm_shard, generation });
    let complete_seq = seq_of(&trace, &TraceEvent::RotationCompleted { shard: alarm_shard });
    assert!(
        alarm_seq < begin_seq && begin_seq < complete_seq,
        "incident out of order: alarm #{alarm_seq}, begin #{begin_seq}, complete #{complete_seq}"
    );

    println!(
        "forensics_watch: attacker conn {attacker_id} ranked #1 \
         (ewma {:.3} vs honest best {:.3}); alarm -> rotation sequence confirmed ({backend})",
        trace.suspects[0].ewma_bits_per_item, trace.suspects[1].ewma_bits_per_item
    );

    drop(honest_clients);
    drop(attacker);
    handle.shutdown();
}

//! The scenario matrix over TCP: {filter family} × {attack} × {hardened?},
//! on every supported server I/O backend.
//!
//! This is the paper's Table 2 run against live servers instead of local
//! filters. For each non-plain family the same crafted traffic is delivered
//! to an unhardened and a hardened deployment over the wire, and the drift
//! is measured remotely:
//!
//! * **counting × chosen insertions** — pollution drift: the unhardened
//!   server's false-positive rate leaves the honest curve, the hardened one
//!   stays at ~1.0x;
//! * **counting × deletion adversary** — `MDELETE` frames crafted against a
//!   public mirror evict a victim item (a false *negative*) from the
//!   unhardened server; the identical frames cannot find the victim's cells
//!   on the hardened one;
//! * **counting × ghost forgery** — a query-only adversary forges
//!   never-inserted items that the unhardened server answers "present" for
//!   over `MQUERY`; against the hardened server the same ghosts hit at the
//!   honest false-positive rate;
//! * **scalable × chosen insertions** — same pollution drift measurement on
//!   the growing family;
//! * **scalable × forced growth** — overfilling over the wire forces new
//!   slices, and the memory amplification is visible to a remote operator
//!   through `STATS`.
//!
//! Run with: `cargo run --release --example attack_matrix`

use std::sync::Arc;

use evilbloom::server::{Backend, ClientPool, RemoteStore, Server, ServerConfig, ServerHandle};
use evilbloom::store::{
    craft_store_pollution, forge_store_ghosts, plan_store_deletion, BackendKind, BloomStore,
    ConcurrentCountingFilter, ConcurrentScalableFilter, FilterBackend,
};
use evilbloom::urlgen::UrlGenerator;

const SHARDS: usize = 4;
const CAPACITY: u64 = 4_000;
const TARGET_FPP: f64 = 0.01;
/// Public URL corpus the honest service indexes (known to the adversary).
const CORPUS: u64 = 1_200;
/// Chosen insertions the adversary crafts and delivers over the wire.
const CRAFTED: usize = 1_800;
/// Non-member probes per false-positive measurement.
const PROBES: u64 = 200_000;
/// Pooled connections the adversary stripes its frames over.
const POOL: usize = 3;
/// Offline crafting budget.
const CRAFT_BUDGET: u64 = 500_000_000;

fn backends() -> Vec<Backend> {
    Backend::ALL.into_iter().filter(|b| b.is_supported()).collect()
}

fn counting_store(hardened: bool, seed: u64) -> BloomStore<ConcurrentCountingFilter> {
    let builder =
        BloomStore::builder().shards(SHARDS).capacity(CAPACITY).target_fpp(TARGET_FPP).seed(seed);
    let builder = if hardened { builder.hardened() } else { builder.unhardened() };
    builder.counting(4).build()
}

fn scalable_store(hardened: bool, seed: u64) -> BloomStore<ConcurrentScalableFilter> {
    let builder =
        BloomStore::builder().shards(SHARDS).capacity(CAPACITY).target_fpp(TARGET_FPP).seed(seed);
    let builder = if hardened { builder.hardened() } else { builder.unhardened() };
    builder.scalable(0.9).build()
}

fn spawn<B: FilterBackend + 'static>(
    store: BloomStore<B>,
    wire: Backend,
) -> (ServerHandle, ClientPool) {
    // The backend selector doubles as a deployment assertion here: a matrix
    // row that accidentally served the wrong family would fail at bind time.
    let config = ServerConfig::with_backend(wire).expect_store_backend(B::KIND);
    let handle = Server::spawn(Arc::new(store), "127.0.0.1:0", config).expect("bind loopback");
    let pool = ClientPool::connect(handle.local_addr(), POOL).expect("connect pool");
    (handle, pool)
}

/// Inserts `count` URLs from `namespace` through batch `MINSERT` frames.
fn load<R: RemoteStore>(remote: &mut R, namespace: &str, count: u64) {
    let generator = UrlGenerator::new(namespace);
    let urls: Vec<String> = (0..count).map(|i| generator.url(i)).collect();
    remote.minsert(&urls).expect("remote MINSERT");
}

/// Observed false-positive rate over `PROBES` non-member URLs.
fn remote_fpp<R: RemoteStore>(remote: &mut R) -> f64 {
    let generator = UrlGenerator::new("probe-nonmember");
    let probes: Vec<String> = (0..PROBES).map(|i| generator.url(i)).collect();
    let answers = remote.mquery(&probes).expect("remote MQUERY");
    answers.iter().filter(|&&a| a).count() as f64 / PROBES as f64
}

/// The chosen-insertion arm of the matrix for one family: delivers the same
/// crafted items to an unhardened and a hardened server and returns their
/// drift ratios against an honest baseline at identical total load.
fn pollution_drift<B: FilterBackend + 'static>(
    family: &str,
    wire: Backend,
    mk: impl Fn(bool, u64) -> BloomStore<B>,
) -> (f64, f64) {
    let (baseline_handle, mut baseline) = spawn(mk(true, 3), wire);
    load(&mut baseline, "public-web", CORPUS);
    load(&mut baseline, "extra-honest", CRAFTED as u64);
    let baseline_fpp = remote_fpp(&mut baseline);
    drop(baseline);
    baseline_handle.shutdown();

    let (unhardened_handle, mut unhardened) = spawn(mk(false, 2), wire);
    let (hardened_handle, mut hardened) = spawn(mk(true, 2), wire);
    load(&mut unhardened, "public-web", CORPUS);
    load(&mut hardened, "public-web", CORPUS);

    // The adversary mirrors the unhardened server offline (public corpus,
    // public key-free routing and indexes) and crafts items that each set
    // `k` fresh bits. The same bytes then hit both deployments.
    let mirror = mk(false, 777);
    let generator = UrlGenerator::new("public-web");
    let corpus: Vec<String> = (0..CORPUS).map(|i| generator.url(i)).collect();
    mirror.insert_batch(&corpus);
    let plan = craft_store_pollution(
        &mirror,
        &UrlGenerator::new(&format!("evil-{family}")),
        CRAFTED,
        CRAFT_BUDGET,
    )
    .expect("unhardened stores can be mirrored");
    assert_eq!(plan.items.len(), CRAFTED, "crafting search exhausted its budget");
    unhardened.minsert(&plan.items).expect("crafted MINSERT");
    hardened.minsert(&plan.items).expect("crafted MINSERT");

    let unhardened_ratio = remote_fpp(&mut unhardened) / baseline_fpp;
    let hardened_ratio = remote_fpp(&mut hardened) / baseline_fpp;
    println!(
        "{wire}/{family:<8} chosen insertions : unhardened {unhardened_ratio:.1}x honest, \
         hardened {hardened_ratio:.1}x honest"
    );

    drop(unhardened);
    drop(hardened);
    unhardened_handle.shutdown();
    hardened_handle.shutdown();
    (unhardened_ratio, hardened_ratio)
}

/// The deletion arm: crafted `MDELETE` frames evict a victim from the
/// unhardened counting server; on the hardened server the identical frames
/// decrement unrelated cells and the victim survives.
fn deletion_eviction(wire: Backend) {
    let victim = b"http://victim.example/delisted";
    // The plan is pure geometry, computed once against a public mirror.
    let mirror = counting_store(false, 777);
    let plan = plan_store_deletion(&mirror, victim, &UrlGenerator::new("evict"), CRAFT_BUDGET)
        .expect("unhardened stores can be mirrored");
    assert!(!plan.items.is_empty(), "deletion plan must cover the victim");

    for hardened_posture in [false, true] {
        let (handle, mut pool) = spawn(counting_store(hardened_posture, 2), wire);
        load(&mut pool, "public-web", CORPUS);
        let mut client = pool.checkout_validated().expect("lane");
        client.insert(victim).expect("insert victim");
        assert!(client.query(victim).expect("query"), "victim starts present");

        // Shared cells may hold counts above one, so the adversary replays
        // the plan a few times (the paper's "deletion of an item may require
        // other deletions" caveat).
        let mut rounds = 0;
        while client.query(victim).expect("query") && rounds < 8 {
            client.delete_batch(&plan.items).expect("crafted MDELETE");
            rounds += 1;
        }
        let evicted = !client.query(victim).expect("query");
        let posture = if hardened_posture { "hardened" } else { "unhardened" };
        println!(
            "{wire}/counting deletion adversary: {posture} victim {} after {rounds} round(s)",
            if evicted { "EVICTED (false negative)" } else { "survives" }
        );
        if hardened_posture {
            assert!(!evicted, "keyed indexes must hide the victim's cells");
        } else {
            assert!(evicted, "the unhardened victim must become a false negative");
        }
        pool.checkin(client);
        drop(pool);
        handle.shutdown();
    }
}

/// The ghost-forgery arm (query-only adversary, Section 4.2): never-inserted
/// items forged against a mirror of the unhardened server's state all answer
/// "present" over `MQUERY`; against the hardened server the same ghosts are
/// just random probes and hit at the honest false-positive rate.
fn ghost_forgery(wire: Backend) {
    const GHOSTS: usize = 200;
    let mirror = counting_store(false, 777);
    let generator = UrlGenerator::new("public-web");
    let corpus: Vec<String> = (0..CORPUS).map(|i| generator.url(i)).collect();
    mirror.insert_batch(&corpus);
    let forged = forge_store_ghosts(&mirror, &UrlGenerator::new("ghost"), GHOSTS, CRAFT_BUDGET)
        .expect("unhardened stores can be mirrored");
    assert_eq!(forged.items.len(), GHOSTS, "forgery search exhausted its budget");

    let mut rates = [0.0f64; 2];
    for (slot, hardened_posture) in [false, true].into_iter().enumerate() {
        let (handle, mut pool) = spawn(counting_store(hardened_posture, 2), wire);
        load(&mut pool, "public-web", CORPUS);
        let answers = pool.mquery(&forged.items).expect("remote MQUERY");
        rates[slot] = answers.iter().filter(|&&a| a).count() as f64 / GHOSTS as f64;
        drop(pool);
        handle.shutdown();
    }
    println!(
        "{wire}/counting ghost forgery     : unhardened {:.0}% of ghosts answer present, \
         hardened {:.1}%",
        rates[0] * 100.0,
        rates[1] * 100.0
    );
    assert_eq!(rates[0], 1.0, "the mirror is exact, so every ghost must forge");
    assert!(rates[1] < 0.05, "hardened ghosts are random probes (got {:.3})", rates[1]);
}

/// The forced-growth arm: overfilling a scalable server over the wire
/// forces new slices, and the amplification is remotely visible in `STATS`.
fn forced_growth(wire: Backend) {
    let (handle, mut pool) = spawn(scalable_store(false, 2), wire);
    let before = pool.stats().expect("stats");
    assert_eq!(before.backend, BackendKind::Scalable);
    let m_before: u64 = before.shards.iter().map(|s| s.m).sum();

    // Three times the configured capacity: every shard must grow slices.
    load(&mut pool, "overfill", 3 * CAPACITY);
    let after = pool.stats().expect("stats");
    let m_after: u64 = after.shards.iter().map(|s| s.m).sum();
    println!(
        "{wire}/scalable forced growth    : {m_before} -> {m_after} bits over STATS \
         ({:.1}x memory)",
        m_after as f64 / m_before as f64
    );
    assert!(m_after > m_before, "forced growth must be visible to a remote operator");
    assert_eq!(after.total_inserted, 3 * CAPACITY);

    drop(pool);
    handle.shutdown();
}

fn main() {
    println!(
        "attack matrix over TCP: {SHARDS} shards, capacity {CAPACITY}, corpus {CORPUS}, \
         {CRAFTED} crafted items, {PROBES} probes\n"
    );

    for wire in backends() {
        let (unhardened, hardened) = pollution_drift("counting", wire, counting_store);
        assert!(
            unhardened >= 3.0,
            "counting drift must be measurable over TCP (got {unhardened:.2}x)"
        );
        assert!(hardened <= 1.35, "hardened counting must stay ~1.0x (got {hardened:.2}x)");

        let (unhardened, hardened) = pollution_drift("scalable", wire, scalable_store);
        assert!(
            unhardened >= 3.0,
            "scalable drift must be measurable over TCP (got {unhardened:.2}x)"
        );
        assert!(hardened <= 1.35, "hardened scalable must stay ~1.0x (got {hardened:.2}x)");

        deletion_eviction(wire);
        ghost_forgery(wire);
        forced_growth(wire);
        println!();
    }
    println!("attack matrix demonstrated on {} wire backend(s)", backends().len());
}

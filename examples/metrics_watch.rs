//! Watches the wire-exposed drift telemetry separate honest load from a
//! chosen-insertion pollution attack, sized for CI.
//!
//! Two in-process servers — one **unhardened** (public Murmur3 indexes, the
//! paper's victim) and one **hardened** (keyed SipHash routing and index
//! derivation) — receive the same traffic while this process polls the
//! `METRICS` opcode after every batch, exactly as a dashboard scraper
//! would. The signal under watch is fresh bits flipped per insert:
//!
//! * honest inserts set ≈ `k · (1 − fill)` fresh bits — the slope *decays*
//!   as the filter fills;
//! * the paper's crafted insertions (each item's every index landing on a
//!   currently-zero bit) set ≈ `k` fresh bits each — the slope *pins* at
//!   `k`, an anomaly that widens as fill grows (Table 2's pollution
//!   speed-up, seen from the operations side).
//!
//! The smoke asserts the separation: on the unhardened server the attack
//! phase's bits-per-insert slope rises well above the honest tail; on the
//! hardened server the very same crafted bytes behave like random items
//! and the slope keeps decaying.
//!
//! Run with: `cargo run --release --example metrics_watch`
//! (append `-- --backend async` for the Linux epoll reactor).

use std::sync::Arc;

use evilbloom::server::{Backend, Client, Server, ServerConfig, ServerHandle};
use evilbloom::store::{craft_store_pollution, BloomStore};
use evilbloom::urlgen::UrlGenerator;

const SHARDS: usize = 4;
const CAPACITY: u64 = 4_000;
const TARGET_FPP: f64 = 0.01;
/// Honest warm-up inserts (fills the filters enough for the honest slope
/// to visibly decay below `k`).
const HONEST: usize = 2_000;
/// Crafted (or crafted-elsewhere, for the hardened server) attack inserts.
const ATTACK: usize = 600;
const BATCH: usize = 100;

fn backend_from_args() -> Backend {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--backend") {
        None => Backend::Threaded,
        Some(i) => args
            .get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--backend requires a value (threaded|async)");
                std::process::exit(2);
            })
            .parse()
            .unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            }),
    }
}

fn spawn(hardened: bool, backend: Backend) -> (ServerHandle, Arc<BloomStore>) {
    let builder =
        BloomStore::builder().shards(SHARDS).capacity(CAPACITY).target_fpp(TARGET_FPP).seed(42);
    let builder = if hardened { builder.hardened() } else { builder.unhardened() };
    let store = Arc::new(builder.build());
    let handle =
        Server::spawn(Arc::clone(&store), "127.0.0.1:0", ServerConfig::with_backend(backend))
            .expect("bind loopback");
    (handle, store)
}

/// One scraped sample of the drift-relevant counters.
#[derive(Clone, Copy)]
struct Sample {
    inserts: u64,
    fresh_bits: u64,
    gauge: f64,
}

/// Polls `METRICS` and extracts the drift counters from the exposition.
fn scrape(client: &mut Client) -> Sample {
    let text = client.metrics().expect("METRICS scrape");
    let value = |name: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
            .and_then(|l| l.rsplit_once(' '))
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing from exposition:\n{text}"))
    };
    Sample {
        inserts: value("evilbloom_store_inserts_total") as u64,
        fresh_bits: value("evilbloom_store_fresh_bits_total") as u64,
        gauge: value("evilbloom_store_bits_per_insert_recent"),
    }
}

/// Fresh bits per insert between two scrapes.
fn slope(from: Sample, to: Sample) -> f64 {
    let inserts = to.inserts - from.inserts;
    assert!(inserts > 0, "phase inserted nothing");
    (to.fresh_bits - from.fresh_bits) as f64 / inserts as f64
}

/// Inserts `items` in `BATCH`-sized `MINSERT` frames, scraping after every
/// batch (feeding the server's sliding drift window like a real poller).
fn drive(client: &mut Client, items: &[String]) -> Sample {
    let mut last = scrape(client);
    for chunk in items.chunks(BATCH) {
        client.insert_batch(chunk).expect("minsert");
        last = scrape(client);
    }
    last
}

struct Run {
    honest_tail: f64,
    attack: f64,
    final_gauge: f64,
}

/// Feeds one server the honest warm-up then the attack set, returning the
/// honest-tail and attack-phase slopes.
fn run(backend: Backend, hardened: bool, attack_items: &[String]) -> Run {
    let (handle, _store) = spawn(hardened, backend);
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let honest: Vec<String> =
        (0..HONEST).map(|i| format!("https://honest.example/page/{i}")).collect();
    // Honest phase, with a marked tail: the last quarter of the warm-up is
    // the "recent honest" baseline the attack slope is compared against.
    let split = HONEST * 3 / 4;
    drive(&mut client, &honest[..split]);
    let tail_start = scrape(&mut client);
    let tail_end = drive(&mut client, &honest[split..]);
    let honest_tail = slope(tail_start, tail_end);

    let attack_end = drive(&mut client, attack_items);
    let attack = slope(tail_end, attack_end);

    handle.shutdown();
    Run { honest_tail, attack, final_gauge: attack_end.gauge }
}

fn main() {
    let backend = backend_from_args();
    println!("metrics_watch: backend={backend}");

    // Craft the pollution set against a mirror of the unhardened store's
    // exact state at attack time: same config, same seed, same honest
    // warm-up. The paper's remote adversary reconstructs this mirror from
    // public parameters; the hardened store's keyed indexes make that
    // reconstruction impossible, so the same bytes hit it like noise.
    let mirror = BloomStore::builder()
        .shards(SHARDS)
        .capacity(CAPACITY)
        .target_fpp(TARGET_FPP)
        .unhardened()
        .seed(42)
        .build();
    for i in 0..HONEST {
        mirror.insert(format!("https://honest.example/page/{i}").as_bytes());
    }
    let plan =
        craft_store_pollution(&mirror, &UrlGenerator::new("evil.example"), ATTACK, 4_000_000)
            .expect("unhardened mirror yields an adversarial view");
    assert_eq!(plan.items.len(), ATTACK, "crafting fell short");

    let unhardened = run(backend, false, &plan.items);
    let hardened = run(backend, true, &plan.items);

    println!(
        "unhardened: honest tail {:.3} bits/insert -> attack {:.3} (gauge {:.3})",
        unhardened.honest_tail, unhardened.attack, unhardened.final_gauge
    );
    println!(
        "hardened:   honest tail {:.3} bits/insert -> attack {:.3} (gauge {:.3})",
        hardened.honest_tail, hardened.attack, hardened.final_gauge
    );

    // The separation the telemetry exists to surface: chosen insertions pin
    // the unhardened slope near k while the honest slope has decayed.
    assert!(
        unhardened.attack > unhardened.honest_tail * 1.25,
        "unhardened attack slope {:.3} does not stand out from honest tail {:.3}",
        unhardened.attack,
        unhardened.honest_tail
    );
    // On the hardened server the same bytes are just more honest-ish load:
    // the slope keeps decaying instead of rising.
    assert!(
        hardened.attack <= hardened.honest_tail * 1.10,
        "hardened attack slope {:.3} rose above honest tail {:.3}",
        hardened.attack,
        hardened.honest_tail
    );
    // And the wire-exposed gauge itself ranks the two servers correctly.
    assert!(
        unhardened.final_gauge > hardened.final_gauge,
        "drift gauge failed to rank unhardened ({:.3}) above hardened ({:.3})",
        unhardened.final_gauge,
        hardened.final_gauge
    );

    println!("metrics_watch: drift separation confirmed ({backend})");
}

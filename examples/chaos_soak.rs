//! Chaos soak: a mixed workload against a server whose I/O layer is
//! being actively sabotaged by a **seeded, replayable fault schedule**
//! (`evilbloom-fault`), on both serving backends.
//!
//! The parent re-execs itself as a child server process with a
//! persistent store and an armed [`FaultPlan`]: probabilistic socket
//! read/write/accept faults throughout, plus one exact-nth WAL-fsync
//! fault that breaks the write-ahead log mid-soak. The parent drives a
//! [`ResilientClient`] (connect + request deadlines, seeded
//! decorrelated-jitter retries, writes opted in — the store is a plain
//! Bloom filter, so replaying an insert is idempotent) and asserts, per
//! backend:
//!
//! 1. **No panic**: the child survives the whole soak (until the
//!    deliberate SIGKILL) and every client error is a typed refusal or a
//!    retried transport fault, never a protocol wedge.
//! 2. **Degraded entry/exit in trace order**: the WAL break puts the
//!    store into degraded read-only mode (writes refused with a typed
//!    `DEGRADED`), an operator `SNAPSHOT` repairs it, and the forensic
//!    trace records `DegradedEntered` before `DegradedExited`.
//! 3. **Bounded client error rate**: after retries, hard failures stay
//!    under 10% of operations (the schedule injects ~1.5% per socket op).
//! 4. **No acked-write loss across kill + recover**: the child is
//!    SIGKILLed mid-soak and restarted from the same directory; every
//!    insert the client saw acknowledged must still answer `true`.
//!
//! Run with: `cargo run --release --example chaos_soak`
//! (append `-- --backend async` for the Linux epoll reactor only,
//! `-- --backend threaded` for the worker pool only; default soaks both).
//!
//! [`FaultPlan`]: evilbloom::fault::FaultPlan
//! [`ResilientClient`]: evilbloom::server::ResilientClient

use std::io::{BufRead, BufReader};
use std::process::{Child, Command as ProcCommand, Stdio};
use std::sync::Arc;
use std::time::Duration;

use evilbloom::fault::{self, FaultPlan, FaultPoint};
use evilbloom::server::{
    Backend, ClientConfig, ClientError, ResilientClient, RetryPolicy, Server, ServerConfig,
    TraceEvent,
};
use evilbloom::store::{BloomStore, PersistConfig};

/// Seed for the whole chaos schedule (fault plan and client backoff).
/// Change it and the run replays a *different but equally deterministic*
/// schedule.
const CHAOS_SEED: u64 = 0xC4A0_50A4;
/// Per-mille fault probability at the socket read/write points.
const SOCKET_FAULT_PER_MILLE: u16 = 15;
/// Per-mille fault probability at the accept point.
const ACCEPT_FAULT_PER_MILLE: u16 = 10;
/// The exact WAL-fsync hit that breaks the log (one hit per write batch,
/// so this trips mid-soak).
const WAL_BREAK_AT_HIT: u64 = 12;
/// Workload rounds per backend.
const ROUNDS: usize = 30;
/// Items inserted per round.
const BATCH: usize = 40;
/// Hard-failure budget after retries, as a fraction of operations.
const MAX_ERROR_RATE: f64 = 0.10;

fn backend_arg(args: &[String]) -> Option<Backend> {
    args.iter().position(|a| a == "--backend").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--backend requires a value (threaded|async)");
                std::process::exit(2);
            })
            .parse()
            .unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
    })
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| args.get(i + 1).unwrap_or_else(|| panic!("{flag} requires a value")).clone())
}

/// Child mode: serve a persistent store out of `dir` with the chaos
/// schedule armed (seed 0 = disarmed, for the post-recovery verification
/// server). Prints the listen address on stdout for the parent.
fn serve_child(dir: &str, backend: Backend, fault_seed: u64, wal_break: u64) -> ! {
    std::thread::spawn(|| {
        std::thread::sleep(Duration::from_secs(180));
        eprintln!("chaos_soak child: watchdog fired after 180s, aborting");
        std::process::exit(1);
    });

    if fault_seed != 0 {
        let mut plan = FaultPlan::new(fault_seed)
            .fail_per_mille(FaultPoint::SocketRead, SOCKET_FAULT_PER_MILLE)
            .fail_per_mille(FaultPoint::SocketWrite, SOCKET_FAULT_PER_MILLE)
            .fail_per_mille(FaultPoint::Accept, ACCEPT_FAULT_PER_MILLE);
        if wal_break > 0 {
            plan = plan.fail_nth(FaultPoint::WalFsync, wal_break);
        }
        // Keep the plan armed for the whole process lifetime; the child
        // never disarms (it exits by SIGKILL).
        std::mem::forget(fault::arm(plan));
    }

    let persist = PersistConfig::new(dir);
    let store = match BloomStore::<_>::recover(&persist) {
        Ok((store, report)) => {
            eprintln!(
                "child: recovered snapshot {} (+{} WAL inserts, torn tail: {})",
                report.snapshot_seq, report.replayed_inserts, report.torn_tail
            );
            store
        }
        Err(_) => {
            let mut store = BloomStore::builder()
                .shards(4)
                .capacity(16_000)
                .target_fpp(0.01)
                .unhardened()
                .seed(7)
                .build();
            store.enable_persistence(&persist).expect("enable persistence");
            store
        }
    };
    let handle = Server::spawn(Arc::new(store), "127.0.0.1:0", ServerConfig::with_backend(backend))
        .expect("bind");
    println!("serving on {}", handle.local_addr());
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Spawns a child server on `dir` and waits for its address line.
fn spawn_server(dir: &str, backend: Backend, fault_seed: u64, wal_break: u64) -> (Child, String) {
    let exe = std::env::current_exe().expect("own path");
    let mut child = ProcCommand::new(exe)
        .args([
            "--serve",
            dir,
            "--backend",
            &backend.to_string(),
            "--fault-seed",
            &fault_seed.to_string(),
            "--wal-break",
            &wal_break.to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn child server");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(addr) = line.strip_prefix("serving on ") {
                    break addr.to_string();
                }
            }
            _ => panic!("child exited before announcing its address"),
        }
    };
    (child, addr)
}

fn chaos_client(addr: &str) -> ResilientClient {
    let config = ClientConfig {
        connect_timeout: Some(Duration::from_secs(5)),
        request_timeout: Some(Duration::from_secs(10)),
        // The served family is a plain Bloom filter: replaying an insert
        // whose ack was lost is idempotent, so writes opt in to retrying.
        retry: RetryPolicy {
            max_retries: 6,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(100),
            seed: CHAOS_SEED,
            retry_writes: false,
        }
        .retrying_writes(),
        ..ClientConfig::default()
    };
    ResilientClient::connect(addr, config).expect("dial chaos server")
}

fn soak(backend: Backend) {
    println!("=== chaos soak: {backend} backend ===");
    let dir =
        std::env::temp_dir().join(format!("evilbloom-chaos-soak-{}-{backend}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create store dir");
    let dir = dir.to_str().expect("utf-8 temp path").to_string();

    // Phase 1: soak a mixed workload against the sabotaged server.
    let (mut child, addr) = spawn_server(&dir, backend, CHAOS_SEED, WAL_BREAK_AT_HIT);
    let mut client = chaos_client(&addr);

    let mut acked: Vec<String> = Vec::new();
    let mut ops = 0u64;
    let mut hard_errors = 0u64;
    let mut degraded_refusals = 0u64;
    let mut repairs = 0u64;

    for round in 0..ROUNDS {
        let batch: Vec<String> =
            (0..BATCH).map(|i| format!("https://soak.example/{backend}/{round}/{i}")).collect();
        ops += 1;
        match client.insert_batch(&batch) {
            Ok(_) => acked.extend(batch.iter().cloned()),
            Err(ClientError::Degraded(reason)) => {
                // The WAL broke: the store refused the write with a typed
                // DEGRADED. Repair it with an operator SNAPSHOT (rewrites
                // the state and rotates onto a fresh log), then replay.
                degraded_refusals += 1;
                println!("round {round}: write refused ({reason}); repairing via SNAPSHOT");
                ops += 1;
                match client.snapshot() {
                    Ok(info) => {
                        repairs += 1;
                        println!("round {round}: repaired, snapshot seq {}", info.seq);
                    }
                    Err(e) => {
                        hard_errors += 1;
                        println!("round {round}: repair snapshot failed: {e}");
                    }
                }
                ops += 1;
                match client.insert_batch(&batch) {
                    Ok(_) => acked.extend(batch.iter().cloned()),
                    Err(e) => {
                        hard_errors += 1;
                        println!("round {round}: replay after repair failed: {e}");
                    }
                }
            }
            Err(e) => {
                hard_errors += 1;
                println!("round {round}: insert failed after retries: {e}");
            }
        }

        // Read-back of recently acked inserts: an acked write answering
        // `false` would be a lost write, not a false positive.
        if !acked.is_empty() {
            let sample: Vec<&String> = acked.iter().rev().take(200).collect();
            ops += 1;
            match client.query_batch(&sample) {
                Ok(answers) => {
                    assert!(
                        answers.iter().all(|&a| a),
                        "{backend}: an acknowledged insert answered false mid-soak"
                    );
                }
                Err(e) => {
                    hard_errors += 1;
                    println!("round {round}: query failed after retries: {e}");
                }
            }
        }

        // Control-plane traffic rides along like an operator's dashboard.
        if round % 5 == 4 {
            ops += 1;
            match client.stats() {
                Ok(stats) => {
                    if stats.degraded {
                        println!("round {round}: STATS reports degraded read-only mode");
                    }
                }
                Err(e) => {
                    hard_errors += 1;
                    println!("round {round}: stats failed after retries: {e}");
                }
            }
        }
    }

    // No panic: the child must still be alive after the whole soak.
    assert!(
        child.try_wait().expect("probe child").is_none(),
        "{backend}: the server process died during the soak"
    );
    assert!(degraded_refusals > 0, "{backend}: the WAL break never surfaced as DEGRADED");
    assert!(repairs > 0, "{backend}: no SNAPSHOT repair succeeded");

    // Bounded error rate: retries and typed refusals absorb the schedule.
    let error_rate = hard_errors as f64 / ops as f64;
    println!(
        "{backend}: {ops} ops, {hard_errors} hard errors ({:.1}%), \
         {} acked inserts, {} retries, {} reconnects",
        error_rate * 100.0,
        acked.len(),
        client.retries(),
        client.reconnects(),
    );
    assert!(
        error_rate <= MAX_ERROR_RATE,
        "{backend}: hard error rate {error_rate:.3} exceeds the {MAX_ERROR_RATE} budget"
    );

    // Degraded entry and exit must both be on the flight recorder, in
    // that order.
    let trace = client.trace().expect("fetch trace after soak");
    let entered = trace
        .events
        .iter()
        .position(|e| matches!(e.event, TraceEvent::DegradedEntered { .. }))
        .expect("DegradedEntered on the flight recorder");
    let exited = trace
        .events
        .iter()
        .position(|e| matches!(e.event, TraceEvent::DegradedExited { .. }))
        .expect("DegradedExited on the flight recorder");
    assert!(entered < exited, "{backend}: degraded exit recorded before entry");

    // Phase 2: SIGKILL mid-soak state, restart clean from the same
    // directory, and demand every acked insert back.
    drop(client);
    child.kill().expect("SIGKILL child");
    child.wait().expect("reap child");
    println!("{backend}: child killed; recovering from {dir}");

    let (mut child, addr) = spawn_server(&dir, backend, 0, 0);
    let mut client = chaos_client(&addr);
    let answers = client.query_batch(&acked).expect("query acked set after recovery");
    let lost = answers.iter().filter(|&&a| !a).count();
    assert_eq!(lost, 0, "{backend}: {lost} acknowledged inserts lost across kill+recover");

    drop(client);
    child.kill().expect("kill verification child");
    child.wait().expect("reap verification child");
    let _ = std::fs::remove_dir_all(&dir);
    println!("{backend}: chaos soak OK ({} acked inserts survived kill+recover)\n", acked.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--serve") {
        let dir = args.get(i + 1).expect("--serve requires a directory").clone();
        let backend = backend_arg(&args).unwrap_or(Backend::Threaded);
        let fault_seed =
            flag_value(&args, "--fault-seed").map_or(0, |v| v.parse().expect("fault seed"));
        let wal_break =
            flag_value(&args, "--wal-break").map_or(0, |v| v.parse().expect("wal break hit"));
        serve_child(&dir, backend, fault_seed, wal_break);
    }

    // Belt and braces against hangs: CI also wraps this in `timeout`.
    std::thread::spawn(|| {
        std::thread::sleep(Duration::from_secs(300));
        eprintln!("chaos_soak: watchdog fired after 300s, aborting");
        std::process::exit(1);
    });

    let backends: Vec<Backend> = match backend_arg(&args) {
        Some(backend) => vec![backend],
        None => Backend::ALL.into_iter().filter(|b| b.is_supported()).collect(),
    };
    for backend in backends {
        soak(backend);
    }
    println!("chaos soak passed on every backend");
}

//! Section 7 — polluting Squid cache digests.
//!
//! A malicious client fetches crafted URLs through proxy A. Once digests are
//! exchanged, requests through proxy B suffer far more false sibling hits,
//! each costing a wasted round trip.
//!
//! Run with: `cargo run --example cache_digest_attack`

use evilbloom::webcache::{run_squid_experiment, NetworkModel};

fn main() {
    let network = NetworkModel::default();
    let report = run_squid_experiment(51, 100, 5_000, network);
    println!("cache digest size                : {} bits", report.digest_bits);
    println!("false sibling hits (clean)       : {:.1}%", report.clean_false_hit_rate * 100.0);
    println!("false sibling hits (polluted)    : {:.1}%", report.polluted_false_hit_rate * 100.0);
    println!("added latency per false hit      : {:?}", report.wasted_probe_latency);
    println!();
    println!(
        "the paper's LAN testbed reports 40% -> 79% unnecessary hits for the same \
         51 clean + 100 polluting URLs"
    );
}

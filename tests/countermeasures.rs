//! Integration tests for the Section 8 countermeasures, exercised through
//! the `evilbloom` facade: worst-case parameters, digest recycling and keyed
//! hashing all behave as the paper claims when confronted with the actual
//! attack engines.

use evilbloom::analysis::{false_positive, worst_case};
use evilbloom::attacks::craft_polluting_items;
use evilbloom::filters::{BloomFilter, FilterParams};
use evilbloom::hashes::{
    recycled_indexes, IndexStrategy, KirschMitzenmacher, Murmur3_128, RecycledCrypto, SaltedCrypto,
    Sha512,
};
use evilbloom::urlgen::UrlGenerator;

/// Worst-case parameters (k = m/(en)) really do reduce the damage an
/// attacker can cause for the same memory budget.
#[test]
fn worst_case_parameters_limit_pollution_damage() {
    let capacity = 1_500u64;
    let classic = FilterParams::optimal(capacity, 0.01);
    let hardened = FilterParams::worst_case_for_memory(classic.m, capacity);
    assert!(hardened.k < classic.k);

    let generator = UrlGenerator::new("worst-case-compare");
    let mut classic_filter = BloomFilter::new(classic, KirschMitzenmacher::new(Murmur3_128));
    let plan = craft_polluting_items(&classic_filter, &generator, capacity as usize, u64::MAX);
    for url in &plan.items {
        classic_filter.insert(url.as_bytes());
    }

    let mut hardened_filter = BloomFilter::new(hardened, KirschMitzenmacher::new(Murmur3_128));
    let plan = craft_polluting_items(&hardened_filter, &generator, capacity as usize, u64::MAX);
    for url in &plan.items {
        hardened_filter.insert(url.as_bytes());
    }

    let classic_attacked = classic_filter.current_false_positive_probability();
    let hardened_attacked = hardened_filter.current_false_positive_probability();
    assert!(
        hardened_attacked < classic_attacked,
        "worst-case params: {hardened_attacked} vs classic {classic_attacked}"
    );
    // And both agree with the closed-form (nk/m)^k prediction.
    let predicted_classic = worst_case::adversarial_false_positive(classic.m, capacity, classic.k);
    assert!((classic_attacked - predicted_classic).abs() < 0.02);
}

/// Digest recycling produces exactly the same kind of indexes as the salted
/// construction (uniform, in range, deterministic) while consuming far fewer
/// digest invocations.
#[test]
fn recycling_is_equivalent_in_behaviour_but_cheaper_in_calls() {
    let m = 1u64 << 22;
    let k = 10u32;

    // One SHA-512 digest yields 512 / 22 = 23 indexes: a single call covers
    // k = 10, versus 10 calls for the salted construction.
    assert_eq!(evilbloom::hashes::recycle::calls_needed(512, k, m), 1);

    let recycled = RecycledCrypto::new(Box::new(Sha512));
    let salted = SaltedCrypto::new(Box::new(Sha512));
    for item in ["http://a.example/", "http://b.example/", "http://c.example/"] {
        let r = recycled.indexes(item.as_bytes(), k, m);
        let s = salted.indexes(item.as_bytes(), k, m);
        assert_eq!(r.len(), s.len());
        assert!(r.iter().all(|&i| i < m));
        assert!(s.iter().all(|&i| i < m));
        // Deterministic and matching the free function.
        assert_eq!(r, recycled_indexes(&Sha512, item.as_bytes(), k, m));
    }

    // A filter built on recycled indexes behaves like a normal Bloom filter.
    let params = FilterParams::optimal(2_000, 0.01);
    let mut filter = BloomFilter::new(params, RecycledCrypto::new(Box::new(Sha512)));
    for i in 0..2_000 {
        filter.insert(format!("member-{i}").as_bytes());
    }
    for i in 0..2_000 {
        assert!(filter.contains(format!("member-{i}").as_bytes()));
    }
    let fp = (0..10_000).filter(|i| filter.contains(format!("probe-{i}").as_bytes())).count();
    let rate = fp as f64 / 10_000.0;
    assert!(rate < 0.03, "observed false-positive rate {rate}");
}

/// The analysis crate's honest model matches what real filters do across a
/// parameter sweep — the foundation every experiment relies on.
#[test]
fn analytic_model_matches_simulation_across_parameters() {
    for (capacity, target) in [(500u64, 0.05f64), (1_000, 0.01), (2_000, 0.002)] {
        let params = FilterParams::optimal(capacity, target);
        let mut filter = BloomFilter::new(params, KirschMitzenmacher::new(Murmur3_128));
        for i in 0..capacity {
            filter.insert(format!("item-{i}").as_bytes());
        }
        let predicted = false_positive::false_positive_approx(params.m, capacity, params.k);
        let from_fill = filter.current_false_positive_probability();
        assert!(
            (predicted - from_fill).abs() < 0.01,
            "capacity {capacity}: predicted {predicted} vs fill-based {from_fill}"
        );
        let expected_fill = false_positive::expected_fill(params.m, capacity, params.k);
        assert!((filter.fill_ratio() - expected_fill).abs() < 0.02);
    }
}

//! Cross-crate integration tests exercising complete attack scenarios
//! through the `evilbloom` facade.

use evilbloom::attacks::{craft_false_positives, craft_polluting_items, TargetFilter};
use evilbloom::core::{assess, DeploymentSpec, SecureBloomBuilder, StrategyKind};
use evilbloom::filters::{BloomFilter, FilterParams, HardeningLevel};
use evilbloom::hashes::{IndexStrategy, KirschMitzenmacher, Md5Split, Murmur3_128};
use evilbloom::urlgen::UrlGenerator;

/// Figure 3 end to end: crafting and inserting the adversarial workload
/// really does push the measured false-positive rate to the predicted
/// (nk/m)^k while the honest workload stays near the design value.
#[test]
fn figure3_end_to_end() {
    let params = FilterParams::explicit(3200, 4, 600);

    let mut honest = BloomFilter::new(params, KirschMitzenmacher::new(Murmur3_128));
    for i in 0..600 {
        honest.insert(format!("honest-{i}").as_bytes());
    }
    let honest_fpp = honest.current_false_positive_probability();
    assert!((honest_fpp - 0.077).abs() < 0.03, "honest fpp {honest_fpp}");

    let mut attacked = BloomFilter::new(params, KirschMitzenmacher::new(Murmur3_128));
    let plan = craft_polluting_items(&attacked, &UrlGenerator::new("fig3"), 600, u64::MAX);
    assert_eq!(plan.items.len(), 600);
    for url in &plan.items {
        attacked.insert(url.as_bytes());
    }
    let attacked_fpp = attacked.current_false_positive_probability();
    assert!((attacked_fpp - 0.316).abs() < 0.01, "adversarial fpp {attacked_fpp}");
    assert!(attacked_fpp > 3.0 * honest_fpp);

    // The measured rate on random probes agrees with the fill-based value.
    let probes = 20_000u32;
    let hits = (0..probes).filter(|i| attacked.contains(format!("probe-{i}").as_bytes())).count();
    let measured = f64::from(hits as u32) / f64::from(probes);
    assert!((measured - attacked_fpp).abs() < 0.02, "measured {measured}");
}

/// The deployment-assessment API, the attack engine and the hardening
/// builder agree with each other: what `assess` predicts, the attack
/// achieves, and the hardened filter prevents.
#[test]
fn assessment_attack_and_hardening_agree() {
    let spec = DeploymentSpec {
        capacity: 2_000,
        target_fpp: 0.01,
        strategy: StrategyKind::MurmurKirschMitzenmacher,
    };
    let report = assess(&spec);

    // Attack the predicted deployment.
    let mut filter = BloomFilter::new(report.params, spec.strategy.instantiate_for_filter());
    let plan = craft_polluting_items(
        &filter,
        &UrlGenerator::new("assessed"),
        spec.capacity as usize,
        u64::MAX,
    );
    for url in &plan.items {
        filter.insert(url.as_bytes());
    }
    let achieved = filter.current_false_positive_probability();
    assert!((achieved - report.adversarial_fpp).abs() < 0.02, "achieved {achieved}");

    // The keyed filter with the same capacity/target keeps its design FPP
    // under the same (now ineffective) adversarial workload.
    let mut hardened = SecureBloomBuilder::new(spec.capacity, spec.target_fpp)
        .level(HardeningLevel::KeyedSipHash)
        .build();
    for url in &plan.items {
        hardened.insert(url.as_bytes());
    }
    let hardened_fpp = hardened.current_false_positive_probability();
    assert!(hardened_fpp < 2.5 * report.honest_fpp, "hardened fpp {hardened_fpp}");
}

/// Helper: `StrategyKind::instantiate` returns a boxed strategy; adapt it for
/// `BloomFilter::new` which needs a concrete `IndexStrategy` value.
trait InstantiateForFilter {
    fn instantiate_for_filter(&self) -> BoxedStrategy;
}

/// Newtype adapter so a boxed strategy can be used where a value is expected.
struct BoxedStrategy(Box<dyn IndexStrategy>);

impl IndexStrategy for BoxedStrategy {
    fn indexes(&self, item: &[u8], k: u32, m: u64) -> Vec<u64> {
        self.0.indexes(item, k, m)
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn is_predictable(&self) -> bool {
        self.0.is_predictable()
    }
}

impl InstantiateForFilter for StrategyKind {
    fn instantiate_for_filter(&self) -> BoxedStrategy {
        BoxedStrategy(self.instantiate())
    }
}

/// A query-only adversary can forge false positives against a Squid-style
/// MD5-split filter exactly as against any other unkeyed strategy.
#[test]
fn forgery_works_across_strategies() {
    for (name, strategy) in [
        ("murmur-km", StrategyKind::MurmurKirschMitzenmacher),
        ("salted-sha", StrategyKind::SaltedSha),
        ("md5-split", StrategyKind::Md5Split),
        ("recycled-sha512", StrategyKind::RecycledSha512),
    ] {
        let mut filter =
            BloomFilter::new(FilterParams::optimal(1_000, 0.02), strategy.instantiate_for_filter());
        for i in 0..1_000 {
            filter.insert(format!("member-{i}").as_bytes());
        }
        let outcome = craft_false_positives(&filter, &UrlGenerator::new(name), 5, 100_000_000);
        assert_eq!(outcome.items.len(), 5, "{name}");
        for item in &outcome.items {
            assert!(filter.contains(item.as_bytes()), "{name}: {item}");
        }
    }
    // Direct sanity check that the Squid derivation is the one being used.
    let squid_like = Md5Split;
    assert_eq!(squid_like.indexes(b"GET http://x/", 4, 762).len(), 4);
}

/// The TargetFilter view exposed to attacks stays consistent with the public
/// filter API across the facade.
#[test]
fn target_view_matches_public_api() {
    let mut filter =
        BloomFilter::new(FilterParams::optimal(500, 0.01), KirschMitzenmacher::new(Murmur3_128));
    for i in 0..500 {
        filter.insert(format!("u{i}").as_bytes());
    }
    let view: &dyn TargetFilter = &filter;
    assert_eq!(view.weight(), filter.hamming_weight());
    assert_eq!(view.m(), filter.m());
    assert_eq!(view.k(), filter.k());
    assert!((view.fill_ratio() - filter.fill_ratio()).abs() < 1e-12);
}

//! Vendored, dependency-free subset of the `rand` crate API.
//!
//! The build environment has no network access, so this workspace ships the
//! small slice of `rand` it actually uses: [`RngCore`], [`Rng`],
//! [`SeedableRng`] and [`rngs::StdRng`]. `StdRng` here is xoshiro256++
//! seeded through SplitMix64 — not the CSPRNG real `rand` uses, but
//! statistically solid and fully deterministic under `seed_from_u64`, which
//! is what the experiments and tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of randomness (subset of `rand::RngCore`).
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be produced uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                // Rejection sampling over the widest zone divisible by span,
                // so the result is exactly uniform.
                let zone = u64::MAX - u64::MAX.wrapping_rem(span);
                loop {
                    let draw = rng.next_u64();
                    if draw < zone {
                        return low.wrapping_add((draw % span) as $t);
                    }
                }
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformInt for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with empty range");
        low + f64::sample(rng) * (high - low)
    }
}

/// Destinations accepted by [`Rng::fill`].
pub trait Fill {
    /// Overwrites `self` with random data from `rng`.
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// High-level convenience methods (subset of `rand::Rng`), blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` uniformly at random.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `[range.start, range.end)`.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.try_fill(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole state derives from `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator seeded from OS entropy (`/dev/urandom`), falling
    /// back to time + allocation-address jitter when the device is
    /// unavailable.
    ///
    /// The whole state derives from a 64-bit seed, so even with OS entropy
    /// this bounds an attacker's search at 2^64 — weaker than real `rand`'s
    /// CSPRNG-backed `StdRng`. Secret keys drawn through this path (e.g. the
    /// hardened-filter builder) inherit that bound; deployments that need
    /// full 256-bit keys should supply key bytes from a real CSPRNG instead.
    fn from_entropy() -> Self {
        use std::io::Read;
        let mut buf = [0u8; 8];
        let urandom = std::fs::File::open("/dev/urandom").and_then(|mut f| f.read_exact(&mut buf));
        if urandom.is_ok() {
            return Self::seed_from_u64(u64::from_le_bytes(buf));
        }
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0xdead_beef);
        let unique = Box::new(0u8);
        let addr = std::ptr::from_ref(&*unique) as u64;
        Self::seed_from_u64(nanos ^ addr.rotate_left(32))
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded via SplitMix64. Deterministic under
    /// [`SeedableRng::seed_from_u64`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn fill_bytes_covers_unaligned_tails() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn f64_samples_lie_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}

//! Vendored, dependency-free subset of the `criterion` benchmarking API.
//!
//! The build environment has no network access, so this workspace ships the
//! slice of criterion its benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a plain
//! warm-up + timed-samples loop reporting the mean and best time per
//! iteration; there is no statistical analysis or HTML report.
//!
//! Beyond the API-compatible subset, the shim adds what the workspace's
//! perf-lab runner needs for machine-readable, regression-gated results:
//!
//! * [`measure`] — a warm-up + median-of-N timing primitive returning a
//!   [`Measurement`] instead of printing;
//! * [`report`] — a dependency-free JSON value type (serializer *and*
//!   parser) used to emit `BENCH_<n>.json` reports and to read the committed
//!   baseline for the CI regression guard.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timing configuration for [`measure`].
#[derive(Debug, Clone, Copy)]
pub struct MeasureOptions {
    /// Warm-up time (also used to discover the per-iteration cost).
    pub warm_up: Duration,
    /// Number of timed samples; the reported figure is their median.
    pub samples: usize,
    /// Total time budget for the timed samples.
    pub measurement_time: Duration,
}

impl Default for MeasureOptions {
    fn default() -> Self {
        MeasureOptions {
            warm_up: Duration::from_millis(200),
            samples: 15,
            measurement_time: Duration::from_millis(1500),
        }
    }
}

impl MeasureOptions {
    /// A cheap configuration for CI smoke runs (`--quick` in the perf
    /// runner): fewer samples, shorter budget, still median-filtered.
    pub fn quick() -> Self {
        MeasureOptions {
            warm_up: Duration::from_millis(50),
            samples: 7,
            measurement_time: Duration::from_millis(350),
        }
    }
}

/// The result of one [`measure`] call: per-operation timing with the median
/// over samples as the headline figure (robust to scheduler noise, unlike
/// the mean).
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Workload identifier.
    pub id: String,
    /// Median time per operation across samples, in nanoseconds.
    pub ns_per_op_median: f64,
    /// Mean time per operation across samples, in nanoseconds.
    pub ns_per_op_mean: f64,
    /// Best (minimum) sample, in nanoseconds per operation.
    pub ns_per_op_best: f64,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Iterations per sample (chosen during warm-up).
    pub iters_per_sample: u64,
}

impl Measurement {
    /// Operations per second implied by the median.
    pub fn ops_per_sec(&self) -> f64 {
        1e9 / self.ns_per_op_median
    }
}

/// Times `routine` with a warm-up phase followed by `opts.samples` timed
/// samples and returns the median/mean/best nanoseconds per call. The
/// warm-up discovers how many calls fit in one sample so each sample is long
/// enough to be timer-accurate.
pub fn measure<O, F: FnMut() -> O>(id: &str, opts: &MeasureOptions, mut routine: F) -> Measurement {
    // Warm-up: also discovers roughly how long one call takes.
    let warm_up_start = Instant::now();
    let mut warm_up_iters = 0u64;
    let mut batch = 1u64;
    while warm_up_start.elapsed() < opts.warm_up {
        for _ in 0..batch {
            black_box(routine());
        }
        warm_up_iters += batch;
        batch = (batch * 2).min(1 << 20);
    }
    let per_iter = warm_up_start.elapsed().as_secs_f64() / warm_up_iters.max(1) as f64;

    let samples = opts.samples.max(1);
    let sample_time = opts.measurement_time.as_secs_f64() / samples as f64;
    let iters_per_sample = ((sample_time / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

    let mut per_op_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters_per_sample {
            black_box(routine());
        }
        per_op_ns.push(start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
    }
    per_op_ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are comparable"));
    let median = if samples % 2 == 1 {
        per_op_ns[samples / 2]
    } else {
        (per_op_ns[samples / 2 - 1] + per_op_ns[samples / 2]) / 2.0
    };
    Measurement {
        id: id.to_string(),
        ns_per_op_median: median,
        ns_per_op_mean: per_op_ns.iter().sum::<f64>() / samples as f64,
        ns_per_op_best: per_op_ns[0],
        samples,
        iters_per_sample,
    }
}

/// Top-level benchmark driver, handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    defaults: Settings,
}

#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            defaults: Settings {
                sample_size: 10,
                measurement_time: Duration::from_millis(500),
                warm_up_time: Duration::from_millis(100),
            },
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        let settings = self.defaults;
        BenchmarkGroup { _criterion: self, name, settings, throughput: None }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), self.defaults, None, f);
        self
    }
}

/// A group of benchmarks sharing settings and a common name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.settings.sample_size = n;
        self
    }

    /// Sets the total time spent on timed samples per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Declares the amount of work per iteration, enabling throughput output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.settings, self.throughput, f);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.settings, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark: a function name plus a
/// parameter rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Work performed per iteration, used to derive throughput figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing harness passed to every benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it for the number of iterations the harness
    /// decided on for the current sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(label: &str, settings: Settings, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: also discovers roughly how long one iteration takes.
    let warm_up_start = Instant::now();
    let mut warm_up_iters = 0u64;
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    while warm_up_start.elapsed() < settings.warm_up_time {
        f(&mut bencher);
        warm_up_iters += bencher.iters;
        bencher.iters = (bencher.iters * 2).min(1 << 20);
    }
    let per_iter = warm_up_start.elapsed().as_secs_f64() / warm_up_iters.max(1) as f64;

    // Size each sample so all samples together fill the measurement time.
    let sample_time = settings.measurement_time.as_secs_f64() / settings.sample_size as f64;
    let iters_per_sample = ((sample_time / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

    let mut best = f64::INFINITY;
    let mut total = 0.0f64;
    for _ in 0..settings.sample_size {
        bencher.iters = iters_per_sample;
        f(&mut bencher);
        let per = bencher.elapsed.as_secs_f64() / iters_per_sample as f64;
        best = best.min(per);
        total += per;
    }
    let mean = total / settings.sample_size as f64;

    let mut line = format!(
        "{label:<60} mean {:>12}  best {:>12}  ({} samples x {} iters)",
        format_time(mean),
        format_time(best),
        settings.sample_size,
        iters_per_sample,
    );
    if let Some(tp) = throughput {
        let (amount, unit) = match tp {
            Throughput::Bytes(n) => (n as f64, "B"),
            Throughput::Elements(n) => (n as f64, "elem"),
        };
        let rate = amount / mean;
        line.push_str(&format!("  {:.1} M{unit}/s", rate / 1e6));
    }
    println!("{line}");
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a function running a list of benchmark targets with a default
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-selftest");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(10));
        group.warm_up_time(Duration::from_millis(2));
        let mut runs = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_id_renders_both_parts() {
        assert_eq!(BenchmarkId::new("forge", "f=2^-5").label, "forge/f=2^-5");
        assert_eq!(BenchmarkId::from_parameter(42).label, "42");
    }

    #[test]
    fn measure_returns_ordered_statistics() {
        let opts = MeasureOptions {
            warm_up: Duration::from_millis(5),
            samples: 5,
            measurement_time: Duration::from_millis(25),
        };
        let mut counter = 0u64;
        let m = measure("selftest", &opts, || {
            counter = counter.wrapping_add(1);
            counter
        });
        assert_eq!(m.id, "selftest");
        assert_eq!(m.samples, 5);
        assert!(m.iters_per_sample >= 1);
        assert!(m.ns_per_op_best > 0.0);
        assert!(m.ns_per_op_best <= m.ns_per_op_median);
        assert!(m.ns_per_op_median <= m.ns_per_op_mean * 5.0, "median wildly above mean");
        assert!(m.ops_per_sec() > 0.0);
        assert!(counter > 0);
    }

    #[test]
    fn quick_options_are_cheaper_than_default() {
        let quick = MeasureOptions::quick();
        let full = MeasureOptions::default();
        assert!(quick.samples < full.samples);
        assert!(quick.measurement_time < full.measurement_time);
    }
}

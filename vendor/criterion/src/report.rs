//! Machine-readable benchmark reporting: a dependency-free JSON value type
//! with a serializer and a parser.
//!
//! The build environment has no network access, so `serde`/`serde_json` are
//! unavailable; the perf runner in `evilbloom-bench` needs both directions —
//! it *writes* `BENCH_<n>.json` reports and *reads* the committed
//! `bench/baseline.json` for the regression guard. This module provides the
//! minimal JSON slice both sides use: objects (with preserved key order),
//! arrays, strings, finite numbers, booleans and null.

use std::fmt::Write as _;

/// A JSON value. Object keys preserve insertion order so reports are stable
/// and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (serialized in shortest-roundtrip form).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks a key up in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline — the
    /// format of every `BENCH_<n>.json` this workspace emits.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Returns a descriptive error (with byte
    /// offset) on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    assert!(n.is_finite(), "JSON numbers must be finite, got {n}");
    if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {pos}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                pairs.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed by our reports.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_report_shaped_document() {
        let doc = Json::obj(vec![
            ("schema_version", Json::Num(1.0)),
            ("suite", Json::Str("evilbloom-perf".to_string())),
            ("quick", Json::Bool(true)),
            (
                "workloads",
                Json::Arr(vec![Json::obj(vec![
                    ("id", Json::Str("hash/murmur3_128".to_string())),
                    ("ns_per_op_median", Json::Num(13.75)),
                    ("note", Json::Null),
                ])]),
            ),
        ]);
        let text = doc.to_pretty();
        let parsed = Json::parse(&text).expect("round trip");
        assert_eq!(parsed, doc);
        let ns = parsed.get("workloads").and_then(|w| w.as_array()).expect("array")[0]
            .get("ns_per_op_median")
            .and_then(Json::as_f64);
        assert_eq!(ns, Some(13.75));
    }

    #[test]
    fn integers_serialize_without_decimal_point() {
        assert_eq!(Json::Num(42.0).to_pretty(), "42\n");
        assert_eq!(Json::Num(1.5).to_pretty(), "1.5\n");
    }

    #[test]
    fn strings_escape_control_characters() {
        let text = Json::Str("a\"b\\c\nd\u{1}".to_string()).to_pretty();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\u0001\"\n");
        assert_eq!(Json::parse(&text).expect("parse"), Json::Str("a\"b\\c\nd\u{1}".to_string()));
    }

    #[test]
    fn parses_nested_arrays_and_numbers() {
        let parsed = Json::parse("[1, -2.5, 3e2, [true, false, null]]").expect("parse");
        let items = parsed.as_array().expect("array");
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].as_f64(), Some(-2.5));
        assert_eq!(items[2].as_f64(), Some(300.0));
        assert_eq!(items[3].as_array().map(|a| a.len()), Some(3));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("{1: 2}").is_err());
    }

    #[test]
    fn object_lookup_preserves_first_match() {
        let doc = Json::parse("{\"a\": 1, \"b\": 2}").expect("parse");
        assert_eq!(doc.get("b").and_then(Json::as_f64), Some(2.0));
        assert!(doc.get("missing").is_none());
    }
}

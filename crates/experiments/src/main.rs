//! Command-line entry point of the reproduction harness.
//!
//! ```text
//! evilbloom-experiments [--paper] [EXPERIMENT...]
//! ```
//!
//! Without arguments every experiment runs at quick scale. `--paper` switches
//! to paper-scale parameters where practical. Individual experiments:
//! `fig3`, `table1`, `fig5`, `fig6`, `scrapy`, `fig8`, `dablooms-overflow`,
//! `squid`, `fig9`, `table2`, `worstcase`, `all`.

use std::io::Write;

use evilbloom_experiments as exp;

/// Prints a report, exiting quietly if stdout has gone away (e.g. the output
/// is piped into `head`) instead of panicking with a broken-pipe backtrace.
/// Other write failures (disk full, I/O error) still exit nonzero.
fn emit(report: &str) {
    if let Err(error) = writeln!(std::io::stdout(), "{report}") {
        if error.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("failed to write report: {error}");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper = args.iter().any(|a| a == "--paper" || a == "--full");
    let scale = if paper { exp::Scale::Paper } else { exp::Scale::Quick };
    let selected: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();

    let run = |name: &str| -> Option<String> {
        match name {
            "fig3" => Some(exp::fig3_pollution_curve()),
            "table1" => Some(exp::table1_attack_probabilities(scale)),
            "fig5" => Some(exp::fig5_polluting_url_cost(scale)),
            "fig6" => Some(exp::fig6_ghost_url_cost(scale)),
            "scrapy" => Some(exp::scrapy_attack()),
            "fig8" => Some(exp::fig8_dablooms_pollution()),
            "dablooms-overflow" => Some(exp::dablooms_overflow()),
            "squid" => Some(exp::squid_attack(scale)),
            "fig9" => Some(exp::fig9_hash_domain()),
            "table2" => Some(exp::table2_query_times(scale)),
            "worstcase" => Some(exp::worst_case_parameters()),
            "all" => Some(exp::run_all(scale)),
            _ => None,
        }
    };

    if selected.is_empty() {
        emit(&exp::run_all(scale));
        return;
    }
    for name in selected {
        match run(name) {
            Some(report) => emit(&report),
            None => {
                eprintln!("unknown experiment: {name}");
                eprintln!(
                    "available: fig3 table1 fig5 fig6 scrapy fig8 dablooms-overflow squid fig9 table2 worstcase all"
                );
                std::process::exit(2);
            }
        }
    }
}

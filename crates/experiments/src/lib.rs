//! # evilbloom-experiments
//!
//! Reproduction harness for every table and figure in the evaluation of
//! *"The Power of Evil Choices in Bloom Filters"*. Each `figN` / `tableN`
//! function computes the series/rows the paper reports and returns them as a
//! plain-text table; the `evilbloom-experiments` binary prints them.
//!
//! | Function | Paper artefact |
//! |---|---|
//! | [`fig3_pollution_curve`] | Fig. 3 — false-positive probability vs insertions (m=3200, k=4) |
//! | [`table1_attack_probabilities`] | Table 1 — attack success probabilities (analytic + Monte-Carlo) |
//! | [`fig5_polluting_url_cost`] | Fig. 5 — cost of forging polluting URLs for several target `f` |
//! | [`fig6_ghost_url_cost`] | Fig. 6 — cost of forging ghost URLs vs filter occupation |
//! | [`scrapy_attack`] | Section 5 — blinding the spider + ghost pages (Fig. 7) |
//! | [`fig8_dablooms_pollution`] | Fig. 8 — compound FPP of Dablooms under partial/full pollution |
//! | [`dablooms_overflow`] | Section 6.2 — "empty but full" counter-overflow attack |
//! | [`squid_attack`] | Section 7 — cache-digest pollution between sibling proxies |
//! | [`fig9_hash_domain`] | Fig. 9 — digest bits required vs filter size |
//! | [`table2_query_times`] | Table 2 — naive vs recycling query cost per hash function |
//! | [`worst_case_parameters`] | Section 8.1 — worst-case parameter ratios |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::Instant;

use evilbloom_analysis::{attack_probability, false_positive, hash_domain, scalable, worst_case};
use evilbloom_attacks::pollution::insertion_sweep;
use evilbloom_attacks::{craft_false_positives, craft_polluting_items};
use evilbloom_filters::{BloomFilter, CountingBloomFilter, FilterParams};
use evilbloom_hashes::{
    CryptoHash, IndexStrategy, KirschMitzenmacher, Md5, Murmur2_32, Murmur3_128, RecycledCrypto,
    SaltedCrypto, SaltedHashes, Sha1, Sha256, Sha384, Sha512, SipHash24, SipKey,
};
use evilbloom_urlgen::UrlGenerator;

/// Scale knob: `Quick` keeps every experiment under a few seconds (used by
/// tests and CI); `Paper` uses the paper's parameters where practical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced-scale run (default).
    Quick,
    /// Paper-scale run (slower).
    Paper,
}

/// Figure 3: false-positive probability as a function of inserted items for
/// the honest, fully adversarial and partial-attack scenarios
/// (m = 3200, k = 4, threshold f_opt = 0.077).
pub fn fig3_pollution_curve() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Figure 3 — m=3200, k=4, f_opt=0.077");
    let _ =
        writeln!(out, "{:>8} {:>12} {:>12} {:>12}", "n", "honest_f", "partial_f", "adversarial_f");
    for point in insertion_sweep(3200, 4, 600, 50, 400) {
        let _ = writeln!(
            out,
            "{:>8} {:>12.4} {:>12.4} {:>12.4}",
            point.inserted, point.honest, point.partial, point.adversarial
        );
    }
    let threshold = 0.077;
    let _ = writeln!(
        out,
        "threshold {:.3}: honest after {} insertions, adversarial after {} insertions",
        threshold,
        worst_case::honest_insertions_to_reach(3200, 4, threshold),
        worst_case::insertions_to_reach(3200, 4, threshold),
    );
    out
}

/// Table 1: analytic success probabilities of each attack, next to a
/// Monte-Carlo estimate measured against a real filter.
pub fn table1_attack_probabilities(scale: Scale) -> String {
    let (m, k) = (4096u64, 4u32);
    let trials: u64 = match scale {
        Scale::Quick => 20_000,
        Scale::Paper => 200_000,
    };
    // Load the filter to half weight with random items.
    let mut filter = BloomFilter::new(
        FilterParams::explicit(m, k, m / (2 * u64::from(k))),
        KirschMitzenmacher::new(Murmur3_128),
    );
    let mut i = 0u64;
    while filter.hamming_weight() < m / 2 {
        filter.insert(format!("member-{i}").as_bytes());
        i += 1;
    }
    let w = filter.hamming_weight();

    let mut pollution_hits = 0u64;
    let mut forgery_hits = 0u64;
    let mut deletion_hits = 0u64;
    let victim_cells = filter.indexes(b"victim-item");
    for t in 0..trials {
        let candidate = format!("probe-{t}");
        let idx = filter.indexes(candidate.as_bytes());
        let distinct: std::collections::HashSet<u64> = idx.iter().copied().collect();
        if distinct.len() == idx.len() && idx.iter().all(|&b| !filter.is_set(b)) {
            pollution_hits += 1;
        }
        if idx.iter().all(|&b| filter.is_set(b)) {
            forgery_hits += 1;
        }
        if idx.iter().any(|b| victim_cells.contains(b)) {
            deletion_hits += 1;
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Table 1 — attack success probabilities (m={m}, k={k}, W={w}, {trials} trials)"
    );
    let _ = writeln!(out, "{:<36} {:>14} {:>14}", "attack", "analytic", "measured");
    let _ = writeln!(
        out,
        "{:<36} {:>14.3e} {:>14}",
        "second pre-image (128-bit hash)",
        attack_probability::second_preimage_hash(128),
        "-"
    );
    let _ = writeln!(
        out,
        "{:<36} {:>14.3e} {:>14}",
        "second pre-image (Bloom)",
        attack_probability::second_preimage_bloom(m, k),
        "-"
    );
    let _ = writeln!(
        out,
        "{:<36} {:>14.3e} {:>14.3e}",
        "pollution",
        attack_probability::pollution_exact(m, w, k),
        pollution_hits as f64 / trials as f64
    );
    let _ = writeln!(
        out,
        "{:<36} {:>14.3e} {:>14.3e}",
        "false-positive forgery",
        attack_probability::false_positive_forgery(m, w, k),
        forgery_hits as f64 / trials as f64
    );
    let _ = writeln!(
        out,
        "{:<36} {:>14.3e} {:>14.3e}",
        "deletion (index overlap)",
        attack_probability::deletion_exact_overlap(m, k),
        deletion_hits as f64 / trials as f64
    );
    out
}

/// Figure 5: wall-clock cost of forging polluting URLs for pyBloom-style
/// filters sized for `n` items at several target false-positive rates.
///
/// The paper forges 10^6 URLs; the quick scale forges a fixed fraction of
/// the filter capacity so the run completes in seconds while preserving the
/// shape (cost grows steeply as `f` shrinks, i.e. as `k` grows).
pub fn fig5_polluting_url_cost(scale: Scale) -> String {
    let (capacity, batch): (u64, usize) = match scale {
        Scale::Quick => (20_000, 2_000),
        Scale::Paper => (1_000_000, 100_000),
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Figure 5 — cost of forging {batch} polluting URLs (filter capacity {capacity})"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>6} {:>12} {:>14} {:>12}",
        "f", "k", "attempts", "attempts/URL", "seconds"
    );
    for exponent in [5i32, 10, 15, 20] {
        let f = 2f64.powi(-exponent);
        let params = FilterParams::optimal(capacity, f);
        let filter = BloomFilter::new(params, SaltedCrypto::new(Box::new(Sha512)));
        let generator = UrlGenerator::new(&format!("fig5-{exponent}"));
        let start = Instant::now();
        let plan = craft_polluting_items(&filter, &generator, batch, u64::MAX);
        let elapsed = start.elapsed();
        let _ = writeln!(
            out,
            "{:>10} {:>6} {:>12} {:>14.2} {:>12.3}",
            format!("2^-{exponent}"),
            params.k,
            plan.stats.attempts,
            plan.stats.attempts_per_accepted(),
            elapsed.as_secs_f64()
        );
    }
    out
}

/// Figure 6: wall-clock cost of forging ghost (false-positive) URLs as a
/// function of the filter occupation.
pub fn fig6_ghost_url_cost(scale: Scale) -> String {
    // The attempt budget bounds the worst cell (low occupation at f = 2^-10,
    // where a ghost needs ~10^9 candidates in expectation): quick scale caps
    // the search early and reports the attempts/URL trend instead of hanging
    // for minutes on a cell that cannot succeed.
    let (capacity, ghosts, max_attempts): (u64, usize, u64) = match scale {
        Scale::Quick => (20_000, 5, 1_000_000),
        Scale::Paper => (1_000_000, 20, 30_000_000),
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Figure 6 — cost of forging {ghosts} ghost URLs (filter capacity {capacity})"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>12} {:>14} {:>12}",
        "f", "occupation", "attempts", "attempts/URL", "seconds"
    );
    for exponent in [5i32, 10] {
        let f = 2f64.powi(-exponent);
        let params = FilterParams::optimal(capacity, f);
        for occupation in [20u64, 40, 60, 80, 100] {
            let mut filter = BloomFilter::new(params, SaltedCrypto::new(Box::new(Sha512)));
            let load = capacity * occupation / 100;
            for i in 0..load {
                filter.insert(format!("member-{i}").as_bytes());
            }
            let generator = UrlGenerator::new(&format!("fig6-{exponent}-{occupation}"));
            let start = Instant::now();
            let outcome = craft_false_positives(&filter, &generator, ghosts, max_attempts);
            let elapsed = start.elapsed();
            let _ = writeln!(
                out,
                "{:>10} {:>11}% {:>12} {:>14.1} {:>12.3}",
                format!("2^-{exponent}"),
                occupation,
                outcome.stats.attempts,
                outcome.stats.attempts_per_accepted(),
                elapsed.as_secs_f64()
            );
        }
    }
    out
}

/// Section 5 / Figure 7: the Scrapy pollution (blinding) and ghost-page
/// attacks run end to end on the crawler simulation.
pub fn scrapy_attack() -> String {
    use evilbloom_webspider::*;

    let mut out = String::new();
    let _ = writeln!(out, "# Section 5 — blinding a Bloom-filter-backed spider");

    let capacity = 2_000u64;
    let mut crawler = Crawler::new(DedupStore::bloom(capacity, 0.05));
    let farm = build_link_farm(&crawler, "evil.example", 1_800);
    let (mut graph, honest_root) = WebGraph::honest_site("victim.example", 400);
    install_link_farm(&mut graph, &farm);
    let mut root_links = farm.crafted_urls.clone();
    root_links.push(honest_root.clone());
    graph.add_page(farm.root.clone(), root_links);

    let report = crawler.crawl(&graph, &farm.root, 1_000_000);
    let fill = crawler.store().filter().expect("bloom store").fill_ratio();
    let _ = writeln!(out, "crafted URLs on the adversary's page : {}", farm.crafted_urls.len());
    let _ = writeln!(out, "forgery attempts                     : {}", farm.stats.attempts);
    let _ = writeln!(out, "pages fetched                        : {}", report.fetched);
    let _ = writeln!(out, "honest pages wrongly skipped         : {}", report.wrongly_skipped);
    let _ = writeln!(out, "filter fill after the attack         : {fill:.3}");

    // Ghost pages (Figure 7).
    let mut crawler = Crawler::new(DedupStore::bloom(1_000, 0.05));
    let (mut graph, root) = WebGraph::honest_site("honest.example", 800);
    crawler.crawl(&graph, &root, 1_000_000);
    let hidden = build_hidden_site(&crawler, &mut graph, "evil.example", 3, 4);
    crawler.crawl(&graph, &hidden.decoys[0], 1_000_000);
    let hidden_ok = hidden.ghosts.iter().filter(|g| !crawler.fetched_urls().contains(*g)).count();
    let _ =
        writeln!(out, "ghost pages hidden from the crawler  : {hidden_ok}/{}", hidden.ghosts.len());
    out
}

/// Figure 8: compound false-positive probability of a Dablooms stack
/// (λ=10, δ=10 000, f0=0.01, r=0.9) when the last `i` sub-filters are
/// polluted, for i = 0 (no attack) to 10 (full attack).
pub fn fig8_dablooms_pollution() -> String {
    let (f0, r, lambda) = (0.01, 0.9, 10u32);
    let attacked = scalable::attacked_sub_filter_probability(10_000, f0, 7);
    let mut out = String::new();
    let _ = writeln!(out, "# Figure 8 — Dablooms pollution (λ=10, δ=10000, f0=0.01, r=0.9)");
    let _ = writeln!(out, "per-sub-filter probability once polluted: {attacked:.4}");
    let _ = writeln!(out, "{:>18} {:>10}", "polluted filters", "F");
    let _ = writeln!(out, "{:>18} {:>10.4}", 0, scalable::compound_unattacked(f0, r, lambda));
    for polluted in 1..=lambda {
        let compound = scalable::compound_with_last_polluted(f0, r, lambda, polluted, attacked);
        let _ = writeln!(out, "{:>18} {:>10.4}", polluted, compound);
    }
    let _ = writeln!(
        out,
        "{:>18} {:>10.4}  (full attack)",
        lambda,
        scalable::compound_fully_polluted(lambda, attacked)
    );
    out
}

/// Section 6.2: the counter-overflow attack leaves a wrapping counting
/// filter "full but empty".
pub fn dablooms_overflow() -> String {
    use evilbloom_attacks::deletion::plan_counter_overflow;
    use evilbloom_filters::counting::OverflowPolicy;
    use std::sync::Arc;

    let strategy = Arc::new(KirschMitzenmacher::new(Murmur3_128));
    let mut filter = CountingBloomFilter::with_policy(
        FilterParams::explicit(256, 2, 32),
        strategy,
        4,
        OverflowPolicy::Wrap,
    );
    let generator = UrlGenerator::new("overflow-experiment");
    let plan = plan_counter_overflow(&filter, 1, 8, &generator, u64::MAX);
    for item in &plan.items {
        filter.insert(item.as_bytes());
    }
    let detected = plan.items.iter().filter(|i| filter.contains(i.as_bytes())).count();

    let mut out = String::new();
    let _ = writeln!(out, "# Section 6.2 — counter-overflow (wrap-around) attack");
    let _ = writeln!(out, "crafted insertions            : {}", plan.items.len());
    let _ = writeln!(out, "forgery attempts              : {}", plan.stats.attempts);
    let _ = writeln!(out, "cells targeted                : {:?}", plan.target_cells);
    let _ = writeln!(out, "insertion counter afterwards  : {}", filter.inserted());
    let _ = writeln!(out, "occupied cells afterwards     : {}", filter.occupied_cells());
    let _ = writeln!(out, "crafted items still detected  : {detected}/{}", plan.items.len());
    out
}

/// Section 7: the Squid cache-digest pollution experiment (51 clean URLs,
/// 100 polluting URLs, probes through the sibling proxy).
pub fn squid_attack(scale: Scale) -> String {
    use evilbloom_webcache::{run_squid_experiment, NetworkModel};
    let probes = match scale {
        Scale::Quick => 2_000,
        Scale::Paper => 10_000,
    };
    let report = run_squid_experiment(51, 100, probes, NetworkModel::default());
    let mut out = String::new();
    let _ = writeln!(out, "# Section 7 — Squid cache-digest pollution");
    let _ = writeln!(out, "digest size                      : {} bits", report.digest_bits);
    let _ = writeln!(
        out,
        "false sibling hits (clean)       : {:.1}%",
        report.clean_false_hit_rate * 100.0
    );
    let _ = writeln!(
        out,
        "false sibling hits (polluted)    : {:.1}%",
        report.polluted_false_hit_rate * 100.0
    );
    let _ = writeln!(out, "added latency per false hit      : {:?}", report.wasted_probe_latency);
    let _ = writeln!(out, "(paper reports 40% -> 79% on its 100-query LAN testbed)");
    out
}

/// Figure 9: digest bits required (`k·⌈log2 m⌉`) as a function of the filter
/// size for the paper's four target probabilities, with the SHA thresholds.
pub fn fig9_hash_domain() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Figure 9 — domain of application of hash functions");
    let _ = writeln!(
        out,
        "{:>10} {:>10} {:>10} {:>10} {:>10}",
        "m (MB)", "f=2^-5", "f=2^-10", "f=2^-15", "f=2^-20"
    );
    for row in hash_domain::figure9_series(1024, 128) {
        let _ = writeln!(
            out,
            "{:>10} {:>10} {:>10} {:>10} {:>10}",
            row.m_megabytes, row.bits_f5, row.bits_f10, row.bits_f15, row.bits_f20
        );
    }
    for (name, bits) in hash_domain::FIGURE9_DIGEST_SIZES {
        let one_gb = 8u64 * 1024 * 1024 * 1024;
        let covered: Vec<String> = [5i32, 10, 15, 20]
            .iter()
            .filter(|e| hash_domain::single_call_sufficient(bits, one_gb, 2f64.powi(-**e)))
            .map(|e| format!("2^-{e}"))
            .collect();
        let _ = writeln!(
            out,
            "{name} ({bits} bits) covers up to 1 GB for f in {{{}}}",
            covered.join(", ")
        );
    }
    out
}

/// Table 2: time to derive all Bloom-filter indexes of an item, naive
/// (k salted calls) versus recycling (bits of one digest), for every hash
/// function of the paper, plus MurmurHash and SipHash baselines.
pub fn table2_query_times(scale: Scale) -> String {
    let iterations: u64 = match scale {
        Scale::Quick => 3_000,
        Scale::Paper => 100_000,
    };
    // Table 2 setup: f = 2^-10, n = 10^6 → k = 10; 32-byte items.
    let params = FilterParams::optimal(1_000_000, 2f64.powi(-10));
    let item = [0xabu8; 32];

    let time_strategy = |strategy: &dyn IndexStrategy| -> f64 {
        let start = Instant::now();
        let mut sink = 0u64;
        for _ in 0..iterations {
            sink = sink.wrapping_add(strategy.indexes(&item, params.k, params.m)[0]);
        }
        std::hint::black_box(sink);
        start.elapsed().as_secs_f64() * 1e6 / iterations as f64
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Table 2 — time to derive k={} indexes (m={} bits, {} iterations, µs/query)",
        params.k, params.m, iterations
    );
    let _ = writeln!(out, "{:<16} {:>12} {:>12} {:>10}", "hash", "naive", "recycling", "speed-up");

    let murmur = time_strategy(&SaltedHashes::new(Murmur2_32));
    let _ = writeln!(out, "{:<16} {:>12.2} {:>12} {:>10}", "MurmurHash-32", murmur, "-", "-");

    let crypto: Vec<Box<dyn CryptoHash>> =
        vec![Box::new(Md5), Box::new(Sha1), Box::new(Sha256), Box::new(Sha384), Box::new(Sha512)];
    for hash in crypto {
        let name = hash.name();
        let naive = time_strategy(&SaltedCrypto::new(clone_hash(name)));
        let recycled = time_strategy(&RecycledCrypto::new(hash));
        let _ = writeln!(
            out,
            "{:<16} {:>12.2} {:>12.2} {:>10.1}",
            name,
            naive,
            recycled,
            naive / recycled
        );
    }

    let sip = time_strategy(&SaltedHashes::new(SipHash24::new(SipKey::new(7, 7))));
    let _ = writeln!(out, "{:<16} {:>12.2} {:>12} {:>10}", "SipHash-2-4", sip, "-", "-");
    out
}

fn clone_hash(name: &str) -> Box<dyn CryptoHash> {
    match name {
        "MD5" => Box::new(Md5),
        "SHA-1" => Box::new(Sha1),
        "SHA-256" => Box::new(Sha256),
        "SHA-384" => Box::new(Sha384),
        _ => Box::new(Sha512),
    }
}

/// Section 8.1: the worst-case parameter derivation and the headline ratios.
pub fn worst_case_parameters() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Section 8.1 — worst-case parameters");
    let _ = writeln!(out, "k_opt / k_adv_opt = e ln 2 = {:.3}", worst_case::k_ratio());
    let (m, n) = (14_430_000u64, 1_000_000u64);
    let _ = writeln!(
        out,
        "example m={m}, n={n}: k_opt={}, k_adv_opt={}",
        false_positive::optimal_k_rounded(m, n),
        worst_case::adversarial_optimal_k_rounded(m, n)
    );
    let _ = writeln!(
        out,
        "honest FPP at k_adv_opt: ln f = -0.433 m/n -> f = {:.3e} (vs f_opt {:.3e})",
        worst_case::honest_false_positive_at_adversarial_k(m, n),
        false_positive::optimal_false_positive(m, n)
    );
    let _ = writeln!(
        out,
        "size ratio for equal FPP: {:.2} (re-derived) vs {:.2} (as printed in the paper)",
        worst_case::size_ratio_same_fpp(),
        worst_case::size_ratio_as_reported()
    );
    out
}

/// Runs every experiment at the given scale and concatenates the reports.
pub fn run_all(scale: Scale) -> String {
    [
        fig3_pollution_curve(),
        table1_attack_probabilities(scale),
        fig5_polluting_url_cost(scale),
        fig6_ghost_url_cost(scale),
        scrapy_attack(),
        fig8_dablooms_pollution(),
        dablooms_overflow(),
        squid_attack(scale),
        fig9_hash_domain(),
        table2_query_times(scale),
        worst_case_parameters(),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_report_contains_the_key_numbers() {
        let report = fig3_pollution_curve();
        assert!(report.contains("0.316") || report.contains("0.3164"), "{report}");
        assert!(report.contains("adversarial after 422 insertions"), "{report}");
    }

    #[test]
    fn table1_measured_close_to_analytic() {
        let report = table1_attack_probabilities(Scale::Quick);
        assert!(report.contains("pollution"));
        assert!(report.contains("false-positive forgery"));
        assert!(report.contains("deletion"));
    }

    #[test]
    fn fig8_report_shows_monotone_compound() {
        let report = fig8_dablooms_pollution();
        assert!(report.contains("Figure 8"));
        assert!(report.lines().count() > 12);
    }

    #[test]
    fn fig9_report_lists_sha_coverage() {
        let report = fig9_hash_domain();
        assert!(report.contains("SHA-512"));
        assert!(report.contains("2^-15"));
    }

    #[test]
    fn worst_case_report_mentions_both_ratios() {
        let report = worst_case_parameters();
        assert!(report.contains("1.88"));
        assert!(report.contains("as printed in the paper"));
    }

    #[test]
    fn overflow_report_shows_empty_filter() {
        let report = dablooms_overflow();
        assert!(report.contains("occupied cells afterwards     : 0"), "{report}");
    }
}

//! Cross-run determinism guard for the URL generator.
//!
//! The attack workloads of the paper reproduction are *crafted*: a pollution
//! or forgery plan is only reproducible if the candidate stream backing it is
//! byte-for-byte identical across runs, builds and machines. These tests pin
//! the generator against golden outputs so any accidental change to the word
//! lists, the format strings or the RNG shows up as a test failure rather
//! than as silently different experiment results.

use evilbloom_urlgen::{UrlGenerator, UrlStream};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Golden values: the deterministic sequence is pinned across runs.
///
/// The sampled indexes cover the word-list wrap-arounds (63/64), a deep
/// index, and the small primes used by the TLD/page selectors.
#[test]
fn url_sequence_matches_golden_outputs() {
    let generator = UrlGenerator::new("golden");
    for (i, expected) in [
        (0u64, "http://alpha-alpha.com/golden/index/0"),
        (1, "http://atlas-alpha.com/golden/index/1"),
        (7, "http://cipher-alpha.net/golden/news/7"),
        (63, "http://zinc-alpha.io/golden/blog/63"),
        (64, "http://alpha-atlas.io/golden/blog/64"),
        (4096, "http://alpha-alpha.io/golden/about/4096"),
        (123_456_789, "http://hazel-summit.org/golden/about/123456789"),
    ] {
        assert_eq!(generator.url(i), expected, "index {i}");
    }
}

/// Seeded random URLs are just as reproducible as the enumerated sequence.
#[test]
fn seeded_random_urls_match_golden_outputs() {
    let generator = UrlGenerator::new("golden");
    let mut rng = StdRng::seed_from_u64(2015);
    let drawn: Vec<String> = (0..3).map(|_| generator.random_url(&mut rng)).collect();
    assert_eq!(
        drawn,
        [
            "http://thorncomet.com/golden/login-2b151f5619045e17",
            "http://solarlumen.net/golden/login-db4424ff618c05ff",
            "http://lumenion.io/golden/item-b29659617b76dbe7",
        ]
    );
}

/// Domain-pinned (link-farm) URLs are deterministic too.
#[test]
fn on_domain_urls_match_golden_outputs() {
    let generator = UrlGenerator::new("golden");
    assert_eq!(generator.on_domain("evil.example", 42), "http://evil.example/golden/plasma/tag-42");
}

/// Two independently constructed generators with the same namespace agree on
/// every output — there is no hidden per-instance state.
#[test]
fn independent_instances_agree() {
    let a = UrlGenerator::new("replay");
    let b = UrlGenerator::new("replay");
    assert_eq!(a.batch(0, 10_000), b.batch(0, 10_000));

    let mut rng_a = StdRng::seed_from_u64(7);
    let mut rng_b = StdRng::seed_from_u64(7);
    for _ in 0..1_000 {
        assert_eq!(a.random_url(&mut rng_a), b.random_url(&mut rng_b));
    }
}

/// The streaming iterator yields exactly the enumerated sequence.
#[test]
fn stream_replays_the_enumerated_sequence() {
    let generator = UrlGenerator::new("replay");
    let streamed: Vec<String> = UrlStream::new(generator.clone()).take(500).collect();
    assert_eq!(streamed, generator.batch(0, 500));
}

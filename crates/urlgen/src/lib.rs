//! # evilbloom-urlgen
//!
//! Deterministic, human-readable fake URL generation.
//!
//! The paper's experiments forge URLs (`fake-factory` in the original Python
//! tooling) to feed the brute-force searches: polluting URLs for Scrapy,
//! phishing-looking URLs for Dablooms, and cache keys for Squid. This crate
//! provides the equivalent generator: URLs look plausible (scheme, word-based
//! domains, path segments) while being enumerable, unique and reproducible —
//! which is all the attacks need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;

/// Word list used for domain and path segments. Small on purpose: combined
/// with counters it still yields an effectively unbounded URL space.
const WORDS: &[&str] = &[
    "alpha", "atlas", "aurora", "beacon", "binary", "breeze", "cedar", "cipher", "cobalt", "comet",
    "coral", "crystal", "delta", "drift", "ember", "falcon", "fjord", "gamma", "garnet", "glacier",
    "harbor", "hazel", "indigo", "ion", "jade", "juniper", "karma", "lagoon", "lumen", "lunar",
    "maple", "meadow", "mesa", "nebula", "nectar", "nova", "onyx", "opal", "orbit", "oxide",
    "pearl", "pixel", "plasma", "prism", "quartz", "quill", "raven", "ridge", "sable", "sierra",
    "solar", "sparrow", "summit", "terra", "thorn", "tundra", "umbra", "vertex", "violet",
    "vortex", "willow", "zephyr", "zenith", "zinc",
];

/// Top-level domains used by the generator.
const TLDS: &[&str] = &["com", "net", "org", "io", "info", "biz"];

/// Page-name suffixes used for leaf path segments.
const PAGES: &[&str] = &["index", "home", "news", "blog", "shop", "login", "about", "item", "tag"];

/// A deterministic fake-URL generator.
///
/// Two generation modes are offered:
///
/// * [`UrlGenerator::url`] — the `i`-th URL of an enumerable sequence (used
///   by brute-force searches, which need to iterate candidates cheaply and
///   reproducibly);
/// * [`UrlGenerator::random_url`] — a URL drawn from an [`Rng`] (used to
///   model honest workloads).
///
/// # Examples
///
/// ```
/// use evilbloom_urlgen::UrlGenerator;
///
/// let generator = UrlGenerator::new("attack");
/// let first = generator.url(0);
/// assert!(first.starts_with("http://"));
/// assert_ne!(first, generator.url(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrlGenerator {
    namespace: String,
}

impl UrlGenerator {
    /// Creates a generator whose URLs are tagged with `namespace`, keeping
    /// independently generated URL families disjoint.
    pub fn new(namespace: &str) -> Self {
        UrlGenerator { namespace: namespace.to_owned() }
    }

    /// The namespace this generator stamps into every URL.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// Returns the `i`-th URL of the deterministic sequence.
    ///
    /// URLs are unique across `i` (the counter is embedded in the path) and
    /// across namespaces, and they look like plausible crawlable pages.
    pub fn url(&self, i: u64) -> String {
        let word1 = WORDS[(i % WORDS.len() as u64) as usize];
        let word2 = WORDS[((i / WORDS.len() as u64) % WORDS.len() as u64) as usize];
        let tld = TLDS[((i / 7) % TLDS.len() as u64) as usize];
        let page = PAGES[((i / 3) % PAGES.len() as u64) as usize];
        format!("http://{word1}-{word2}.{tld}/{ns}/{page}/{i}", ns = self.namespace,)
    }

    /// Returns a batch of sequential URLs `[start, start + count)`.
    pub fn batch(&self, start: u64, count: u64) -> Vec<String> {
        (start..start + count).map(|i| self.url(i)).collect()
    }

    /// Draws a random URL using `rng`. Uniqueness is probabilistic (a 64-bit
    /// nonce is embedded), which suffices for honest-workload simulation.
    pub fn random_url<R: Rng>(&self, rng: &mut R) -> String {
        let word1 = WORDS[rng.gen_range(0..WORDS.len())];
        let word2 = WORDS[rng.gen_range(0..WORDS.len())];
        let tld = TLDS[rng.gen_range(0..TLDS.len())];
        let page = PAGES[rng.gen_range(0..PAGES.len())];
        let nonce: u64 = rng.gen();
        format!("http://{word1}{word2}.{tld}/{ns}/{page}-{nonce:016x}", ns = self.namespace)
    }

    /// Returns a URL on a fixed attacker-controlled domain (used to build the
    /// adversary's link farm: all polluting links live on her own site).
    pub fn on_domain(&self, domain: &str, i: u64) -> String {
        let word = WORDS[(i % WORDS.len() as u64) as usize];
        let page = PAGES[((i / 5) % PAGES.len() as u64) as usize];
        format!("http://{domain}/{ns}/{word}/{page}-{i}", ns = self.namespace)
    }
}

impl Default for UrlGenerator {
    fn default() -> Self {
        UrlGenerator::new("default")
    }
}

/// An infinite iterator over the deterministic URL sequence of a generator.
#[derive(Debug, Clone)]
pub struct UrlStream {
    generator: UrlGenerator,
    next: u64,
}

impl UrlStream {
    /// Starts streaming URLs of `generator` from index 0.
    pub fn new(generator: UrlGenerator) -> Self {
        UrlStream { generator, next: 0 }
    }

    /// Index of the next URL to be produced (i.e. how many have been drawn).
    pub fn produced(&self) -> u64 {
        self.next
    }
}

impl Iterator for UrlStream {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        let url = self.generator.url(self.next);
        self.next += 1;
        Some(url)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn urls_are_unique_and_deterministic() {
        let generator = UrlGenerator::new("test");
        let batch_a = generator.batch(0, 10_000);
        let batch_b = generator.batch(0, 10_000);
        assert_eq!(batch_a, batch_b);
        let unique: HashSet<&String> = batch_a.iter().collect();
        assert_eq!(unique.len(), 10_000);
    }

    #[test]
    fn urls_look_like_urls() {
        let generator = UrlGenerator::new("crawl");
        for i in [0u64, 1, 63, 64, 1000, 123_456] {
            let url = generator.url(i);
            assert!(url.starts_with("http://"), "{url}");
            assert!(url.contains("crawl"), "{url}");
            assert!(url.split('/').count() >= 6, "{url}");
        }
    }

    #[test]
    fn namespaces_keep_families_disjoint() {
        let a = UrlGenerator::new("family-a");
        let b = UrlGenerator::new("family-b");
        let set_a: HashSet<String> = a.batch(0, 1000).into_iter().collect();
        assert!(b.batch(0, 1000).iter().all(|u| !set_a.contains(u)));
    }

    #[test]
    fn random_urls_are_mostly_unique() {
        let generator = UrlGenerator::new("rand");
        let mut rng = StdRng::seed_from_u64(3);
        let urls: HashSet<String> = (0..5000).map(|_| generator.random_url(&mut rng)).collect();
        assert_eq!(urls.len(), 5000);
    }

    #[test]
    fn domain_pinned_urls_stay_on_the_domain() {
        let generator = UrlGenerator::new("farm");
        for i in 0..100 {
            let url = generator.on_domain("evil.example", i);
            assert!(url.starts_with("http://evil.example/"), "{url}");
        }
        assert_ne!(generator.on_domain("evil.example", 1), generator.on_domain("evil.example", 2));
    }

    #[test]
    fn stream_enumerates_in_order() {
        let generator = UrlGenerator::new("stream");
        let mut stream = UrlStream::new(generator.clone());
        let first_three: Vec<String> = stream.by_ref().take(3).collect();
        assert_eq!(first_three, generator.batch(0, 3));
        assert_eq!(stream.produced(), 3);
    }

    #[test]
    fn default_namespace() {
        assert_eq!(UrlGenerator::default().namespace(), "default");
    }
}

//! # evilbloom-core
//!
//! High-level API tying the `evilbloom` crates together: the paper's primary
//! contribution (adversary models for Bloom filters, worst-case parameters
//! and countermeasures) packaged for application developers.
//!
//! The central entry points are:
//!
//! * [`DeploymentSpec`] — describe how a Bloom filter is (or would be)
//!   deployed: capacity, target false-positive probability, index strategy;
//! * [`assess`] — produce an [`AssessmentReport`] quantifying the exposure of
//!   that deployment to the chosen-insertion, query-only and deletion
//!   adversaries of the paper (Table 1 / Section 4);
//! * [`SecureBloomBuilder`] — build a filter hardened to the desired
//!   [`HardeningLevel`] (Section 8 countermeasures).
//!
//! ```
//! use evilbloom_core::{assess, DeploymentSpec, StrategyKind};
//!
//! let spec = DeploymentSpec {
//!     capacity: 1_000_000,
//!     target_fpp: 0.01,
//!     strategy: StrategyKind::MurmurKirschMitzenmacher,
//! };
//! let report = assess(&spec);
//! assert!(report.adversarial_fpp > 10.0 * report.honest_fpp);
//! assert!(report.predictable_indexes);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

use evilbloom_analysis::{attack_probability, worst_case};
use evilbloom_filters::{
    hardened_concurrent_filter, hardened_filter, BloomFilter, ConcurrentBloomFilter, FilterKey,
    FilterParams, HardeningLevel,
};
use evilbloom_hashes::{
    IndexStrategy, KirschMitzenmacher, Md5Split, Murmur3_128, RecycledCrypto, SaltedCrypto, Sha256,
    Sha512,
};

/// The index-derivation families a deployment can use, mirroring the systems
/// studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// MurmurHash3 with the Kirsch–Mitzenmacher trick (Dablooms).
    MurmurKirschMitzenmacher,
    /// Salted SHA-2 digests, one call per index (pyBloom / Scrapy).
    SaltedSha,
    /// One MD5 digest split into four indexes (Squid cache digests).
    Md5Split,
    /// One SHA-512 digest recycled across all indexes (Section 8.2).
    RecycledSha512,
    /// Secret-keyed SipHash (Section 8.2 countermeasure).
    KeyedSipHash,
}

impl StrategyKind {
    /// Whether an adversary can predict the filter indexes offline.
    pub fn is_predictable(&self) -> bool {
        !matches!(self, StrategyKind::KeyedSipHash)
    }

    /// Instantiates the corresponding [`IndexStrategy`] (keyed strategies get
    /// a throw-away key — use [`SecureBloomBuilder`] for real deployments).
    pub fn instantiate(&self) -> Box<dyn IndexStrategy> {
        match self {
            StrategyKind::MurmurKirschMitzenmacher => {
                Box::new(KirschMitzenmacher::new(Murmur3_128))
            }
            StrategyKind::SaltedSha => Box::new(SaltedCrypto::new(Box::new(Sha256))),
            StrategyKind::Md5Split => Box::new(Md5Split),
            StrategyKind::RecycledSha512 => Box::new(RecycledCrypto::new(Box::new(Sha512))),
            StrategyKind::KeyedSipHash => Box::new(evilbloom_hashes::KeyedIndexes::new(Box::new(
                evilbloom_hashes::SipHash24::new(evilbloom_hashes::SipKey::new(0, 0)),
            ))),
        }
    }
}

/// Description of a (planned) Bloom-filter deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeploymentSpec {
    /// Number of items the filter is sized for.
    pub capacity: u64,
    /// Designed (average-case) false-positive probability.
    pub target_fpp: f64,
    /// Index-derivation family in use.
    pub strategy: StrategyKind,
}

/// Exposure assessment of a deployment, in the terms of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssessmentReport {
    /// Parameters the average-case design produces.
    pub params: FilterParams,
    /// Honest false-positive probability at capacity.
    pub honest_fpp: f64,
    /// Worst-case probability after `capacity` chosen insertions
    /// (Equation (7)).
    pub adversarial_fpp: f64,
    /// Number of chosen insertions needed to reach the designed probability
    /// (how early the attacker crosses the designer's threshold).
    pub insertions_to_design_threshold: u64,
    /// Items needed to saturate the filter outright.
    pub saturation_items: u64,
    /// Per-candidate success probability of forging a false positive against
    /// a half-full filter.
    pub forgery_probability: f64,
    /// Whether the adversary can compute indexes offline (no secret key).
    pub predictable_indexes: bool,
    /// Recommended parameters if only the worst case is optimised
    /// (Section 8.1).
    pub worst_case_params: FilterParams,
}

/// Assesses a deployment against the paper's adversary models.
pub fn assess(spec: &DeploymentSpec) -> AssessmentReport {
    let params = FilterParams::optimal(spec.capacity, spec.target_fpp);
    let honest_fpp = params.expected_fpp();
    let adversarial_fpp = params.adversarial_fpp();
    let insertions_to_design_threshold =
        worst_case::insertions_to_reach(params.m, params.k, spec.target_fpp);
    let saturation_items = worst_case::adversarial_saturation_items(params.m, params.k);
    let forgery_probability =
        attack_probability::false_positive_forgery(params.m, params.m / 2, params.k);
    let worst_case_params = FilterParams::worst_case_for_memory(params.m, spec.capacity);

    AssessmentReport {
        params,
        honest_fpp,
        adversarial_fpp,
        insertions_to_design_threshold,
        saturation_items,
        forgery_probability,
        predictable_indexes: spec.strategy.is_predictable(),
        worst_case_params,
    }
}

/// Builder for hardened Bloom filters (the Section 8 countermeasures).
#[derive(Debug, Clone)]
pub struct SecureBloomBuilder {
    capacity: u64,
    target_fpp: f64,
    level: HardeningLevel,
    key: Option<FilterKey>,
}

impl SecureBloomBuilder {
    /// Starts a builder for `capacity` items at the given target probability.
    pub fn new(capacity: u64, target_fpp: f64) -> Self {
        SecureBloomBuilder { capacity, target_fpp, level: HardeningLevel::KeyedSipHash, key: None }
    }

    /// Selects the hardening level (default: keyed SipHash).
    pub fn level(mut self, level: HardeningLevel) -> Self {
        self.level = level;
        self
    }

    /// Supplies an explicit secret key (otherwise a random one is drawn).
    pub fn key(mut self, key: FilterKey) -> Self {
        self.key = Some(key);
        self
    }

    /// Builds the hardened filter.
    pub fn build(&self) -> BloomFilter {
        hardened_filter(self.capacity, self.target_fpp, self.level, &self.effective_key())
    }

    /// Builds the concurrent (lock-free, `&self` insert/query) counterpart
    /// of [`SecureBloomBuilder::build`] — the per-shard filter of the
    /// `evilbloom-store` serving layer.
    ///
    /// The two builds are index-compatible (identical parameters and
    /// strategy) **only when an explicit key was supplied with
    /// [`SecureBloomBuilder::key`]**: without one, every call to `build` or
    /// `build_concurrent` draws its own fresh random key, so the resulting
    /// filters disagree by design — exactly as two independently keyed
    /// deployments should.
    pub fn build_concurrent(&self) -> ConcurrentBloomFilter {
        hardened_concurrent_filter(
            self.capacity,
            self.target_fpp,
            self.level,
            &self.effective_key(),
        )
    }

    fn effective_key(&self) -> FilterKey {
        self.key.unwrap_or_else(|| FilterKey::generate(&mut StdRng::from_entropy()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assessment_flags_predictable_strategies() {
        for (strategy, predictable) in [
            (StrategyKind::MurmurKirschMitzenmacher, true),
            (StrategyKind::SaltedSha, true),
            (StrategyKind::Md5Split, true),
            (StrategyKind::RecycledSha512, true),
            (StrategyKind::KeyedSipHash, false),
        ] {
            let spec = DeploymentSpec { capacity: 10_000, target_fpp: 0.01, strategy };
            assert_eq!(assess(&spec).predictable_indexes, predictable, "{strategy:?}");
        }
    }

    #[test]
    fn assessment_quantifies_the_gap() {
        let spec = DeploymentSpec {
            capacity: 1_000_000,
            target_fpp: 2f64.powi(-10),
            strategy: StrategyKind::SaltedSha,
        };
        let report = assess(&spec);
        assert!(report.adversarial_fpp > 10.0 * report.honest_fpp);
        assert!(report.insertions_to_design_threshold < spec.capacity);
        assert!(report.saturation_items < spec.capacity * 2);
        assert!(report.worst_case_params.k < report.params.k);
        assert!(report.forgery_probability > 0.0 && report.forgery_probability < 1.0);
    }

    #[test]
    fn every_strategy_kind_instantiates() {
        for kind in [
            StrategyKind::MurmurKirschMitzenmacher,
            StrategyKind::SaltedSha,
            StrategyKind::Md5Split,
            StrategyKind::RecycledSha512,
            StrategyKind::KeyedSipHash,
        ] {
            let strategy = kind.instantiate();
            let idx = strategy.indexes(b"item", 4, 1024);
            assert_eq!(idx.len(), 4);
            assert!(idx.iter().all(|&i| i < 1024));
        }
    }

    #[test]
    fn builder_produces_working_filters_for_all_levels() {
        for level in [
            HardeningLevel::WorstCaseParameters,
            HardeningLevel::KeyedSipHash,
            HardeningLevel::KeyedHmac,
        ] {
            let mut filter = SecureBloomBuilder::new(500, 0.01)
                .level(level)
                .key(FilterKey::from_bytes([9u8; 32]))
                .build();
            for i in 0..500 {
                filter.insert(format!("item-{i}").as_bytes());
            }
            for i in 0..500 {
                assert!(filter.contains(format!("item-{i}").as_bytes()), "{level:?}");
            }
        }
    }

    #[test]
    fn concurrent_builder_matches_sequential_layout() {
        for level in [
            HardeningLevel::WorstCaseParameters,
            HardeningLevel::KeyedSipHash,
            HardeningLevel::KeyedHmac,
        ] {
            let builder = SecureBloomBuilder::new(300, 0.01)
                .level(level)
                .key(FilterKey::from_bytes([7u8; 32]));
            let mut sequential = builder.build();
            let concurrent = builder.build_concurrent();
            for i in 0..300 {
                let item = format!("item-{i}");
                sequential.insert(item.as_bytes());
                concurrent.insert(item.as_bytes());
            }
            assert_eq!(concurrent.snapshot(), *sequential.bits(), "{level:?}");
            for i in 0..300 {
                assert!(concurrent.contains(format!("item-{i}").as_bytes()), "{level:?}");
            }
        }
    }

    #[test]
    fn builder_random_key_filters_differ() {
        let mut a = SecureBloomBuilder::new(100, 0.01).build();
        let mut b = SecureBloomBuilder::new(100, 0.01).build();
        a.insert(b"item");
        b.insert(b"item");
        // Random keys: the probability the two layouts coincide is negligible.
        assert_ne!(a.support(), b.support());
    }
}

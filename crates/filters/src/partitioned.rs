//! Partitioned Bloom filter: the `m` bits are split into `k` disjoint slices
//! of `m/k` bits and hash function `i` only addresses slice `i`.
//!
//! The variant matters for the adversarial analysis because a
//! chosen-insertion adversary against a partitioned filter can *always* set
//! exactly `k` fresh bits (one per slice) as long as no slice is full; the
//! saturation dynamics differ slightly from the classic layout and the
//! variant is a common "hardening by obscurity" attempt that the paper's
//! model covers equally well.

use std::sync::Arc;

use evilbloom_hashes::IndexStrategy;

use crate::bitvec::BitVec;
use crate::params::FilterParams;

/// A partitioned Bloom filter with `k` slices of `m/k` bits each.
#[derive(Clone)]
pub struct PartitionedBloomFilter {
    bits: BitVec,
    slice_len: u64,
    params: FilterParams,
    strategy: Arc<dyn IndexStrategy>,
    inserted: u64,
}

impl PartitionedBloomFilter {
    /// Creates an empty partitioned filter. The total size is rounded down to
    /// a multiple of `k`.
    ///
    /// # Panics
    ///
    /// Panics if `m < k`.
    pub fn new<S: IndexStrategy + 'static>(params: FilterParams, strategy: S) -> Self {
        assert!(params.m >= u64::from(params.k), "need at least one bit per slice");
        let slice_len = params.m / u64::from(params.k);
        let usable = slice_len * u64::from(params.k);
        let adjusted = FilterParams { m: usable, ..params };
        PartitionedBloomFilter {
            bits: BitVec::new(usable),
            slice_len,
            params: adjusted,
            strategy: Arc::new(strategy),
            inserted: 0,
        }
    }

    /// The filter's (slice-adjusted) parameters.
    pub fn params(&self) -> FilterParams {
        self.params
    }

    /// Number of bits per slice.
    pub fn slice_len(&self) -> u64 {
        self.slice_len
    }

    /// Number of insertions performed.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// The `k` global bit positions of `item`: index `i` lies inside slice
    /// `i`.
    pub fn indexes(&self, item: &[u8]) -> Vec<u64> {
        // Derive k values over the slice length, then offset each into its
        // own slice.
        self.strategy
            .indexes(item, self.params.k, self.slice_len)
            .into_iter()
            .enumerate()
            .map(|(slice, idx)| slice as u64 * self.slice_len + idx)
            .collect()
    }

    /// Inserts `item`. Returns the number of bits that flipped from 0 to 1.
    pub fn insert(&mut self, item: &[u8]) -> u32 {
        let mut fresh = 0;
        for idx in self.indexes(item) {
            if !self.bits.set(idx) {
                fresh += 1;
            }
        }
        self.inserted += 1;
        fresh
    }

    /// Membership query.
    pub fn contains(&self, item: &[u8]) -> bool {
        self.indexes(item).iter().all(|&i| self.bits.get(i))
    }

    /// Hamming weight of the whole filter.
    pub fn hamming_weight(&self) -> u64 {
        self.bits.count_ones()
    }

    /// Fill ratio of slice `i`.
    pub fn slice_fill(&self, slice: u32) -> f64 {
        assert!(slice < self.params.k, "slice out of range");
        let start = u64::from(slice) * self.slice_len;
        let ones = (start..start + self.slice_len).filter(|&i| self.bits.get(i)).count();
        ones as f64 / self.slice_len as f64
    }

    /// Current false-positive probability: the product of per-slice fills.
    pub fn current_false_positive_probability(&self) -> f64 {
        (0..self.params.k).map(|s| self.slice_fill(s)).product()
    }
}

impl core::fmt::Debug for PartitionedBloomFilter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PartitionedBloomFilter")
            .field("m", &self.params.m)
            .field("k", &self.params.k)
            .field("slice_len", &self.slice_len)
            .field("inserted", &self.inserted)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evilbloom_hashes::{Murmur3_32, SaltedHashes};

    fn filter(m: u64, k: u32) -> PartitionedBloomFilter {
        PartitionedBloomFilter::new(
            FilterParams::explicit(m, k, m / 10),
            SaltedHashes::new(Murmur3_32),
        )
    }

    #[test]
    fn size_rounds_down_to_slice_multiple() {
        let f = filter(1003, 4);
        assert_eq!(f.slice_len(), 250);
        assert_eq!(f.params().m, 1000);
    }

    #[test]
    fn indexes_stay_in_their_slices() {
        let f = filter(1000, 4);
        for i in 0..100 {
            let idx = f.indexes(format!("item{i}").as_bytes());
            for (slice, &pos) in idx.iter().enumerate() {
                let lo = slice as u64 * 250;
                assert!(pos >= lo && pos < lo + 250, "index {pos} outside slice {slice}");
            }
        }
    }

    #[test]
    fn no_false_negatives() {
        let mut f = filter(4096, 4);
        let items: Vec<String> = (0..200).map(|i| format!("url-{i}")).collect();
        for item in &items {
            f.insert(item.as_bytes());
        }
        for item in &items {
            assert!(f.contains(item.as_bytes()));
        }
    }

    #[test]
    fn per_slice_fill_drives_false_positive_probability() {
        let mut f = filter(400, 4);
        for i in 0..50 {
            f.insert(format!("x{i}").as_bytes());
        }
        let product: f64 = (0..4).map(|s| f.slice_fill(s)).product();
        assert!((f.current_false_positive_probability() - product).abs() < 1e-12);
        assert!(product > 0.0 && product < 1.0);
    }

    #[test]
    #[should_panic(expected = "slice out of range")]
    fn slice_fill_bounds_checked() {
        filter(100, 4).slice_fill(4);
    }

    #[test]
    fn weight_bounded_by_k_per_insert() {
        let mut f = filter(800, 4);
        let mut last = 0;
        for i in 0..100 {
            f.insert(format!("y{i}").as_bytes());
            let w = f.hamming_weight();
            assert!(w >= last && w <= last + 4);
            last = w;
        }
    }
}

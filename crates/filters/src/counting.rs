//! Counting Bloom filter (Fan et al.), the deletable variant Dablooms builds
//! on — and the variant the deletion adversary of Section 4.3 targets.

use std::sync::Arc;

use evilbloom_hashes::IndexStrategy;

use crate::params::FilterParams;

/// What happens when a counter is incremented past its maximum value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// The counter freezes at its maximum and is never incremented or
    /// decremented again (the conservative policy).
    #[default]
    Saturate,
    /// The counter wraps around to zero — the policy the paper's
    /// counter-overflow attack on Dablooms exploits (Section 6.2): cells
    /// receiving a multiple of `2^bits` increments read zero, silently
    /// erasing membership information.
    Wrap,
}

/// A counting Bloom filter: each cell is a small counter (4 bits in
/// Dablooms) incremented on insertion and decremented on deletion.
///
/// Two failure modes matter for the paper:
///
/// * **counter overflow** — depending on the [`OverflowPolicy`], saturated
///   counters either freeze (making deletions silently incomplete) or wrap
///   to zero (erasing membership), and both behaviours are weaponised by the
///   Section 6.2 attacks;
/// * **false negatives** — deleting an item that was never inserted (or that
///   shares cells with other items) can clear cells still needed by genuine
///   members.
#[derive(Clone)]
pub struct CountingBloomFilter {
    counters: Vec<u8>,
    counter_bits: u8,
    policy: OverflowPolicy,
    params: FilterParams,
    strategy: Arc<dyn IndexStrategy>,
    inserted: u64,
    deleted: u64,
    overflows: u64,
}

impl CountingBloomFilter {
    /// Creates a counting filter with 4-bit counters (the Dablooms choice).
    pub fn new<S: IndexStrategy + 'static>(params: FilterParams, strategy: S) -> Self {
        Self::with_counter_bits(params, Arc::new(strategy), 4)
    }

    /// Creates a counting filter with `counter_bits`-bit counters (1..=8).
    ///
    /// # Panics
    ///
    /// Panics if `counter_bits` is zero or larger than 8.
    pub fn with_counter_bits(
        params: FilterParams,
        strategy: Arc<dyn IndexStrategy>,
        counter_bits: u8,
    ) -> Self {
        Self::with_policy(params, strategy, counter_bits, OverflowPolicy::Saturate)
    }

    /// Creates a counting filter with an explicit [`OverflowPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `counter_bits` is zero or larger than 8.
    pub fn with_policy(
        params: FilterParams,
        strategy: Arc<dyn IndexStrategy>,
        counter_bits: u8,
        policy: OverflowPolicy,
    ) -> Self {
        assert!((1..=8).contains(&counter_bits), "counter width must be 1..=8 bits");
        CountingBloomFilter {
            counters: vec![0u8; params.m as usize],
            counter_bits,
            policy,
            params,
            strategy,
            inserted: 0,
            deleted: 0,
            overflows: 0,
        }
    }

    /// The overflow policy in force.
    pub fn overflow_policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Maximum value a counter can hold (`2^bits - 1`).
    pub fn counter_max(&self) -> u8 {
        ((1u16 << self.counter_bits) - 1) as u8
    }

    /// The filter's sizing parameters.
    pub fn params(&self) -> FilterParams {
        self.params
    }

    /// Number of cells (`m`).
    pub fn m(&self) -> u64 {
        self.params.m
    }

    /// Number of indexes per item (`k`).
    pub fn k(&self) -> u32 {
        self.params.k
    }

    /// Number of insertions performed.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Number of deletions performed.
    pub fn deleted(&self) -> u64 {
        self.deleted
    }

    /// Number of counter-overflow events observed so far. Each overflowed
    /// counter is frozen at its maximum, so a large value here means the
    /// filter can no longer delete reliably.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// The `k` cell indexes of `item`.
    pub fn indexes(&self, item: &[u8]) -> Vec<u64> {
        self.strategy.indexes(item, self.params.k, self.params.m)
    }

    /// Value of the counter at `index`.
    pub fn counter(&self, index: u64) -> u8 {
        self.counters[index as usize]
    }

    /// Inserts `item`, incrementing its `k` counters (saturating).
    pub fn insert(&mut self, item: &[u8]) {
        let indexes = self.indexes(item);
        self.insert_indexes(&indexes);
    }

    /// Inserts by pre-computed indexes (used by the attack engines).
    pub fn insert_indexes(&mut self, indexes: &[u64]) {
        let max = self.counter_max();
        for &i in indexes {
            let cell = &mut self.counters[i as usize];
            if *cell == max {
                self.overflows += 1;
                if self.policy == OverflowPolicy::Wrap {
                    *cell = 0;
                }
            } else {
                *cell += 1;
            }
        }
        self.inserted += 1;
    }

    /// Deletes `item`, decrementing its `k` counters. Counters already at
    /// zero stay at zero; counters frozen at the maximum stay frozen (the
    /// overflow policy that the counter-overflow attack exploits).
    ///
    /// Returns `true` if the item appeared to be present before deletion.
    pub fn delete(&mut self, item: &[u8]) -> bool {
        let indexes = self.indexes(item);
        self.delete_indexes(&indexes)
    }

    /// Deletes by pre-computed indexes.
    pub fn delete_indexes(&mut self, indexes: &[u64]) -> bool {
        let was_present = self.contains_indexes(indexes);
        let max = self.counter_max();
        for &i in indexes {
            let cell = &mut self.counters[i as usize];
            match self.policy {
                OverflowPolicy::Saturate => {
                    if *cell > 0 && *cell < max {
                        *cell -= 1;
                    }
                }
                OverflowPolicy::Wrap => {
                    if *cell > 0 {
                        *cell -= 1;
                    }
                }
            }
        }
        self.deleted += 1;
        was_present
    }

    /// Membership query.
    pub fn contains(&self, item: &[u8]) -> bool {
        self.contains_indexes(&self.indexes(item))
    }

    /// Membership query by pre-computed indexes.
    pub fn contains_indexes(&self, indexes: &[u64]) -> bool {
        indexes.iter().all(|&i| self.counters[i as usize] > 0)
    }

    /// Number of non-zero cells (the analogue of the Hamming weight).
    pub fn occupied_cells(&self) -> u64 {
        self.counters.iter().filter(|&&c| c > 0).count() as u64
    }

    /// Number of cells currently frozen at the maximum counter value.
    pub fn saturated_cells(&self) -> u64 {
        let max = self.counter_max();
        self.counters.iter().filter(|&&c| c == max).count() as u64
    }

    /// Fraction of non-zero cells.
    pub fn fill_ratio(&self) -> f64 {
        self.occupied_cells() as f64 / self.params.m as f64
    }

    /// Current false-positive probability `(occupied/m)^k`.
    pub fn current_false_positive_probability(&self) -> f64 {
        evilbloom_analysis::false_positive::false_positive_for_fill(
            self.fill_ratio(),
            self.params.k,
        )
    }

    /// Memory footprint in bytes (Dablooms packs two 4-bit counters per
    /// byte; we report the packed size for comparability with the paper).
    pub fn memory_bytes(&self) -> u64 {
        (self.params.m * u64::from(self.counter_bits)).div_ceil(8)
    }
}

impl core::fmt::Debug for CountingBloomFilter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CountingBloomFilter")
            .field("m", &self.params.m)
            .field("k", &self.params.k)
            .field("counter_bits", &self.counter_bits)
            .field("inserted", &self.inserted)
            .field("occupied", &self.occupied_cells())
            .field("overflows", &self.overflows)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evilbloom_hashes::{KirschMitzenmacher, Murmur3_32};

    fn dablooms_like(m: u64, k: u32) -> CountingBloomFilter {
        CountingBloomFilter::new(
            FilterParams::explicit(m, k, m / 10),
            KirschMitzenmacher::new(Murmur3_32),
        )
    }

    #[test]
    fn insert_then_contains_then_delete() {
        let mut filter = dablooms_like(1024, 4);
        filter.insert(b"http://phish.example/");
        assert!(filter.contains(b"http://phish.example/"));
        assert!(filter.delete(b"http://phish.example/"));
        assert!(!filter.contains(b"http://phish.example/"));
    }

    #[test]
    fn no_false_negatives_without_deletion() {
        let mut filter = dablooms_like(4096, 4);
        let items: Vec<String> = (0..300).map(|i| format!("url-{i}")).collect();
        for item in &items {
            filter.insert(item.as_bytes());
        }
        for item in &items {
            assert!(filter.contains(item.as_bytes()));
        }
    }

    #[test]
    fn deleting_one_of_two_identical_insertions_keeps_membership() {
        let mut filter = dablooms_like(1024, 4);
        filter.insert(b"dup");
        filter.insert(b"dup");
        filter.delete(b"dup");
        assert!(filter.contains(b"dup"), "one copy must remain");
        filter.delete(b"dup");
        assert!(!filter.contains(b"dup"));
    }

    #[test]
    fn deletion_of_overlapping_item_creates_false_negative() {
        // The deletion-adversary failure mode: removing an item that shares
        // cells with a genuine member can evict the member.
        let mut filter = dablooms_like(64, 4);
        // Pick a victim whose index set contains at least one non-duplicated
        // cell (its counter is exactly 1 after insertion), so a single
        // decrement is guaranteed to evict it.
        let victim = (0..100u32)
            .map(|i| format!("victim-{i}"))
            .find(|v| {
                let idx = filter.indexes(v.as_bytes());
                let mut counts = std::collections::HashMap::new();
                for c in idx {
                    *counts.entry(c).or_insert(0u32) += 1;
                }
                counts.values().any(|&c| c == 1)
            })
            .expect("some candidate has a non-duplicated cell");
        filter.insert(victim.as_bytes());
        let victim_cells: std::collections::HashSet<u64> = filter
            .indexes(victim.as_bytes())
            .into_iter()
            .filter(|&c| filter.counter(c) == 1)
            .collect();
        assert!(!victim_cells.is_empty());
        let victim = victim.as_bytes();
        let mut overlapping = None;
        for i in 0..10_000 {
            let candidate = format!("candidate-{i}");
            let cells = filter.indexes(candidate.as_bytes());
            if cells.iter().any(|c| victim_cells.contains(c)) {
                overlapping = Some(candidate);
                break;
            }
        }
        let attacker_item = overlapping.expect("small filter guarantees an overlap");
        // Delete the overlapping item even though it was never inserted.
        filter.delete(attacker_item.as_bytes());
        assert!(!filter.contains(victim), "victim should have been evicted");
    }

    #[test]
    fn counter_overflow_freezes_cells() {
        let mut filter = dablooms_like(32, 2);
        assert_eq!(filter.counter_max(), 15);
        // Insert the same item 20 times: its two cells overflow at 15.
        for _ in 0..20 {
            filter.insert(b"hot");
        }
        assert!(filter.overflows() > 0);
        assert_eq!(
            filter.saturated_cells(),
            filter.indexes(b"hot").iter().collect::<std::collections::HashSet<_>>().len() as u64
        );
        // Deleting 20 times leaves the frozen counters at max: the item can
        // never be removed — a permanent false positive.
        for _ in 0..20 {
            filter.delete(b"hot");
        }
        assert!(filter.contains(b"hot"), "frozen counters keep the item visible");
    }

    #[test]
    fn overflow_counts_are_reported() {
        let mut filter = dablooms_like(16, 1);
        for _ in 0..100 {
            filter.insert(b"x");
        }
        assert_eq!(filter.overflows(), 100 - 15);
    }

    #[test]
    fn custom_counter_width() {
        let strategy = Arc::new(KirschMitzenmacher::new(Murmur3_32));
        let filter =
            CountingBloomFilter::with_counter_bits(FilterParams::explicit(128, 3, 16), strategy, 2);
        assert_eq!(filter.counter_max(), 3);
        assert_eq!(filter.memory_bytes(), 32);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn zero_width_counters_rejected() {
        let strategy = Arc::new(KirschMitzenmacher::new(Murmur3_32));
        CountingBloomFilter::with_counter_bits(FilterParams::explicit(16, 2, 4), strategy, 0);
    }

    #[test]
    fn stats_track_operations() {
        let mut filter = dablooms_like(256, 3);
        filter.insert(b"a");
        filter.insert(b"b");
        filter.delete(b"a");
        assert_eq!(filter.inserted(), 2);
        assert_eq!(filter.deleted(), 1);
        assert!(filter.occupied_cells() >= 1);
        assert!(filter.fill_ratio() > 0.0);
        assert!(filter.current_false_positive_probability() < 1.0);
    }

    #[test]
    fn memory_is_half_a_byte_per_cell_for_4bit_counters() {
        let filter = dablooms_like(1000, 4);
        assert_eq!(filter.memory_bytes(), 500);
    }

    #[test]
    fn wrapping_policy_erases_membership_on_overflow() {
        let strategy = Arc::new(KirschMitzenmacher::new(Murmur3_32));
        let mut filter = CountingBloomFilter::with_policy(
            FilterParams::explicit(64, 2, 8),
            strategy,
            4,
            OverflowPolicy::Wrap,
        );
        assert_eq!(filter.overflow_policy(), OverflowPolicy::Wrap);
        // 16 insertions of the same item wrap its counters back to zero.
        for _ in 0..16 {
            filter.insert(b"wrapped");
        }
        assert!(!filter.contains(b"wrapped"), "membership silently erased");
        assert!(filter.overflows() > 0);
    }

    #[test]
    fn default_policy_is_saturate() {
        let filter = dablooms_like(64, 2);
        assert_eq!(filter.overflow_policy(), OverflowPolicy::Saturate);
    }
}

//! Lock-free bit vector backed by atomic words — the concurrent counterpart
//! of [`crate::bitvec::BitVec`].
//!
//! Every operation takes `&self`: readers and writers proceed without locks.
//! Bit writes use a `fetch_or` read-modify-write, so for every bit exactly
//! one thread observes the 0 → 1 transition; that makes the running
//! ones-counter exact once all writers are quiescent, while concurrent
//! readers may see a value that lags in-flight writers by a few bits (hence
//! "approximate" in the accessor names).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::bitvec::BitVec;

/// A fixed-size bit vector of `AtomicU64` words supporting lock-free `&self`
/// reads and writes.
///
/// Memory ordering: bit writes use [`Ordering::Release`] and bit reads
/// [`Ordering::Acquire`], so a reader that observes a bit set also observes
/// every write the setter performed before setting it. The running
/// ones-counter uses relaxed updates — it is a statistic, not a
/// synchronisation point.
///
/// # Examples
///
/// ```
/// use evilbloom_filters::atomic_bitvec::AtomicBitVec;
///
/// let bits = AtomicBitVec::new(128);
/// assert!(!bits.set(42)); // returns the previous value, like `BitVec::set`
/// assert!(bits.get(42));
/// assert_eq!(bits.count_ones_approx(), 1);
/// ```
#[derive(Debug)]
pub struct AtomicBitVec {
    words: Vec<AtomicU64>,
    len: u64,
    /// Running count of set bits, maintained by the thread that wins each
    /// bit's 0 → 1 `fetch_or` race.
    ones: AtomicU64,
}

impl AtomicBitVec {
    /// Creates a bit vector of `len` bits, all zero.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: u64) -> Self {
        assert!(len > 0, "bit vector length must be positive");
        let words = (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        AtomicBitVec { words, len, ones: AtomicU64::new(0) }
    }

    /// Number of bits in the vector (`m` in Bloom-filter notation).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Always `false`: the constructor rejects zero-length vectors.
    pub fn is_empty(&self) -> bool {
        false
    }

    #[inline]
    fn locate(&self, index: u64) -> (usize, u64) {
        assert!(index < self.len, "bit index {index} out of range (len {})", self.len);
        ((index / 64) as usize, 1u64 << (index % 64))
    }

    /// Returns the bit at `index` (acquire load).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[inline]
    pub fn get(&self, index: u64) -> bool {
        let (word, mask) = self.locate(index);
        self.words[word].load(Ordering::Acquire) & mask != 0
    }

    /// Atomically sets the bit at `index` to 1 and returns its previous
    /// value. Exactly one concurrent caller observes `false` for any given
    /// bit, which keeps the ones-counter exact.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[inline]
    pub fn set(&self, index: u64) -> bool {
        let (word, mask) = self.locate(index);
        let was = self.words[word].fetch_or(mask, Ordering::Release) & mask != 0;
        if !was {
            self.ones.fetch_add(1, Ordering::Relaxed);
        }
        was
    }

    /// Running count of set bits. Exact once all writers are quiescent;
    /// during concurrent insertion it may lag in-flight writers.
    pub fn count_ones_approx(&self) -> u64 {
        self.ones.load(Ordering::Relaxed)
    }

    /// Exact count of set bits, obtained by scanning every word.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.load(Ordering::Acquire).count_ones())).sum()
    }

    /// Number of unset bits (exact scan).
    pub fn count_zeros(&self) -> u64 {
        self.len - self.count_ones()
    }

    /// Fraction of set bits based on the running counter (O(1)).
    pub fn fill_ratio_approx(&self) -> f64 {
        self.count_ones_approx() as f64 / self.len as f64
    }

    /// Fraction of set bits based on an exact scan.
    pub fn fill_ratio(&self) -> f64 {
        self.count_ones() as f64 / self.len as f64
    }

    /// Racily copies the raw word array under `&self` — the persistence
    /// primitive. The copy is word-wise consistent; concurrent writers may
    /// land between words, so the copy can mix "before" and "after" words of
    /// an in-flight insert. For a Bloom filter that torn read is *safe*: bits
    /// are only ever set, so the worst a torn copy does is re-observe a bit
    /// an in-flight insert set — replaying that insert from a log is
    /// idempotent. Consumers needing a ones count for the copy must recount
    /// it from these words ([`BitVec::count_ones`] on the rebuilt vector, or
    /// `count_ones` per word) — the live running counter is updated *after*
    /// each `fetch_or` and can disagree with any given word-array copy.
    pub fn snapshot_words(&self) -> Vec<u64> {
        self.words.iter().map(|w| w.load(Ordering::Acquire)).collect()
    }

    /// Rebuilds a bit vector of `len` bits from a raw word array (the
    /// inverse of [`AtomicBitVec::snapshot_words`], used on recovery). The
    /// ones-counter is recounted from the words — never restored from a
    /// persisted counter, which may disagree with a racy word copy. Padding
    /// bits beyond `len` in the final word are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or `words` is not exactly `len.div_ceil(64)`
    /// words long.
    pub fn from_words(len: u64, mut words: Vec<u64>) -> Self {
        assert!(len > 0, "bit vector length must be positive");
        assert_eq!(
            words.len() as u64,
            len.div_ceil(64),
            "word count does not match a {len}-bit vector"
        );
        if !len.is_multiple_of(64) {
            let last = words.len() - 1;
            words[last] &= (1u64 << (len % 64)) - 1;
        }
        let ones = words.iter().map(|w| u64::from(w.count_ones())).sum();
        AtomicBitVec {
            words: words.into_iter().map(AtomicU64::new).collect(),
            len,
            ones: AtomicU64::new(ones),
        }
    }

    /// Copies the current contents into a plain [`BitVec`] snapshot. The
    /// snapshot is word-wise consistent; concurrent writers may land between
    /// words.
    pub fn snapshot(&self) -> BitVec {
        let mut out = BitVec::new(self.len);
        for (wi, word) in self.words.iter().enumerate() {
            let mut bits = word.load(Ordering::Acquire);
            let base = wi as u64 * 64;
            while bits != 0 {
                let tz = u64::from(bits.trailing_zeros());
                bits &= bits - 1;
                out.set(base + tz);
            }
        }
        out
    }
}

impl From<&BitVec> for AtomicBitVec {
    /// Builds an atomic copy of a sequential bit vector (e.g. when promoting
    /// a filter built offline onto the concurrent serving path).
    fn from(bits: &BitVec) -> Self {
        let atomic = AtomicBitVec::new(bits.len());
        for index in bits.iter_ones() {
            atomic.set(index);
        }
        atomic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_vector_is_all_zero() {
        let bits = AtomicBitVec::new(130);
        assert_eq!(bits.len(), 130);
        assert_eq!(bits.count_ones(), 0);
        assert_eq!(bits.count_ones_approx(), 0);
        assert!(!bits.is_empty());
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_rejected() {
        AtomicBitVec::new(0);
    }

    #[test]
    fn set_get_roundtrip_with_shared_reference() {
        let bits = AtomicBitVec::new(200);
        assert!(!bits.set(63));
        assert!(!bits.set(64));
        assert!(bits.set(64), "second set reports the bit was already set");
        assert!(bits.get(63) && bits.get(64));
        assert!(!bits.get(65));
        assert_eq!(bits.count_ones(), 2);
        assert_eq!(bits.count_ones_approx(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        AtomicBitVec::new(10).get(10);
    }

    #[test]
    fn snapshot_matches_sequential_bitvec() {
        let atomic = AtomicBitVec::new(300);
        let mut plain = BitVec::new(300);
        for i in [0u64, 1, 63, 64, 65, 128, 255, 299] {
            atomic.set(i);
            plain.set(i);
        }
        assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn from_bitvec_copies_every_bit() {
        let mut plain = BitVec::new(100);
        for i in (0..100).step_by(7) {
            plain.set(i);
        }
        let atomic = AtomicBitVec::from(&plain);
        assert_eq!(atomic.snapshot(), plain);
        assert_eq!(atomic.count_ones_approx(), plain.count_ones());
    }

    #[test]
    fn snapshot_words_roundtrip_recounts_ones() {
        let bits = AtomicBitVec::new(130);
        for i in [0u64, 63, 64, 127, 129] {
            bits.set(i);
        }
        let words = bits.snapshot_words();
        assert_eq!(words.len(), 3);
        let rebuilt = AtomicBitVec::from_words(130, words);
        assert_eq!(rebuilt.len(), 130);
        assert_eq!(rebuilt.count_ones(), 5);
        // The counter comes from recounting the words, not from the source
        // vector's live counter.
        assert_eq!(rebuilt.count_ones_approx(), 5);
        assert_eq!(rebuilt.snapshot(), bits.snapshot());
    }

    #[test]
    fn from_words_masks_padding_bits() {
        // A corrupt or hand-built word array may carry garbage beyond `len`;
        // those bits must not survive into the vector.
        let rebuilt = AtomicBitVec::from_words(4, vec![u64::MAX]);
        assert_eq!(rebuilt.count_ones(), 4);
        assert_eq!(rebuilt.count_ones_approx(), 4);
        assert!(rebuilt.get(3));
    }

    #[test]
    #[should_panic(expected = "word count does not match")]
    fn from_words_rejects_wrong_word_count() {
        AtomicBitVec::from_words(130, vec![0; 2]);
    }

    #[test]
    fn snapshot_words_racing_inserts_never_invents_bits() {
        // A snapshot taken while writers are mid-flight may miss in-flight
        // bits but must never contain a bit nobody set (the torn-read safety
        // argument: set-only means a torn copy only re-observes real bits).
        let bits = AtomicBitVec::new(4096);
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for i in (0..4096).step_by(3) {
                    bits.set(i);
                }
            });
            for _ in 0..50 {
                let words = bits.snapshot_words();
                let copy = AtomicBitVec::from_words(4096, words);
                for i in 0..4096 {
                    if copy.get(i) {
                        assert!(i % 3 == 0, "snapshot invented bit {i}");
                    }
                }
            }
            writer.join().expect("writer");
        });
        let final_copy = AtomicBitVec::from_words(4096, bits.snapshot_words());
        assert_eq!(final_copy.count_ones(), bits.count_ones());
    }

    #[test]
    fn concurrent_setters_count_exactly() {
        // Four threads race to set the same 256 bits; the RMW guarantees the
        // counter ends exact despite every bit being contended.
        let bits = AtomicBitVec::new(256);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..256 {
                        bits.set(i);
                    }
                });
            }
        });
        assert_eq!(bits.count_ones(), 256);
        assert_eq!(bits.count_ones_approx(), 256);
        assert_eq!(bits.fill_ratio(), 1.0);
    }
}

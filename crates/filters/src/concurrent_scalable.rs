//! A scalable Bloom filter with `&self` insert/query — the forced-growth
//! backend: honest load grows it slice by slice, and a chosen-insertion
//! adversary can both pollute the active slice and force premature growth.
//!
//! The filter is a stack of [`ConcurrentBloomFilter`] slices behind an
//! `RwLock`. The lock only guards the *stack* (growth pushes a slice); the
//! slices themselves stay lock-free, so the hot path costs one uncontended
//! read-lock acquisition on top of the plain filter. Slice `i` targets
//! `f_i = f_0 · r^i` like the sequential
//! [`ScalableBloomFilter`](crate::ScalableBloomFilter), with slice 0 using
//! exactly the base [`FilterParams`] handed to the constructor — so the
//! store's shard geometry statistics stay meaningful.
//!
//! Growth is checked before each insert with a double-checked write lock;
//! racing inserts that slip past the check may overfill a slice by the
//! number of in-flight writers, which only *tightens* the compound
//! false-positive bound (the slice they spill into was sized for them).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use evilbloom_hashes::IndexStrategy;

use crate::backend::{BackendKind, FilterBackend};
use crate::concurrent::ConcurrentBloomFilter;
use crate::params::FilterParams;

/// Construction options for [`ConcurrentScalableFilter`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalableOptions {
    /// Tightening ratio `r` in `(0, 1]`: slice `i` targets `f_0 · r^i`
    /// (Dablooms uses 0.9).
    pub tightening_ratio: f64,
}

impl Default for ScalableOptions {
    fn default() -> Self {
        ScalableOptions { tightening_ratio: 0.9 }
    }
}

/// A concurrently-servable scalable Bloom filter: a growing stack of
/// lock-free slices, grown when the active slice reaches the per-slice
/// capacity `params.capacity`.
///
/// # Examples
///
/// ```
/// use evilbloom_filters::{ConcurrentScalableFilter, FilterParams, ScalableOptions};
/// use evilbloom_hashes::{KirschMitzenmacher, Murmur3_128};
/// use std::sync::Arc;
///
/// let filter = ConcurrentScalableFilter::with_shared_strategy(
///     FilterParams::optimal(100, 0.01),
///     Arc::new(KirschMitzenmacher::new(Murmur3_128)),
///     ScalableOptions::default(),
/// );
/// for i in 0..250 {
///     filter.insert(format!("item-{i}").as_bytes());
/// }
/// assert!(filter.slice_count() >= 3);
/// assert!(filter.contains(b"item-0"));
/// ```
pub struct ConcurrentScalableFilter {
    /// Slice stack, most recent (active) last. Never shrinks.
    slices: RwLock<Vec<Arc<ConcurrentBloomFilter>>>,
    base: FilterParams,
    base_fpp: f64,
    strategy: Arc<dyn IndexStrategy>,
    tightening_ratio: f64,
    inserted: AtomicU64,
}

impl ConcurrentScalableFilter {
    /// Creates an empty filter whose first slice uses exactly `params`;
    /// every slice holds `params.capacity` insertions before growth.
    ///
    /// # Panics
    ///
    /// Panics if `options.tightening_ratio` is outside `(0, 1]`.
    pub fn with_shared_strategy(
        params: FilterParams,
        strategy: Arc<dyn IndexStrategy>,
        options: ScalableOptions,
    ) -> Self {
        assert!(
            options.tightening_ratio > 0.0 && options.tightening_ratio <= 1.0,
            "tightening ratio must be in (0, 1]"
        );
        let first =
            Arc::new(ConcurrentBloomFilter::with_shared_strategy(params, Arc::clone(&strategy)));
        ConcurrentScalableFilter {
            slices: RwLock::new(vec![first]),
            base: params,
            base_fpp: params.expected_fpp(),
            strategy,
            tightening_ratio: options.tightening_ratio,
            inserted: AtomicU64::new(0),
        }
    }

    /// The base (slice-0) sizing parameters.
    pub fn params(&self) -> FilterParams {
        self.base
    }

    /// Parameters slice `index` uses: the base parameters for slice 0,
    /// average-case optimal sizing at the tightened target `f_0 · r^i` after.
    pub fn slice_params(&self, index: usize) -> FilterParams {
        if index == 0 {
            return self.base;
        }
        let fpp = self.base_fpp * self.tightening_ratio.powi(index as i32);
        FilterParams::optimal(self.base.capacity.max(1), fpp.clamp(f64::MIN_POSITIVE, 0.5))
    }

    /// Number of slices currently allocated.
    pub fn slice_count(&self) -> usize {
        self.read_slices().len()
    }

    /// Total insert calls across all slices.
    pub fn inserted(&self) -> u64 {
        self.inserted.load(Ordering::Relaxed)
    }

    /// The shared index strategy.
    pub fn strategy(&self) -> &Arc<dyn IndexStrategy> {
        &self.strategy
    }

    fn read_slices(&self) -> std::sync::RwLockReadGuard<'_, Vec<Arc<ConcurrentBloomFilter>>> {
        self.slices.read().expect("scalable slice lock poisoned")
    }

    /// The active (most recent) slice, growing the stack first if it has
    /// reached the per-slice capacity.
    fn active_slice_for_insert(&self) -> Arc<ConcurrentBloomFilter> {
        {
            let slices = self.read_slices();
            let last = slices.last().expect("at least one slice always exists");
            if last.inserted() < last.params().capacity {
                return Arc::clone(last);
            }
        }
        let mut slices = self.slices.write().expect("scalable slice lock poisoned");
        let last = slices.last().expect("at least one slice always exists");
        // Double-check under the write lock: a racing grower may have
        // already pushed the next slice.
        if last.inserted() >= last.params().capacity {
            let params = self.slice_params(slices.len());
            slices.push(Arc::new(ConcurrentBloomFilter::with_shared_strategy(
                params,
                Arc::clone(&self.strategy),
            )));
        }
        Arc::clone(slices.last().expect("slice just ensured"))
    }

    /// A clone of the active slice handle (what the adversarial view and the
    /// stats pass inspect — growth does not invalidate the returned slice,
    /// it just stops being the active one).
    pub fn active_slice(&self) -> Arc<ConcurrentBloomFilter> {
        Arc::clone(self.read_slices().last().expect("at least one slice always exists"))
    }

    /// Inserts `item` into the active slice (growing first if full);
    /// returns the number of bits this call set 0 → 1.
    pub fn insert(&self, item: &[u8]) -> u32 {
        let slice = self.active_slice_for_insert();
        let fresh = slice.insert(item);
        self.inserted.fetch_add(1, Ordering::Relaxed);
        fresh
    }

    /// Membership query: present if *any* slice reports the item.
    pub fn contains(&self, item: &[u8]) -> bool {
        self.read_slices().iter().rev().any(|slice| slice.contains(item))
    }

    /// Total bits across all slices.
    pub fn total_bits(&self) -> u64 {
        self.read_slices().iter().map(|s| s.m()).sum()
    }

    /// Exact set-bit count across all slices.
    pub fn weight(&self) -> u64 {
        self.read_slices().iter().map(|s| s.hamming_weight()).sum()
    }

    /// O(1) approximate set-bit count across all slices.
    pub fn weight_approx(&self) -> u64 {
        self.read_slices().iter().map(|s| s.hamming_weight_approx()).sum()
    }

    /// Compound false-positive probability `1 - Π (1 - fill_i^k_i)` from
    /// each slice's approximate fill — the forced-growth drift observable.
    pub fn current_false_positive_probability(&self) -> f64 {
        let per: Vec<f64> =
            self.read_slices().iter().map(|s| s.current_false_positive_probability()).collect();
        evilbloom_analysis::scalable::compound_false_positive(&per)
    }

    /// Total memory footprint of all slices in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.read_slices().iter().map(|s| s.params().memory_bytes()).sum()
    }
}

impl core::fmt::Debug for ConcurrentScalableFilter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ConcurrentScalableFilter")
            .field("slices", &self.slice_count())
            .field("inserted", &self.inserted())
            .field("compound_fpp", &self.current_false_positive_probability())
            .finish()
    }
}

impl FilterBackend for ConcurrentScalableFilter {
    const KIND: BackendKind = BackendKind::Scalable;

    type Options = ScalableOptions;

    fn fresh(
        params: FilterParams,
        strategy: Arc<dyn IndexStrategy>,
        options: &Self::Options,
    ) -> Self {
        ConcurrentScalableFilter::with_shared_strategy(params, strategy, *options)
    }

    fn params(&self) -> FilterParams {
        self.base
    }

    fn m(&self) -> u64 {
        self.total_bits()
    }

    fn k(&self) -> u32 {
        self.active_slice().k()
    }

    fn inserted(&self) -> u64 {
        ConcurrentScalableFilter::inserted(self)
    }

    fn insert(&self, item: &[u8]) -> u32 {
        ConcurrentScalableFilter::insert(self, item)
    }

    fn contains(&self, item: &[u8]) -> bool {
        ConcurrentScalableFilter::contains(self, item)
    }

    fn insert_batch(&self, items: &[&[u8]]) -> u64 {
        // Growth can strike mid-batch, so insert item-by-item; the slice
        // handle is re-checked per item exactly like the scalar path.
        let mut fresh = 0u64;
        for item in items {
            fresh += u64::from(ConcurrentScalableFilter::insert(self, item));
        }
        fresh
    }

    fn query_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        let slices = self.read_slices();
        items.iter().map(|item| slices.iter().rev().any(|slice| slice.contains(item))).collect()
    }

    fn weight(&self) -> u64 {
        ConcurrentScalableFilter::weight(self)
    }

    fn weight_approx(&self) -> u64 {
        ConcurrentScalableFilter::weight_approx(self)
    }

    fn memory_bytes(&self) -> u64 {
        ConcurrentScalableFilter::memory_bytes(self)
    }

    fn current_false_positive_probability(&self) -> f64 {
        ConcurrentScalableFilter::current_false_positive_probability(self)
    }

    fn attack_params(&self) -> FilterParams {
        // The craftable region is the *active slice*: that is where chosen
        // insertions land and where pollution concentrates.
        self.active_slice().params()
    }

    fn is_set(&self, index: u64) -> bool {
        self.active_slice().is_set(index)
    }

    fn attack_weight(&self) -> u64 {
        self.active_slice().hamming_weight()
    }

    fn persist_words_len(_params: &FilterParams, _options: &Self::Options) -> Option<u64> {
        // A scalable filter's geometry is load-dependent; it opts out of the
        // fixed-word-array persistence contract.
        None
    }

    fn snapshot_words(&self) -> Option<Vec<u64>> {
        None
    }

    fn from_words(
        _params: FilterParams,
        _strategy: Arc<dyn IndexStrategy>,
        _words: Vec<u64>,
        _inserted: u64,
        _options: &Self::Options,
    ) -> Option<Self> {
        None
    }

    fn options_from_persist_aux(_aux: u8) -> Option<Self::Options> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evilbloom_hashes::{KirschMitzenmacher, Murmur3_128};

    fn strategy() -> Arc<dyn IndexStrategy> {
        Arc::new(KirschMitzenmacher::new(Murmur3_128))
    }

    fn small() -> ConcurrentScalableFilter {
        ConcurrentScalableFilter::with_shared_strategy(
            FilterParams::optimal(100, 0.01),
            strategy(),
            ScalableOptions::default(),
        )
    }

    #[test]
    fn grows_every_capacity_insertions() {
        let filter = small();
        assert_eq!(filter.slice_count(), 1);
        for i in 0..550u32 {
            filter.insert(format!("item-{i}").as_bytes());
        }
        assert_eq!(filter.slice_count(), 6);
        assert_eq!(filter.inserted(), 550);
    }

    #[test]
    fn no_false_negatives_across_slices() {
        let filter = small();
        let items: Vec<String> = (0..450).map(|i| format!("url-{i}")).collect();
        for item in &items {
            filter.insert(item.as_bytes());
        }
        for item in &items {
            assert!(filter.contains(item.as_bytes()), "false negative for {item}");
        }
    }

    #[test]
    fn concurrent_inserts_have_no_false_negatives() {
        let filter = small();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let filter = &filter;
                scope.spawn(move || {
                    for i in 0..300 {
                        filter.insert(format!("t{t}-i{i}").as_bytes());
                    }
                });
            }
        });
        assert_eq!(filter.inserted(), 1200);
        // Racing growers may overfill a slice slightly but never lose items.
        for t in 0..4 {
            for i in 0..300 {
                assert!(filter.contains(format!("t{t}-i{i}").as_bytes()), "t{t}-i{i}");
            }
        }
        assert!(filter.slice_count() >= 12, "slices: {}", filter.slice_count());
    }

    #[test]
    fn later_slices_tighten_their_targets() {
        let filter = small();
        let p0 = filter.slice_params(0);
        let p3 = filter.slice_params(3);
        assert_eq!(p0, filter.params());
        assert!(p3.expected_fpp() < p0.expected_fpp());
        assert!(p3.m >= p0.m, "tighter target needs at least as many bits");
    }

    #[test]
    fn compound_fpp_stays_bounded_under_honest_load() {
        let filter = small();
        for i in 0..1000u32 {
            filter.insert(format!("honest-{i}").as_bytes());
        }
        let compound = filter.current_false_positive_probability();
        assert!(compound < 0.12, "compound fpp {compound}");
    }

    #[test]
    fn attack_surface_is_the_active_slice() {
        let filter = small();
        for i in 0..150u32 {
            filter.insert(format!("x{i}").as_bytes());
        }
        assert_eq!(filter.slice_count(), 2);
        let active = filter.active_slice();
        assert_eq!(FilterBackend::attack_params(&filter), active.params());
        assert_eq!(FilterBackend::attack_weight(&filter), active.hamming_weight());
        let total: u64 = FilterBackend::m(&filter);
        assert!(total > active.m(), "m() spans the whole stack");
    }

    #[test]
    fn persistence_is_refused() {
        let filter = small();
        assert!(FilterBackend::snapshot_words(&filter).is_none());
        assert!(<ConcurrentScalableFilter as FilterBackend>::persist_words_len(
            &FilterParams::optimal(100, 0.01),
            &ScalableOptions::default(),
        )
        .is_none());
        assert!(<ConcurrentScalableFilter as FilterBackend>::options_from_persist_aux(0).is_none());
        assert!(!<ConcurrentScalableFilter as FilterBackend>::supports_remove());
        assert_eq!(FilterBackend::remove(&filter, b"x"), None);
    }

    #[test]
    fn batch_ops_agree_with_scalar_ops() {
        let batch = small();
        let scalar = small();
        let items: Vec<String> = (0..250).map(|i| format!("item-{i}")).collect();
        let refs: Vec<&[u8]> = items.iter().map(|s| s.as_bytes()).collect();
        let fresh_batch = FilterBackend::insert_batch(&batch, &refs);
        let mut fresh_scalar = 0u64;
        for item in &refs {
            fresh_scalar += u64::from(scalar.insert(item));
        }
        assert_eq!(fresh_batch, fresh_scalar);
        assert_eq!(batch.slice_count(), scalar.slice_count());
        let probes: Vec<&[u8]> = refs.iter().copied().chain([b"absent-1".as_slice()]).collect();
        let answers = FilterBackend::query_batch(&batch, &probes);
        for (probe, answer) in probes.iter().zip(&answers) {
            assert_eq!(*answer, scalar.contains(probe), "{probe:?}");
        }
    }

    #[test]
    #[should_panic(expected = "tightening ratio")]
    fn invalid_ratio_rejected() {
        ConcurrentScalableFilter::with_shared_strategy(
            FilterParams::optimal(10, 0.01),
            strategy(),
            ScalableOptions { tightening_ratio: 0.0 },
        );
    }
}

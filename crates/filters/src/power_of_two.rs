//! Power-of-two-choices Bloom filter (Lumetta & Mitzenmacher).
//!
//! The paper's conclusion contrasts its "power of evil choices" with Lumetta
//! and Mitzenmacher's *power of two choices*: give every item two candidate
//! index sets (derived from two hash groups) and, on insertion, use the set
//! that introduces fewer fresh bits. Queries must accept either set, so the
//! false-positive behaviour differs; the structure is included both as an
//! extension and because an adversary can still defeat it by crafting items
//! whose *both* groups are fresh.

use std::sync::Arc;

use evilbloom_hashes::IndexStrategy;

use crate::bitvec::BitVec;
use crate::params::FilterParams;

/// A Bloom filter giving each item the choice between two index groups.
#[derive(Clone)]
pub struct TwoChoiceBloomFilter {
    bits: BitVec,
    params: FilterParams,
    strategy: Arc<dyn IndexStrategy>,
    inserted: u64,
}

impl TwoChoiceBloomFilter {
    /// Creates an empty filter.
    pub fn new<S: IndexStrategy + 'static>(params: FilterParams, strategy: S) -> Self {
        TwoChoiceBloomFilter {
            bits: BitVec::new(params.m),
            params,
            strategy: Arc::new(strategy),
            inserted: 0,
        }
    }

    /// The filter parameters.
    pub fn params(&self) -> FilterParams {
        self.params
    }

    /// Number of insertions performed.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// The two candidate index groups of `item`. Group `g` uses the strategy
    /// with `2k` indexes: the first `k` form group 0, the rest group 1.
    pub fn index_groups(&self, item: &[u8]) -> (Vec<u64>, Vec<u64>) {
        let all = self.strategy.indexes(item, self.params.k * 2, self.params.m);
        let (a, b) = all.split_at(self.params.k as usize);
        (a.to_vec(), b.to_vec())
    }

    fn fresh_bits(&self, indexes: &[u64]) -> u32 {
        indexes.iter().filter(|&&i| !self.bits.get(i)).count() as u32
    }

    /// Inserts `item` using whichever group sets fewer new bits. Returns the
    /// number of bits actually set.
    pub fn insert(&mut self, item: &[u8]) -> u32 {
        let (a, b) = self.index_groups(item);
        let chosen = if self.fresh_bits(&a) <= self.fresh_bits(&b) { a } else { b };
        let mut set = 0;
        for idx in chosen {
            if !self.bits.set(idx) {
                set += 1;
            }
        }
        self.inserted += 1;
        set
    }

    /// Membership query: present if *either* group is fully set.
    pub fn contains(&self, item: &[u8]) -> bool {
        let (a, b) = self.index_groups(item);
        a.iter().all(|&i| self.bits.get(i)) || b.iter().all(|&i| self.bits.get(i))
    }

    /// Hamming weight of the filter.
    pub fn hamming_weight(&self) -> u64 {
        self.bits.count_ones()
    }

    /// Fill ratio of the filter.
    pub fn fill_ratio(&self) -> f64 {
        self.bits.fill_ratio()
    }

    /// Probability that a random non-member is accepted, given the current
    /// fill `p`: either group matches, i.e. `1 - (1 - p^k)^2`.
    pub fn current_false_positive_probability(&self) -> f64 {
        let per_group = self.fill_ratio().powi(self.params.k as i32);
        1.0 - (1.0 - per_group).powi(2)
    }
}

impl core::fmt::Debug for TwoChoiceBloomFilter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TwoChoiceBloomFilter")
            .field("m", &self.params.m)
            .field("k", &self.params.k)
            .field("inserted", &self.inserted)
            .field("weight", &self.hamming_weight())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bloom::BloomFilter;
    use evilbloom_hashes::{Murmur3_128, SaltedHashes};

    fn two_choice(m: u64, k: u32, n: u64) -> TwoChoiceBloomFilter {
        TwoChoiceBloomFilter::new(FilterParams::explicit(m, k, n), SaltedHashes::new(Murmur3_128))
    }

    #[test]
    fn no_false_negatives() {
        let mut filter = two_choice(8192, 4, 500);
        let items: Vec<String> = (0..500).map(|i| format!("item-{i}")).collect();
        for item in &items {
            filter.insert(item.as_bytes());
        }
        for item in &items {
            assert!(filter.contains(item.as_bytes()));
        }
    }

    #[test]
    fn sets_fewer_bits_than_classic_filter() {
        // The whole point of two choices: lower fill for the same load.
        let (m, k, n) = (4096u64, 4u32, 600u64);
        let mut classic =
            BloomFilter::new(FilterParams::explicit(m, k, n), SaltedHashes::new(Murmur3_128));
        let mut choosy = two_choice(m, k, n);
        for i in 0..n {
            let item = format!("load-{i}");
            classic.insert(item.as_bytes());
            choosy.insert(item.as_bytes());
        }
        assert!(
            choosy.hamming_weight() < classic.hamming_weight(),
            "two-choice {} vs classic {}",
            choosy.hamming_weight(),
            classic.hamming_weight()
        );
    }

    #[test]
    fn groups_are_disjoint_views_of_2k_indexes() {
        let filter = two_choice(1024, 3, 100);
        let (a, b) = filter.index_groups(b"item");
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 3);
        assert!(a.iter().chain(&b).all(|&i| i < 1024));
    }

    #[test]
    fn fpp_formula_matches_two_group_acceptance() {
        let mut filter = two_choice(512, 3, 60);
        for i in 0..60 {
            filter.insert(format!("x{i}").as_bytes());
        }
        let p = filter.fill_ratio().powi(3);
        let expect = 1.0 - (1.0 - p) * (1.0 - p);
        assert!((filter.current_false_positive_probability() - expect).abs() < 1e-12);
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let filter = two_choice(256, 2, 10);
        assert!(!filter.contains(b"anything"));
        assert_eq!(filter.current_false_positive_probability(), 0.0);
    }
}

//! Bloom-filter parameter selection — honest, worst-case, and "as deployed".
//!
//! The paper's core message is that parameters are always computed in the
//! *average case*. [`FilterParams`] supports three derivations:
//!
//! * [`FilterParams::optimal`] — the textbook `m = -n ln f / (ln 2)^2`,
//!   `k = (m/n) ln 2` (what pyBloom does);
//! * [`FilterParams::worst_case`] — Section 8.1's adversary-aware parameters
//!   `k = m / (e n)`;
//! * [`FilterParams::squid`] — Squid's deployed choice `m = 5n + 7`, `k = 4`;
//! * [`FilterParams::explicit`] — whatever the caller says (for experiments).

use evilbloom_analysis::{false_positive, worst_case};

/// How a [`FilterParams`] instance was derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamDerivation {
    /// Classic average-case optimal parameters.
    Optimal,
    /// Worst-case (adversary-aware) parameters of Section 8.1.
    WorstCase,
    /// Squid's `m = 5n + 7`, `k = 4` sizing.
    Squid,
    /// Parameters supplied directly by the caller.
    Explicit,
}

/// Sizing parameters of a Bloom filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterParams {
    /// Number of bits (or cells, for counting filters) in the filter.
    pub m: u64,
    /// Number of hash functions / indexes per item.
    pub k: u32,
    /// Intended capacity (number of items the filter is designed for).
    pub capacity: u64,
    /// How these parameters were derived.
    pub derivation: ParamDerivation,
}

impl FilterParams {
    /// Average-case optimal parameters for `capacity` items at target
    /// false-positive probability `target_fpp`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `target_fpp` is not in `(0, 1)`.
    pub fn optimal(capacity: u64, target_fpp: f64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(target_fpp > 0.0 && target_fpp < 1.0, "target must be in (0, 1)");
        let m = false_positive::required_bits_for(capacity, target_fpp);
        let k = false_positive::optimal_k_rounded(m, capacity);
        FilterParams { m, k, capacity, derivation: ParamDerivation::Optimal }
    }

    /// Worst-case (chosen-insertion-adversary-aware) parameters for the same
    /// memory budget as [`FilterParams::optimal`] would use: `k = m / (e n)`.
    pub fn worst_case(capacity: u64, target_fpp: f64) -> Self {
        let optimal = Self::optimal(capacity, target_fpp);
        let k = worst_case::adversarial_optimal_k_rounded(optimal.m, capacity);
        FilterParams { m: optimal.m, k, capacity, derivation: ParamDerivation::WorstCase }
    }

    /// Worst-case parameters for an explicit memory budget of `m` bits.
    pub fn worst_case_for_memory(m: u64, capacity: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let k = worst_case::adversarial_optimal_k_rounded(m, capacity);
        FilterParams { m, k, capacity, derivation: ParamDerivation::WorstCase }
    }

    /// Squid's cache-digest sizing: `m = 5n + 7` bits and `k = 4`.
    pub fn squid(capacity: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        FilterParams { m: 5 * capacity + 7, k: 4, capacity, derivation: ParamDerivation::Squid }
    }

    /// Explicit parameters (used by experiments that sweep `m` and `k`).
    pub fn explicit(m: u64, k: u32, capacity: u64) -> Self {
        assert!(m > 1, "filter must have at least two cells");
        assert!(k > 0, "k must be positive");
        FilterParams { m, k, capacity, derivation: ParamDerivation::Explicit }
    }

    /// Honest false-positive probability at full capacity.
    pub fn expected_fpp(&self) -> f64 {
        false_positive::false_positive_approx(self.m, self.capacity, self.k)
    }

    /// Adversarial false-positive probability after `capacity` chosen
    /// insertions (Equation (7)).
    pub fn adversarial_fpp(&self) -> f64 {
        worst_case::adversarial_false_positive(self.m, self.capacity, self.k)
    }

    /// Bits of digest required per item (`k * ceil(log2 m)`), the recycling
    /// budget of Section 8.2.
    pub fn digest_bits_required(&self) -> u32 {
        self.k * (64 - (self.m - 1).leading_zeros())
    }

    /// Memory footprint in bytes of a plain bit-vector filter with these
    /// parameters.
    pub fn memory_bytes(&self) -> u64 {
        self.m.div_ceil(8)
    }
}

impl core::fmt::Display for FilterParams {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "m={} k={} capacity={} ({:?}, f={:.3e}, f_adv={:.3e})",
            self.m,
            self.k,
            self.capacity,
            self.derivation,
            self.expected_fpp(),
            self.adversarial_fpp()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_params_meet_target() {
        for &f in &[0.01, 2f64.powi(-10), 2f64.powi(-20)] {
            let p = FilterParams::optimal(100_000, f);
            assert!(p.expected_fpp() <= f * 1.1, "target {f} got {}", p.expected_fpp());
            assert_eq!(p.derivation, ParamDerivation::Optimal);
        }
    }

    #[test]
    fn worst_case_uses_fewer_hashes() {
        let honest = FilterParams::optimal(10_000, 0.001);
        let hardened = FilterParams::worst_case(10_000, 0.001);
        assert_eq!(honest.m, hardened.m);
        assert!(hardened.k < honest.k);
        // Worst-case parameters trade a slightly higher honest FPP for a
        // much lower adversarial FPP.
        assert!(hardened.adversarial_fpp() < honest.adversarial_fpp());
        assert!(hardened.expected_fpp() > honest.expected_fpp());
    }

    #[test]
    fn k_ratio_close_to_e_ln2() {
        let honest = FilterParams::optimal(1_000_000, 2f64.powi(-10));
        let hardened = FilterParams::worst_case(1_000_000, 2f64.powi(-10));
        let ratio = f64::from(honest.k) / f64::from(hardened.k);
        assert!((ratio - 1.88).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn squid_sizing_matches_section7() {
        let p = FilterParams::squid(200);
        assert_eq!(p.m, 1007);
        assert_eq!(p.k, 4);
        assert!((p.expected_fpp() - 0.09).abs() < 0.01);
        // 51 clean + 100 polluting URLs: the digest used in the paper's
        // experiment is 5*151 + 7 = 762 bits.
        assert_eq!(FilterParams::squid(151).m, 762);
    }

    #[test]
    fn explicit_params_pass_through() {
        let p = FilterParams::explicit(3200, 4, 600);
        assert_eq!((p.m, p.k, p.capacity), (3200, 4, 600));
        assert!((p.expected_fpp() - 0.077).abs() < 0.005);
        assert!((p.adversarial_fpp() - 0.316).abs() < 0.01);
    }

    #[test]
    fn digest_bits_and_memory() {
        let p = FilterParams::explicit(1 << 20, 10, 70_000);
        assert_eq!(p.digest_bits_required(), 200);
        assert_eq!(p.memory_bytes(), 131_072);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        FilterParams::optimal(0, 0.01);
    }

    #[test]
    #[should_panic(expected = "target must be in")]
    fn bad_target_rejected() {
        FilterParams::optimal(10, 1.5);
    }

    #[test]
    fn display_is_informative() {
        let text = FilterParams::explicit(3200, 4, 600).to_string();
        assert!(text.contains("m=3200"));
        assert!(text.contains("k=4"));
    }
}

//! The classic Bloom filter (Section 3 of the paper).

use std::sync::Arc;

use evilbloom_hashes::IndexStrategy;

use crate::bitvec::BitVec;
use crate::params::FilterParams;

/// A classic Bloom filter: an `m`-bit vector, `k` indexes per item derived by
/// a pluggable [`IndexStrategy`].
///
/// The filter intentionally exposes its internal state (`is_set`, `support`,
/// `fill_ratio`): the paper's adversary models assume the implementation is
/// public and the filter contents are known or partially known, and the
/// attack engines in `evilbloom-attacks` rely on that visibility. Production
/// deployments would not expose the state, but hiding it is *not* a defence —
/// a chosen-insertion adversary can reconstruct it by replaying her own
/// insertions.
///
/// # Examples
///
/// ```
/// use evilbloom_filters::{BloomFilter, FilterParams};
/// use evilbloom_hashes::{SaltedHashes, Murmur3_32};
///
/// let params = FilterParams::optimal(1000, 0.01);
/// let mut filter = BloomFilter::new(params, SaltedHashes::new(Murmur3_32));
/// filter.insert(b"http://example.org/");
/// assert!(filter.contains(b"http://example.org/"));
/// assert!(!filter.contains(b"http://example.org/other"));
/// ```
#[derive(Clone)]
pub struct BloomFilter {
    bits: BitVec,
    params: FilterParams,
    strategy: Arc<dyn IndexStrategy>,
    inserted: u64,
}

impl BloomFilter {
    /// Creates an empty filter with the given parameters and index strategy.
    pub fn new<S: IndexStrategy + 'static>(params: FilterParams, strategy: S) -> Self {
        Self::with_shared_strategy(params, Arc::new(strategy))
    }

    /// Creates an empty filter sharing an already-boxed strategy (used when
    /// many filters must use the same keyed strategy instance).
    pub fn with_shared_strategy(params: FilterParams, strategy: Arc<dyn IndexStrategy>) -> Self {
        BloomFilter { bits: BitVec::new(params.m), params, strategy, inserted: 0 }
    }

    /// The filter's sizing parameters.
    pub fn params(&self) -> FilterParams {
        self.params
    }

    /// Number of bits in the filter (`m`).
    pub fn m(&self) -> u64 {
        self.params.m
    }

    /// Number of indexes per item (`k`).
    pub fn k(&self) -> u32 {
        self.params.k
    }

    /// Number of `insert` calls performed so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Name of the index-derivation strategy in use.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// The `k` indexes of `item` under this filter's strategy — `I_x` in the
    /// paper's notation.
    pub fn indexes(&self, item: &[u8]) -> Vec<u64> {
        self.strategy.indexes(item, self.params.k, self.params.m)
    }

    /// Inserts `item`. Returns the number of bits that flipped from 0 to 1
    /// (0 means the item was already "present", i.e. all its bits were set).
    pub fn insert(&mut self, item: &[u8]) -> u32 {
        let indexes = self.indexes(item);
        self.insert_indexes(&indexes)
    }

    /// Inserts an item by its pre-computed indexes. Exposed because the
    /// chosen-insertion attack engine derives indexes itself while searching.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn insert_indexes(&mut self, indexes: &[u64]) -> u32 {
        let mut fresh = 0;
        for &i in indexes {
            if !self.bits.set(i) {
                fresh += 1;
            }
        }
        self.inserted += 1;
        fresh
    }

    /// Membership query: true if every index of `item` is set (a positive
    /// answer may be a false positive).
    pub fn contains(&self, item: &[u8]) -> bool {
        self.indexes(item).iter().all(|&i| self.bits.get(i))
    }

    /// Membership query by pre-computed indexes.
    pub fn contains_indexes(&self, indexes: &[u64]) -> bool {
        indexes.iter().all(|&i| self.bits.get(i))
    }

    /// Number of indexes of `item` that are already set — the quantity a
    /// worst-case-latency query maximises for the first `k - 1` probes.
    pub fn matching_bits(&self, item: &[u8]) -> u32 {
        self.indexes(item).iter().filter(|&&i| self.bits.get(i)).count() as u32
    }

    /// Whether the bit at `index` is set.
    pub fn is_set(&self, index: u64) -> bool {
        self.bits.get(index)
    }

    /// Hamming weight `wH(z)` of the filter.
    pub fn hamming_weight(&self) -> u64 {
        self.bits.count_ones()
    }

    /// Fraction of set bits.
    pub fn fill_ratio(&self) -> f64 {
        self.bits.fill_ratio()
    }

    /// The support `supp(z)`: positions of all set bits.
    pub fn support(&self) -> Vec<u64> {
        self.bits.support()
    }

    /// Positions of all unset bits (what a chosen-insertion adversary aims
    /// for).
    pub fn zero_positions(&self) -> Vec<u64> {
        self.bits.zero_positions()
    }

    /// Whether every bit is set; such a filter answers "present" to every
    /// query.
    pub fn is_saturated(&self) -> bool {
        self.bits.count_zeros() == 0
    }

    /// Empirical false-positive probability given the current fill:
    /// `(wH(z)/m)^k`.
    pub fn current_false_positive_probability(&self) -> f64 {
        evilbloom_analysis::false_positive::false_positive_for_fill(
            self.fill_ratio(),
            self.params.k,
        )
    }

    /// Read-only view of the underlying bit vector (e.g. to ship a cache
    /// digest to a peer).
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// The shared index strategy (used to build a concurrent filter that is
    /// bit-for-bit compatible with this one).
    pub fn strategy_arc(&self) -> &Arc<dyn IndexStrategy> {
        &self.strategy
    }

    /// Overwrites the filter's bits and insert counter from a snapshot taken
    /// elsewhere (e.g. frozen from a concurrent filter with the same
    /// strategy).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length differs from `m`.
    pub fn absorb_bits(&mut self, bits: &BitVec, inserted: u64) {
        assert_eq!(bits.len(), self.params.m, "snapshot length must equal m");
        self.bits = bits.clone();
        self.inserted = inserted;
    }

    /// Clears the filter.
    pub fn reset(&mut self) {
        self.bits.reset();
        self.inserted = 0;
    }
}

impl core::fmt::Debug for BloomFilter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BloomFilter")
            .field("m", &self.params.m)
            .field("k", &self.params.k)
            .field("inserted", &self.inserted)
            .field("weight", &self.hamming_weight())
            .field("strategy", &self.strategy.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evilbloom_hashes::{
        KeyedIndexes, KirschMitzenmacher, Murmur3_32, SaltedCrypto, Sha256, SipHash24, SipKey,
    };

    fn small_filter() -> BloomFilter {
        BloomFilter::new(FilterParams::explicit(128, 3, 10), SaltedHashesMurmur())
    }

    #[allow(non_snake_case)]
    fn SaltedHashesMurmur() -> evilbloom_hashes::SaltedHashes<Murmur3_32> {
        evilbloom_hashes::SaltedHashes::new(Murmur3_32)
    }

    #[test]
    fn no_false_negatives() {
        let mut filter =
            BloomFilter::new(FilterParams::optimal(500, 0.01), KirschMitzenmacher::new(Murmur3_32));
        let items: Vec<String> = (0..500).map(|i| format!("http://site{i}.example/")).collect();
        for item in &items {
            filter.insert(item.as_bytes());
        }
        for item in &items {
            assert!(filter.contains(item.as_bytes()), "false negative for {item}");
        }
    }

    #[test]
    fn false_positive_rate_close_to_design() {
        let params = FilterParams::optimal(2000, 0.02);
        let mut filter = BloomFilter::new(params, SaltedCrypto::new(Box::new(Sha256)));
        for i in 0..2000 {
            filter.insert(format!("member-{i}").as_bytes());
        }
        let probes = 20_000;
        let fp =
            (0..probes).filter(|i| filter.contains(format!("non-member-{i}").as_bytes())).count();
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.04, "observed fp rate {rate}");
        assert!(rate > 0.005, "suspiciously low fp rate {rate}");
    }

    #[test]
    fn insert_reports_fresh_bits() {
        let mut filter = small_filter();
        let fresh = filter.insert(b"first");
        assert!((1..=3).contains(&fresh));
        // Re-inserting the same item sets nothing new.
        assert_eq!(filter.insert(b"first"), 0);
        assert_eq!(filter.inserted(), 2);
    }

    #[test]
    fn weight_grows_by_at_most_k_per_insert() {
        let mut filter = small_filter();
        let mut last = 0;
        for i in 0..20 {
            filter.insert(format!("item-{i}").as_bytes());
            let w = filter.hamming_weight();
            assert!(w >= last && w <= last + 3);
            last = w;
        }
    }

    #[test]
    fn contains_indexes_matches_contains() {
        let mut filter = small_filter();
        filter.insert(b"present");
        let idx = filter.indexes(b"present");
        assert!(filter.contains_indexes(&idx));
        let idx_absent = filter.indexes(b"absent-item");
        assert_eq!(filter.contains(b"absent-item"), filter.contains_indexes(&idx_absent));
    }

    #[test]
    fn matching_bits_counts_partial_hits() {
        let mut filter = small_filter();
        assert_eq!(filter.matching_bits(b"anything"), 0);
        filter.insert(b"anything");
        assert_eq!(filter.matching_bits(b"anything"), 3);
    }

    #[test]
    fn current_fpp_tracks_fill() {
        let mut filter = small_filter();
        assert_eq!(filter.current_false_positive_probability(), 0.0);
        for i in 0..30 {
            filter.insert(format!("x{i}").as_bytes());
        }
        let fpp = filter.current_false_positive_probability();
        assert!(fpp > 0.0 && fpp < 1.0);
        let expected = filter.fill_ratio().powi(3);
        assert!((fpp - expected).abs() < 1e-12);
    }

    #[test]
    fn saturation_answers_yes_to_everything() {
        let mut filter = BloomFilter::new(FilterParams::explicit(64, 2, 8), SaltedHashesMurmur());
        let mut i = 0;
        while !filter.is_saturated() {
            filter.insert(format!("spam-{i}").as_bytes());
            i += 1;
            assert!(i < 10_000, "saturation should happen quickly on 64 bits");
        }
        for probe in ["a", "b", "c", "never inserted"] {
            assert!(filter.contains(probe.as_bytes()));
        }
        assert_eq!(filter.current_false_positive_probability(), 1.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut filter = small_filter();
        filter.insert(b"x");
        filter.reset();
        assert_eq!(filter.hamming_weight(), 0);
        assert_eq!(filter.inserted(), 0);
        assert!(!filter.contains(b"x"));
    }

    #[test]
    fn keyed_filters_with_different_keys_disagree_internally() {
        let params = FilterParams::explicit(1 << 12, 4, 100);
        let mut a = BloomFilter::new(
            params,
            KeyedIndexes::new(Box::new(SipHash24::new(SipKey::new(1, 1)))),
        );
        let mut b = BloomFilter::new(
            params,
            KeyedIndexes::new(Box::new(SipHash24::new(SipKey::new(2, 2)))),
        );
        a.insert(b"item");
        b.insert(b"item");
        assert_ne!(a.support(), b.support());
        // Both still answer membership correctly.
        assert!(a.contains(b"item") && b.contains(b"item"));
    }

    #[test]
    fn support_and_zero_positions_partition_the_filter() {
        let mut filter = small_filter();
        for i in 0..5 {
            filter.insert(format!("i{i}").as_bytes());
        }
        let ones = filter.support().len() as u64;
        let zeros = filter.zero_positions().len() as u64;
        assert_eq!(ones + zeros, filter.m());
        assert_eq!(ones, filter.hamming_weight());
    }

    #[test]
    fn debug_output_mentions_strategy() {
        let filter = small_filter();
        let text = format!("{filter:?}");
        assert!(text.contains("MurmurHash3"));
    }
}

//! A cache-line *blocked* Bloom filter — the performance-lab fast path.
//!
//! The classic filter of [`crate::BloomFilter`] touches `k` random cache
//! lines per operation; once `m` outgrows the last-level cache every probe is
//! a memory stall. The blocked layout (Putze, Sanders & Singler, JEA 2009)
//! confines all `k` bits of an item to one 512-bit (cache-line-sized) block:
//!
//! 1. a single [`HashStrategy`] call yields the pair `(h1, h2)`;
//! 2. `h1` selects the block;
//! 3. the `k` in-block offsets are derived from the pair by
//!    Kirsch–Mitzenmacher double hashing with an odd stride, so they are
//!    pairwise distinct and need no further hashing.
//!
//! One hash call, one cache line, zero allocations per operation. The price
//! is a slightly higher false-positive probability (block-load variance) —
//! quantified exactly by [`evilbloom_analysis::blocked`], and the filter's
//! [`BlockedBloomFilter::current_false_positive_probability`] uses that
//! corrected formula.
//!
//! **Security is unchanged from the classic filter**: with a predictable pair
//! source the block *and* the in-block offsets are computable offline, so the
//! paper's chosen-insertion and query-only adversaries apply verbatim (the
//! filter implements `TargetFilter` in `evilbloom-attacks`). Hardening means
//! a keyed pair source ([`evilbloom_hashes::KeyedPair`]), exactly as for the
//! classic filter.

use std::sync::Arc;

use evilbloom_hashes::HashStrategy;

use crate::params::FilterParams;

/// Bits per block: one x86-64 cache line.
pub const BLOCK_BITS: u64 = 512;
/// 64-bit words per block.
pub const BLOCK_WORDS: usize = (BLOCK_BITS / 64) as usize;

/// A cache-line blocked Bloom filter: every operation computes one hash pair
/// and touches exactly one 512-bit block.
///
/// # Examples
///
/// ```
/// use evilbloom_filters::{BlockedBloomFilter, FilterParams};
/// use evilbloom_hashes::Murmur128Pair;
///
/// let mut filter = BlockedBloomFilter::new(FilterParams::optimal(10_000, 0.01), Murmur128Pair);
/// filter.insert(b"http://example.org/");
/// assert!(filter.contains(b"http://example.org/"));
/// ```
pub struct BlockedBloomFilter {
    words: Vec<u64>,
    num_blocks: u64,
    params: FilterParams,
    strategy: Arc<dyn HashStrategy>,
    inserted: u64,
}

impl BlockedBloomFilter {
    /// Creates an empty filter. The requested `params.m` is rounded **up** to
    /// a whole number of 512-bit blocks (the effective size is
    /// [`BlockedBloomFilter::m`]).
    ///
    /// # Panics
    ///
    /// Panics if `params.k` exceeds [`BLOCK_BITS`].
    pub fn new<S: HashStrategy + 'static>(params: FilterParams, strategy: S) -> Self {
        Self::with_shared_strategy(params, Arc::new(strategy))
    }

    /// Creates an empty filter sharing an already-boxed strategy.
    pub fn with_shared_strategy(params: FilterParams, strategy: Arc<dyn HashStrategy>) -> Self {
        assert!(
            u64::from(params.k) <= BLOCK_BITS,
            "k = {} exceeds the {BLOCK_BITS}-bit block",
            params.k
        );
        let num_blocks = params.m.div_ceil(BLOCK_BITS).max(1);
        let mut params = params;
        params.m = num_blocks * BLOCK_BITS;
        BlockedBloomFilter {
            words: vec![0u64; num_blocks as usize * BLOCK_WORDS],
            num_blocks,
            params,
            strategy,
            inserted: 0,
        }
    }

    /// The filter's sizing parameters (with `m` rounded up to whole blocks).
    pub fn params(&self) -> FilterParams {
        self.params
    }

    /// Total number of bits (`m`, a multiple of [`BLOCK_BITS`]).
    pub fn m(&self) -> u64 {
        self.params.m
    }

    /// Number of bits set per item (`k`).
    pub fn k(&self) -> u32 {
        self.params.k
    }

    /// Number of 512-bit blocks.
    pub fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    /// Number of `insert` calls performed so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Name of the hash-pair strategy in use.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// The hash pair of `item` under this filter's strategy.
    pub fn hash_pair(&self, item: &[u8]) -> (u64, u64) {
        self.strategy.hash_pair(item)
    }

    /// The block `item` maps to.
    pub fn block_of(&self, item: &[u8]) -> u64 {
        self.strategy.hash_pair(item).0 % self.num_blocks
    }

    /// The `k` pairwise-distinct in-block bit offsets of a pair: KM double
    /// hashing `(h2 + i·stride) mod 512` with an odd stride drawn from the
    /// pair's upper half (odd ⇒ coprime with 512 ⇒ distinct for `k ≤ 512`).
    #[inline]
    fn offsets(pair: (u64, u64), k: u32) -> impl Iterator<Item = u64> {
        let stride = (pair.0 >> 32) | 1;
        (0..u64::from(k))
            .map(move |i| pair.1.wrapping_add(i.wrapping_mul(stride)) & (BLOCK_BITS - 1))
    }

    /// The `k` *global* bit positions of `item` (block base + in-block
    /// offsets) — the adversary-facing view `TargetFilter` exposes, and the
    /// coordinates the attack engines search over.
    pub fn bit_positions(&self, item: &[u8]) -> Vec<u64> {
        let pair = self.strategy.hash_pair(item);
        let base = (pair.0 % self.num_blocks) * BLOCK_BITS;
        Self::offsets(pair, self.params.k).map(|o| base + o).collect()
    }

    /// Whether the global bit at `index` is set.
    pub fn is_set(&self, index: u64) -> bool {
        assert!(index < self.params.m, "bit index out of range");
        self.words[(index / 64) as usize] >> (index % 64) & 1 == 1
    }

    #[inline]
    fn block_words(&self, block: u64) -> &[u64] {
        let start = block as usize * BLOCK_WORDS;
        &self.words[start..start + BLOCK_WORDS]
    }

    /// Inserts by a precomputed pair; returns bits freshly set.
    #[inline]
    fn insert_pair(&mut self, pair: (u64, u64)) -> u32 {
        let start = (pair.0 % self.num_blocks) as usize * BLOCK_WORDS;
        let mut fresh = 0;
        for offset in Self::offsets(pair, self.params.k) {
            let word = &mut self.words[start + (offset / 64) as usize];
            let mask = 1u64 << (offset % 64);
            fresh += u32::from(*word & mask == 0);
            *word |= mask;
        }
        self.inserted += 1;
        fresh
    }

    /// Queries by a precomputed pair.
    #[inline]
    fn contains_pair(&self, pair: (u64, u64)) -> bool {
        let block = self.block_words(pair.0 % self.num_blocks);
        Self::offsets(pair, self.params.k)
            .all(|offset| block[(offset / 64) as usize] >> (offset % 64) & 1 == 1)
    }

    /// Inserts `item`: one hash call, one cache line. Returns the number of
    /// bits that flipped from 0 to 1.
    pub fn insert(&mut self, item: &[u8]) -> u32 {
        self.insert_pair(self.strategy.hash_pair(item))
    }

    /// Membership query (positives may be false positives).
    pub fn contains(&self, item: &[u8]) -> bool {
        self.contains_pair(self.strategy.hash_pair(item))
    }

    /// Batch insert with hash precompute: phase 1 hashes every item into a
    /// pair buffer, phase 2 replays the (purely memory-bound) block updates.
    /// Bit-identical to calling [`BlockedBloomFilter::insert`] per item, in
    /// order. Returns the total number of freshly set bits.
    pub fn insert_batch<I: AsRef<[u8]>>(&mut self, items: &[I]) -> u64 {
        let pairs: Vec<(u64, u64)> =
            items.iter().map(|item| self.strategy.hash_pair(item.as_ref())).collect();
        pairs.into_iter().map(|pair| u64::from(self.insert_pair(pair))).sum()
    }

    /// Batch query with hash precompute; answers are in input order and
    /// bit-identical to per-item [`BlockedBloomFilter::contains`] calls.
    pub fn query_batch<I: AsRef<[u8]>>(&self, items: &[I]) -> Vec<bool> {
        let pairs: Vec<(u64, u64)> =
            items.iter().map(|item| self.strategy.hash_pair(item.as_ref())).collect();
        pairs.into_iter().map(|pair| self.contains_pair(pair)).collect()
    }

    /// Exact Hamming weight.
    pub fn hamming_weight(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Fraction of set bits.
    pub fn fill_ratio(&self) -> f64 {
        self.hamming_weight() as f64 / self.params.m as f64
    }

    /// Number of set bits in one block (block-load skew is what the
    /// corrected analysis quantifies).
    pub fn block_weight(&self, block: u64) -> u32 {
        self.block_words(block).iter().map(|w| w.count_ones()).sum()
    }

    /// Expected false-positive probability at the current insertion count,
    /// using the **corrected** blocked-filter formula (Poisson mixture over
    /// block loads) rather than the textbook one.
    pub fn current_false_positive_probability(&self) -> f64 {
        evilbloom_analysis::blocked::blocked_false_positive(
            self.params.m,
            self.inserted,
            self.params.k,
            BLOCK_BITS,
        )
    }

    /// Clears the filter.
    pub fn reset(&mut self) {
        self.words.fill(0);
        self.inserted = 0;
    }
}

impl core::fmt::Debug for BlockedBloomFilter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BlockedBloomFilter")
            .field("m", &self.params.m)
            .field("blocks", &self.num_blocks)
            .field("k", &self.params.k)
            .field("inserted", &self.inserted)
            .field("strategy", &self.strategy.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evilbloom_hashes::{
        DoubleHasher, KeyedPair, Murmur128Pair, Murmur3_128, SipHash24, SipKey,
    };

    fn filter(m: u64, k: u32, capacity: u64) -> BlockedBloomFilter {
        BlockedBloomFilter::new(FilterParams::explicit(m, k, capacity), Murmur128Pair)
    }

    #[test]
    fn rounds_m_up_to_whole_blocks() {
        let f = filter(1000, 4, 100);
        assert_eq!(f.m(), 1024);
        assert_eq!(f.num_blocks(), 2);
        let exact = filter(2048, 4, 100);
        assert_eq!(exact.m(), 2048);
        assert_eq!(exact.num_blocks(), 4);
    }

    #[test]
    fn no_false_negatives() {
        let mut f = BlockedBloomFilter::new(FilterParams::optimal(2000, 0.01), Murmur128Pair);
        let items: Vec<String> = (0..2000).map(|i| format!("http://site{i}.example/")).collect();
        for item in &items {
            f.insert(item.as_bytes());
        }
        for item in &items {
            assert!(f.contains(item.as_bytes()), "false negative for {item}");
        }
    }

    #[test]
    fn insert_sets_exactly_k_distinct_bits_in_one_block() {
        let mut f = filter(1 << 16, 8, 1000);
        for i in 0..200 {
            let item = format!("item-{i}");
            let before = f.hamming_weight();
            let positions = f.bit_positions(item.as_bytes());
            let fresh = f.insert(item.as_bytes());
            // k pairwise-distinct positions, all in one block.
            let mut unique = positions.clone();
            unique.sort_unstable();
            unique.dedup();
            assert_eq!(unique.len(), 8, "offsets must be pairwise distinct");
            let block = positions[0] / BLOCK_BITS;
            assert!(positions.iter().all(|&p| p / BLOCK_BITS == block));
            assert_eq!(f.hamming_weight(), before + u64::from(fresh));
            assert!(positions.iter().all(|&p| f.is_set(p)));
        }
    }

    #[test]
    fn bit_positions_match_probed_bits() {
        let mut f = filter(1 << 14, 5, 100);
        f.insert(b"only-item");
        // Exactly the bits named by bit_positions are set.
        let expected: std::collections::HashSet<u64> =
            f.bit_positions(b"only-item").into_iter().collect();
        for bit in 0..f.m() {
            assert_eq!(f.is_set(bit), expected.contains(&bit), "bit {bit}");
        }
    }

    #[test]
    fn batch_is_bit_identical_to_per_item_calls() {
        let items: Vec<String> = (0..500).map(|i| format!("item-{i}")).collect();
        let mut one_by_one = filter(1 << 14, 6, 500);
        let mut fresh_loop = 0u64;
        for item in &items {
            fresh_loop += u64::from(one_by_one.insert(item.as_bytes()));
        }
        let mut batched = filter(1 << 14, 6, 500);
        let fresh_batch = batched.insert_batch(&items);
        assert_eq!(fresh_batch, fresh_loop);
        assert_eq!(batched.words, one_by_one.words);
        assert_eq!(batched.inserted(), one_by_one.inserted());

        let probes: Vec<String> =
            items.iter().cloned().chain((0..200).map(|i| format!("absent-{i}"))).collect();
        let batch_answers = batched.query_batch(&probes);
        for (probe, answer) in probes.iter().zip(&batch_answers) {
            assert_eq!(*answer, one_by_one.contains(probe.as_bytes()), "{probe}");
        }
    }

    #[test]
    fn corrected_fpp_tracks_observed_rate() {
        let mut f =
            BlockedBloomFilter::new(FilterParams::explicit(1 << 15, 5, 4000), Murmur128Pair);
        for i in 0..4000 {
            f.insert(format!("member-{i}").as_bytes());
        }
        let predicted = f.current_false_positive_probability();
        let probes = 100_000;
        let fp = (0..probes).filter(|i| f.contains(format!("non-member-{i}").as_bytes())).count();
        let observed = fp as f64 / probes as f64;
        assert!(observed < predicted * 2.0, "observed {observed} predicted {predicted}");
        assert!(observed > predicted / 2.0, "observed {observed} predicted {predicted}");
        // And the corrected prediction exceeds the naive unblocked formula.
        let naive = evilbloom_analysis::false_positive::false_positive_exact(f.m(), 4000, 5);
        assert!(predicted > naive);
    }

    #[test]
    fn double_hasher_and_keyed_sources_work() {
        let mut plain = BlockedBloomFilter::new(
            FilterParams::optimal(500, 0.01),
            DoubleHasher::new(Murmur3_128),
        );
        let mut keyed = BlockedBloomFilter::new(
            FilterParams::optimal(500, 0.01),
            KeyedPair::new(Box::new(SipHash24::new(SipKey::new(7, 9)))),
        );
        for i in 0..500 {
            let item = format!("x{i}");
            plain.insert(item.as_bytes());
            keyed.insert(item.as_bytes());
        }
        for i in 0..500 {
            let item = format!("x{i}");
            assert!(plain.contains(item.as_bytes()));
            assert!(keyed.contains(item.as_bytes()));
        }
        // Different pair sources place items differently.
        assert_ne!(plain.bit_positions(b"x0"), keyed.bit_positions(b"x0"));
    }

    #[test]
    #[should_panic(expected = "exceeds the 512-bit block")]
    fn oversized_k_rejected() {
        filter(1 << 14, 513, 10);
    }

    #[test]
    fn reset_clears_state() {
        let mut f = filter(1 << 12, 4, 100);
        f.insert(b"x");
        f.reset();
        assert_eq!(f.hamming_weight(), 0);
        assert_eq!(f.inserted(), 0);
        assert!(!f.contains(b"x"));
    }

    #[test]
    fn debug_output_mentions_blocks_and_strategy() {
        let text = format!("{:?}", filter(2048, 4, 10));
        assert!(text.contains("blocks"));
        assert!(text.contains("MurmurHash3-x64-128-pair"));
    }
}

//! A Bloom filter with `&self` insert and query, safe to share across
//! threads — the building block of the `evilbloom-store` serving layer.
//!
//! The concurrent filter derives indexes exactly like [`BloomFilter`] with
//! the same [`IndexStrategy`], so a concurrent filter and a sequential one
//! built over the same strategy are bit-for-bit equivalent after the same
//! insert set (see the property tests in `evilbloom-store`). Bloom filters
//! are monotone — bits are only ever set — which is what makes the lock-free
//! `fetch_or` formulation correct: there is no state a racing insert can
//! corrupt, and a query that observes all `k` bits set would also have
//! observed them under any serialisation of the inserts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use evilbloom_hashes::IndexStrategy;

use crate::atomic_bitvec::AtomicBitVec;
use crate::bitvec::BitVec;
use crate::bloom::BloomFilter;
use crate::params::FilterParams;

/// A lock-free concurrent Bloom filter: `&self` insert/query over an
/// [`AtomicBitVec`], plus O(1) approximate fill statistics.
///
/// # Examples
///
/// ```
/// use evilbloom_filters::{ConcurrentBloomFilter, FilterParams};
/// use evilbloom_hashes::{KirschMitzenmacher, Murmur3_128};
///
/// let filter = ConcurrentBloomFilter::new(
///     FilterParams::optimal(1000, 0.01),
///     KirschMitzenmacher::new(Murmur3_128),
/// );
/// std::thread::scope(|scope| {
///     for t in 0..4 {
///         let filter = &filter;
///         scope.spawn(move || {
///             for i in 0..250 {
///                 filter.insert(format!("worker-{t}-item-{i}").as_bytes());
///             }
///         });
///     }
/// });
/// assert!(filter.contains(b"worker-0-item-0"));
/// assert_eq!(filter.inserted(), 1000);
/// ```
pub struct ConcurrentBloomFilter {
    bits: AtomicBitVec,
    params: FilterParams,
    strategy: Arc<dyn IndexStrategy>,
    inserted: AtomicU64,
}

impl ConcurrentBloomFilter {
    /// Creates an empty filter with the given parameters and index strategy.
    pub fn new<S: IndexStrategy + 'static>(params: FilterParams, strategy: S) -> Self {
        Self::with_shared_strategy(params, Arc::new(strategy))
    }

    /// Creates an empty filter sharing an already-boxed strategy (used when
    /// many filters must use the same keyed strategy instance).
    pub fn with_shared_strategy(params: FilterParams, strategy: Arc<dyn IndexStrategy>) -> Self {
        ConcurrentBloomFilter {
            bits: AtomicBitVec::new(params.m),
            params,
            strategy,
            inserted: AtomicU64::new(0),
        }
    }

    /// The filter's sizing parameters.
    pub fn params(&self) -> FilterParams {
        self.params
    }

    /// Number of bits in the filter (`m`).
    pub fn m(&self) -> u64 {
        self.params.m
    }

    /// Number of indexes per item (`k`).
    pub fn k(&self) -> u32 {
        self.params.k
    }

    /// Number of `insert` calls performed so far (racing inserts are all
    /// counted; the value is exact once writers are quiescent).
    pub fn inserted(&self) -> u64 {
        self.inserted.load(Ordering::Relaxed)
    }

    /// Name of the index-derivation strategy in use.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// The shared index strategy (used by the store to build query batches
    /// that amortise hashing).
    pub fn strategy(&self) -> &Arc<dyn IndexStrategy> {
        &self.strategy
    }

    /// The `k` indexes of `item` under this filter's strategy.
    pub fn indexes(&self, item: &[u8]) -> Vec<u64> {
        self.strategy.indexes(item, self.params.k, self.params.m)
    }

    /// Inserts `item`. Returns the number of bits this call flipped from 0
    /// to 1 (racing inserts of overlapping items split the credit — each
    /// flipped bit is credited to exactly one caller).
    pub fn insert(&self, item: &[u8]) -> u32 {
        let indexes = self.indexes(item);
        self.insert_indexes(&indexes)
    }

    /// Inserts an item by its pre-computed indexes (the batch APIs derive
    /// indexes once and reuse them).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn insert_indexes(&self, indexes: &[u64]) -> u32 {
        let mut fresh = 0;
        for &i in indexes {
            if !self.bits.set(i) {
                fresh += 1;
            }
        }
        self.inserted.fetch_add(1, Ordering::Relaxed);
        fresh
    }

    /// Membership query: true if every index of `item` is set. Positive
    /// answers may be false positives; an item whose insert call returned
    /// before this query began is always found.
    pub fn contains(&self, item: &[u8]) -> bool {
        self.indexes(item).iter().all(|&i| self.bits.get(i))
    }

    /// Membership query by pre-computed indexes.
    pub fn contains_indexes(&self, indexes: &[u64]) -> bool {
        indexes.iter().all(|&i| self.bits.get(i))
    }

    /// Batch insert with hash precompute: derives the indexes of every item
    /// into one flat buffer (a single allocation for the whole batch, via
    /// [`IndexStrategy::indexes_into`]) and then replays the memory-bound bit
    /// sets. Bit-identical to per-item [`ConcurrentBloomFilter::insert`]
    /// calls; returns the total number of bits flipped 0 → 1 by this batch.
    pub fn insert_batch<I: AsRef<[u8]>>(&self, items: &[I]) -> u64 {
        let k = self.params.k as usize;
        let mut indexes = Vec::with_capacity(items.len() * k);
        for item in items {
            self.strategy.indexes_into(item.as_ref(), self.params.k, self.params.m, &mut indexes);
        }
        let mut fresh = 0u64;
        for &i in &indexes {
            if !self.bits.set(i) {
                fresh += 1;
            }
        }
        self.inserted.fetch_add(items.len() as u64, Ordering::Relaxed);
        fresh
    }

    /// Batch membership query with hash precompute; answers are in input
    /// order and bit-identical to per-item [`ConcurrentBloomFilter::contains`]
    /// calls.
    pub fn query_batch<I: AsRef<[u8]>>(&self, items: &[I]) -> Vec<bool> {
        let k = self.params.k as usize;
        let mut indexes = Vec::with_capacity(items.len() * k);
        for item in items {
            self.strategy.indexes_into(item.as_ref(), self.params.k, self.params.m, &mut indexes);
        }
        indexes.chunks_exact(k).map(|chunk| chunk.iter().all(|&i| self.bits.get(i))).collect()
    }

    /// Whether the bit at `index` is set.
    pub fn is_set(&self, index: u64) -> bool {
        self.bits.get(index)
    }

    /// Exact Hamming weight (scans the whole vector).
    pub fn hamming_weight(&self) -> u64 {
        self.bits.count_ones()
    }

    /// O(1) approximate Hamming weight from the running counter.
    pub fn hamming_weight_approx(&self) -> u64 {
        self.bits.count_ones_approx()
    }

    /// O(1) approximate fraction of set bits.
    pub fn fill_ratio_approx(&self) -> f64 {
        self.bits.fill_ratio_approx()
    }

    /// Exact fraction of set bits.
    pub fn fill_ratio(&self) -> f64 {
        self.bits.fill_ratio()
    }

    /// Whether every bit is set (exact scan).
    pub fn is_saturated(&self) -> bool {
        self.bits.count_zeros() == 0
    }

    /// Empirical false-positive probability `(wH(z)/m)^k` from the O(1)
    /// approximate fill — the statistic the store's saturation alarms watch.
    pub fn current_false_positive_probability(&self) -> f64 {
        evilbloom_analysis::false_positive::false_positive_for_fill(
            self.fill_ratio_approx(),
            self.params.k,
        )
    }

    /// Word-wise consistent snapshot of the bit vector (for equivalence
    /// tests, persistence, or shipping a digest to a peer).
    pub fn snapshot(&self) -> BitVec {
        self.bits.snapshot()
    }

    /// Racy raw-word copy of the bit vector under `&self` — the persistence
    /// fast path (no per-bit rebuild). See
    /// [`AtomicBitVec::snapshot_words`] for the torn-read safety argument;
    /// any ones count for the copy must be recounted from these words, not
    /// taken from [`ConcurrentBloomFilter::hamming_weight_approx`].
    pub fn snapshot_words(&self) -> Vec<u64> {
        self.bits.snapshot_words()
    }

    /// Rebuilds a filter from a persisted word array (the recovery inverse
    /// of [`ConcurrentBloomFilter::snapshot_words`]). The bit-vector
    /// ones-counter is recounted from `words`; `inserted` restores the
    /// insert-call statistic, which is independent of the bit count.
    ///
    /// # Panics
    ///
    /// Panics if `words` is not exactly `params.m.div_ceil(64)` words long.
    pub fn from_words(
        params: FilterParams,
        strategy: Arc<dyn IndexStrategy>,
        words: Vec<u64>,
        inserted: u64,
    ) -> Self {
        ConcurrentBloomFilter {
            bits: AtomicBitVec::from_words(params.m, words),
            params,
            strategy,
            inserted: AtomicU64::new(inserted),
        }
    }

    /// Freezes the current contents into a sequential [`BloomFilter`]
    /// sharing the same strategy (e.g. to hand a stable copy to the
    /// single-threaded analysis tooling).
    pub fn to_sequential(&self) -> BloomFilter {
        let mut filter = BloomFilter::with_shared_strategy(self.params, Arc::clone(&self.strategy));
        filter.absorb_bits(&self.snapshot(), self.inserted());
        filter
    }
}

impl From<&BloomFilter> for ConcurrentBloomFilter {
    /// Promotes a sequential filter onto the concurrent path, sharing its
    /// strategy and copying its bits.
    fn from(filter: &BloomFilter) -> Self {
        let concurrent = ConcurrentBloomFilter::with_shared_strategy(
            filter.params(),
            Arc::clone(filter.strategy_arc()),
        );
        for index in filter.bits().iter_ones() {
            concurrent.bits.set(index);
        }
        concurrent.inserted.store(filter.inserted(), Ordering::Relaxed);
        concurrent
    }
}

impl core::fmt::Debug for ConcurrentBloomFilter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ConcurrentBloomFilter")
            .field("m", &self.params.m)
            .field("k", &self.params.k)
            .field("inserted", &self.inserted())
            .field("weight_approx", &self.hamming_weight_approx())
            .field("strategy", &self.strategy.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evilbloom_hashes::{KirschMitzenmacher, Murmur3_128, SaltedCrypto, Sha256};

    fn small_filter() -> ConcurrentBloomFilter {
        ConcurrentBloomFilter::new(
            FilterParams::explicit(512, 3, 40),
            KirschMitzenmacher::new(Murmur3_128),
        )
    }

    #[test]
    fn no_false_negatives_single_thread() {
        let filter = ConcurrentBloomFilter::new(
            FilterParams::optimal(500, 0.01),
            SaltedCrypto::new(Box::new(Sha256)),
        );
        let items: Vec<String> = (0..500).map(|i| format!("http://site{i}.example/")).collect();
        for item in &items {
            filter.insert(item.as_bytes());
        }
        for item in &items {
            assert!(filter.contains(item.as_bytes()), "false negative for {item}");
        }
    }

    #[test]
    fn insert_reports_fresh_bits() {
        let filter = small_filter();
        let fresh = filter.insert(b"first");
        assert!((1..=3).contains(&fresh));
        assert_eq!(filter.insert(b"first"), 0);
        assert_eq!(filter.inserted(), 2);
    }

    #[test]
    fn matches_sequential_filter_bit_for_bit() {
        let strategy: Arc<dyn IndexStrategy> = Arc::new(KirschMitzenmacher::new(Murmur3_128));
        let params = FilterParams::explicit(2048, 4, 200);
        let concurrent = ConcurrentBloomFilter::with_shared_strategy(params, Arc::clone(&strategy));
        let mut sequential = BloomFilter::with_shared_strategy(params, strategy);
        for i in 0..200 {
            let item = format!("item-{i}");
            concurrent.insert(item.as_bytes());
            sequential.insert(item.as_bytes());
        }
        assert_eq!(concurrent.snapshot(), *sequential.bits());
        assert_eq!(concurrent.hamming_weight(), sequential.hamming_weight());
        assert_eq!(concurrent.hamming_weight_approx(), sequential.hamming_weight());
    }

    #[test]
    fn parallel_inserts_have_no_false_negatives() {
        let filter = ConcurrentBloomFilter::new(
            FilterParams::optimal(2000, 0.01),
            KirschMitzenmacher::new(Murmur3_128),
        );
        std::thread::scope(|scope| {
            for t in 0..4 {
                let filter = &filter;
                scope.spawn(move || {
                    for i in 0..500 {
                        filter.insert(format!("t{t}-i{i}").as_bytes());
                    }
                });
            }
        });
        for t in 0..4 {
            for i in 0..500 {
                assert!(filter.contains(format!("t{t}-i{i}").as_bytes()));
            }
        }
        assert_eq!(filter.inserted(), 2000);
        assert_eq!(filter.hamming_weight(), filter.hamming_weight_approx());
    }

    #[test]
    fn round_trips_with_sequential_filter() {
        let mut sequential = BloomFilter::new(
            FilterParams::explicit(1024, 3, 50),
            KirschMitzenmacher::new(Murmur3_128),
        );
        for i in 0..50 {
            sequential.insert(format!("x{i}").as_bytes());
        }
        let concurrent = ConcurrentBloomFilter::from(&sequential);
        assert_eq!(concurrent.snapshot(), *sequential.bits());
        assert_eq!(concurrent.inserted(), sequential.inserted());
        let back = concurrent.to_sequential();
        assert_eq!(back.bits(), sequential.bits());
        assert_eq!(back.inserted(), sequential.inserted());
        for i in 0..50 {
            assert!(back.contains(format!("x{i}").as_bytes()));
        }
    }

    #[test]
    fn batch_apis_are_bit_identical_to_per_item_calls() {
        let params = FilterParams::explicit(4096, 5, 400);
        let loop_filter = ConcurrentBloomFilter::new(params, KirschMitzenmacher::new(Murmur3_128));
        let batch_filter = ConcurrentBloomFilter::new(params, KirschMitzenmacher::new(Murmur3_128));
        let items: Vec<String> = (0..400).map(|i| format!("item-{i}")).collect();
        let mut fresh_loop = 0u64;
        for item in &items {
            fresh_loop += u64::from(loop_filter.insert(item.as_bytes()));
        }
        let fresh_batch = batch_filter.insert_batch(&items);
        assert_eq!(fresh_batch, fresh_loop);
        assert_eq!(batch_filter.snapshot(), loop_filter.snapshot());
        assert_eq!(batch_filter.inserted(), loop_filter.inserted());
        assert_eq!(batch_filter.hamming_weight(), batch_filter.hamming_weight_approx());

        let probes: Vec<String> =
            items.iter().cloned().chain((0..100).map(|i| format!("absent-{i}"))).collect();
        let answers = batch_filter.query_batch(&probes);
        for (probe, answer) in probes.iter().zip(&answers) {
            assert_eq!(*answer, loop_filter.contains(probe.as_bytes()), "{probe}");
        }
        assert!(answers[..400].iter().all(|&a| a), "no false negatives in batch");
    }

    #[test]
    fn word_snapshot_roundtrips_bit_for_bit() {
        let strategy: Arc<dyn IndexStrategy> = Arc::new(KirschMitzenmacher::new(Murmur3_128));
        let params = FilterParams::explicit(1000, 4, 100); // m not a multiple of 64
        let filter = ConcurrentBloomFilter::with_shared_strategy(params, Arc::clone(&strategy));
        for i in 0..100 {
            filter.insert(format!("item-{i}").as_bytes());
        }
        let words = filter.snapshot_words();
        let restored =
            ConcurrentBloomFilter::from_words(params, strategy, words, filter.inserted());
        assert_eq!(restored.snapshot(), filter.snapshot());
        assert_eq!(restored.inserted(), filter.inserted());
        assert_eq!(restored.hamming_weight(), filter.hamming_weight());
        // Recounted, not copied: the approx counter matches the exact scan.
        assert_eq!(restored.hamming_weight_approx(), restored.hamming_weight());
        for i in 0..100 {
            assert!(restored.contains(format!("item-{i}").as_bytes()));
        }
    }

    #[test]
    fn fpp_estimate_tracks_approx_fill() {
        let filter = small_filter();
        assert_eq!(filter.current_false_positive_probability(), 0.0);
        for i in 0..40 {
            filter.insert(format!("y{i}").as_bytes());
        }
        let expected = filter.fill_ratio_approx().powi(3);
        assert!((filter.current_false_positive_probability() - expected).abs() < 1e-12);
    }

    #[test]
    fn debug_output_mentions_strategy() {
        let text = format!("{:?}", small_filter());
        assert!(text.contains("Kirsch-Mitzenmacher"));
    }
}

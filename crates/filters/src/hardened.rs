//! Hardened Bloom filters — the countermeasures of Section 8 packaged as
//! ready-to-use constructors.
//!
//! Three defence levels are provided:
//!
//! * [`HardeningLevel::WorstCaseParameters`] — keep a fast unkeyed hash but
//!   choose `k = m/(en)` so the *adversarial* false-positive probability is
//!   minimised (defeats chosen-insertion adversaries, not query-only ones);
//! * [`HardeningLevel::KeyedSipHash`] — derive indexes with SipHash-2-4 under
//!   a secret key (defeats every adversary, cheapest keyed option);
//! * [`HardeningLevel::KeyedHmac`] — derive indexes from a recycled
//!   HMAC-SHA-256 digest (defeats every adversary, strongest margin).

use rand::RngCore;

use evilbloom_hashes::{
    Hmac, IndexStrategy, KeyedIndexes, Murmur3_128, SaltedHashes, Sha256, SipHash24, SipKey,
};

use crate::bloom::BloomFilter;
use crate::concurrent::ConcurrentBloomFilter;
use crate::params::FilterParams;

/// Which countermeasure to apply when building a hardened filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HardeningLevel {
    /// Worst-case parameters (Section 8.1) with a fast unkeyed hash.
    WorstCaseParameters,
    /// Secret-keyed SipHash-2-4 indexes (Section 8.2, Table 2).
    KeyedSipHash,
    /// Secret-keyed HMAC-SHA-256 indexes (Section 8.2, Table 2).
    KeyedHmac,
}

/// A 256-bit secret key for the keyed countermeasures.
///
/// The `Debug` implementation is deliberately redacted: the whole point of
/// the Section 8.2 countermeasure is that the key never reaches the
/// adversary, and keys have a way of reaching adversaries through logs.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct FilterKey(pub [u8; 32]);

impl core::fmt::Debug for FilterKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("FilterKey(..)")
    }
}

impl FilterKey {
    /// Draws a fresh random key from the given RNG.
    pub fn generate<R: RngCore>(rng: &mut R) -> Self {
        let mut key = [0u8; 32];
        rng.fill_bytes(&mut key);
        FilterKey(key)
    }

    /// Builds a key from explicit bytes (e.g. loaded from configuration).
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        FilterKey(bytes)
    }

    fn sip_key(&self) -> SipKey {
        SipKey::new(
            u64::from_le_bytes(self.0[0..8].try_into().expect("8-byte slice")),
            u64::from_le_bytes(self.0[8..16].try_into().expect("8-byte slice")),
        )
    }
}

/// Builds a hardened Bloom filter for `capacity` items at target
/// false-positive probability `target_fpp`.
///
/// The returned filter uses:
///
/// * worst-case parameters and MurmurHash3 when `level` is
///   [`HardeningLevel::WorstCaseParameters`] (the key is ignored);
/// * average-case parameters and a keyed strategy otherwise (the paper's
///   point is that keyed hashing lets you *keep* the optimal parameters).
pub fn hardened_filter(
    capacity: u64,
    target_fpp: f64,
    level: HardeningLevel,
    key: &FilterKey,
) -> BloomFilter {
    let (params, strategy) = hardened_parts(capacity, target_fpp, level, key);
    BloomFilter::with_shared_strategy(params, strategy.into())
}

/// The concurrent counterpart of [`hardened_filter`]: same parameters, same
/// index strategy, but with lock-free `&self` insert/query — what each shard
/// of the `evilbloom-store` serving layer holds.
pub fn hardened_concurrent_filter(
    capacity: u64,
    target_fpp: f64,
    level: HardeningLevel,
    key: &FilterKey,
) -> ConcurrentBloomFilter {
    let (params, strategy) = hardened_parts(capacity, target_fpp, level, key);
    ConcurrentBloomFilter::with_shared_strategy(params, strategy.into())
}

/// The sizing parameters a hardened filter at `level` uses: worst-case
/// parameters for the unkeyed level (the Section 8.1 trade), average-case
/// optimal for the keyed levels (the paper's point being that keyed hashing
/// lets you keep them).
pub fn hardened_params(capacity: u64, target_fpp: f64, level: HardeningLevel) -> FilterParams {
    match level {
        HardeningLevel::WorstCaseParameters => FilterParams::worst_case(capacity, target_fpp),
        HardeningLevel::KeyedSipHash | HardeningLevel::KeyedHmac => {
            FilterParams::optimal(capacity, target_fpp)
        }
    }
}

/// Parameter + strategy selection shared by the sequential and concurrent
/// hardened constructors, so the two stay index-compatible by construction.
/// Public so the generic store can build any
/// [`FilterBackend`](crate::backend::FilterBackend) — counting, scalable —
/// over the same keyed strategies.
pub fn hardened_parts(
    capacity: u64,
    target_fpp: f64,
    level: HardeningLevel,
    key: &FilterKey,
) -> (FilterParams, Box<dyn IndexStrategy>) {
    let params = hardened_params(capacity, target_fpp, level);
    let strategy: Box<dyn IndexStrategy> = match level {
        HardeningLevel::WorstCaseParameters => Box::new(SaltedHashes::new(Murmur3_128)),
        HardeningLevel::KeyedSipHash => {
            Box::new(KeyedIndexes::new(Box::new(SipHash24::new(key.sip_key()))))
        }
        HardeningLevel::KeyedHmac => {
            Box::new(KeyedIndexes::new(Box::new(Hmac::new(Box::new(Sha256), &key.0))))
        }
    };
    (params, strategy)
}

/// Report comparing a deployment's exposure before and after hardening,
/// produced by [`audit`].
#[derive(Debug, Clone, PartialEq)]
pub struct HardeningAudit {
    /// Honest false-positive probability of the original parameters.
    pub baseline_fpp: f64,
    /// Adversarial false-positive probability of the original parameters.
    pub baseline_adversarial_fpp: f64,
    /// Whether the original index derivation is predictable by an adversary.
    pub baseline_predictable: bool,
    /// Honest false-positive probability after hardening.
    pub hardened_fpp: f64,
    /// Adversarial false-positive probability after hardening. For keyed
    /// strategies the offline attack no longer applies, so this equals the
    /// honest probability.
    pub hardened_adversarial_fpp: f64,
}

/// Audits a `(params, strategy)` deployment against the chosen hardening
/// level, returning the before/after false-positive exposure.
pub fn audit(
    params: FilterParams,
    strategy: &dyn IndexStrategy,
    level: HardeningLevel,
) -> HardeningAudit {
    let baseline_fpp = params.expected_fpp();
    let baseline_adversarial_fpp = params.adversarial_fpp();
    let baseline_predictable = strategy.is_predictable();

    let hardened_params = match level {
        HardeningLevel::WorstCaseParameters => {
            FilterParams::worst_case_for_memory(params.m, params.capacity)
        }
        _ => params,
    };
    let hardened_fpp = hardened_params.expected_fpp();
    let hardened_adversarial_fpp = match level {
        HardeningLevel::WorstCaseParameters => hardened_params.adversarial_fpp(),
        // A keyed strategy removes the adversary's ability to choose items,
        // so the worst case collapses to the honest case.
        _ => hardened_fpp,
    };

    HardeningAudit {
        baseline_fpp,
        baseline_adversarial_fpp,
        baseline_predictable,
        hardened_fpp,
        hardened_adversarial_fpp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evilbloom_hashes::{KirschMitzenmacher, Murmur3_32};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> FilterKey {
        FilterKey::generate(&mut StdRng::seed_from_u64(42))
    }

    #[test]
    fn all_levels_build_working_filters() {
        for level in [
            HardeningLevel::WorstCaseParameters,
            HardeningLevel::KeyedSipHash,
            HardeningLevel::KeyedHmac,
        ] {
            let mut filter = hardened_filter(1000, 0.01, level, &key());
            for i in 0..1000 {
                filter.insert(format!("item-{i}").as_bytes());
            }
            for i in 0..1000 {
                assert!(filter.contains(format!("item-{i}").as_bytes()), "{level:?}");
            }
        }
    }

    #[test]
    fn keyed_levels_are_unpredictable() {
        let sip = hardened_filter(100, 0.01, HardeningLevel::KeyedSipHash, &key());
        let hmac = hardened_filter(100, 0.01, HardeningLevel::KeyedHmac, &key());
        let worst = hardened_filter(100, 0.01, HardeningLevel::WorstCaseParameters, &key());
        assert!(sip.strategy_name().contains("SipHash"));
        assert!(hmac.strategy_name().contains("HMAC"));
        assert!(worst.strategy_name().contains("Murmur"));
    }

    #[test]
    fn different_keys_produce_different_layouts() {
        let key_a = FilterKey::from_bytes([1u8; 32]);
        let key_b = FilterKey::from_bytes([2u8; 32]);
        let mut a = hardened_filter(100, 0.01, HardeningLevel::KeyedSipHash, &key_a);
        let mut b = hardened_filter(100, 0.01, HardeningLevel::KeyedSipHash, &key_b);
        a.insert(b"same item");
        b.insert(b"same item");
        assert_ne!(a.support(), b.support());
    }

    #[test]
    fn worst_case_level_reduces_adversarial_exposure() {
        let params = FilterParams::optimal(10_000, 0.001);
        let strategy = KirschMitzenmacher::new(Murmur3_32);
        let report = audit(params, &strategy, HardeningLevel::WorstCaseParameters);
        assert!(report.baseline_predictable);
        assert!(report.hardened_adversarial_fpp < report.baseline_adversarial_fpp);
        // ...at the cost of a worse honest false-positive probability.
        assert!(report.hardened_fpp > report.baseline_fpp);
    }

    #[test]
    fn keyed_level_collapses_worst_case_to_honest_case() {
        let params = FilterParams::optimal(10_000, 0.001);
        let strategy = KirschMitzenmacher::new(Murmur3_32);
        let report = audit(params, &strategy, HardeningLevel::KeyedSipHash);
        assert_eq!(report.hardened_adversarial_fpp, report.hardened_fpp);
        assert!(report.hardened_adversarial_fpp < report.baseline_adversarial_fpp);
        assert_eq!(report.hardened_fpp, report.baseline_fpp);
    }

    #[test]
    fn generated_keys_differ() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_ne!(FilterKey::generate(&mut rng), FilterKey::generate(&mut rng));
    }

    #[test]
    fn key_debug_output_is_redacted() {
        // A distinctive byte pattern: were any byte printed (decimal or hex),
        // the rendering would contain "171", "0xab" or "ab".
        let key = FilterKey::from_bytes([0xAB; 32]);
        let text = format!("{key:?}");
        assert_eq!(text, "FilterKey(..)");
        assert!(
            !text.contains("171") && !text.to_lowercase().contains("ab"),
            "debug output must not leak key bytes: {text}"
        );
        // The same holds inside composite debug output.
        let nested = format!("{:?}", Some(key));
        assert_eq!(nested, "Some(FilterKey(..))");
    }

    #[test]
    fn concurrent_and_sequential_hardened_filters_agree() {
        for level in [
            HardeningLevel::WorstCaseParameters,
            HardeningLevel::KeyedSipHash,
            HardeningLevel::KeyedHmac,
        ] {
            let key = key();
            let mut sequential = hardened_filter(400, 0.01, level, &key);
            let concurrent = hardened_concurrent_filter(400, 0.01, level, &key);
            assert_eq!(sequential.params(), concurrent.params(), "{level:?}");
            for i in 0..400 {
                let item = format!("item-{i}");
                sequential.insert(item.as_bytes());
                concurrent.insert(item.as_bytes());
            }
            assert_eq!(concurrent.snapshot(), *sequential.bits(), "{level:?}");
        }
    }
}

//! Hardened Bloom filters — the countermeasures of Section 8 packaged as
//! ready-to-use constructors.
//!
//! Three defence levels are provided:
//!
//! * [`HardeningLevel::WorstCaseParameters`] — keep a fast unkeyed hash but
//!   choose `k = m/(en)` so the *adversarial* false-positive probability is
//!   minimised (defeats chosen-insertion adversaries, not query-only ones);
//! * [`HardeningLevel::KeyedSipHash`] — derive indexes with SipHash-2-4 under
//!   a secret key (defeats every adversary, cheapest keyed option);
//! * [`HardeningLevel::KeyedHmac`] — derive indexes from a recycled
//!   HMAC-SHA-256 digest (defeats every adversary, strongest margin).

use rand::RngCore;

use evilbloom_hashes::{
    Hmac, IndexStrategy, KeyedIndexes, Murmur3_128, SaltedHashes, Sha256, SipHash24, SipKey,
};

use crate::bloom::BloomFilter;
use crate::params::FilterParams;

/// Which countermeasure to apply when building a hardened filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HardeningLevel {
    /// Worst-case parameters (Section 8.1) with a fast unkeyed hash.
    WorstCaseParameters,
    /// Secret-keyed SipHash-2-4 indexes (Section 8.2, Table 2).
    KeyedSipHash,
    /// Secret-keyed HMAC-SHA-256 indexes (Section 8.2, Table 2).
    KeyedHmac,
}

/// A 256-bit secret key for the keyed countermeasures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterKey(pub [u8; 32]);

impl FilterKey {
    /// Draws a fresh random key from the given RNG.
    pub fn generate<R: RngCore>(rng: &mut R) -> Self {
        let mut key = [0u8; 32];
        rng.fill_bytes(&mut key);
        FilterKey(key)
    }

    /// Builds a key from explicit bytes (e.g. loaded from configuration).
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        FilterKey(bytes)
    }

    fn sip_key(&self) -> SipKey {
        SipKey::new(
            u64::from_le_bytes(self.0[0..8].try_into().expect("8-byte slice")),
            u64::from_le_bytes(self.0[8..16].try_into().expect("8-byte slice")),
        )
    }
}

/// Builds a hardened Bloom filter for `capacity` items at target
/// false-positive probability `target_fpp`.
///
/// The returned filter uses:
///
/// * worst-case parameters and MurmurHash3 when `level` is
///   [`HardeningLevel::WorstCaseParameters`] (the key is ignored);
/// * average-case parameters and a keyed strategy otherwise (the paper's
///   point is that keyed hashing lets you *keep* the optimal parameters).
pub fn hardened_filter(
    capacity: u64,
    target_fpp: f64,
    level: HardeningLevel,
    key: &FilterKey,
) -> BloomFilter {
    match level {
        HardeningLevel::WorstCaseParameters => {
            let params = FilterParams::worst_case(capacity, target_fpp);
            BloomFilter::new(params, SaltedHashes::new(Murmur3_128))
        }
        HardeningLevel::KeyedSipHash => {
            let params = FilterParams::optimal(capacity, target_fpp);
            let prf = SipHash24::new(key.sip_key());
            BloomFilter::new(params, KeyedIndexes::new(Box::new(prf)))
        }
        HardeningLevel::KeyedHmac => {
            let params = FilterParams::optimal(capacity, target_fpp);
            let prf = Hmac::new(Box::new(Sha256), &key.0);
            BloomFilter::new(params, KeyedIndexes::new(Box::new(prf)))
        }
    }
}

/// Report comparing a deployment's exposure before and after hardening,
/// produced by [`audit`].
#[derive(Debug, Clone, PartialEq)]
pub struct HardeningAudit {
    /// Honest false-positive probability of the original parameters.
    pub baseline_fpp: f64,
    /// Adversarial false-positive probability of the original parameters.
    pub baseline_adversarial_fpp: f64,
    /// Whether the original index derivation is predictable by an adversary.
    pub baseline_predictable: bool,
    /// Honest false-positive probability after hardening.
    pub hardened_fpp: f64,
    /// Adversarial false-positive probability after hardening. For keyed
    /// strategies the offline attack no longer applies, so this equals the
    /// honest probability.
    pub hardened_adversarial_fpp: f64,
}

/// Audits a `(params, strategy)` deployment against the chosen hardening
/// level, returning the before/after false-positive exposure.
pub fn audit(
    params: FilterParams,
    strategy: &dyn IndexStrategy,
    level: HardeningLevel,
) -> HardeningAudit {
    let baseline_fpp = params.expected_fpp();
    let baseline_adversarial_fpp = params.adversarial_fpp();
    let baseline_predictable = strategy.is_predictable();

    let hardened_params = match level {
        HardeningLevel::WorstCaseParameters => {
            FilterParams::worst_case_for_memory(params.m, params.capacity)
        }
        _ => params,
    };
    let hardened_fpp = hardened_params.expected_fpp();
    let hardened_adversarial_fpp = match level {
        HardeningLevel::WorstCaseParameters => hardened_params.adversarial_fpp(),
        // A keyed strategy removes the adversary's ability to choose items,
        // so the worst case collapses to the honest case.
        _ => hardened_fpp,
    };

    HardeningAudit {
        baseline_fpp,
        baseline_adversarial_fpp,
        baseline_predictable,
        hardened_fpp,
        hardened_adversarial_fpp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evilbloom_hashes::{KirschMitzenmacher, Murmur3_32};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> FilterKey {
        FilterKey::generate(&mut StdRng::seed_from_u64(42))
    }

    #[test]
    fn all_levels_build_working_filters() {
        for level in [
            HardeningLevel::WorstCaseParameters,
            HardeningLevel::KeyedSipHash,
            HardeningLevel::KeyedHmac,
        ] {
            let mut filter = hardened_filter(1000, 0.01, level, &key());
            for i in 0..1000 {
                filter.insert(format!("item-{i}").as_bytes());
            }
            for i in 0..1000 {
                assert!(filter.contains(format!("item-{i}").as_bytes()), "{level:?}");
            }
        }
    }

    #[test]
    fn keyed_levels_are_unpredictable() {
        let sip = hardened_filter(100, 0.01, HardeningLevel::KeyedSipHash, &key());
        let hmac = hardened_filter(100, 0.01, HardeningLevel::KeyedHmac, &key());
        let worst = hardened_filter(100, 0.01, HardeningLevel::WorstCaseParameters, &key());
        assert!(sip.strategy_name().contains("SipHash"));
        assert!(hmac.strategy_name().contains("HMAC"));
        assert!(worst.strategy_name().contains("Murmur"));
    }

    #[test]
    fn different_keys_produce_different_layouts() {
        let key_a = FilterKey::from_bytes([1u8; 32]);
        let key_b = FilterKey::from_bytes([2u8; 32]);
        let mut a = hardened_filter(100, 0.01, HardeningLevel::KeyedSipHash, &key_a);
        let mut b = hardened_filter(100, 0.01, HardeningLevel::KeyedSipHash, &key_b);
        a.insert(b"same item");
        b.insert(b"same item");
        assert_ne!(a.support(), b.support());
    }

    #[test]
    fn worst_case_level_reduces_adversarial_exposure() {
        let params = FilterParams::optimal(10_000, 0.001);
        let strategy = KirschMitzenmacher::new(Murmur3_32);
        let report = audit(params, &strategy, HardeningLevel::WorstCaseParameters);
        assert!(report.baseline_predictable);
        assert!(report.hardened_adversarial_fpp < report.baseline_adversarial_fpp);
        // ...at the cost of a worse honest false-positive probability.
        assert!(report.hardened_fpp > report.baseline_fpp);
    }

    #[test]
    fn keyed_level_collapses_worst_case_to_honest_case() {
        let params = FilterParams::optimal(10_000, 0.001);
        let strategy = KirschMitzenmacher::new(Murmur3_32);
        let report = audit(params, &strategy, HardeningLevel::KeyedSipHash);
        assert_eq!(report.hardened_adversarial_fpp, report.hardened_fpp);
        assert!(report.hardened_adversarial_fpp < report.baseline_adversarial_fpp);
        assert_eq!(report.hardened_fpp, report.baseline_fpp);
    }

    #[test]
    fn generated_keys_differ() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_ne!(FilterKey::generate(&mut rng), FilterKey::generate(&mut rng));
    }
}

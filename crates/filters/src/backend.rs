//! The [`FilterBackend`] trait — one concurrent-serving contract that every
//! filter family the paper attacks can implement.
//!
//! The paper's Table 2 breaks *every* deployed Bloom-filter variant with
//! chosen inputs: plain filters by pollution, counting filters by deletion,
//! scalable filters by forced growth. The store serves whichever family a
//! deployment picks through this trait: lock-free `&self` insert/query,
//! batch operations, an optional `remove` capability (counting filters), a
//! word-array persistence contract (`snapshot_words`/`from_words`) and the
//! fill/fresh-bit statistics the drift gauge is built on. Each backend also
//! exposes its *attack surface* — the `(m, k)` region a chosen-input
//! adversary can craft against — so `AdversarialStoreView` works uniformly
//! across families.

use std::sync::Arc;

use evilbloom_hashes::IndexStrategy;

use crate::concurrent::ConcurrentBloomFilter;
use crate::params::FilterParams;

/// Which filter family a backend implements. Carried in [`FilterParams`]-level
/// configuration, surfaced in `STATS` and the metrics exposition, and written
/// into persisted snapshot headers (via [`BackendKind::code`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// Plain bit-vector Bloom filter (the Section 3 layout).
    #[default]
    Bloom,
    /// Counting filter with per-cell counters and deletion support
    /// (Fan et al.; the Section 4.3 deletion adversary's target).
    Counting,
    /// Scalable filter: a growing stack of slices (Almeida et al.; the
    /// forced-growth target).
    Scalable,
}

impl BackendKind {
    /// Every kind, in wire-code order.
    pub const ALL: [BackendKind; 3] =
        [BackendKind::Bloom, BackendKind::Counting, BackendKind::Scalable];

    /// Stable single-byte code used on the wire and in persisted headers.
    pub fn code(self) -> u8 {
        match self {
            BackendKind::Bloom => 0,
            BackendKind::Counting => 1,
            BackendKind::Scalable => 2,
        }
    }

    /// Inverse of [`BackendKind::code`].
    pub fn from_code(code: u8) -> Option<BackendKind> {
        match code {
            0 => Some(BackendKind::Bloom),
            1 => Some(BackendKind::Counting),
            2 => Some(BackendKind::Scalable),
            _ => None,
        }
    }

    /// Human-readable name (used as a metric label value).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Bloom => "bloom",
            BackendKind::Counting => "counting",
            BackendKind::Scalable => "scalable",
        }
    }
}

impl core::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

impl core::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "bloom" => Ok(BackendKind::Bloom),
            "counting" => Ok(BackendKind::Counting),
            "scalable" => Ok(BackendKind::Scalable),
            other => Err(format!("unknown backend '{other}' (expected bloom|counting|scalable)")),
        }
    }
}

/// A concurrently-servable filter family.
///
/// Everything takes `&self`: backends must be safe to share across the
/// store's worker threads. The contract mirrors what the serving layer
/// needs:
///
/// * **insert/query** (scalar and batch) returning fresh-cell counts — the
///   numerator of the `bits_per_insert_recent` drift gauge that fingerprints
///   the paper's chosen-insertion attack;
/// * **optional removal** — [`FilterBackend::remove`] returns `None` on
///   families without deletion (plain, scalable) and `Some(was_present)` on
///   counting filters, which the wire layer maps to a typed `Unsupported`
///   error;
/// * **persistence** — [`FilterBackend::snapshot_words`] /
///   [`FilterBackend::from_words`] move state through the snapshot/WAL
///   machinery as raw `u64` words, or opt out (`None`) for families whose
///   state cannot be captured in a fixed-geometry word array (scalable);
/// * **attack surface** — the `(m, k)` region a chosen-input adversary
///   crafts against, which for a scalable filter is the *active slice*, not
///   the whole stack.
pub trait FilterBackend: Send + Sync + Sized + 'static {
    /// The family this backend implements.
    const KIND: BackendKind;

    /// Per-backend construction options (counter width, tightening ratio…).
    type Options: Clone + Send + Sync + core::fmt::Debug + Default;

    /// Creates an empty filter with the given base parameters, shared index
    /// strategy and options. For growing families, `params` sizes the first
    /// slice and `params.capacity` is the per-slice growth threshold.
    fn fresh(
        params: FilterParams,
        strategy: Arc<dyn IndexStrategy>,
        options: &Self::Options,
    ) -> Self;

    /// The base sizing parameters this backend was created with.
    fn params(&self) -> FilterParams;

    /// Current total number of bits/cells (grows over time for scalable).
    fn m(&self) -> u64;

    /// Indexes per item in the region new inserts land in.
    fn k(&self) -> u32;

    /// Number of insert calls performed.
    fn inserted(&self) -> u64;

    /// Inserts `item`; returns how many cells this call took 0 → occupied
    /// (the drift-gauge numerator: ≈ `k` under chosen-insertion pollution,
    /// ≈ `k·(1 − fill)` under honest load).
    fn insert(&self, item: &[u8]) -> u32;

    /// Membership query.
    fn contains(&self, item: &[u8]) -> bool;

    /// Batch insert; must be cell-for-cell identical to looping
    /// [`FilterBackend::insert`] over `items`. Returns total fresh cells.
    fn insert_batch(&self, items: &[&[u8]]) -> u64;

    /// Batch query, answers in input order; must agree with per-item
    /// [`FilterBackend::contains`].
    fn query_batch(&self, items: &[&[u8]]) -> Vec<bool>;

    /// Whether this family supports removal at all (a static capability —
    /// the wire layer rejects `DELETE` before touching the filter).
    fn supports_remove() -> bool {
        false
    }

    /// Removes `item`: `Some(was_present)` on deletable families, `None`
    /// otherwise.
    fn remove(&self, _item: &[u8]) -> Option<bool> {
        None
    }

    /// Batch removal; element order matches `items`. Default loops
    /// [`FilterBackend::remove`].
    fn remove_batch(&self, items: &[&[u8]]) -> Option<Vec<bool>> {
        if !Self::supports_remove() {
            return None;
        }
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            out.push(self.remove(item)?);
        }
        Some(out)
    }

    /// Exact count of occupied cells (scans the state).
    fn weight(&self) -> u64;

    /// O(1) approximate count of occupied cells from running counters.
    fn weight_approx(&self) -> u64;

    /// O(1) approximate fill fraction.
    fn fill_ratio_approx(&self) -> f64 {
        self.weight_approx() as f64 / self.m().max(1) as f64
    }

    /// Memory footprint in bytes of the filter state.
    fn memory_bytes(&self) -> u64;

    /// False-positive probability estimated from the current fill.
    fn current_false_positive_probability(&self) -> f64;

    /// Sizing of the region a chosen-input adversary crafts against: the
    /// whole filter for fixed-geometry families, the *active slice* for
    /// scalable ones. `AdversarialStoreView` flattens these per shard.
    fn attack_params(&self) -> FilterParams {
        self.params()
    }

    /// Whether cell `index` of the attack region is occupied.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the attack region.
    fn is_set(&self, index: u64) -> bool;

    /// Exact occupied-cell count of the attack region.
    fn attack_weight(&self) -> u64 {
        self.weight()
    }

    /// Expected word-array length for persisted state with these parameters,
    /// or `None` if the family opts out of word-array persistence.
    fn persist_words_len(params: &FilterParams, options: &Self::Options) -> Option<u64>;

    /// Racy word-array copy of the state (torn reads must be *conservative*:
    /// never lose an acknowledged insert). `None` if unsupported.
    fn snapshot_words(&self) -> Option<Vec<u64>>;

    /// Rebuilds a filter from persisted words (the recovery inverse of
    /// [`FilterBackend::snapshot_words`]). Returns `None` if the family is
    /// not persistable or `words` has the wrong geometry.
    fn from_words(
        params: FilterParams,
        strategy: Arc<dyn IndexStrategy>,
        words: Vec<u64>,
        inserted: u64,
        options: &Self::Options,
    ) -> Option<Self>;

    /// One auxiliary byte persisted in the snapshot header (counter width
    /// for counting filters; zero elsewhere).
    fn persist_aux(_options: &Self::Options) -> u8 {
        0
    }

    /// Rebuilds [`FilterBackend::Options`] from the persisted auxiliary
    /// byte; `None` if the byte is invalid for this family.
    fn options_from_persist_aux(aux: u8) -> Option<Self::Options>;
}

impl FilterBackend for ConcurrentBloomFilter {
    const KIND: BackendKind = BackendKind::Bloom;

    type Options = ();

    fn fresh(
        params: FilterParams,
        strategy: Arc<dyn IndexStrategy>,
        _options: &Self::Options,
    ) -> Self {
        ConcurrentBloomFilter::with_shared_strategy(params, strategy)
    }

    fn params(&self) -> FilterParams {
        ConcurrentBloomFilter::params(self)
    }

    fn m(&self) -> u64 {
        ConcurrentBloomFilter::m(self)
    }

    fn k(&self) -> u32 {
        ConcurrentBloomFilter::k(self)
    }

    fn inserted(&self) -> u64 {
        ConcurrentBloomFilter::inserted(self)
    }

    fn insert(&self, item: &[u8]) -> u32 {
        ConcurrentBloomFilter::insert(self, item)
    }

    fn contains(&self, item: &[u8]) -> bool {
        ConcurrentBloomFilter::contains(self, item)
    }

    fn insert_batch(&self, items: &[&[u8]]) -> u64 {
        ConcurrentBloomFilter::insert_batch(self, items)
    }

    fn query_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        ConcurrentBloomFilter::query_batch(self, items)
    }

    fn weight(&self) -> u64 {
        self.hamming_weight()
    }

    fn weight_approx(&self) -> u64 {
        self.hamming_weight_approx()
    }

    fn memory_bytes(&self) -> u64 {
        ConcurrentBloomFilter::params(self).memory_bytes()
    }

    fn current_false_positive_probability(&self) -> f64 {
        ConcurrentBloomFilter::current_false_positive_probability(self)
    }

    fn is_set(&self, index: u64) -> bool {
        ConcurrentBloomFilter::is_set(self, index)
    }

    fn persist_words_len(params: &FilterParams, _options: &Self::Options) -> Option<u64> {
        Some(params.m.div_ceil(64))
    }

    fn snapshot_words(&self) -> Option<Vec<u64>> {
        Some(ConcurrentBloomFilter::snapshot_words(self))
    }

    fn from_words(
        params: FilterParams,
        strategy: Arc<dyn IndexStrategy>,
        words: Vec<u64>,
        inserted: u64,
        _options: &Self::Options,
    ) -> Option<Self> {
        if words.len() as u64 != params.m.div_ceil(64) {
            return None;
        }
        Some(ConcurrentBloomFilter::from_words(params, strategy, words, inserted))
    }

    fn options_from_persist_aux(aux: u8) -> Option<Self::Options> {
        (aux == 0).then_some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evilbloom_hashes::{KirschMitzenmacher, Murmur3_128};

    fn strategy() -> Arc<dyn IndexStrategy> {
        Arc::new(KirschMitzenmacher::new(Murmur3_128))
    }

    #[test]
    fn kind_codes_roundtrip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::from_code(kind.code()), Some(kind));
            assert_eq!(kind.name().parse::<BackendKind>().unwrap(), kind);
        }
        assert_eq!(BackendKind::from_code(0xFF), None);
        assert!("dablooms".parse::<BackendKind>().is_err());
    }

    #[test]
    fn bloom_backend_has_no_remove() {
        let filter = <ConcurrentBloomFilter as FilterBackend>::fresh(
            FilterParams::explicit(512, 3, 40),
            strategy(),
            &(),
        );
        assert!(!<ConcurrentBloomFilter as FilterBackend>::supports_remove());
        assert_eq!(FilterBackend::remove(&filter, b"x"), None);
        assert_eq!(FilterBackend::remove_batch(&filter, &[b"x".as_slice()]), None);
    }

    #[test]
    fn bloom_backend_trait_matches_inherent_api() {
        let params = FilterParams::explicit(2048, 4, 100);
        let via_trait = <ConcurrentBloomFilter as FilterBackend>::fresh(params, strategy(), &());
        let direct = ConcurrentBloomFilter::with_shared_strategy(params, strategy());
        let items: Vec<String> = (0..100).map(|i| format!("item-{i}")).collect();
        let refs: Vec<&[u8]> = items.iter().map(|s| s.as_bytes()).collect();
        let fresh_trait = FilterBackend::insert_batch(&via_trait, &refs);
        let mut fresh_direct = 0u64;
        for item in &refs {
            fresh_direct += u64::from(direct.insert(item));
        }
        assert_eq!(fresh_trait, fresh_direct);
        assert_eq!(via_trait.snapshot(), direct.snapshot());
        assert_eq!(FilterBackend::weight(&via_trait), direct.hamming_weight());
        assert_eq!(FilterBackend::attack_params(&via_trait), params);
    }

    #[test]
    fn bloom_backend_word_persistence_roundtrip() {
        let params = FilterParams::explicit(1000, 4, 100);
        let filter = <ConcurrentBloomFilter as FilterBackend>::fresh(params, strategy(), &());
        for i in 0..100 {
            FilterBackend::insert(&filter, format!("i{i}").as_bytes());
        }
        let words = FilterBackend::snapshot_words(&filter).expect("bloom persists");
        assert_eq!(
            words.len() as u64,
            <ConcurrentBloomFilter as FilterBackend>::persist_words_len(&params, &()).unwrap()
        );
        let restored = <ConcurrentBloomFilter as FilterBackend>::from_words(
            params,
            strategy(),
            words,
            FilterBackend::inserted(&filter),
            &(),
        )
        .expect("geometry matches");
        assert_eq!(restored.snapshot(), filter.snapshot());
        // Wrong geometry is an error, not a panic.
        assert!(<ConcurrentBloomFilter as FilterBackend>::from_words(
            params,
            strategy(),
            vec![0u64; 3],
            0,
            &(),
        )
        .is_none());
    }
}

//! A counting Bloom filter with `&self` insert/query/delete — the deletable
//! backend the store serves the `DELETE` opcode against.
//!
//! Cells are one byte wide, packed eight per `AtomicU64` and updated with
//! CAS loops, so every individual counter transition is atomic: exactly one
//! thread observes each 0 → 1 transition (keeping the running occupied-cells
//! counter exact) and a saturated counter freezes exactly as the sequential
//! [`CountingBloomFilter`](crate::CountingBloomFilter) under
//! [`OverflowPolicy::Saturate`](crate::counting::OverflowPolicy::Saturate) does:
//! frozen cells are never incremented nor decremented again — the
//! conservative policy, and the one whose incomplete deletions the paper's
//! Section 6.2 overflow attack weaponises.
//!
//! **Deletion is not atomic across an item's `k` cells.** `remove` reads the
//! `k` counters to decide `was_present`, then decrements them one CAS at a
//! time; two racing removals of the same singleton item can both observe it
//! present. That is the same information-loss hazard counting filters carry
//! inherently (deleting an item that was never inserted evicts bystanders —
//! the Section 4.3 deletion adversary), not a new one; callers needing
//! exactly-once delete semantics must serialise removals of equal items.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use evilbloom_hashes::IndexStrategy;

use crate::backend::{BackendKind, FilterBackend};
use crate::params::FilterParams;

/// Cells per packed word (one byte each).
const CELLS_PER_WORD: u64 = 8;

/// Construction options for [`ConcurrentCountingFilter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountingOptions {
    /// Counter width in bits, 1..=8 (Dablooms uses 4). A cell saturates —
    /// and freezes — at `2^counter_bits - 1`.
    pub counter_bits: u8,
}

impl Default for CountingOptions {
    fn default() -> Self {
        CountingOptions { counter_bits: 4 }
    }
}

/// A lock-free concurrent counting Bloom filter: one-byte cells packed eight
/// per atomic word, CAS increments/decrements, saturate-on-overflow.
///
/// # Examples
///
/// ```
/// use evilbloom_filters::{ConcurrentCountingFilter, CountingOptions, FilterParams};
/// use evilbloom_hashes::{KirschMitzenmacher, Murmur3_128};
/// use std::sync::Arc;
///
/// let filter = ConcurrentCountingFilter::with_shared_strategy(
///     FilterParams::optimal(1000, 0.01),
///     Arc::new(KirschMitzenmacher::new(Murmur3_128)),
///     CountingOptions::default(),
/// );
/// filter.insert(b"http://phish.example/");
/// assert!(filter.contains(b"http://phish.example/"));
/// assert!(filter.remove(b"http://phish.example/"));
/// assert!(!filter.contains(b"http://phish.example/"));
/// ```
pub struct ConcurrentCountingFilter {
    /// Eight one-byte cells per word; `m.div_ceil(8)` words.
    words: Vec<AtomicU64>,
    params: FilterParams,
    strategy: Arc<dyn IndexStrategy>,
    counter_bits: u8,
    inserted: AtomicU64,
    deleted: AtomicU64,
    overflows: AtomicU64,
    /// Running count of non-zero cells, maintained by the thread that wins
    /// each cell's 0 → 1 (or 1 → 0) CAS.
    occupied: AtomicU64,
}

impl ConcurrentCountingFilter {
    /// Creates an empty filter.
    ///
    /// # Panics
    ///
    /// Panics if `options.counter_bits` is zero or larger than 8.
    pub fn with_shared_strategy(
        params: FilterParams,
        strategy: Arc<dyn IndexStrategy>,
        options: CountingOptions,
    ) -> Self {
        assert!((1..=8).contains(&options.counter_bits), "counter width must be 1..=8 bits");
        let words = (0..params.m.div_ceil(CELLS_PER_WORD)).map(|_| AtomicU64::new(0)).collect();
        ConcurrentCountingFilter {
            words,
            params,
            strategy,
            counter_bits: options.counter_bits,
            inserted: AtomicU64::new(0),
            deleted: AtomicU64::new(0),
            overflows: AtomicU64::new(0),
            occupied: AtomicU64::new(0),
        }
    }

    /// The filter's sizing parameters.
    pub fn params(&self) -> FilterParams {
        self.params
    }

    /// Number of cells (`m`).
    pub fn m(&self) -> u64 {
        self.params.m
    }

    /// Number of indexes per item (`k`).
    pub fn k(&self) -> u32 {
        self.params.k
    }

    /// Counter width in bits.
    pub fn counter_bits(&self) -> u8 {
        self.counter_bits
    }

    /// Maximum value a counter can hold (`2^bits - 1`); cells freeze there.
    pub fn counter_max(&self) -> u8 {
        ((1u16 << self.counter_bits) - 1) as u8
    }

    /// Number of insert calls performed.
    pub fn inserted(&self) -> u64 {
        self.inserted.load(Ordering::Relaxed)
    }

    /// Number of remove calls performed.
    pub fn deleted(&self) -> u64 {
        self.deleted.load(Ordering::Relaxed)
    }

    /// Counter-overflow events observed (increments refused at saturation).
    pub fn overflows(&self) -> u64 {
        self.overflows.load(Ordering::Relaxed)
    }

    /// The `k` cell indexes of `item`.
    pub fn indexes(&self, item: &[u8]) -> Vec<u64> {
        self.strategy.indexes(item, self.params.k, self.params.m)
    }

    /// The shared index strategy.
    pub fn strategy(&self) -> &Arc<dyn IndexStrategy> {
        &self.strategy
    }

    #[inline]
    fn locate(&self, index: u64) -> (usize, u32) {
        assert!(index < self.params.m, "cell index {index} out of range (m {})", self.params.m);
        ((index / CELLS_PER_WORD) as usize, (index % CELLS_PER_WORD) as u32 * 8)
    }

    /// Value of the counter at `index` (acquire load).
    ///
    /// # Panics
    ///
    /// Panics if `index >= m`.
    pub fn counter(&self, index: u64) -> u8 {
        let (word, shift) = self.locate(index);
        ((self.words[word].load(Ordering::Acquire) >> shift) & 0xFF) as u8
    }

    /// Atomically increments the cell at `index` unless it is frozen at the
    /// maximum; returns the prior value.
    fn increment_cell(&self, index: u64) -> u8 {
        let (word, shift) = self.locate(index);
        let max = self.counter_max();
        let slot = &self.words[word];
        let mut current = slot.load(Ordering::Relaxed);
        loop {
            let prior = ((current >> shift) & 0xFF) as u8;
            if prior >= max {
                // Saturated: frozen, no transition to publish.
                return prior;
            }
            match slot.compare_exchange_weak(
                current,
                current + (1u64 << shift),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    if prior == 0 {
                        self.occupied.fetch_add(1, Ordering::Relaxed);
                    }
                    return prior;
                }
                Err(actual) => current = actual,
            }
        }
    }

    /// Atomically decrements the cell at `index` unless it is zero or frozen
    /// at the maximum; returns the prior value.
    fn decrement_cell(&self, index: u64) -> u8 {
        let (word, shift) = self.locate(index);
        let max = self.counter_max();
        let slot = &self.words[word];
        let mut current = slot.load(Ordering::Relaxed);
        loop {
            let prior = ((current >> shift) & 0xFF) as u8;
            if prior == 0 || prior >= max {
                // Empty cells stay empty; frozen cells stay frozen (the
                // saturate policy the overflow attack exploits).
                return prior;
            }
            match slot.compare_exchange_weak(
                current,
                current - (1u64 << shift),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    if prior == 1 {
                        self.occupied.fetch_sub(1, Ordering::Relaxed);
                    }
                    return prior;
                }
                Err(actual) => current = actual,
            }
        }
    }

    /// Inserts by pre-computed indexes (the batch paths derive indexes once).
    /// Returns how many cells this call took 0 → 1.
    pub fn insert_indexes(&self, indexes: &[u64]) -> u32 {
        let max = self.counter_max();
        let mut fresh = 0;
        for &i in indexes {
            let prior = self.increment_cell(i);
            if prior == 0 {
                fresh += 1;
            } else if prior >= max {
                self.overflows.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.inserted.fetch_add(1, Ordering::Relaxed);
        fresh
    }

    /// Inserts `item`; returns the number of cells taken 0 → 1.
    pub fn insert(&self, item: &[u8]) -> u32 {
        self.insert_indexes(&self.indexes(item))
    }

    /// Membership query by pre-computed indexes.
    pub fn contains_indexes(&self, indexes: &[u64]) -> bool {
        indexes.iter().all(|&i| self.counter(i) > 0)
    }

    /// Membership query.
    pub fn contains(&self, item: &[u8]) -> bool {
        self.contains_indexes(&self.indexes(item))
    }

    /// Removes by pre-computed indexes; returns whether the item appeared
    /// present before deletion. See the module docs for the cross-cell
    /// atomicity caveat.
    pub fn remove_indexes(&self, indexes: &[u64]) -> bool {
        let was_present = self.contains_indexes(indexes);
        for &i in indexes {
            self.decrement_cell(i);
        }
        self.deleted.fetch_add(1, Ordering::Relaxed);
        was_present
    }

    /// Removes `item` (decrementing its `k` counters; zero and frozen cells
    /// are untouched). Returns whether the item appeared present before.
    pub fn remove(&self, item: &[u8]) -> bool {
        self.remove_indexes(&self.indexes(item))
    }

    /// Exact count of non-zero cells (scans every word).
    pub fn occupied_cells(&self) -> u64 {
        let mut count = 0u64;
        for (wi, word) in self.words.iter().enumerate() {
            let bits = word.load(Ordering::Acquire);
            let base = wi as u64 * CELLS_PER_WORD;
            for lane in 0..CELLS_PER_WORD {
                if base + lane < self.params.m && (bits >> (lane * 8)) & 0xFF != 0 {
                    count += 1;
                }
            }
        }
        count
    }

    /// O(1) approximate count of non-zero cells from the running counter
    /// (exact once writers are quiescent).
    pub fn occupied_cells_approx(&self) -> u64 {
        self.occupied.load(Ordering::Relaxed)
    }

    /// Number of cells currently frozen at the maximum counter value.
    pub fn saturated_cells(&self) -> u64 {
        let max = self.counter_max();
        let mut count = 0u64;
        for (wi, word) in self.words.iter().enumerate() {
            let bits = word.load(Ordering::Acquire);
            let base = wi as u64 * CELLS_PER_WORD;
            for lane in 0..CELLS_PER_WORD {
                if base + lane < self.params.m && ((bits >> (lane * 8)) & 0xFF) as u8 == max {
                    count += 1;
                }
            }
        }
        count
    }

    /// Exact fraction of non-zero cells.
    pub fn fill_ratio(&self) -> f64 {
        self.occupied_cells() as f64 / self.params.m as f64
    }

    /// Current false-positive probability `(occupied/m)^k` from the O(1)
    /// approximate fill.
    pub fn current_false_positive_probability(&self) -> f64 {
        evilbloom_analysis::false_positive::false_positive_for_fill(
            self.occupied_cells_approx() as f64 / self.params.m as f64,
            self.params.k,
        )
    }

    /// Memory footprint as persisted/reported: the *packed* `counter_bits`
    /// size, for comparability with the sequential filter and the paper.
    pub fn memory_bytes(&self) -> u64 {
        (self.params.m * u64::from(self.counter_bits)).div_ceil(8)
    }

    /// Racy word-array copy of the packed cells under `&self`.
    ///
    /// Unlike the plain filter's monotone bits, counters move both ways, so
    /// a copy taken under concurrent traffic may mix before/after words of
    /// in-flight operations. The mix is still *conservative* for membership:
    /// an acknowledged insert's cells are each ≥ 1 in any later copy (cells
    /// only drop on explicit removes), so recovery never invents false
    /// negatives for acknowledged-and-not-removed items. Bit-for-bit
    /// equality with the live filter is only guaranteed under quiescence.
    pub fn snapshot_words(&self) -> Vec<u64> {
        self.words.iter().map(|w| w.load(Ordering::Acquire)).collect()
    }

    /// Rebuilds a filter from a persisted word array (the recovery inverse
    /// of [`ConcurrentCountingFilter::snapshot_words`]). Padding lanes past
    /// `m` are masked off and corrupt lanes above the counter maximum clamp
    /// to it (saturated); the occupied counter is recounted from the words.
    ///
    /// Returns `None` if `words` is not exactly `m.div_ceil(8)` words long.
    pub fn from_words(
        params: FilterParams,
        strategy: Arc<dyn IndexStrategy>,
        mut words: Vec<u64>,
        inserted: u64,
        options: CountingOptions,
    ) -> Option<Self> {
        if words.len() as u64 != params.m.div_ceil(CELLS_PER_WORD) {
            return None;
        }
        let max = u64::from(((1u16 << options.counter_bits) - 1) as u8);
        let mut occupied = 0u64;
        for (wi, word) in words.iter_mut().enumerate() {
            let base = wi as u64 * CELLS_PER_WORD;
            let mut clean = 0u64;
            for lane in 0..CELLS_PER_WORD {
                if base + lane >= params.m {
                    break;
                }
                let value = ((*word >> (lane * 8)) & 0xFF).min(max);
                if value > 0 {
                    occupied += 1;
                }
                clean |= value << (lane * 8);
            }
            *word = clean;
        }
        let filter = ConcurrentCountingFilter::with_shared_strategy(params, strategy, options);
        for (slot, word) in filter.words.iter().zip(words) {
            slot.store(word, Ordering::Relaxed);
        }
        filter.occupied.store(occupied, Ordering::Relaxed);
        filter.inserted.store(inserted, Ordering::Relaxed);
        Some(filter)
    }
}

impl core::fmt::Debug for ConcurrentCountingFilter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ConcurrentCountingFilter")
            .field("m", &self.params.m)
            .field("k", &self.params.k)
            .field("counter_bits", &self.counter_bits)
            .field("inserted", &self.inserted())
            .field("deleted", &self.deleted())
            .field("occupied_approx", &self.occupied_cells_approx())
            .field("overflows", &self.overflows())
            .finish()
    }
}

impl FilterBackend for ConcurrentCountingFilter {
    const KIND: BackendKind = BackendKind::Counting;

    type Options = CountingOptions;

    fn fresh(
        params: FilterParams,
        strategy: Arc<dyn IndexStrategy>,
        options: &Self::Options,
    ) -> Self {
        ConcurrentCountingFilter::with_shared_strategy(params, strategy, *options)
    }

    fn params(&self) -> FilterParams {
        ConcurrentCountingFilter::params(self)
    }

    fn m(&self) -> u64 {
        ConcurrentCountingFilter::m(self)
    }

    fn k(&self) -> u32 {
        ConcurrentCountingFilter::k(self)
    }

    fn inserted(&self) -> u64 {
        ConcurrentCountingFilter::inserted(self)
    }

    fn insert(&self, item: &[u8]) -> u32 {
        ConcurrentCountingFilter::insert(self, item)
    }

    fn contains(&self, item: &[u8]) -> bool {
        ConcurrentCountingFilter::contains(self, item)
    }

    fn insert_batch(&self, items: &[&[u8]]) -> u64 {
        let k = self.params.k as usize;
        let mut indexes = Vec::with_capacity(items.len() * k);
        for item in items {
            self.strategy.indexes_into(item, self.params.k, self.params.m, &mut indexes);
        }
        let mut fresh = 0u64;
        for chunk in indexes.chunks_exact(k) {
            fresh += u64::from(self.insert_indexes(chunk));
        }
        fresh
    }

    fn query_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        let k = self.params.k as usize;
        let mut indexes = Vec::with_capacity(items.len() * k);
        for item in items {
            self.strategy.indexes_into(item, self.params.k, self.params.m, &mut indexes);
        }
        indexes.chunks_exact(k).map(|chunk| self.contains_indexes(chunk)).collect()
    }

    fn supports_remove() -> bool {
        true
    }

    fn remove(&self, item: &[u8]) -> Option<bool> {
        Some(ConcurrentCountingFilter::remove(self, item))
    }

    fn weight(&self) -> u64 {
        self.occupied_cells()
    }

    fn weight_approx(&self) -> u64 {
        self.occupied_cells_approx()
    }

    fn memory_bytes(&self) -> u64 {
        ConcurrentCountingFilter::memory_bytes(self)
    }

    fn current_false_positive_probability(&self) -> f64 {
        ConcurrentCountingFilter::current_false_positive_probability(self)
    }

    fn is_set(&self, index: u64) -> bool {
        self.counter(index) > 0
    }

    fn persist_words_len(params: &FilterParams, _options: &Self::Options) -> Option<u64> {
        Some(params.m.div_ceil(CELLS_PER_WORD))
    }

    fn snapshot_words(&self) -> Option<Vec<u64>> {
        Some(ConcurrentCountingFilter::snapshot_words(self))
    }

    fn from_words(
        params: FilterParams,
        strategy: Arc<dyn IndexStrategy>,
        words: Vec<u64>,
        inserted: u64,
        options: &Self::Options,
    ) -> Option<Self> {
        ConcurrentCountingFilter::from_words(params, strategy, words, inserted, *options)
    }

    fn persist_aux(options: &Self::Options) -> u8 {
        options.counter_bits
    }

    fn options_from_persist_aux(aux: u8) -> Option<Self::Options> {
        (1..=8).contains(&aux).then_some(CountingOptions { counter_bits: aux })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::CountingBloomFilter;
    use evilbloom_hashes::{KirschMitzenmacher, Murmur3_128};

    fn strategy() -> Arc<dyn IndexStrategy> {
        Arc::new(KirschMitzenmacher::new(Murmur3_128))
    }

    fn small(m: u64, k: u32, bits: u8) -> ConcurrentCountingFilter {
        ConcurrentCountingFilter::with_shared_strategy(
            FilterParams::explicit(m, k, m / 10),
            strategy(),
            CountingOptions { counter_bits: bits },
        )
    }

    #[test]
    fn insert_contains_remove_roundtrip() {
        let filter = small(1024, 4, 4);
        assert!(filter.insert(b"url") > 0);
        assert!(filter.contains(b"url"));
        assert!(filter.remove(b"url"));
        assert!(!filter.contains(b"url"));
        assert!(!filter.remove(b"url"), "second remove reports absent");
        assert_eq!(filter.inserted(), 1);
        assert_eq!(filter.deleted(), 2);
    }

    #[test]
    fn matches_sequential_counting_filter_cell_for_cell() {
        let params = FilterParams::explicit(2048, 4, 200);
        let shared = strategy();
        let concurrent = ConcurrentCountingFilter::with_shared_strategy(
            params,
            Arc::clone(&shared),
            CountingOptions::default(),
        );
        let mut sequential = CountingBloomFilter::with_counter_bits(params, shared, 4);
        for i in 0..200 {
            let item = format!("item-{i}");
            concurrent.insert(item.as_bytes());
            sequential.insert(item.as_bytes());
        }
        // Delete a third of them (including some never-inserted items, the
        // deletion-adversary shape) and compare every cell.
        for i in (0..260).step_by(3) {
            let item = format!("item-{i}");
            assert_eq!(
                concurrent.remove(item.as_bytes()),
                sequential.delete(item.as_bytes()),
                "{item}"
            );
        }
        for cell in 0..params.m {
            assert_eq!(concurrent.counter(cell), sequential.counter(cell), "cell {cell}");
        }
        assert_eq!(concurrent.occupied_cells(), sequential.occupied_cells());
        assert_eq!(concurrent.occupied_cells_approx(), sequential.occupied_cells());
    }

    #[test]
    fn saturation_freezes_cells_like_sequential() {
        let filter = small(32, 2, 4);
        assert_eq!(filter.counter_max(), 15);
        for _ in 0..20 {
            filter.insert(b"hot");
        }
        assert!(filter.overflows() > 0);
        assert!(filter.saturated_cells() > 0);
        for _ in 0..40 {
            filter.remove(b"hot");
        }
        assert!(filter.contains(b"hot"), "frozen counters keep the item visible");
    }

    #[test]
    fn concurrent_insert_remove_keeps_occupied_counter_exact() {
        let filter = small(4096, 4, 8);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let filter = &filter;
                scope.spawn(move || {
                    for i in 0..500 {
                        filter.insert(format!("t{t}-i{i}").as_bytes());
                    }
                    for i in (0..500).step_by(2) {
                        filter.remove(format!("t{t}-i{i}").as_bytes());
                    }
                });
            }
        });
        assert_eq!(filter.occupied_cells(), filter.occupied_cells_approx());
        for t in 0..4 {
            for i in (1..500).step_by(2) {
                assert!(filter.contains(format!("t{t}-i{i}").as_bytes()), "t{t}-i{i}");
            }
        }
    }

    #[test]
    fn word_snapshot_roundtrips_cell_for_cell() {
        let filter = small(1000, 4, 4); // m not a multiple of 8
        for i in 0..150 {
            filter.insert(format!("i{i}").as_bytes());
        }
        for i in (0..150).step_by(4) {
            filter.remove(format!("i{i}").as_bytes());
        }
        let words = ConcurrentCountingFilter::snapshot_words(&filter);
        let restored = ConcurrentCountingFilter::from_words(
            filter.params(),
            strategy(),
            words,
            filter.inserted(),
            CountingOptions::default(),
        )
        .expect("geometry matches");
        for cell in 0..filter.m() {
            assert_eq!(restored.counter(cell), filter.counter(cell), "cell {cell}");
        }
        assert_eq!(restored.occupied_cells_approx(), filter.occupied_cells());
        assert_eq!(restored.inserted(), filter.inserted());
    }

    #[test]
    fn from_words_masks_padding_and_clamps_corrupt_lanes() {
        let params = FilterParams::explicit(10, 2, 4);
        let words = vec![u64::MAX; 2]; // every lane 0xFF, incl. padding
        let restored = ConcurrentCountingFilter::from_words(
            params,
            strategy(),
            words,
            0,
            CountingOptions::default(),
        )
        .expect("right word count");
        for cell in 0..10 {
            assert_eq!(restored.counter(cell), 15, "clamped to 4-bit max");
        }
        assert_eq!(restored.occupied_cells(), 10, "padding lanes masked off");
        assert_eq!(restored.occupied_cells_approx(), 10);
        // Wrong geometry is a typed failure.
        assert!(ConcurrentCountingFilter::from_words(
            params,
            strategy(),
            vec![0u64; 5],
            0,
            CountingOptions::default(),
        )
        .is_none());
    }

    #[test]
    fn backend_batch_ops_match_loops() {
        let params = FilterParams::explicit(4096, 5, 400);
        let batch = ConcurrentCountingFilter::with_shared_strategy(
            params,
            strategy(),
            CountingOptions::default(),
        );
        let looped = ConcurrentCountingFilter::with_shared_strategy(
            params,
            strategy(),
            CountingOptions::default(),
        );
        let items: Vec<String> = (0..400).map(|i| format!("item-{i}")).collect();
        let refs: Vec<&[u8]> = items.iter().map(|s| s.as_bytes()).collect();
        let fresh_batch = FilterBackend::insert_batch(&batch, &refs);
        let mut fresh_loop = 0u64;
        for item in &refs {
            fresh_loop += u64::from(looped.insert(item));
        }
        assert_eq!(fresh_batch, fresh_loop);
        for cell in 0..params.m {
            assert_eq!(batch.counter(cell), looped.counter(cell));
        }
        let probes: Vec<&[u8]> = refs.iter().copied().chain([b"absent".as_slice()]).collect();
        let answers = FilterBackend::query_batch(&batch, &probes);
        for (probe, answer) in probes.iter().zip(&answers) {
            assert_eq!(*answer, looped.contains(probe));
        }
        let removed = FilterBackend::remove_batch(&batch, &refs[..10]).expect("deletable");
        assert!(removed.iter().all(|&r| r));
    }

    #[test]
    fn backend_capability_and_aux_byte() {
        assert!(<ConcurrentCountingFilter as FilterBackend>::supports_remove());
        assert_eq!(<ConcurrentCountingFilter as FilterBackend>::KIND, BackendKind::Counting);
        let options = CountingOptions { counter_bits: 6 };
        let aux = <ConcurrentCountingFilter as FilterBackend>::persist_aux(&options);
        assert_eq!(
            <ConcurrentCountingFilter as FilterBackend>::options_from_persist_aux(aux),
            Some(options)
        );
        assert_eq!(<ConcurrentCountingFilter as FilterBackend>::options_from_persist_aux(0), None);
        assert_eq!(<ConcurrentCountingFilter as FilterBackend>::options_from_persist_aux(9), None);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn zero_width_counters_rejected() {
        small(64, 2, 0);
    }

    #[test]
    fn deletion_of_overlapping_item_creates_false_negative() {
        // The Section 4.3 deletion-adversary failure mode survives the
        // concurrent formulation: removing a never-inserted item that shares
        // cells with a member can evict the member.
        let filter = small(64, 4, 4);
        filter.insert(b"victim");
        let victim_cells: std::collections::HashSet<u64> =
            filter.indexes(b"victim").into_iter().collect();
        let attacker = (0..10_000)
            .map(|i| format!("candidate-{i}"))
            .find(|c| filter.indexes(c.as_bytes()).iter().any(|i| victim_cells.contains(i)))
            .expect("small filter guarantees an overlap");
        for _ in 0..4 {
            filter.remove(attacker.as_bytes());
        }
        assert!(!filter.contains(b"victim"), "victim evicted by overlapping deletes");
    }
}

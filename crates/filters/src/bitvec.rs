//! Compact bit vector used as the backing store of the classic Bloom filter.

/// A fixed-size bit vector backed by `u64` words.
///
/// # Examples
///
/// ```
/// use evilbloom_filters::bitvec::BitVec;
///
/// let mut bits = BitVec::new(12);
/// bits.set(4);
/// bits.set(7);
/// assert!(bits.get(4));
/// assert!(!bits.get(5));
/// assert_eq!(bits.count_ones(), 2);
/// assert_eq!(bits.support(), vec![4, 7]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: u64,
}

impl BitVec {
    /// Creates a bit vector of `len` bits, all zero.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: u64) -> Self {
        assert!(len > 0, "bit vector length must be positive");
        let words = vec![0u64; len.div_ceil(64) as usize];
        BitVec { words, len }
    }

    /// Number of bits in the vector (`m` in Bloom-filter notation).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Always `false`: the constructor rejects zero-length vectors.
    pub fn is_empty(&self) -> bool {
        false
    }

    #[inline]
    fn locate(&self, index: u64) -> (usize, u64) {
        assert!(index < self.len, "bit index {index} out of range (len {})", self.len);
        ((index / 64) as usize, 1u64 << (index % 64))
    }

    /// Returns the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[inline]
    pub fn get(&self, index: u64) -> bool {
        let (word, mask) = self.locate(index);
        self.words[word] & mask != 0
    }

    /// Sets the bit at `index` to 1 and returns its previous value.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[inline]
    pub fn set(&mut self, index: u64) -> bool {
        let (word, mask) = self.locate(index);
        let was = self.words[word] & mask != 0;
        self.words[word] |= mask;
        was
    }

    /// Clears the bit at `index` and returns its previous value.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[inline]
    pub fn clear(&mut self, index: u64) -> bool {
        let (word, mask) = self.locate(index);
        let was = self.words[word] & mask != 0;
        self.words[word] &= !mask;
        was
    }

    /// Sets every bit to zero.
    pub fn reset(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Sets every bit to one (used to model the LOAF-style "fake filter"
    /// discussed in Section 4 of the paper).
    pub fn saturate(&mut self) {
        self.words.iter_mut().for_each(|w| *w = u64::MAX);
        self.mask_tail();
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << rem) - 1;
        }
    }

    /// Number of set bits — the Hamming weight `wH(z)`.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Number of unset bits.
    pub fn count_zeros(&self) -> u64 {
        self.len - self.count_ones()
    }

    /// Fraction of set bits (`wH(z)/m`).
    pub fn fill_ratio(&self) -> f64 {
        self.count_ones() as f64 / self.len as f64
    }

    /// The support `supp(z)`: indices of all set bits, in increasing order.
    pub fn support(&self) -> Vec<u64> {
        self.iter_ones().collect()
    }

    /// Indices of all unset bits, in increasing order.
    pub fn zero_positions(&self) -> Vec<u64> {
        (0..self.len).filter(|&i| !self.get(i)).collect()
    }

    /// Iterator over the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = u64> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let base = wi as u64 * 64;
            let mut bits = word;
            core::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as u64;
                    bits &= bits - 1;
                    Some(base + tz)
                }
            })
        })
    }

    /// Bitwise OR with another vector of the same length (used to merge
    /// cache digests).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn union_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bit vectors must have equal length");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Returns true if every set bit of `self` is also set in `other`.
    pub fn is_subset_of(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "bit vectors must have equal length");
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Serialized size in bytes of the backing storage.
    pub fn storage_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_vector_is_all_zero() {
        let bits = BitVec::new(130);
        assert_eq!(bits.len(), 130);
        assert_eq!(bits.count_ones(), 0);
        assert_eq!(bits.count_zeros(), 130);
        assert_eq!(bits.fill_ratio(), 0.0);
        assert!(!bits.is_empty());
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_rejected() {
        BitVec::new(0);
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut bits = BitVec::new(200);
        assert!(!bits.set(63));
        assert!(!bits.set(64));
        assert!(bits.set(64), "second set reports the bit was already set");
        assert!(bits.get(63) && bits.get(64));
        assert!(!bits.get(65));
        assert!(bits.clear(64));
        assert!(!bits.get(64));
        assert!(!bits.clear(64));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        BitVec::new(10).get(10);
    }

    #[test]
    fn support_and_iter_ones_agree() {
        let mut bits = BitVec::new(300);
        for i in [0u64, 1, 63, 64, 65, 128, 255, 299] {
            bits.set(i);
        }
        assert_eq!(bits.support(), vec![0, 1, 63, 64, 65, 128, 255, 299]);
        assert_eq!(bits.count_ones(), 8);
        assert_eq!(bits.iter_ones().count(), 8);
    }

    #[test]
    fn zero_positions_complement_support() {
        let mut bits = BitVec::new(20);
        for i in 0..10 {
            bits.set(i * 2);
        }
        let zeros = bits.zero_positions();
        assert_eq!(zeros.len(), 10);
        assert!(zeros.iter().all(|i| i % 2 == 1));
    }

    #[test]
    fn saturate_then_reset() {
        let mut bits = BitVec::new(70);
        bits.saturate();
        assert_eq!(bits.count_ones(), 70, "tail bits beyond len must stay clear");
        assert_eq!(bits.fill_ratio(), 1.0);
        bits.reset();
        assert_eq!(bits.count_ones(), 0);
    }

    #[test]
    fn union_and_subset() {
        let mut a = BitVec::new(100);
        let mut b = BitVec::new(100);
        a.set(3);
        a.set(50);
        b.set(50);
        b.set(99);
        assert!(!a.is_subset_of(&b));
        let mut merged = a.clone();
        merged.union_with(&b);
        assert_eq!(merged.support(), vec![3, 50, 99]);
        assert!(a.is_subset_of(&merged));
        assert!(b.is_subset_of(&merged));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn union_length_mismatch_panics() {
        let mut a = BitVec::new(10);
        a.union_with(&BitVec::new(11));
    }

    #[test]
    fn storage_is_word_aligned() {
        assert_eq!(BitVec::new(1).storage_bytes(), 8);
        assert_eq!(BitVec::new(64).storage_bytes(), 8);
        assert_eq!(BitVec::new(65).storage_bytes(), 16);
    }
}

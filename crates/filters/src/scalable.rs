//! Scalable Bloom filter (Almeida, Baquero, Preguiça & Hutchison).
//!
//! A scalable filter is a growing stack of plain Bloom filters. Sub-filter
//! `i` is created when sub-filter `i-1` reaches its insertion threshold
//! `δ`, and targets a false-positive probability `f_i = f_0 · r^i` so that
//! the compound probability `F = 1 - Π(1 - f_i)` stays bounded. Dablooms
//! uses `r = 0.9`; queries must consult *every* sub-filter.

use std::sync::Arc;

use evilbloom_hashes::IndexStrategy;

use crate::bloom::BloomFilter;
use crate::params::FilterParams;

/// Configuration of a scalable Bloom filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalableConfig {
    /// Capacity `δ` of each sub-filter (number of insertions before a new
    /// sub-filter is created).
    pub slice_capacity: u64,
    /// Target false-positive probability `f_0` of the first sub-filter.
    pub base_fpp: f64,
    /// Tightening ratio `r` (Dablooms uses 0.9).
    pub tightening_ratio: f64,
}

impl ScalableConfig {
    /// The configuration used by Dablooms and by Figure 8 of the paper:
    /// `δ = 10 000`, `f_0 = 0.01`, `r = 0.9`.
    pub fn dablooms() -> Self {
        ScalableConfig { slice_capacity: 10_000, base_fpp: 0.01, tightening_ratio: 0.9 }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any field is out of range.
    pub fn validate(&self) {
        assert!(self.slice_capacity > 0, "slice capacity must be positive");
        assert!(self.base_fpp > 0.0 && self.base_fpp < 1.0, "base fpp must be in (0, 1)");
        assert!(
            self.tightening_ratio > 0.0 && self.tightening_ratio <= 1.0,
            "tightening ratio must be in (0, 1]"
        );
    }

    /// Target probability of the `i`-th sub-filter.
    pub fn slice_fpp(&self, i: u32) -> f64 {
        self.base_fpp * self.tightening_ratio.powi(i as i32)
    }
}

/// A scalable Bloom filter built from classic [`BloomFilter`] slices sharing
/// one index strategy.
pub struct ScalableBloomFilter {
    config: ScalableConfig,
    strategy: Arc<dyn IndexStrategy>,
    slices: Vec<BloomFilter>,
    inserted: u64,
}

impl ScalableBloomFilter {
    /// Creates an empty scalable filter.
    pub fn new<S: IndexStrategy + 'static>(config: ScalableConfig, strategy: S) -> Self {
        Self::with_shared_strategy(config, Arc::new(strategy))
    }

    /// Creates an empty scalable filter with a shared strategy.
    pub fn with_shared_strategy(config: ScalableConfig, strategy: Arc<dyn IndexStrategy>) -> Self {
        config.validate();
        let mut filter = ScalableBloomFilter { config, strategy, slices: Vec::new(), inserted: 0 };
        filter.grow();
        filter
    }

    fn grow(&mut self) {
        let i = self.slices.len() as u32;
        let params = FilterParams::optimal(self.config.slice_capacity, self.config.slice_fpp(i));
        self.slices.push(BloomFilter::with_shared_strategy(params, Arc::clone(&self.strategy)));
    }

    /// The configuration this filter was created with.
    pub fn config(&self) -> ScalableConfig {
        self.config
    }

    /// Number of sub-filters currently allocated (`λ`).
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Read-only access to the sub-filters (most recent last).
    pub fn slices(&self) -> &[BloomFilter] {
        &self.slices
    }

    /// Mutable access to a sub-filter — the pollution experiments pollute
    /// individual slices directly.
    pub fn slice_mut(&mut self, index: usize) -> &mut BloomFilter {
        &mut self.slices[index]
    }

    /// Total number of insertions across all slices.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Inserts `item` into the active (most recent) slice, growing first if
    /// the slice has reached its capacity.
    pub fn insert(&mut self, item: &[u8]) {
        if self.slices.last().expect("at least one slice always exists").inserted()
            >= self.config.slice_capacity
        {
            self.grow();
        }
        self.slices.last_mut().expect("slice just ensured").insert(item);
        self.inserted += 1;
    }

    /// Membership query: present if *any* slice reports the item.
    pub fn contains(&self, item: &[u8]) -> bool {
        self.slices.iter().any(|slice| slice.contains(item))
    }

    /// Compound false-positive probability `1 - Π (1 - fill_i^k_i)` given the
    /// current fill of every slice.
    pub fn current_false_positive_probability(&self) -> f64 {
        let per: Vec<f64> =
            self.slices.iter().map(|s| s.current_false_positive_probability()).collect();
        evilbloom_analysis::scalable::compound_false_positive(&per)
    }

    /// Total memory footprint of all slices in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.slices.iter().map(|s| s.params().memory_bytes()).sum()
    }
}

impl core::fmt::Debug for ScalableBloomFilter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ScalableBloomFilter")
            .field("slices", &self.slices.len())
            .field("inserted", &self.inserted)
            .field("compound_fpp", &self.current_false_positive_probability())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evilbloom_hashes::{KirschMitzenmacher, Murmur3_32};

    fn small_config() -> ScalableConfig {
        ScalableConfig { slice_capacity: 100, base_fpp: 0.01, tightening_ratio: 0.9 }
    }

    fn new_filter(config: ScalableConfig) -> ScalableBloomFilter {
        ScalableBloomFilter::new(config, KirschMitzenmacher::new(Murmur3_32))
    }

    #[test]
    fn dablooms_config_matches_paper() {
        let c = ScalableConfig::dablooms();
        assert_eq!(c.slice_capacity, 10_000);
        assert_eq!(c.base_fpp, 0.01);
        assert_eq!(c.tightening_ratio, 0.9);
        assert!((c.slice_fpp(9) - 0.01 * 0.9f64.powi(9)).abs() < 1e-15);
    }

    #[test]
    fn grows_every_slice_capacity_insertions() {
        let mut filter = new_filter(small_config());
        assert_eq!(filter.slice_count(), 1);
        for i in 0..550u32 {
            filter.insert(format!("item-{i}").as_bytes());
        }
        assert_eq!(filter.slice_count(), 6);
        assert_eq!(filter.inserted(), 550);
    }

    #[test]
    fn no_false_negatives_across_slices() {
        let mut filter = new_filter(small_config());
        let items: Vec<String> = (0..450).map(|i| format!("url-{i}")).collect();
        for item in &items {
            filter.insert(item.as_bytes());
        }
        for item in &items {
            assert!(filter.contains(item.as_bytes()), "false negative for {item}");
        }
    }

    #[test]
    fn later_slices_are_larger_per_item() {
        // Tighter targets need more bits per item.
        let mut filter = new_filter(small_config());
        for i in 0..350u32 {
            filter.insert(format!("x{i}").as_bytes());
        }
        let sizes: Vec<u64> = filter.slices().iter().map(|s| s.m()).collect();
        for pair in sizes.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
    }

    #[test]
    fn compound_fpp_stays_bounded_under_honest_load() {
        let mut filter = new_filter(small_config());
        for i in 0..1000u32 {
            filter.insert(format!("honest-{i}").as_bytes());
        }
        let compound = filter.current_false_positive_probability();
        // The design bound is roughly f0 / (1 - r) = 0.1.
        assert!(compound < 0.12, "compound fpp {compound}");
    }

    #[test]
    fn observed_false_positive_rate_matches_compound_estimate() {
        let mut filter = new_filter(small_config());
        for i in 0..500u32 {
            filter.insert(format!("member-{i}").as_bytes());
        }
        let probes = 20_000;
        let fp = (0..probes).filter(|i| filter.contains(format!("probe-{i}").as_bytes())).count();
        let observed = fp as f64 / probes as f64;
        let predicted = filter.current_false_positive_probability();
        assert!((observed - predicted).abs() < 0.02, "observed {observed} predicted {predicted}");
    }

    #[test]
    fn slice_mut_allows_direct_pollution() {
        let mut filter = new_filter(small_config());
        let m = filter.slices()[0].m();
        for i in 0..m {
            filter.slice_mut(0).insert_indexes(&[i]);
        }
        assert!(filter.slices()[0].is_saturated());
        assert!(filter.contains(b"never inserted"));
    }

    #[test]
    fn memory_grows_with_slices() {
        let mut filter = new_filter(small_config());
        let initial = filter.memory_bytes();
        for i in 0..300u32 {
            filter.insert(format!("y{i}").as_bytes());
        }
        assert!(filter.memory_bytes() > initial * 2);
    }

    #[test]
    #[should_panic(expected = "slice capacity must be positive")]
    fn invalid_config_rejected() {
        new_filter(ScalableConfig { slice_capacity: 0, base_fpp: 0.01, tightening_ratio: 0.9 });
    }
}

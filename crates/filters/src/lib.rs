//! # evilbloom-filters
//!
//! The Bloom-filter family attacked and defended in *"The Power of Evil
//! Choices in Bloom Filters"* (Gerbet, Kumar & Lauradoux, DSN 2015),
//! implemented from scratch on top of `evilbloom-hashes`:
//!
//! * [`BloomFilter`] — the classic filter of Section 3, with a pluggable
//!   [`evilbloom_hashes::IndexStrategy`] and full state introspection;
//! * [`ConcurrentBloomFilter`] — the same filter with lock-free `&self`
//!   insert/query over an [`AtomicBitVec`], bit-for-bit equivalent to the
//!   sequential filter under the same strategy (the `evilbloom-store`
//!   serving layer builds on it);
//! * [`BlockedBloomFilter`] — the cache-line blocked fast path: one hash
//!   pair, one 512-bit block per operation, with the corrected
//!   (block-load-aware) false-positive accounting from
//!   `evilbloom-analysis::blocked`;
//! * [`CountingBloomFilter`] — 4-bit-counter deletable variant (Fan et al.),
//!   complete with the overflow semantics the deletion attack abuses;
//! * [`ScalableBloomFilter`] — growing stack of filters (Almeida et al.);
//! * [`Dablooms`] — Bitly's scaling *and* counting combination (Section 6);
//! * [`cache_digest::CacheDigest`] — Squid's `5n + 7`-bit, `k = 4`, MD5-split
//!   digest (Section 7);
//! * [`PartitionedBloomFilter`] and [`TwoChoiceBloomFilter`] — common
//!   variants used in the extension experiments;
//! * [`hardened`] — the Section 8 countermeasures (worst-case parameters,
//!   keyed SipHash / HMAC indexes) as ready-made constructors;
//! * [`FilterParams`] — parameter derivation in the average case, the worst
//!   case, and "as deployed by Squid";
//! * [`stats`] — empirical false-positive measurement and fill trajectories
//!   used by the figure-reproduction experiments.
//!
//! ## Example
//!
//! ```
//! use evilbloom_filters::{BloomFilter, FilterParams};
//! use evilbloom_hashes::{KirschMitzenmacher, Murmur3_128};
//!
//! let params = FilterParams::optimal(10_000, 0.01);
//! let mut seen = BloomFilter::new(params, KirschMitzenmacher::new(Murmur3_128));
//! seen.insert(b"http://example.org/");
//! assert!(seen.contains(b"http://example.org/"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic_bitvec;
pub mod backend;
pub mod bitvec;
pub mod blocked;
pub mod bloom;
pub mod cache_digest;
pub mod concurrent;
pub mod concurrent_counting;
pub mod concurrent_scalable;
pub mod counting;
pub mod dablooms;
pub mod hardened;
pub mod params;
pub mod partitioned;
pub mod power_of_two;
pub mod scalable;
pub mod stats;

pub use atomic_bitvec::AtomicBitVec;
pub use backend::{BackendKind, FilterBackend};
pub use bitvec::BitVec;
pub use blocked::{BlockedBloomFilter, BLOCK_BITS, BLOCK_WORDS};
pub use bloom::BloomFilter;
pub use cache_digest::CacheDigest;
pub use concurrent::ConcurrentBloomFilter;
pub use concurrent_counting::{ConcurrentCountingFilter, CountingOptions};
pub use concurrent_scalable::{ConcurrentScalableFilter, ScalableOptions};
pub use counting::CountingBloomFilter;
pub use dablooms::Dablooms;
pub use hardened::{
    audit, hardened_concurrent_filter, hardened_filter, hardened_params, hardened_parts, FilterKey,
    HardeningAudit, HardeningLevel,
};
pub use params::{FilterParams, ParamDerivation};
pub use partitioned::PartitionedBloomFilter;
pub use power_of_two::TwoChoiceBloomFilter;
pub use scalable::{ScalableBloomFilter, ScalableConfig};
pub use stats::{fill_trajectory, measure_false_positive_rate, FalsePositiveMeasurement};

#[cfg(test)]
mod proptests {
    //! Randomized property tests. The environment has no network access, so
    //! instead of `proptest` these drive the same properties from a seeded
    //! [`rand::rngs::StdRng`]: every case is deterministic and reproducible
    //! from the seed printed in the assertion message.

    use super::*;
    use evilbloom_hashes::{KirschMitzenmacher, Murmur3_128, SaltedCrypto, Sha256};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const CASES: u64 = 64;

    /// Draws a batch of random byte-string items: `count` in `1..max_items`,
    /// item length in `min_len..max_len`.
    fn random_items(
        rng: &mut StdRng,
        max_items: usize,
        min_len: usize,
        max_len: usize,
    ) -> Vec<Vec<u8>> {
        let count = rng.gen_range(1..max_items);
        (0..count)
            .map(|_| {
                let len = rng.gen_range(min_len..max_len);
                let mut item = vec![0u8; len];
                rng.fill(&mut item[..]);
                item
            })
            .collect()
    }

    /// A Bloom filter never reports a false negative, whatever is inserted.
    #[test]
    fn bloom_no_false_negatives() {
        for seed in 0..CASES {
            let mut rng = StdRng::seed_from_u64(seed);
            let items = random_items(&mut rng, 200, 0, 64);
            let mut filter = BloomFilter::new(
                FilterParams::optimal(items.len().max(1) as u64, 0.01),
                KirschMitzenmacher::new(Murmur3_128),
            );
            for item in &items {
                filter.insert(item);
            }
            for item in &items {
                assert!(filter.contains(item), "seed {seed}: false negative");
            }
        }
    }

    /// The Hamming weight never exceeds k bits per insertion and never
    /// exceeds m.
    #[test]
    fn bloom_weight_bounds() {
        for seed in 0..CASES {
            let mut rng = StdRng::seed_from_u64(seed);
            let items = random_items(&mut rng, 100, 1, 32);
            let params = FilterParams::explicit(512, 3, 64);
            let mut filter = BloomFilter::new(params, SaltedCrypto::new(Box::new(Sha256)));
            for item in &items {
                filter.insert(item);
            }
            assert!(filter.hamming_weight() <= (items.len() as u64) * 3, "seed {seed}");
            assert!(filter.hamming_weight() <= 512, "seed {seed}");
        }
    }

    /// Counting filters delete cleanly: inserting a batch and removing it in
    /// reverse order leaves an empty filter (absent counter overflow).
    #[test]
    fn counting_insert_delete_symmetry() {
        for seed in 0..CASES {
            let mut rng = StdRng::seed_from_u64(seed);
            let items = random_items(&mut rng, 50, 1, 32);
            let params = FilterParams::optimal(128, 0.01);
            let mut filter = CountingBloomFilter::new(params, KirschMitzenmacher::new(Murmur3_128));
            for item in &items {
                filter.insert(item);
            }
            // Counters frozen at their maximum can never be decremented, so
            // the symmetry only holds when no cell saturated.
            if filter.saturated_cells() == 0 {
                for item in items.iter().rev() {
                    filter.delete(item);
                }
                assert_eq!(filter.occupied_cells(), 0, "seed {seed}");
            }
        }
    }

    /// Scalable filters never report false negatives either, no matter how
    /// many slices the load spreads over.
    #[test]
    fn scalable_no_false_negatives() {
        for seed in 0..CASES {
            let mut rng = StdRng::seed_from_u64(seed);
            let count = rng.gen_range(1usize..400);
            let mut filter = ScalableBloomFilter::new(
                ScalableConfig { slice_capacity: 50, base_fpp: 0.02, tightening_ratio: 0.9 },
                KirschMitzenmacher::new(Murmur3_128),
            );
            let items: Vec<String> = (0..count).map(|i| format!("item-{seed}-{i}")).collect();
            for item in &items {
                filter.insert(item.as_bytes());
            }
            for item in &items {
                assert!(filter.contains(item.as_bytes()), "seed {seed}: {item}");
            }
        }
    }

    /// Partitioned filters never report false negatives.
    #[test]
    fn partitioned_no_false_negatives() {
        for seed in 0..CASES {
            let mut rng = StdRng::seed_from_u64(seed);
            let items = random_items(&mut rng, 150, 0, 48);
            let mut filter = PartitionedBloomFilter::new(
                FilterParams::optimal(items.len().max(1) as u64, 0.01),
                KirschMitzenmacher::new(Murmur3_128),
            );
            for item in &items {
                filter.insert(item);
            }
            for item in &items {
                assert!(filter.contains(item), "seed {seed}: false negative");
            }
        }
    }

    /// The parameter solver always meets (or beats) the requested
    /// false-positive target.
    #[test]
    fn params_meet_target() {
        for seed in 0..CASES {
            let mut rng = StdRng::seed_from_u64(seed);
            let capacity = rng.gen_range(1u64..100_000);
            let exponent = rng.gen_range(2u32..24);
            let target = 2f64.powi(-(exponent as i32));
            let params = FilterParams::optimal(capacity, target);
            assert!(
                params.expected_fpp() <= target * 1.1,
                "seed {seed}: capacity {capacity} target {target}"
            );
            assert!(params.k >= 1, "seed {seed}");
        }
    }
}

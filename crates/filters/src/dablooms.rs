//! A Dablooms-style *scaling, counting* Bloom filter — the data structure
//! Bitly proposed for filtering malicious URLs and the target of Section 6.
//!
//! Dablooms combines two Bloom-filter variants:
//!
//! * **counting** sub-filters (4-bit counters) so URLs can be delisted, and
//! * **scalable** growth so the number of URLs need not be fixed a priori
//!   (`f_i = f_0 · r^i`, `r = 0.9`).
//!
//! Index derivation uses MurmurHash3 with the Kirsch–Mitzenmacher trick,
//! exactly the combination the paper points out is trivially predictable and
//! invertible.

use std::sync::Arc;

use evilbloom_hashes::{IndexStrategy, KirschMitzenmacher, Murmur3_128};

use crate::counting::CountingBloomFilter;
use crate::params::FilterParams;
use crate::scalable::ScalableConfig;

/// A scaling, counting Bloom filter in the style of Bitly's Dablooms.
pub struct Dablooms {
    config: ScalableConfig,
    strategy: Arc<dyn IndexStrategy>,
    slices: Vec<CountingBloomFilter>,
    /// Per-slice insertion counters (Dablooms decides growth on the number of
    /// *insertions*, not the number of distinct items).
    slice_insertions: Vec<u64>,
    inserted: u64,
    deleted: u64,
}

impl Dablooms {
    /// Creates a Dablooms filter with the paper's configuration
    /// (`δ = 10 000`, `f0 = 0.01`, `r = 0.9`) and the genuine Dablooms index
    /// derivation (MurmurHash3 + Kirsch–Mitzenmacher).
    pub fn new_paper_configuration() -> Self {
        Self::new(ScalableConfig::dablooms(), KirschMitzenmacher::new(Murmur3_128))
    }

    /// Creates a Dablooms filter with a custom configuration and strategy.
    pub fn new<S: IndexStrategy + 'static>(config: ScalableConfig, strategy: S) -> Self {
        Self::with_shared_strategy(config, Arc::new(strategy))
    }

    /// Creates a Dablooms filter with a shared index strategy.
    pub fn with_shared_strategy(config: ScalableConfig, strategy: Arc<dyn IndexStrategy>) -> Self {
        config.validate();
        let mut filter = Dablooms {
            config,
            strategy,
            slices: Vec::new(),
            slice_insertions: Vec::new(),
            inserted: 0,
            deleted: 0,
        };
        filter.grow();
        filter
    }

    fn grow(&mut self) {
        let i = self.slices.len() as u32;
        let params = FilterParams::optimal(self.config.slice_capacity, self.config.slice_fpp(i));
        self.slices.push(CountingBloomFilter::with_counter_bits(
            params,
            Arc::clone(&self.strategy),
            4,
        ));
        self.slice_insertions.push(0);
    }

    /// The configuration this filter was created with.
    pub fn config(&self) -> ScalableConfig {
        self.config
    }

    /// Number of sub-filters (`λ`).
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Read-only access to the sub-filters.
    pub fn slices(&self) -> &[CountingBloomFilter] {
        &self.slices
    }

    /// Mutable access to a sub-filter (used by pollution experiments).
    pub fn slice_mut(&mut self, index: usize) -> &mut CountingBloomFilter {
        &mut self.slices[index]
    }

    /// Recorded number of insertions into slice `index` (the "insertion
    /// counter" the counter-overflow attack fools).
    pub fn slice_insertions(&self, index: usize) -> u64 {
        self.slice_insertions[index]
    }

    /// Total insertions performed.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Total deletions performed.
    pub fn deleted(&self) -> u64 {
        self.deleted
    }

    /// Inserts `item` into the active slice, growing first if the slice's
    /// insertion counter has reached the capacity `δ`.
    pub fn insert(&mut self, item: &[u8]) {
        let active = self.slices.len() - 1;
        if self.slice_insertions[active] >= self.config.slice_capacity {
            self.grow();
        }
        let active = self.slices.len() - 1;
        self.slices[active].insert(item);
        self.slice_insertions[active] += 1;
        self.inserted += 1;
    }

    /// Deletes `item` from every slice that currently reports it (Dablooms
    /// does not know which slice an item went into, so delete must probe all
    /// of them). Returns `true` if at least one slice reported the item.
    pub fn delete(&mut self, item: &[u8]) -> bool {
        let mut was_present = false;
        for slice in &mut self.slices {
            if slice.contains(item) {
                slice.delete(item);
                was_present = true;
            }
        }
        self.deleted += 1;
        was_present
    }

    /// Deletes `item` from every slice *without* a membership check — the
    /// behaviour of the original Dablooms `remove`, which locates the slice
    /// by a caller-supplied id and decrements unconditionally. This is the
    /// entry point the delisting (deletion) attack abuses.
    pub fn force_delete(&mut self, item: &[u8]) {
        for slice in &mut self.slices {
            slice.delete(item);
        }
        self.deleted += 1;
    }

    /// Membership query: present if *any* slice reports the item.
    pub fn contains(&self, item: &[u8]) -> bool {
        self.slices.iter().any(|slice| slice.contains(item))
    }

    /// Compound false-positive probability given the current fill of every
    /// slice.
    pub fn current_false_positive_probability(&self) -> f64 {
        let per: Vec<f64> =
            self.slices.iter().map(|s| s.current_false_positive_probability()).collect();
        evilbloom_analysis::scalable::compound_false_positive(&per)
    }

    /// Total number of counter-overflow events across slices.
    pub fn overflows(&self) -> u64 {
        self.slices.iter().map(|s| s.overflows()).sum()
    }

    /// Total memory footprint in bytes (packed 4-bit counters).
    pub fn memory_bytes(&self) -> u64 {
        self.slices.iter().map(|s| s.memory_bytes()).sum()
    }

    /// Number of slices that are "wasted": their insertion counter says they
    /// are full (>= δ) while they contain almost nothing that is still
    /// queryable (occupied cells below `threshold_cells`). This is the
    /// outcome of the counter-overflow attack of Section 6.2.
    pub fn wasted_slices(&self, threshold_cells: u64) -> usize {
        self.slices
            .iter()
            .zip(&self.slice_insertions)
            .filter(|(slice, &ins)| {
                ins >= self.config.slice_capacity && slice.occupied_cells() <= threshold_cells
            })
            .count()
    }
}

impl core::fmt::Debug for Dablooms {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Dablooms")
            .field("slices", &self.slices.len())
            .field("inserted", &self.inserted)
            .field("deleted", &self.deleted)
            .field("compound_fpp", &self.current_false_positive_probability())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evilbloom_hashes::{KirschMitzenmacher, Murmur3_32};

    fn small() -> Dablooms {
        Dablooms::new(
            ScalableConfig { slice_capacity: 200, base_fpp: 0.01, tightening_ratio: 0.9 },
            KirschMitzenmacher::new(Murmur3_32),
        )
    }

    #[test]
    fn paper_configuration_defaults() {
        let filter = Dablooms::new_paper_configuration();
        assert_eq!(filter.config().slice_capacity, 10_000);
        assert_eq!(filter.slice_count(), 1);
    }

    #[test]
    fn insert_query_delete_cycle() {
        let mut filter = small();
        filter.insert(b"http://malware.example/payload");
        assert!(filter.contains(b"http://malware.example/payload"));
        assert!(filter.delete(b"http://malware.example/payload"));
        assert!(!filter.contains(b"http://malware.example/payload"));
        assert!(!filter.delete(b"http://never-inserted.example/"));
    }

    #[test]
    fn grows_like_a_scalable_filter() {
        let mut filter = small();
        for i in 0..1000u32 {
            filter.insert(format!("url-{i}").as_bytes());
        }
        assert_eq!(filter.slice_count(), 5);
        assert_eq!(filter.inserted(), 1000);
        assert_eq!(filter.slice_insertions(0), 200);
    }

    #[test]
    fn deletions_cause_only_rare_false_negatives() {
        // Deleting from a Dablooms stack probes every slice, so a deletion
        // that false-positives in a foreign slice wrongfully decrements that
        // slice's counters — the intrinsic false-negative weakness of
        // counting variants the paper cites ([17]). The rate must stay of
        // the order of the per-slice false-positive probability, not higher.
        let mut filter = small();
        let items: Vec<String> = (0..600).map(|i| format!("badurl-{i}")).collect();
        for item in &items {
            filter.insert(item.as_bytes());
        }
        // Delete every third item.
        for item in items.iter().step_by(3) {
            filter.delete(item.as_bytes());
        }
        let undeleted: Vec<&String> =
            items.iter().enumerate().filter(|(i, _)| i % 3 != 0).map(|(_, s)| s).collect();
        let missing = undeleted.iter().filter(|item| !filter.contains(item.as_bytes())).count();
        assert!(
            (missing as f64) < 0.03 * undeleted.len() as f64,
            "{missing} false negatives out of {}",
            undeleted.len()
        );
    }

    #[test]
    fn compound_fpp_bounded_under_honest_load() {
        let mut filter = small();
        for i in 0..800u32 {
            filter.insert(format!("honest-{i}").as_bytes());
        }
        assert!(filter.current_false_positive_probability() < 0.12);
    }

    #[test]
    fn wasted_slice_detection() {
        let mut filter = small();
        // Fill the first slice's insertion counter without giving it any
        // queryable content: insert and immediately delete the same item.
        for i in 0..200u32 {
            let url = format!("ghost-{i}");
            filter.insert(url.as_bytes());
            filter.delete(url.as_bytes());
        }
        assert_eq!(filter.wasted_slices(10), 1);
        // The next insertion opens a second slice even though the first one
        // holds nothing.
        filter.insert(b"next");
        assert_eq!(filter.slice_count(), 2);
    }

    #[test]
    fn memory_reported_in_packed_bytes() {
        let filter = small();
        let slice = &filter.slices()[0];
        assert_eq!(filter.memory_bytes(), slice.memory_bytes());
        assert_eq!(slice.memory_bytes(), slice.m().div_ceil(2));
    }

    #[test]
    fn overflow_accounting_bubbles_up() {
        let mut filter = small();
        for _ in 0..40 {
            filter.insert(b"same-url");
        }
        assert!(filter.overflows() > 0);
    }
}

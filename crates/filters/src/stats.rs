//! Empirical measurement helpers: observed false-positive rates, fill
//! trajectories, and simple membership oracles used by experiments.

use rand::Rng;

use crate::bloom::BloomFilter;

/// Result of an empirical false-positive measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FalsePositiveMeasurement {
    /// Number of non-member probes issued.
    pub probes: u64,
    /// Number of probes the filter (incorrectly) accepted.
    pub false_positives: u64,
    /// Observed rate `false_positives / probes`.
    pub rate: f64,
    /// Rate predicted from the filter's current fill ratio.
    pub predicted: f64,
}

/// Measures the false-positive rate of `filter` by probing it with `probes`
/// items drawn from `label` + a counter — items guaranteed (by construction
/// of the experiment) not to have been inserted.
pub fn measure_false_positive_rate(
    filter: &BloomFilter,
    label: &str,
    probes: u64,
) -> FalsePositiveMeasurement {
    let mut false_positives = 0;
    for i in 0..probes {
        let probe = format!("{label}-{i}");
        if filter.contains(probe.as_bytes()) {
            false_positives += 1;
        }
    }
    FalsePositiveMeasurement {
        probes,
        false_positives,
        rate: false_positives as f64 / probes as f64,
        predicted: filter.current_false_positive_probability(),
    }
}

/// Measures the false-positive rate using random byte-string probes from the
/// provided RNG (useful when string-shaped probes would bias a strategy).
pub fn measure_false_positive_rate_random<R: Rng>(
    filter: &BloomFilter,
    rng: &mut R,
    probes: u64,
) -> FalsePositiveMeasurement {
    let mut false_positives = 0;
    let mut buf = [0u8; 16];
    for _ in 0..probes {
        rng.fill(&mut buf);
        if filter.contains(&buf) {
            false_positives += 1;
        }
    }
    FalsePositiveMeasurement {
        probes,
        false_positives,
        rate: false_positives as f64 / probes as f64,
        predicted: filter.current_false_positive_probability(),
    }
}

/// One point of a fill/false-positive trajectory (the data behind Figure 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// Number of items inserted so far.
    pub inserted: u64,
    /// Hamming weight of the filter at that point.
    pub hamming_weight: u64,
    /// False-positive probability implied by the fill ratio.
    pub false_positive_probability: f64,
}

/// Inserts the given items one by one and records the filter state every
/// `sample_every` insertions (and after the last one).
pub fn fill_trajectory<'a, I>(
    filter: &mut BloomFilter,
    items: I,
    sample_every: u64,
) -> Vec<TrajectoryPoint>
where
    I: IntoIterator<Item = &'a [u8]>,
{
    assert!(sample_every > 0, "sampling interval must be positive");
    let mut points = Vec::new();
    let mut count = 0u64;
    for item in items {
        filter.insert(item);
        count += 1;
        if count.is_multiple_of(sample_every) {
            points.push(TrajectoryPoint {
                inserted: count,
                hamming_weight: filter.hamming_weight(),
                false_positive_probability: filter.current_false_positive_probability(),
            });
        }
    }
    if !count.is_multiple_of(sample_every) {
        points.push(TrajectoryPoint {
            inserted: count,
            hamming_weight: filter.hamming_weight(),
            false_positive_probability: filter.current_false_positive_probability(),
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::FilterParams;
    use evilbloom_hashes::{KirschMitzenmacher, Murmur3_128};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn loaded_filter() -> BloomFilter {
        let mut filter = BloomFilter::new(
            FilterParams::optimal(2000, 0.02),
            KirschMitzenmacher::new(Murmur3_128),
        );
        for i in 0..2000 {
            filter.insert(format!("member-{i}").as_bytes());
        }
        filter
    }

    #[test]
    fn measured_rate_tracks_prediction() {
        let filter = loaded_filter();
        let measurement = measure_false_positive_rate(&filter, "probe", 20_000);
        assert!((measurement.rate - measurement.predicted).abs() < 0.01);
        assert_eq!(measurement.probes, 20_000);
    }

    #[test]
    fn random_probes_give_similar_rate() {
        let filter = loaded_filter();
        let mut rng = StdRng::seed_from_u64(1);
        let a = measure_false_positive_rate(&filter, "probe", 10_000);
        let b = measure_false_positive_rate_random(&filter, &mut rng, 10_000);
        assert!((a.rate - b.rate).abs() < 0.02);
    }

    #[test]
    fn trajectory_is_monotone_and_samples_correctly() {
        let mut filter = BloomFilter::new(
            FilterParams::explicit(3200, 4, 600),
            KirschMitzenmacher::new(Murmur3_128),
        );
        let items: Vec<Vec<u8>> = (0..600).map(|i| format!("u{i}").into_bytes()).collect();
        let points = fill_trajectory(&mut filter, items.iter().map(|v| v.as_slice()), 100);
        assert_eq!(points.len(), 6);
        assert_eq!(points.last().expect("non-empty").inserted, 600);
        for pair in points.windows(2) {
            assert!(pair[1].hamming_weight >= pair[0].hamming_weight);
            assert!(pair[1].false_positive_probability >= pair[0].false_positive_probability);
        }
    }

    #[test]
    fn trajectory_records_trailing_partial_sample() {
        let mut filter = BloomFilter::new(
            FilterParams::explicit(512, 3, 50),
            KirschMitzenmacher::new(Murmur3_128),
        );
        let items: Vec<Vec<u8>> = (0..55).map(|i| format!("u{i}").into_bytes()).collect();
        let points = fill_trajectory(&mut filter, items.iter().map(|v| v.as_slice()), 25);
        assert_eq!(points.len(), 3);
        assert_eq!(points[2].inserted, 55);
    }

    #[test]
    #[should_panic(expected = "sampling interval")]
    fn zero_sampling_interval_rejected() {
        let mut filter = BloomFilter::new(
            FilterParams::explicit(64, 2, 5),
            KirschMitzenmacher::new(Murmur3_128),
        );
        fill_trajectory(&mut filter, core::iter::empty(), 0);
    }
}

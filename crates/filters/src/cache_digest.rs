//! Squid-style cache digests (Rousskov & Wessels) — the target of Section 7.
//!
//! A Squid proxy periodically summarises the keys of its cache (HTTP method +
//! URL) into a Bloom filter called a *cache digest* and ships it to sibling
//! proxies. Peers consult the digest before forwarding a request; every false
//! positive costs at least one wasted round trip.
//!
//! The deployed construction has two weaknesses the paper exploits:
//!
//! * the filter is sized at `m = 5n + 7` bits with `k = 4`, below the optimal
//!   `~6n`/`k≈3–4` trade-off, tripling the false-positive rate;
//! * the four indexes are obtained by splitting a single (unkeyed) MD5 digest
//!   of the key, so an adversary can compute anybody's indexes offline.

use evilbloom_hashes::{IndexStrategy, Md5Split};

use crate::bitvec::BitVec;
use crate::bloom::BloomFilter;
use crate::params::FilterParams;

/// Number of hash functions Squid uses ("for the sake of efficiency").
pub const SQUID_HASH_COUNT: u32 = 4;

/// Builds the cache-digest key for a request: the HTTP method concatenated
/// with the URL (Squid hashes the store key, which combines both).
pub fn digest_key(method: &str, url: &str) -> Vec<u8> {
    let mut key = Vec::with_capacity(method.len() + 1 + url.len());
    key.extend_from_slice(method.as_bytes());
    key.push(b' ');
    key.extend_from_slice(url.as_bytes());
    key
}

/// A Squid-style cache digest.
///
/// # Examples
///
/// ```
/// use evilbloom_filters::cache_digest::CacheDigest;
///
/// let digest = CacheDigest::build(["http://a.example/", "http://b.example/"]);
/// assert!(digest.might_have("GET", "http://a.example/"));
/// ```
#[derive(Debug, Clone)]
pub struct CacheDigest {
    filter: BloomFilter,
    entries: u64,
}

impl CacheDigest {
    /// Creates an empty digest sized for `capacity` cache entries using the
    /// deployed Squid parameters (`m = 5n + 7`, `k = 4`, MD5 split).
    pub fn with_capacity(capacity: u64) -> Self {
        let params = FilterParams::squid(capacity.max(1));
        CacheDigest { filter: BloomFilter::new(params, Md5Split), entries: 0 }
    }

    /// Builds a digest directly from an iterator of cached URLs (all `GET`).
    pub fn build<I, S>(urls: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let urls: Vec<String> = urls.into_iter().map(|u| u.as_ref().to_owned()).collect();
        let mut digest = Self::with_capacity(urls.len() as u64);
        for url in &urls {
            digest.add("GET", url);
        }
        digest
    }

    /// Adds a cached object to the digest.
    pub fn add(&mut self, method: &str, url: &str) {
        self.filter.insert(&digest_key(method, url));
        self.entries += 1;
    }

    /// Queries the digest: `true` means the peer *might* have the object.
    pub fn might_have(&self, method: &str, url: &str) -> bool {
        self.filter.contains(&digest_key(method, url))
    }

    /// Number of objects added to the digest.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Size of the digest in bits (`5n + 7` for the capacity it was built
    /// with).
    pub fn size_bits(&self) -> u64 {
        self.filter.m()
    }

    /// Fraction of set bits.
    pub fn fill_ratio(&self) -> f64 {
        self.filter.fill_ratio()
    }

    /// Current false-positive probability given the fill ratio.
    pub fn false_positive_probability(&self) -> f64 {
        self.filter.current_false_positive_probability()
    }

    /// Access to the underlying filter (the attack engines need the support
    /// and the index mapping).
    pub fn filter(&self) -> &BloomFilter {
        &self.filter
    }

    /// The four filter indexes of a request, as an adversary would compute
    /// them offline.
    pub fn indexes_of(&self, method: &str, url: &str) -> Vec<u64> {
        Md5Split.indexes(&digest_key(method, url), SQUID_HASH_COUNT, self.filter.m())
    }

    /// Serialized bit vector, as it would be shipped to a sibling proxy.
    pub fn bits(&self) -> &BitVec {
        self.filter.bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_follows_squid() {
        let digest = CacheDigest::with_capacity(200);
        assert_eq!(digest.size_bits(), 1007);
        let paper_experiment = CacheDigest::with_capacity(151);
        assert_eq!(paper_experiment.size_bits(), 762);
    }

    #[test]
    fn membership_of_cached_urls() {
        let urls: Vec<String> =
            (0..100).map(|i| format!("http://origin.example/page{i}")).collect();
        let digest = CacheDigest::build(&urls);
        for url in &urls {
            assert!(digest.might_have("GET", url));
        }
        assert_eq!(digest.entries(), 100);
    }

    #[test]
    fn method_is_part_of_the_key() {
        let mut digest = CacheDigest::with_capacity(10);
        digest.add("GET", "http://a.example/");
        // A different method hashes to (almost surely) different indexes.
        assert_ne!(
            digest.indexes_of("GET", "http://a.example/"),
            digest.indexes_of("HEAD", "http://a.example/")
        );
    }

    #[test]
    fn false_positive_rate_close_to_paper_prediction() {
        // n = 200 at capacity: the paper computes f ≈ 0.09 for the 5n+7
        // sizing. Measure it empirically.
        let urls: Vec<String> = (0..200).map(|i| format!("http://origin.example/obj{i}")).collect();
        let digest = CacheDigest::build(&urls);
        let probes = 30_000;
        let fp = (0..probes)
            .filter(|i| digest.might_have("GET", &format!("http://elsewhere.example/{i}")))
            .count();
        let rate = fp as f64 / probes as f64;
        assert!((rate - 0.09).abs() < 0.04, "observed {rate}");
    }

    #[test]
    fn indexes_are_what_an_adversary_would_compute() {
        let digest = CacheDigest::with_capacity(151);
        let idx = digest.indexes_of("GET", "http://victim.example/");
        assert_eq!(idx.len(), 4);
        assert!(idx.iter().all(|&i| i < digest.size_bits()));
        // Recomputable without the digest object: only public information.
        let recomputed = Md5Split.indexes(&digest_key("GET", "http://victim.example/"), 4, 762);
        assert_eq!(idx, recomputed);
    }

    #[test]
    fn empty_capacity_clamped_to_one() {
        let digest = CacheDigest::with_capacity(0);
        assert!(digest.size_bits() >= 12);
    }

    #[test]
    fn fill_and_fpp_are_consistent() {
        let digest = CacheDigest::build((0..50).map(|i| format!("u{i}")));
        let fill = digest.fill_ratio();
        assert!((digest.false_positive_probability() - fill.powi(4)).abs() < 1e-12);
    }
}

//! Randomized property tests for the blocked filter, the double-hashing
//! strategy and the batch APIs. The environment has no network access, so
//! instead of `proptest` these drive the properties from a seeded
//! `StdRng` — every case is reproducible from the seed in the message.

use evilbloom_filters::{BlockedBloomFilter, BloomFilter, ConcurrentBloomFilter, FilterParams};
use evilbloom_hashes::{
    DoubleHasher, IndexStrategy, KeyedPair, KirschMitzenmacher, KmIndexes, Murmur128Pair,
    Murmur3_128, SipHash24, SipKey,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 48;

fn random_items(rng: &mut StdRng, max_items: usize, max_len: usize) -> Vec<Vec<u8>> {
    let count = rng.gen_range(1..max_items);
    (0..count)
        .map(|_| {
            let len = rng.gen_range(1..max_len);
            let mut item = vec![0u8; len];
            rng.fill(&mut item[..]);
            item
        })
        .collect()
}

/// A blocked filter never reports a false negative, whatever pair source
/// drives it.
#[test]
fn blocked_no_false_negatives() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let items = random_items(&mut rng, 300, 64);
        let params = FilterParams::optimal(items.len().max(1) as u64, 0.01);
        let mut plain = BlockedBloomFilter::new(params, Murmur128Pair);
        let mut keyed = BlockedBloomFilter::new(
            params,
            KeyedPair::new(Box::new(SipHash24::new(SipKey::new(seed, !seed)))),
        );
        for item in &items {
            plain.insert(item);
            keyed.insert(item);
        }
        for item in &items {
            assert!(plain.contains(item), "seed {seed}: false negative (plain)");
            assert!(keyed.contains(item), "seed {seed}: false negative (keyed)");
        }
    }
}

/// Batch results are bit-identical to per-item calls — inserts and queries,
/// blocked and concurrent alike.
#[test]
fn batch_calls_are_bit_identical_to_loops() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let items = random_items(&mut rng, 200, 48);
        let probes = random_items(&mut rng, 100, 48);
        let params = FilterParams::explicit(1 << 13, rng.gen_range(1..9), items.len() as u64);

        let mut blocked_loop = BlockedBloomFilter::new(params, Murmur128Pair);
        let mut blocked_batch = BlockedBloomFilter::new(params, Murmur128Pair);
        let mut fresh_loop = 0u64;
        for item in &items {
            fresh_loop += u64::from(blocked_loop.insert(item));
        }
        assert_eq!(blocked_batch.insert_batch(&items), fresh_loop, "seed {seed}");
        assert_eq!(blocked_batch.hamming_weight(), blocked_loop.hamming_weight(), "seed {seed}");
        let answers = blocked_batch.query_batch(&probes);
        for (probe, answer) in probes.iter().zip(&answers) {
            assert_eq!(*answer, blocked_loop.contains(probe), "seed {seed}");
        }

        let concurrent_loop =
            ConcurrentBloomFilter::new(params, KirschMitzenmacher::new(Murmur3_128));
        let concurrent_batch =
            ConcurrentBloomFilter::new(params, KirschMitzenmacher::new(Murmur3_128));
        let mut fresh_loop = 0u64;
        for item in &items {
            fresh_loop += u64::from(concurrent_loop.insert(item));
        }
        assert_eq!(concurrent_batch.insert_batch(&items), fresh_loop, "seed {seed}");
        assert_eq!(concurrent_batch.snapshot(), concurrent_loop.snapshot(), "seed {seed}");
        assert_eq!(concurrent_batch.inserted(), concurrent_loop.inserted(), "seed {seed}");
        let answers = concurrent_batch.query_batch(&probes);
        for (probe, answer) in probes.iter().zip(&answers) {
            assert_eq!(*answer, concurrent_loop.contains(probe), "seed {seed}");
        }
    }
}

/// The pair-based KM strategy is index-compatible with the classic
/// two-call strategy over the same base hash, for every geometry.
#[test]
fn km_pair_strategy_matches_classic_over_random_geometries() {
    let classic = KirschMitzenmacher::new(Murmur3_128);
    let pair_based = KmIndexes::new(DoubleHasher::new(Murmur3_128));
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = rng.gen_range(2u64..1 << 22);
        let k = rng.gen_range(1u32..12);
        let item = random_items(&mut rng, 2, 64).remove(0);
        assert_eq!(
            pair_based.indexes(&item, k, m),
            classic.indexes(&item, k, m),
            "seed {seed} m={m} k={k}"
        );
        // And the buffered path agrees with the allocating path.
        let mut buffered = Vec::new();
        pair_based.indexes_into(&item, k, m, &mut buffered);
        assert_eq!(buffered, pair_based.indexes(&item, k, m), "seed {seed}");
    }
}

/// A filter built on the pair-based KM strategy is bit-for-bit equivalent to
/// one built on the classic strategy.
#[test]
fn km_pair_filter_is_bit_compatible_with_classic_filter() {
    for seed in 0..8 {
        let mut rng = StdRng::seed_from_u64(seed);
        let items = random_items(&mut rng, 150, 40);
        let params = FilterParams::optimal(items.len().max(1) as u64, 0.02);
        let mut classic = BloomFilter::new(params, KirschMitzenmacher::new(Murmur3_128));
        let mut pair_based =
            BloomFilter::new(params, KmIndexes::new(DoubleHasher::new(Murmur3_128)));
        for item in &items {
            classic.insert(item);
            pair_based.insert(item);
        }
        assert_eq!(classic.bits(), pair_based.bits(), "seed {seed}");
    }
}

/// Observed false-positive rate of a loaded blocked filter stays within 2x
/// of the corrected (Poisson-mixture) analysis bound — and the corrected
/// bound is what's accurate: the naive unblocked formula undershoots.
#[test]
fn blocked_observed_fpp_within_2x_of_corrected_bound() {
    for seed in 0..4u64 {
        let k = 4 + (seed as u32 % 3); // k in 4..=6
        let m = 1u64 << 15;
        let n = 3_500 + 500 * seed;
        let mut filter = BlockedBloomFilter::new(FilterParams::explicit(m, k, n), Murmur128Pair);
        for i in 0..n {
            filter.insert(format!("member-{seed}-{i}").as_bytes());
        }
        let corrected = evilbloom_analysis::blocked::blocked_false_positive(
            filter.m(),
            n,
            k,
            evilbloom_filters::BLOCK_BITS,
        );
        let probes = 150_000u64;
        let false_positives = (0..probes)
            .filter(|i| filter.contains(format!("absent-{seed}-{i}").as_bytes()))
            .count() as f64;
        let observed = false_positives / probes as f64;
        assert!(
            observed <= corrected * 2.0,
            "seed {seed}: observed {observed} above 2x corrected bound {corrected}"
        );
        assert!(
            observed >= corrected / 2.0,
            "seed {seed}: observed {observed} below half the corrected bound {corrected} — \
             the bound is not tight"
        );
    }
}

/// Keyed pair sources place items unpredictably: two keys agree on almost
/// nothing, and an unkeyed observer cannot reproduce the layout.
#[test]
fn keyed_blocked_filters_disagree_across_keys() {
    let params = FilterParams::explicit(1 << 14, 4, 200);
    let a = BlockedBloomFilter::new(
        params,
        KeyedPair::new(Box::new(SipHash24::new(SipKey::new(1, 2)))),
    );
    let b = BlockedBloomFilter::new(
        params,
        KeyedPair::new(Box::new(SipHash24::new(SipKey::new(3, 4)))),
    );
    let differing = (0..200)
        .filter(|i| {
            let item = format!("item-{i}");
            a.bit_positions(item.as_bytes()) != b.bit_positions(item.as_bytes())
        })
        .count();
    assert!(differing > 190, "only {differing}/200 items placed differently");
}

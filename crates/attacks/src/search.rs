//! Generic brute-force forgery search.
//!
//! Every attack in the paper reduces to the same loop: *enumerate candidate
//! items, keep the ones whose index set satisfies a predicate*. This module
//! provides that loop with cost accounting (candidates examined, wall-clock
//! time) and an optional multi-threaded variant for the heavy searches of
//! Figures 5 and 6.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Cost accounting of a forgery search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Number of candidate items examined.
    pub attempts: u64,
    /// Number of candidates accepted.
    pub accepted: u64,
    /// Wall-clock time spent searching.
    pub elapsed: Duration,
}

impl SearchStats {
    /// Average number of candidates examined per accepted item.
    pub fn attempts_per_accepted(&self) -> f64 {
        if self.accepted == 0 {
            f64::INFINITY
        } else {
            self.attempts as f64 / self.accepted as f64
        }
    }

    /// Accepted items per second of wall-clock search time.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.accepted as f64 / secs
        }
    }
}

/// Outcome of a search: the forged items plus cost accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The accepted (forged) items, in acceptance order.
    pub items: Vec<String>,
    /// Cost accounting for the search.
    pub stats: SearchStats,
}

/// Searches candidate items `generate(0), generate(1), …` and keeps those for
/// which `accept` returns `true`, until `wanted` items are found or
/// `max_attempts` candidates have been examined.
///
/// `accept` receives the candidate and may mutate external state (e.g. a
/// shadow filter tracking bits claimed by previously accepted items).
pub fn search<G, A>(
    wanted: usize,
    max_attempts: u64,
    mut generate: G,
    mut accept: A,
) -> SearchOutcome
where
    G: FnMut(u64) -> String,
    A: FnMut(&str) -> bool,
{
    let start = Instant::now();
    let mut items = Vec::with_capacity(wanted);
    let mut attempts = 0u64;
    while items.len() < wanted && attempts < max_attempts {
        let candidate = generate(attempts);
        attempts += 1;
        if accept(&candidate) {
            items.push(candidate);
        }
    }
    let stats = SearchStats { attempts, accepted: items.len() as u64, elapsed: start.elapsed() };
    SearchOutcome { items, stats }
}

/// Multi-threaded variant of [`search`] for predicates that only *read*
/// shared state (query-only attacks): `threads` workers scan disjoint strides
/// of the candidate space.
///
/// The accepted set may differ from the sequential search (acceptance order
/// is non-deterministic across runs), but every returned item satisfies the
/// predicate.
pub fn parallel_search<G, A>(
    wanted: usize,
    max_attempts: u64,
    threads: usize,
    generate: G,
    accept: A,
) -> SearchOutcome
where
    G: Fn(u64) -> String + Sync,
    A: Fn(&str) -> bool + Sync,
{
    assert!(threads >= 1, "need at least one worker thread");
    let start = Instant::now();
    let found: Mutex<Vec<String>> = Mutex::new(Vec::with_capacity(wanted));
    let attempts = std::sync::atomic::AtomicU64::new(0);
    // Lock-free termination check: taking the mutex on every candidate just
    // to read the length would serialize the workers on large searches.
    let accepted = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let found = &found;
            let attempts = &attempts;
            let accepted = &accepted;
            let generate = &generate;
            let accept = &accept;
            scope.spawn(move || {
                let mut i = worker as u64;
                loop {
                    if i >= max_attempts
                        || accepted.load(std::sync::atomic::Ordering::Relaxed) >= wanted
                    {
                        break;
                    }
                    let candidate = generate(i);
                    attempts.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if accept(&candidate) {
                        let mut guard = found.lock().expect("search lock never poisoned");
                        if guard.len() < wanted {
                            guard.push(candidate);
                            accepted.store(guard.len(), std::sync::atomic::Ordering::Relaxed);
                        }
                        if guard.len() >= wanted {
                            break;
                        }
                    }
                    i += threads as u64;
                }
            });
        }
    });

    let items = found.into_inner().expect("search lock never poisoned");
    let stats = SearchStats {
        attempts: attempts.into_inner(),
        accepted: items.len() as u64,
        elapsed: start.elapsed(),
    };
    SearchOutcome { items, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_search_finds_matching_items() {
        let outcome = search(5, 10_000, |i| format!("candidate-{i}"), |c| c.ends_with('0'));
        assert_eq!(outcome.items.len(), 5);
        assert!(outcome.items.iter().all(|c| c.ends_with('0')));
        assert!(outcome.stats.attempts >= 5);
        assert_eq!(outcome.stats.accepted, 5);
        assert!(outcome.stats.attempts_per_accepted() >= 1.0);
    }

    #[test]
    fn search_gives_up_at_max_attempts() {
        let outcome = search(1, 100, |i| format!("c{i}"), |_| false);
        assert!(outcome.items.is_empty());
        assert_eq!(outcome.stats.attempts, 100);
        assert_eq!(outcome.stats.attempts_per_accepted(), f64::INFINITY);
    }

    #[test]
    fn stateful_predicate_sees_previous_acceptances() {
        let mut seen_lengths = std::collections::HashSet::new();
        let outcome = search(
            3,
            1000,
            |i| "x".repeat((i % 10) as usize + 1),
            |c| seen_lengths.insert(c.len()),
        );
        assert_eq!(outcome.items.len(), 3);
        let lengths: std::collections::HashSet<usize> =
            outcome.items.iter().map(|c| c.len()).collect();
        assert_eq!(lengths.len(), 3, "every accepted item has a distinct length");
    }

    #[test]
    fn parallel_search_finds_valid_items() {
        let outcome = parallel_search(
            8,
            100_000,
            4,
            |i| format!("candidate-{i}"),
            |c| c.as_bytes().iter().map(|&b| u32::from(b)).sum::<u32>() % 7 == 0,
        );
        assert_eq!(outcome.items.len(), 8);
        for item in &outcome.items {
            assert_eq!(item.as_bytes().iter().map(|&b| u32::from(b)).sum::<u32>() % 7, 0);
        }
    }

    #[test]
    fn parallel_search_respects_max_attempts() {
        let outcome = parallel_search(1, 50, 4, |i| format!("c{i}"), |_| false);
        assert!(outcome.items.is_empty());
        assert!(outcome.stats.attempts <= 60, "attempts {}", outcome.stats.attempts);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn parallel_search_rejects_zero_threads() {
        parallel_search(1, 10, 0, |i| format!("{i}"), |_| true);
    }

    #[test]
    fn throughput_reported() {
        let outcome = search(10, 1000, |i| format!("{i}"), |_| true);
        assert!(outcome.stats.throughput() > 0.0);
    }
}

//! Chosen-insertion adversary: pollution and saturation (Section 4.1).
//!
//! The adversary crafts items whose `k` indexes all land on *currently unset*
//! bits (Equation (6)), so every insertion raises the Hamming weight by
//! exactly `k`. After `n` insertions the false-positive probability reaches
//! `(nk/m)^k` instead of the designed value, and `m/k` insertions saturate
//! the filter outright — a factor `log m` cheaper than random saturation.

use std::collections::HashSet;

use evilbloom_urlgen::UrlGenerator;

use crate::search::{search, SearchOutcome, SearchStats};
use crate::target::TargetFilter;

/// Result of crafting a batch of polluting items.
#[derive(Debug, Clone, PartialEq)]
pub struct PollutionPlan {
    /// The crafted items, in the order they must be inserted.
    pub items: Vec<String>,
    /// Search cost accounting.
    pub stats: SearchStats,
    /// Predicted false-positive probability once all items are inserted,
    /// assuming the filter initially had `initial_weight` set bits.
    pub predicted_false_positive: f64,
}

/// Crafts `count` polluting items against the current state of `filter`.
///
/// The search tracks a *shadow* set of bits claimed by already-accepted
/// items, so the plan stays valid when the items are inserted in order: each
/// item sets `k` bits that are fresh both in the real filter and relative to
/// the earlier items of the plan.
///
/// `generator` supplies the candidate URLs (the adversary's link farm);
/// `max_attempts` bounds the search.
pub fn craft_polluting_items<F: TargetFilter>(
    filter: &F,
    generator: &UrlGenerator,
    count: usize,
    max_attempts: u64,
) -> PollutionPlan {
    let m = filter.m();
    let k = filter.k();
    let initial_weight = filter.weight();
    let mut claimed: HashSet<u64> = HashSet::new();

    let outcome: SearchOutcome = search(
        count,
        max_attempts,
        |i| generator.url(i),
        |candidate| {
            let indexes = filter.indexes_of(candidate.as_bytes());
            let distinct: HashSet<u64> = indexes.iter().copied().collect();
            if distinct.len() != indexes.len() {
                return false;
            }
            let all_fresh =
                indexes.iter().all(|&idx| !filter.is_set(idx) && !claimed.contains(&idx));
            if all_fresh {
                claimed.extend(indexes);
            }
            all_fresh
        },
    );

    let final_weight = initial_weight + claimed.len() as u64;
    let predicted_false_positive = ((final_weight as f64 / m as f64).min(1.0)).powi(k as i32);

    PollutionPlan { items: outcome.items, stats: outcome.stats, predicted_false_positive }
}

/// Crafts enough polluting items to fully saturate the filter (`⌈zeros/k⌉`
/// items, the paper's `m/k` bound for an initially empty filter). Returns the
/// plan; call sites insert the items to realise the saturation.
pub fn craft_saturating_items<F: TargetFilter>(
    filter: &F,
    generator: &UrlGenerator,
    max_attempts: u64,
) -> PollutionPlan {
    let zeros = filter.m() - filter.weight();
    let needed = zeros.div_ceil(u64::from(filter.k())) as usize;
    craft_polluting_items(filter, generator, needed, max_attempts)
}

/// One point of the Figure 3 sweep: the false-positive probability after a
/// given number of insertions under a given strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsertionSweepPoint {
    /// Number of items inserted so far.
    pub inserted: u64,
    /// Honest (uniform-insertion) false-positive probability.
    pub honest: f64,
    /// Fully adversarial false-positive probability.
    pub adversarial: f64,
    /// Mixed scenario: the first `honest_prefix` insertions are honest, the
    /// rest adversarial.
    pub partial: f64,
}

/// Computes the Figure 3 curves analytically for a filter of `m` bits and
/// `k` hash functions, sweeping insertions from 0 to `max_items` in steps of
/// `step`, with the partial curve switching from honest to adversarial after
/// `honest_prefix` insertions.
pub fn insertion_sweep(
    m: u64,
    k: u32,
    max_items: u64,
    step: u64,
    honest_prefix: u64,
) -> Vec<InsertionSweepPoint> {
    assert!(step > 0, "step must be positive");
    let mut points = Vec::new();
    let mut n = 0u64;
    while n <= max_items {
        let honest = evilbloom_analysis::false_positive::false_positive_approx(m, n, k);
        let adversarial = evilbloom_analysis::worst_case::adversarial_false_positive(m, n, k);
        let partial = if n <= honest_prefix {
            honest
        } else {
            // After the honest prefix the filter holds the expected honest
            // fill; every further insertion adds k fresh bits.
            let honest_fill =
                evilbloom_analysis::false_positive::expected_fill(m, honest_prefix, k);
            let extra_bits = (n - honest_prefix) * u64::from(k);
            let fill = (honest_fill + extra_bits as f64 / m as f64).min(1.0);
            fill.powi(k as i32)
        };
        points.push(InsertionSweepPoint { inserted: n, honest, adversarial, partial });
        n += step;
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use evilbloom_filters::{BloomFilter, FilterParams};
    use evilbloom_hashes::{KirschMitzenmacher, Murmur3_128, SaltedCrypto, Sha256};

    fn figure3_filter() -> BloomFilter {
        BloomFilter::new(FilterParams::explicit(3200, 4, 600), SaltedCrypto::new(Box::new(Sha256)))
    }

    #[test]
    fn polluting_items_set_k_fresh_bits_each() {
        let mut filter = figure3_filter();
        let generator = UrlGenerator::new("pollute");
        let plan = craft_polluting_items(&filter, &generator, 50, 1_000_000);
        assert_eq!(plan.items.len(), 50);
        for item in &plan.items {
            let fresh = filter.insert(item.as_bytes());
            assert_eq!(fresh, 4, "every crafted item must set exactly k new bits");
        }
        assert_eq!(filter.hamming_weight(), 200);
    }

    #[test]
    fn pollution_beats_honest_false_positive_rate() {
        let mut filter = figure3_filter();
        let generator = UrlGenerator::new("pollute");
        let plan = craft_polluting_items(&filter, &generator, 422, 10_000_000);
        assert_eq!(plan.items.len(), 422);
        for item in &plan.items {
            filter.insert(item.as_bytes());
        }
        // The paper: 422 chosen insertions already reach the threshold 0.077
        // that honest insertions only reach after 600.
        let fpp = filter.current_false_positive_probability();
        assert!(fpp >= 0.075, "achieved {fpp}");
        assert!((plan.predicted_false_positive - fpp).abs() < 1e-9);
    }

    #[test]
    fn pollution_works_on_partially_filled_filters() {
        let mut filter = figure3_filter();
        for i in 0..400 {
            filter.insert(format!("honest-{i}").as_bytes());
        }
        let before = filter.hamming_weight();
        let generator = UrlGenerator::new("late-attack");
        let plan = craft_polluting_items(&filter, &generator, 60, 5_000_000);
        assert_eq!(plan.items.len(), 60);
        for item in &plan.items {
            filter.insert(item.as_bytes());
        }
        assert_eq!(filter.hamming_weight(), before + 60 * 4);
    }

    #[test]
    fn saturation_plan_kills_the_filter() {
        let params = FilterParams::explicit(64, 2, 20);
        let mut filter = BloomFilter::new(params, KirschMitzenmacher::new(Murmur3_128));
        let generator = UrlGenerator::new("saturate");
        let plan = craft_saturating_items(&filter, &generator, 50_000_000);
        assert_eq!(plan.items.len(), 32, "m/k items saturate an empty filter");
        for item in &plan.items {
            filter.insert(item.as_bytes());
        }
        assert!(filter.is_saturated());
        assert!(filter.contains(b"anything at all"));
    }

    #[test]
    fn search_cost_grows_with_filter_occupancy() {
        let mut filter = figure3_filter();
        let generator = UrlGenerator::new("cost");
        let empty_plan = craft_polluting_items(&filter, &generator, 20, 1_000_000);
        for i in 0..500 {
            filter.insert(format!("filler-{i}").as_bytes());
        }
        let loaded_plan = craft_polluting_items(&filter, &generator, 20, 10_000_000);
        assert!(
            loaded_plan.stats.attempts_per_accepted() > empty_plan.stats.attempts_per_accepted(),
            "loaded {} vs empty {}",
            loaded_plan.stats.attempts_per_accepted(),
            empty_plan.stats.attempts_per_accepted()
        );
    }

    #[test]
    fn insertion_sweep_reproduces_figure3_shape() {
        let points = insertion_sweep(3200, 4, 600, 50, 400);
        assert_eq!(points.len(), 13);
        let last = points.last().expect("non-empty");
        assert!((last.adversarial - 0.316).abs() < 0.01);
        assert!((last.honest - 0.077).abs() < 0.01);
        // Partial attack sits between the honest and fully adversarial curve.
        assert!(last.partial > last.honest && last.partial < last.adversarial);
        // Before the switch point the partial curve equals the honest one.
        let at_switch = &points[8];
        assert_eq!(at_switch.inserted, 400);
        assert!((at_switch.partial - at_switch.honest).abs() < 1e-12);
    }

    #[test]
    fn sweep_curves_are_monotone() {
        let points = insertion_sweep(3200, 4, 600, 25, 300);
        for pair in points.windows(2) {
            assert!(pair[1].honest >= pair[0].honest);
            assert!(pair[1].adversarial >= pair[0].adversarial);
            assert!(pair[1].partial >= pair[0].partial);
        }
    }
}

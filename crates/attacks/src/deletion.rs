//! Deletion adversary (Section 4.3) and the Dablooms counter-overflow attack
//! (Section 6.2).
//!
//! Against counting filters an adversary who can trigger deletions (e.g. by
//! getting her own URLs delisted) can:
//!
//! * **evict a victim item** by deleting crafted items that share cells with
//!   it, creating false negatives;
//! * **waste an entire sub-filter** by exploiting counter wrap-around: if all
//!   the increments she contributes land on a handful of cells, each
//!   receiving a multiple of `2^bits` increments, the sub-filter's insertion
//!   counter says "full" while every counter reads zero.

use std::collections::HashSet;

use evilbloom_filters::CountingBloomFilter;
use evilbloom_urlgen::UrlGenerator;

use crate::search::{search, SearchStats};
use crate::target::TargetFilter;

/// Result of planning a targeted deletion.
#[derive(Debug, Clone, PartialEq)]
pub struct DeletionPlan {
    /// Items to delete, in order. Deleting them clears every cell of the
    /// victim at least once.
    pub items: Vec<String>,
    /// Victim cells covered by the plan.
    pub covered_cells: Vec<u64>,
    /// Search cost accounting.
    pub stats: SearchStats,
}

/// Crafts a set of items whose deletion evicts `victim` from a deletable
/// (counting) filter: together, the crafted items cover every cell of the
/// victim. Generic over [`TargetFilter`], so the same offline search runs
/// against a local [`CountingBloomFilter`] or an unhardened store's
/// flattened adversarial view — and the planned items can then be executed
/// locally or shipped as `DELETE` frames over the wire.
///
/// The plan assumes each victim cell holds a single count (the victim was
/// inserted once and no other member shares the cell); deleting the plan's
/// items then drives each covered cell to zero. When cells are shared the
/// eviction may require repeating the plan — exactly the "deletion of an item
/// may require other deletions" caveat of the paper.
pub fn plan_targeted_deletion<F: TargetFilter>(
    filter: &F,
    victim: &[u8],
    generator: &UrlGenerator,
    max_attempts: u64,
) -> DeletionPlan {
    let start = std::time::Instant::now();
    let victim_cells: Vec<u64> = filter.indexes_of(victim);
    let mut uncovered: HashSet<u64> = victim_cells.iter().copied().collect();
    let mut covered: Vec<u64> = Vec::new();
    let mut items = Vec::new();
    let mut attempts = 0u64;

    while !uncovered.is_empty() && attempts < max_attempts {
        let candidate = generator.url(attempts);
        attempts += 1;
        let cells = filter.indexes_of(candidate.as_bytes());
        let hits: Vec<u64> = cells.iter().copied().filter(|c| uncovered.contains(c)).collect();
        if hits.is_empty() {
            continue;
        }
        for cell in &hits {
            uncovered.remove(cell);
            covered.push(*cell);
        }
        items.push(candidate);
    }

    let stats = SearchStats { attempts, accepted: items.len() as u64, elapsed: start.elapsed() };
    DeletionPlan { items, covered_cells: covered, stats }
}

/// Result of the counter-overflow ("empty but full") attack.
#[derive(Debug, Clone, PartialEq)]
pub struct OverflowPlan {
    /// Items to insert. Their total increment count is concentrated on
    /// `target_cells`, wrapping each counter back to zero.
    pub items: Vec<String>,
    /// The cells the attack concentrates on.
    pub target_cells: Vec<u64>,
    /// Search cost accounting.
    pub stats: SearchStats,
}

/// Crafts `count` items that all map *exclusively* into `cell_budget` chosen
/// cells of the filter, so their combined increments hit only those cells.
///
/// With wrap-around counters (the Dablooms failure mode) and `count * k`
/// chosen as a multiple of `2^bits * cell_budget`, inserting the plan leaves
/// every counter at zero while the slice's insertion counter advances by
/// `count` — the paper's "complete waste of memory".
pub fn plan_counter_overflow<F: TargetFilter>(
    filter: &F,
    cell_budget: usize,
    count: usize,
    generator: &UrlGenerator,
    max_attempts: u64,
) -> OverflowPlan {
    assert!(cell_budget >= 1, "need at least one target cell");
    let mut target_cells: Vec<u64> = Vec::new();

    let outcome = search(
        count,
        max_attempts,
        |i| generator.url(i),
        |candidate| {
            let cells = filter.indexes_of(candidate.as_bytes());
            let distinct: HashSet<u64> = cells.iter().copied().collect();
            // Accept the candidate if its cells fit inside the (possibly
            // still growing) target set.
            let new_cells: Vec<u64> =
                distinct.iter().copied().filter(|c| !target_cells.contains(c)).collect();
            if target_cells.len() + new_cells.len() <= cell_budget {
                target_cells.extend(new_cells);
                true
            } else {
                false
            }
        },
    );

    OverflowPlan { items: outcome.items, target_cells, stats: outcome.stats }
}

/// Executes a deletion plan: deletes every planned item once.
pub fn execute_deletions(filter: &mut CountingBloomFilter, plan: &DeletionPlan) {
    for item in &plan.items {
        filter.delete(item.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evilbloom_filters::counting::OverflowPolicy;
    use evilbloom_filters::FilterParams;
    use evilbloom_hashes::{KirschMitzenmacher, Murmur3_128};
    use std::sync::Arc;

    fn counting_filter(m: u64, k: u32) -> CountingBloomFilter {
        CountingBloomFilter::new(
            FilterParams::explicit(m, k, m / 8),
            KirschMitzenmacher::new(Murmur3_128),
        )
    }

    #[test]
    fn targeted_deletion_evicts_the_victim() {
        let mut filter = counting_filter(1024, 4);
        // A population of genuine entries plus the victim.
        for i in 0..50 {
            filter.insert(format!("legit-{i}").as_bytes());
        }
        let victim = b"http://victim.example/malicious";
        filter.insert(victim);
        assert!(filter.contains(victim));

        let generator = UrlGenerator::new("delete");
        let plan = plan_targeted_deletion(&filter, victim, &generator, 10_000_000);
        assert_eq!(
            plan.covered_cells.iter().collect::<HashSet<_>>(),
            filter.indexes(victim).iter().collect::<HashSet<_>>()
        );

        // Victim cells shared with legitimate entries hold counts above one,
        // so the plan may need to be replayed — exactly the paper's "deletion
        // of an item may require other deletions" caveat.
        let mut rounds = 0;
        while filter.contains(victim) && rounds < 8 {
            execute_deletions(&mut filter, &plan);
            rounds += 1;
        }
        assert!(!filter.contains(victim), "victim must be evicted after {rounds} rounds");
    }

    #[test]
    fn deletion_plan_reports_costs() {
        let mut filter = counting_filter(4096, 4);
        filter.insert(b"victim");
        let generator = UrlGenerator::new("cost");
        let plan = plan_targeted_deletion(&filter, b"victim", &generator, 10_000_000);
        assert!(!plan.items.is_empty());
        assert!(plan.stats.attempts >= plan.items.len() as u64);
    }

    #[test]
    fn overflow_plan_concentrates_on_few_cells() {
        let filter = counting_filter(256, 2);
        let generator = UrlGenerator::new("overflow");
        let plan = plan_counter_overflow(&filter, 2, 16, &generator, 50_000_000);
        assert_eq!(plan.items.len(), 16);
        assert!(plan.target_cells.len() <= 2);
        for item in &plan.items {
            let cells = filter.indexes(item.as_bytes());
            assert!(cells.iter().all(|c| plan.target_cells.contains(c)));
        }
    }

    #[test]
    fn overflow_attack_wastes_a_wrapping_filter() {
        // Wrap-around counters: concentrate 16 increments per cell so every
        // counter returns to zero — the slice looks empty although its
        // insertion counter says otherwise.
        let strategy = Arc::new(KirschMitzenmacher::new(Murmur3_128));
        let mut filter = CountingBloomFilter::with_policy(
            FilterParams::explicit(256, 2, 32),
            strategy,
            4,
            OverflowPolicy::Wrap,
        );
        let generator = UrlGenerator::new("waste");
        let plan = plan_counter_overflow(&filter, 1, 8, &generator, 100_000_000);
        assert_eq!(plan.items.len(), 8, "need 8 items × k=2 = 16 increments on one cell");
        assert_eq!(plan.target_cells.len(), 1);
        for item in &plan.items {
            filter.insert(item.as_bytes());
        }
        assert_eq!(filter.inserted(), 8);
        assert_eq!(filter.occupied_cells(), 0, "all increments wrapped back to zero");
        for item in &plan.items {
            assert!(!filter.contains(item.as_bytes()), "inserted items are not even detected");
        }
    }

    #[test]
    #[should_panic(expected = "at least one target cell")]
    fn overflow_plan_needs_a_cell_budget() {
        let filter = counting_filter(64, 2);
        plan_counter_overflow(&filter, 0, 1, &UrlGenerator::new("x"), 10);
    }
}

//! The adversary's view of a filter.
//!
//! The paper assumes the filter implementation is public and its state is
//! known (fully or partially) to the adversary. [`TargetFilter`] captures
//! exactly the information every attack needs: the geometry `(m, k)`, the
//! index derivation, and which bits/cells are currently set.

use evilbloom_filters::{
    BlockedBloomFilter, BloomFilter, CacheDigest, ConcurrentBloomFilter, CountingBloomFilter,
};

/// Read-only adversarial view of a Bloom-filter-like structure.
pub trait TargetFilter {
    /// Number of bits / cells in the filter.
    fn m(&self) -> u64;

    /// Number of indexes per item.
    fn k(&self) -> u32;

    /// The indexes an item maps to — the adversary can compute this offline
    /// because the index derivation is public and unkeyed.
    fn indexes_of(&self, item: &[u8]) -> Vec<u64>;

    /// Whether the bit / cell at `index` is currently set (non-zero).
    fn is_set(&self, index: u64) -> bool;

    /// Hamming weight (number of set bits / non-zero cells).
    fn weight(&self) -> u64 {
        (0..self.m()).filter(|&i| self.is_set(i)).count() as u64
    }

    /// Fill ratio `weight / m`.
    fn fill_ratio(&self) -> f64 {
        self.weight() as f64 / self.m() as f64
    }
}

impl TargetFilter for BloomFilter {
    fn m(&self) -> u64 {
        BloomFilter::m(self)
    }

    fn k(&self) -> u32 {
        BloomFilter::k(self)
    }

    fn indexes_of(&self, item: &[u8]) -> Vec<u64> {
        self.indexes(item)
    }

    fn is_set(&self, index: u64) -> bool {
        BloomFilter::is_set(self, index)
    }

    fn weight(&self) -> u64 {
        self.hamming_weight()
    }
}

impl TargetFilter for ConcurrentBloomFilter {
    fn m(&self) -> u64 {
        ConcurrentBloomFilter::m(self)
    }

    fn k(&self) -> u32 {
        ConcurrentBloomFilter::k(self)
    }

    fn indexes_of(&self, item: &[u8]) -> Vec<u64> {
        self.indexes(item)
    }

    fn is_set(&self, index: u64) -> bool {
        ConcurrentBloomFilter::is_set(self, index)
    }

    fn weight(&self) -> u64 {
        self.hamming_weight()
    }
}

impl TargetFilter for BlockedBloomFilter {
    /// The cache-line blocked fast path is *exactly* as attackable as the
    /// classic filter when its pair source is predictable: the adversary
    /// computes block and in-block offsets offline and every engine in this
    /// crate applies unchanged — confinement to one block is a performance
    /// trade, not a defence.
    fn m(&self) -> u64 {
        BlockedBloomFilter::m(self)
    }

    fn k(&self) -> u32 {
        BlockedBloomFilter::k(self)
    }

    fn indexes_of(&self, item: &[u8]) -> Vec<u64> {
        self.bit_positions(item)
    }

    fn is_set(&self, index: u64) -> bool {
        BlockedBloomFilter::is_set(self, index)
    }

    fn weight(&self) -> u64 {
        self.hamming_weight()
    }
}

impl TargetFilter for CountingBloomFilter {
    fn m(&self) -> u64 {
        CountingBloomFilter::m(self)
    }

    fn k(&self) -> u32 {
        CountingBloomFilter::k(self)
    }

    fn indexes_of(&self, item: &[u8]) -> Vec<u64> {
        self.indexes(item)
    }

    fn is_set(&self, index: u64) -> bool {
        self.counter(index) > 0
    }

    fn weight(&self) -> u64 {
        self.occupied_cells()
    }
}

impl TargetFilter for CacheDigest {
    fn m(&self) -> u64 {
        self.size_bits()
    }

    fn k(&self) -> u32 {
        evilbloom_filters::cache_digest::SQUID_HASH_COUNT
    }

    fn indexes_of(&self, item: &[u8]) -> Vec<u64> {
        // Cache-digest keys are "METHOD URL"; the adversary controls the URL
        // part and issues GET requests, so raw items here are full keys.
        use evilbloom_hashes::IndexStrategy;
        evilbloom_hashes::Md5Split.indexes(item, self.k(), self.m())
    }

    fn is_set(&self, index: u64) -> bool {
        self.bits().get(index)
    }

    fn weight(&self) -> u64 {
        self.bits().count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evilbloom_filters::FilterParams;
    use evilbloom_hashes::{KirschMitzenmacher, Murmur3_128};

    #[test]
    fn bloom_filter_view_is_consistent() {
        let mut filter = BloomFilter::new(
            FilterParams::explicit(256, 3, 20),
            KirschMitzenmacher::new(Murmur3_128),
        );
        filter.insert(b"item");
        let view: &dyn TargetFilter = &filter;
        assert_eq!(view.m(), 256);
        assert_eq!(view.k(), 3);
        assert_eq!(view.weight(), filter.hamming_weight());
        assert_eq!(view.indexes_of(b"item"), filter.indexes(b"item"));
        assert!(view.indexes_of(b"item").iter().all(|&i| view.is_set(i)));
        assert!(view.fill_ratio() > 0.0);
    }

    #[test]
    fn concurrent_filter_view_matches_sequential_view() {
        let params = FilterParams::explicit(256, 3, 20);
        let mut sequential = BloomFilter::new(params, KirschMitzenmacher::new(Murmur3_128));
        let concurrent = ConcurrentBloomFilter::new(params, KirschMitzenmacher::new(Murmur3_128));
        for i in 0..20 {
            let item = format!("item-{i}");
            sequential.insert(item.as_bytes());
            concurrent.insert(item.as_bytes());
        }
        let seq_view: &dyn TargetFilter = &sequential;
        let conc_view: &dyn TargetFilter = &concurrent;
        assert_eq!(conc_view.m(), seq_view.m());
        assert_eq!(conc_view.k(), seq_view.k());
        assert_eq!(conc_view.weight(), seq_view.weight());
        assert_eq!(conc_view.indexes_of(b"probe"), seq_view.indexes_of(b"probe"));
        for i in 0..256 {
            assert_eq!(conc_view.is_set(i), seq_view.is_set(i));
        }
    }

    #[test]
    fn blocked_filter_view_is_consistent_and_attackable() {
        use evilbloom_hashes::Murmur128Pair;

        let mut filter =
            BlockedBloomFilter::new(FilterParams::explicit(2048, 4, 100), Murmur128Pair);
        filter.insert(b"item");
        let view: &dyn TargetFilter = &filter;
        assert_eq!(view.m(), 2048);
        assert_eq!(view.k(), 4);
        assert_eq!(view.weight(), filter.hamming_weight());
        assert_eq!(view.indexes_of(b"item"), filter.bit_positions(b"item"));
        assert!(view.indexes_of(b"item").iter().all(|&i| view.is_set(i)));
    }

    #[test]
    fn pollution_engine_attacks_blocked_filter_unchanged() {
        use evilbloom_hashes::Murmur128Pair;
        use evilbloom_urlgen::UrlGenerator;

        let mut filter =
            BlockedBloomFilter::new(FilterParams::explicit(4096, 4, 800), Murmur128Pair);
        let plan = crate::pollution::craft_polluting_items(
            &filter,
            &UrlGenerator::new("blocked-pollution"),
            100,
            5_000_000,
        );
        assert_eq!(plan.items.len(), 100);
        for item in &plan.items {
            let fresh = filter.insert(item.as_bytes());
            assert_eq!(fresh, 4, "every crafted item must set exactly k new bits");
        }
        assert_eq!(filter.hamming_weight(), 400);
    }

    #[test]
    fn counting_filter_view_reports_occupied_cells() {
        let mut filter = CountingBloomFilter::new(
            FilterParams::explicit(128, 4, 10),
            KirschMitzenmacher::new(Murmur3_128),
        );
        filter.insert(b"x");
        let view: &dyn TargetFilter = &filter;
        assert_eq!(view.weight(), filter.occupied_cells());
        assert!(view.indexes_of(b"x").iter().all(|&i| view.is_set(i)));
    }

    #[test]
    fn cache_digest_view_matches_squid_indexing() {
        let digest = CacheDigest::build(["http://a.example/", "http://b.example/"]);
        let view: &dyn TargetFilter = &digest;
        assert_eq!(view.k(), 4);
        assert_eq!(view.m(), digest.size_bits());
        let key = evilbloom_filters::cache_digest::digest_key("GET", "http://a.example/");
        assert_eq!(view.indexes_of(&key), digest.indexes_of("GET", "http://a.example/"));
        assert!(view.indexes_of(&key).iter().all(|&i| view.is_set(i)));
    }
}

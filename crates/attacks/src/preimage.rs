//! Pre-image and second pre-image search against truncated digests.
//!
//! The paper's attacks are feasible because applications either use
//! non-cryptographic hashes or *truncate* cryptographic digests (explicitly,
//! or implicitly by reducing modulo `m`). This module demonstrates both:
//!
//! * brute-force (second) pre-images of an `l'`-bit truncated digest, with
//!   the `2^{l'}` cost the NIST guidance predicts — trivial for the digest
//!   widths a Bloom filter effectively uses;
//! * constant-time pre-images of MurmurHash via [`evilbloom_hashes::inversion`],
//!   re-exported here for convenience of the attack drivers.

use evilbloom_hashes::truncate::truncate_bits;
use evilbloom_hashes::CryptoHash;

pub use evilbloom_hashes::inversion::{
    murmur2_32_multi_preimage, murmur2_32_preimage, murmur64a_preimage,
};

use crate::search::{search, SearchOutcome};

/// Finds an input whose digest, truncated to `bits` bits, equals the
/// truncation of `target_digest`. Candidates are `prefix-0`, `prefix-1`, …
///
/// Returns the outcome of the underlying brute-force search; the expected
/// number of attempts is `2^bits`.
pub fn truncated_preimage(
    hash: &dyn CryptoHash,
    target_digest: &[u8],
    bits: u32,
    prefix: &str,
    max_attempts: u64,
) -> SearchOutcome {
    let target = truncate_bits(target_digest, bits);
    search(
        1,
        max_attempts,
        |i| format!("{prefix}-{i}"),
        |candidate| truncate_bits(&hash.digest(candidate.as_bytes()), bits) == target,
    )
}

/// Finds a *second* pre-image: an input different from `original` whose
/// truncated digest matches `original`'s.
pub fn truncated_second_preimage(
    hash: &dyn CryptoHash,
    original: &[u8],
    bits: u32,
    prefix: &str,
    max_attempts: u64,
) -> SearchOutcome {
    let target = truncate_bits(&hash.digest(original), bits);
    search(
        1,
        max_attempts,
        |i| format!("{prefix}-{i}"),
        |candidate| {
            candidate.as_bytes() != original
                && truncate_bits(&hash.digest(candidate.as_bytes()), bits) == target
        },
    )
}

/// Finds `count` *multiple* second pre-images of `original` under the
/// truncated digest — the building block the paper compares against
/// Crosby–Wallach-style hash-table attacks.
pub fn truncated_multi_second_preimage(
    hash: &dyn CryptoHash,
    original: &[u8],
    bits: u32,
    count: usize,
    prefix: &str,
    max_attempts: u64,
) -> SearchOutcome {
    let target = truncate_bits(&hash.digest(original), bits);
    search(
        count,
        max_attempts,
        |i| format!("{prefix}-{i}"),
        |candidate| {
            candidate.as_bytes() != original
                && truncate_bits(&hash.digest(candidate.as_bytes()), bits) == target
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use evilbloom_hashes::{murmur2_32, Md5, Sha256};

    #[test]
    fn truncated_preimage_is_feasible_for_short_truncations() {
        // 12 bits of SHA-256: expected 4096 attempts — instant, despite the
        // "strong" hash.
        let target = Sha256.digest(b"http://secret-target.example/");
        let outcome = truncated_preimage(&Sha256, &target, 12, "forged", 1_000_000);
        assert_eq!(outcome.items.len(), 1);
        let found = &outcome.items[0];
        assert_eq!(truncate_bits(&Sha256.digest(found.as_bytes()), 12), truncate_bits(&target, 12));
        assert!(outcome.stats.attempts < 200_000);
    }

    #[test]
    fn second_preimage_differs_from_original() {
        let outcome = truncated_second_preimage(&Md5, b"original-item", 10, "second", 1_000_000);
        assert_eq!(outcome.items.len(), 1);
        assert_ne!(outcome.items[0].as_bytes(), b"original-item");
    }

    #[test]
    fn multi_second_preimages_are_distinct() {
        let outcome =
            truncated_multi_second_preimage(&Md5, b"bucket-key", 8, 10, "multi", 1_000_000);
        assert_eq!(outcome.items.len(), 10);
        let unique: std::collections::HashSet<&String> = outcome.items.iter().collect();
        assert_eq!(unique.len(), 10);
        let target = truncate_bits(&Md5.digest(b"bucket-key"), 8);
        for item in &outcome.items {
            assert_eq!(truncate_bits(&Md5.digest(item.as_bytes()), 8), target);
        }
    }

    #[test]
    fn attempts_scale_with_truncation_width() {
        let target = Sha256.digest(b"scaling-target");
        let narrow = truncated_preimage(&Sha256, &target, 6, "narrow", 10_000_000);
        let wide = truncated_preimage(&Sha256, &target, 14, "wide", 10_000_000);
        assert!(wide.stats.attempts > narrow.stats.attempts);
    }

    #[test]
    fn full_width_preimage_is_out_of_reach() {
        // With the full 256-bit digest the same search finds nothing within
        // any reasonable attempt budget.
        let target = Sha256.digest(b"unreachable");
        let outcome = truncated_preimage(&Sha256, &target, 256, "hopeless", 50_000);
        assert!(outcome.items.is_empty());
    }

    #[test]
    fn murmur_preimages_reexported_and_constant_time() {
        let preimage = murmur2_32_preimage(0x1234_5678, 99);
        assert_eq!(murmur2_32(&preimage, 99), 0x1234_5678);
    }
}

//! # evilbloom-attacks
//!
//! The adversary toolkit of *"The Power of Evil Choices in Bloom Filters"*
//! (Gerbet, Kumar & Lauradoux, DSN 2015): every attack the paper describes,
//! implemented as a reusable engine against the structures of
//! `evilbloom-filters`.
//!
//! * [`target::TargetFilter`] — the adversary's (read-only) view of a filter;
//! * [`mod@search`] — the generic brute-force forgery loop with cost accounting,
//!   sequential and multi-threaded;
//! * [`pollution`] — the chosen-insertion adversary: pollution plans,
//!   saturation plans, and the Figure 3 insertion sweep;
//! * [`forgery`] — the query-only adversary: false-positive forgery, ghost /
//!   decoy page planning (Figures 6 and 7) and worst-case-latency queries;
//! * [`deletion`] — the deletion adversary: targeted eviction of victims from
//!   counting filters and the Dablooms counter-overflow "empty but full"
//!   attack (Section 6.2);
//! * [`preimage`] — brute-force (second) pre-images of truncated digests and
//!   the constant-time MurmurHash inversions.
//!
//! ## Example
//!
//! ```
//! use evilbloom_attacks::pollution::craft_polluting_items;
//! use evilbloom_filters::{BloomFilter, FilterParams};
//! use evilbloom_hashes::{KirschMitzenmacher, Murmur3_128};
//! use evilbloom_urlgen::UrlGenerator;
//!
//! let mut dedup = BloomFilter::new(
//!     FilterParams::explicit(3200, 4, 600),
//!     KirschMitzenmacher::new(Murmur3_128),
//! );
//! let plan = craft_polluting_items(&dedup, &UrlGenerator::new("attack"), 100, 1_000_000);
//! for url in &plan.items {
//!     assert_eq!(dedup.insert(url.as_bytes()), 4); // every URL sets k fresh bits
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deletion;
pub mod forgery;
pub mod pollution;
pub mod preimage;
pub mod search;
pub mod target;

pub use forgery::{craft_false_positives, craft_latency_queries, plan_ghost_pages};
pub use pollution::{craft_polluting_items, craft_saturating_items, insertion_sweep};
pub use search::{parallel_search, search, SearchOutcome, SearchStats};
pub use target::TargetFilter;

#[cfg(test)]
mod integration {
    use super::*;
    use evilbloom_filters::BloomFilter;
    use evilbloom_filters::{hardened_filter, FilterKey, FilterParams, HardeningLevel};
    use evilbloom_hashes::{KirschMitzenmacher, Murmur3_128};
    use evilbloom_urlgen::UrlGenerator;

    /// The keyed countermeasure really does starve the offline searches: an
    /// adversary working against her *own* reconstruction of the filter (the
    /// best she can do without the key) gains nothing against the real one.
    #[test]
    fn keyed_filter_defeats_offline_pollution() {
        let key = FilterKey::from_bytes([7u8; 32]);
        let mut real = hardened_filter(500, 0.01, HardeningLevel::KeyedSipHash, &key);

        // The adversary guesses the construction but not the key: she plans
        // against a filter keyed with her own (wrong) key.
        let wrong_key = FilterKey::from_bytes([8u8; 32]);
        let shadow = hardened_filter(500, 0.01, HardeningLevel::KeyedSipHash, &wrong_key);
        let plan = pollution::craft_polluting_items(
            &shadow,
            &UrlGenerator::new("keyed-attack"),
            200,
            10_000_000,
        );

        // Inserting her crafted items into the real filter behaves like
        // random insertions: collisions occur and the weight stays below the
        // adversarial nk target.
        for item in &plan.items {
            real.insert(item.as_bytes());
        }
        let adversarial_weight = 200 * u64::from(real.k());
        assert!(
            real.hamming_weight() < adversarial_weight,
            "weight {} should fall short of the adversarial target {}",
            real.hamming_weight(),
            adversarial_weight
        );
    }

    /// End-to-end pollution → forgery chain: after polluting a filter the
    /// query-only adversary forges false positives far more cheaply.
    #[test]
    fn pollution_makes_forgery_cheaper() {
        let mut filter = BloomFilter::new(
            FilterParams::explicit(4096, 4, 700),
            KirschMitzenmacher::new(Murmur3_128),
        );
        for i in 0..300 {
            filter.insert(format!("honest-{i}").as_bytes());
        }
        let before =
            forgery::craft_false_positives(&filter, &UrlGenerator::new("before"), 10, 50_000_000);

        let plan = pollution::craft_polluting_items(
            &filter,
            &UrlGenerator::new("pollute"),
            400,
            50_000_000,
        );
        for item in &plan.items {
            filter.insert(item.as_bytes());
        }
        let after =
            forgery::craft_false_positives(&filter, &UrlGenerator::new("after"), 10, 50_000_000);
        assert!(
            after.stats.attempts_per_accepted() < before.stats.attempts_per_accepted(),
            "after {} vs before {}",
            after.stats.attempts_per_accepted(),
            before.stats.attempts_per_accepted()
        );
        assert!(after.success_probability > before.success_probability);
    }
}

//! Query-only adversary: false-positive forgery, ghost pages and worst-case
//! latency queries (Section 4.2).
//!
//! The query-only adversary cannot insert anything. Knowing (part of) the
//! filter state she crafts queries that either
//!
//! * **test positive without having been inserted** (false-positive forgery,
//!   Equation (8)) — used to flood a backing store behind the filter or to
//!   hide *ghost pages* from a crawler (Figures 6 and 7), or
//! * **touch as many set bits as possible before the final miss** (worst-case
//!   latency queries), maximising memory accesses per lookup.

use evilbloom_urlgen::UrlGenerator;

use crate::search::{search, SearchStats};
use crate::target::TargetFilter;

/// Result of a false-positive forgery search.
#[derive(Debug, Clone, PartialEq)]
pub struct ForgeryOutcome {
    /// The forged items; every one of them tests positive in the target
    /// filter even though it was never inserted.
    pub items: Vec<String>,
    /// Search cost accounting.
    pub stats: SearchStats,
    /// Per-candidate success probability `(W/m)^k` at the time of the search.
    pub success_probability: f64,
}

/// Forges `count` false positives against the current state of `filter`.
pub fn craft_false_positives<F: TargetFilter>(
    filter: &F,
    generator: &UrlGenerator,
    count: usize,
    max_attempts: u64,
) -> ForgeryOutcome {
    let success_probability = evilbloom_analysis::attack_probability::false_positive_forgery(
        filter.m(),
        filter.weight(),
        filter.k(),
    );
    let outcome = search(
        count,
        max_attempts,
        |i| generator.url(i),
        |candidate| filter.indexes_of(candidate.as_bytes()).iter().all(|&idx| filter.is_set(idx)),
    );
    ForgeryOutcome { items: outcome.items, stats: outcome.stats, success_probability }
}

/// Forges `count` worst-case-latency queries: items whose indexes hit set
/// bits for every probe except the last one, forcing the filter to touch all
/// `k` positions before answering "absent".
pub fn craft_latency_queries<F: TargetFilter>(
    filter: &F,
    generator: &UrlGenerator,
    count: usize,
    max_attempts: u64,
) -> ForgeryOutcome {
    let success_probability = evilbloom_analysis::attack_probability::latency_query(
        filter.m(),
        filter.weight(),
        filter.k(),
    );
    let k = filter.k() as usize;
    let outcome = search(
        count,
        max_attempts,
        |i| generator.url(i),
        |candidate| {
            let indexes = filter.indexes_of(candidate.as_bytes());
            let set_prefix = indexes[..k - 1].iter().all(|&idx| filter.is_set(idx));
            set_prefix && !filter.is_set(indexes[k - 1])
        },
    );
    ForgeryOutcome { items: outcome.items, stats: outcome.stats, success_probability }
}

/// A decoy tree in the style of Figure 7: a chain of decoy pages ending in
/// ghost pages that the target filter believes it has already seen.
#[derive(Debug, Clone, PartialEq)]
pub struct GhostPlan {
    /// Decoy pages (real pages the crawler may visit), root first.
    pub decoys: Vec<String>,
    /// Ghost pages: forged false positives the crawler will skip.
    pub ghosts: Vec<String>,
    /// Search cost of forging the ghosts.
    pub stats: SearchStats,
}

/// Builds a ghost/decoy plan: `decoy_depth` chained decoy pages under
/// `root_domain`, whose leaves link to `ghost_count` forged ghost URLs.
pub fn plan_ghost_pages<F: TargetFilter>(
    filter: &F,
    root_domain: &str,
    decoy_depth: usize,
    ghost_count: usize,
    max_attempts: u64,
) -> GhostPlan {
    assert!(decoy_depth >= 1, "need at least the root decoy");
    let decoys: Vec<String> = (0..decoy_depth)
        .map(|level| {
            let path: Vec<String> = (0..=level).map(|l| format!("d{l}")).collect();
            format!("http://{root_domain}/{}", path.join("/"))
        })
        .collect();

    let ghost_generator = UrlGenerator::new(&format!("ghost-{root_domain}"));
    let forged = craft_false_positives(filter, &ghost_generator, ghost_count, max_attempts);

    GhostPlan { decoys, ghosts: forged.items, stats: forged.stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evilbloom_filters::{BloomFilter, FilterParams};
    use evilbloom_hashes::{KirschMitzenmacher, Murmur3_128};

    /// A realistically loaded de-duplication filter (about half full).
    fn loaded_filter() -> BloomFilter {
        let mut filter = BloomFilter::new(
            FilterParams::optimal(2000, 0.02),
            KirschMitzenmacher::new(Murmur3_128),
        );
        for i in 0..2000 {
            filter.insert(format!("http://already-crawled.example/{i}").as_bytes());
        }
        filter
    }

    #[test]
    fn forged_false_positives_all_test_positive() {
        let filter = loaded_filter();
        let generator = UrlGenerator::new("fp");
        let outcome = craft_false_positives(&filter, &generator, 20, 50_000_000);
        assert_eq!(outcome.items.len(), 20);
        for item in &outcome.items {
            assert!(filter.contains(item.as_bytes()), "{item} must be a false positive");
        }
        assert!(outcome.success_probability > 0.0);
    }

    #[test]
    fn forgery_cost_matches_table1_prediction() {
        let filter = loaded_filter();
        let generator = UrlGenerator::new("fp-cost");
        let outcome = craft_false_positives(&filter, &generator, 30, 100_000_000);
        let expected_attempts = 1.0 / outcome.success_probability;
        let measured = outcome.stats.attempts_per_accepted();
        // Geometric sampling is noisy with only 30 accepted items; accept a
        // factor-3 agreement.
        assert!(
            measured > expected_attempts / 3.0 && measured < expected_attempts * 3.0,
            "measured {measured}, expected ≈{expected_attempts}"
        );
    }

    #[test]
    fn latency_queries_touch_k_minus_1_set_bits() {
        let filter = loaded_filter();
        let generator = UrlGenerator::new("latency");
        let outcome = craft_latency_queries(&filter, &generator, 15, 10_000_000);
        assert_eq!(outcome.items.len(), 15);
        let k = filter.k() as usize;
        for item in &outcome.items {
            let indexes = filter.indexes(item.as_bytes());
            assert!(indexes[..k - 1].iter().all(|&i| filter.is_set(i)));
            assert!(!filter.is_set(indexes[k - 1]));
            assert!(!filter.contains(item.as_bytes()), "latency queries are negatives");
            assert_eq!(filter.matching_bits(item.as_bytes()) as usize, k - 1);
        }
    }

    #[test]
    fn ghost_plan_hides_pages_from_the_filter() {
        let filter = loaded_filter();
        let plan = plan_ghost_pages(&filter, "evil.example", 3, 5, 50_000_000);
        assert_eq!(plan.decoys.len(), 3);
        assert_eq!(plan.ghosts.len(), 5);
        assert!(plan.decoys[0].starts_with("http://evil.example/"));
        assert!(plan.decoys[2].split('/').count() > plan.decoys[0].split('/').count());
        for ghost in &plan.ghosts {
            assert!(filter.contains(ghost.as_bytes()), "ghost must look already-visited");
        }
    }

    #[test]
    fn forgery_against_empty_filter_finds_nothing() {
        let filter = BloomFilter::new(
            FilterParams::explicit(1024, 4, 100),
            KirschMitzenmacher::new(Murmur3_128),
        );
        let generator = UrlGenerator::new("empty");
        let outcome = craft_false_positives(&filter, &generator, 1, 10_000);
        assert!(outcome.items.is_empty());
        assert_eq!(outcome.success_probability, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least the root decoy")]
    fn ghost_plan_requires_a_root() {
        let filter = loaded_filter();
        plan_ghost_pages(&filter, "evil.example", 0, 1, 1000);
    }
}

//! A small de-duplication adapter over the store, for applications (like
//! the `evilbloom-webspider` crawler) whose dedup logic was written against
//! a single-threaded Bloom filter.
//!
//! The adapter pins down the two-method contract those applications use —
//! mark an item visited, ask whether it was seen — and backs it with a
//! shared [`BloomStore`], so many crawler workers can dedup against the same
//! store concurrently.

use std::sync::Arc;

use crate::store::BloomStore;

/// Concurrent de-duplication set backed by a shared [`BloomStore`].
///
/// Cloning is cheap (an [`Arc`] bump): hand one clone to each worker.
#[derive(Debug, Clone)]
pub struct ConcurrentDedup {
    store: Arc<BloomStore>,
}

impl ConcurrentDedup {
    /// Wraps an existing store.
    pub fn from_store(store: Arc<BloomStore>) -> Self {
        ConcurrentDedup { store }
    }

    /// Builds a hardened dedup store sized for `capacity` items at
    /// false-positive probability `fpp`, spread over `shards` shards, with
    /// keys drawn from a seeded RNG (deterministic for tests; production
    /// callers should use [`BloomStore::builder`] with an entropy seed and
    /// [`ConcurrentDedup::from_store`]).
    pub fn hardened_seeded(shards: usize, capacity: u64, fpp: f64, seed: u64) -> Self {
        let store = BloomStore::builder()
            .shards(shards)
            .capacity(capacity)
            .target_fpp(fpp)
            .hardened()
            .seed(seed)
            .build();
        ConcurrentDedup { store: Arc::new(store) }
    }

    /// Marks an item as visited.
    pub fn mark_visited(&self, item: &[u8]) {
        self.store.insert(item);
    }

    /// Whether an item was (probably) visited before; false positives occur
    /// at the store's configured rate, false negatives never.
    pub fn seen(&self, item: &[u8]) -> bool {
        self.store.contains(item)
    }

    /// Memory footprint of the backing store in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.store.memory_bytes()
    }

    /// The backing store (e.g. to read [`BloomStore::stats`]).
    pub fn store(&self) -> &Arc<BloomStore> {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_then_seen() {
        let dedup = ConcurrentDedup::hardened_seeded(4, 1_000, 0.01, 1);
        assert!(!dedup.seen(b"http://example.org/"));
        dedup.mark_visited(b"http://example.org/");
        assert!(dedup.seen(b"http://example.org/"));
    }

    #[test]
    fn clones_share_the_same_store() {
        let dedup = ConcurrentDedup::hardened_seeded(4, 1_000, 0.01, 2);
        let clone = dedup.clone();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..200 {
                    clone.mark_visited(format!("url-{i}").as_bytes());
                }
            });
        });
        for i in 0..200 {
            assert!(dedup.seen(format!("url-{i}").as_bytes()));
        }
        assert_eq!(dedup.store().stats().total_inserted, 200);
    }

    #[test]
    fn memory_footprint_matches_store() {
        let dedup = ConcurrentDedup::hardened_seeded(2, 500, 0.01, 3);
        assert_eq!(dedup.memory_bytes(), dedup.store().memory_bytes());
    }
}

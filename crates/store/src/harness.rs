//! Shared load-generation harness used by the `store_load` example and the
//! `store_throughput` bench — one implementation of the three traffic mixes
//! (honest, query-only adversary, chosen-insertion adversary) so the
//! CI-asserted bench invariants cannot drift from what the documented
//! example demonstrates.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use evilbloom_urlgen::UrlGenerator;

use crate::adversary::craft_store_pollution;
use crate::store::BloomStore;

/// Workload sizing for one harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadScale {
    /// Shards per store.
    pub shards: usize,
    /// Total store capacity.
    pub capacity: u64,
    /// Inserts+queries per worker in the honest throughput runs.
    pub honest_ops_per_worker: usize,
    /// Honest pre-fill before the adversarial phases.
    pub prefill: u64,
    /// Crafted chosen insertions.
    pub crafted: usize,
    /// Non-member probes used to measure observed false-positive rates.
    pub probes: u64,
}

impl LoadScale {
    /// The full-size run (a realistic partial attack on an 8000-item store).
    pub fn full() -> Self {
        LoadScale {
            shards: 8,
            capacity: 8_000,
            honest_ops_per_worker: 100_000,
            prefill: 6_000,
            crafted: 4_000,
            probes: 60_000,
        }
    }

    /// CI smoke sizing: the same phases at a fraction of the cost.
    pub fn smoke() -> Self {
        LoadScale {
            shards: 8,
            capacity: 2_000,
            honest_ops_per_worker: 5_000,
            prefill: 1_500,
            crafted: 1_000,
            probes: 10_000,
        }
    }
}

/// Builds a store at the harness sizing, at 1% target false positives.
pub fn fresh_store(scale: &LoadScale, hardened: bool, seed: u64) -> BloomStore {
    let builder =
        BloomStore::builder().shards(scale.shards).capacity(scale.capacity).target_fpp(0.01);
    let builder = if hardened { builder.hardened() } else { builder.unhardened() };
    builder.seed(seed).build()
}

/// Honest mix at `threads` workers over a fresh hardened store: each worker
/// alternates random-URL inserts with membership queries. Returns ops/sec.
pub fn honest_throughput(scale: &LoadScale, threads: usize) -> f64 {
    let store = fresh_store(scale, true, 1);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let store = &store;
            scope.spawn(move || {
                let generator = UrlGenerator::new(&format!("honest-{worker}"));
                let mut rng = StdRng::seed_from_u64(worker as u64);
                for i in 0..scale.honest_ops_per_worker / 2 {
                    let url = generator.random_url(&mut rng);
                    store.insert(url.as_bytes());
                    // Query a mixture of present and absent URLs.
                    std::hint::black_box(store.contains(generator.url(i as u64).as_bytes()));
                }
            });
        }
    });
    (threads * scale.honest_ops_per_worker) as f64 / start.elapsed().as_secs_f64()
}

/// Observed false-positive rate of `store` over `scale.probes` non-member
/// URLs, fanned across `threads` query-only workers (the query-only
/// adversary's measurement loop).
pub fn observed_fpp(scale: &LoadScale, store: &BloomStore, threads: u64) -> f64 {
    let span = scale.probes / threads;
    let false_positives: u64 = std::thread::scope(|scope| {
        (0..threads)
            .map(|worker| {
                let store = &store;
                scope.spawn(move || {
                    let generator = UrlGenerator::new("probe-nonmember");
                    (worker * span..(worker + 1) * span)
                        .filter(|&i| store.contains(generator.url(i).as_bytes()))
                        .count() as u64
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| handle.join().expect("probe worker"))
            .sum()
    });
    false_positives as f64 / (span * threads) as f64
}

/// Batch-inserts `count` deterministic honest URLs under `namespace`.
pub fn prefill(store: &BloomStore, namespace: &str, count: u64) {
    let generator = UrlGenerator::new(namespace);
    let urls: Vec<String> = (0..count).map(|i| generator.url(i)).collect();
    store.insert_batch(&urls);
}

/// Outcome of the chosen-insertion phase: the paper's Table 2 comparison at
/// serving scale.
pub struct AdversarialReport {
    /// Observed FPP of a store carrying the same total load, all honest.
    pub baseline_fpp: f64,
    /// Observed FPP of the unhardened store after the attack.
    pub attacked_unhardened_fpp: f64,
    /// Observed FPP of the hardened store after the same crafted inserts.
    pub attacked_hardened_fpp: f64,
    /// Pollution alarms raised on the unhardened store.
    pub unhardened_alarms: usize,
    /// Pollution alarms raised on the hardened store.
    pub hardened_alarms: usize,
    /// Hash evaluations the offline crafting search spent.
    pub search_attempts: u64,
    /// The attacked unhardened store (e.g. to demonstrate recovery).
    pub unhardened: BloomStore,
    /// The attacked hardened store.
    pub hardened: BloomStore,
}

impl AdversarialReport {
    /// Attacked-to-honest FPP ratio of the unhardened store.
    pub fn unhardened_ratio(&self) -> f64 {
        self.attacked_unhardened_fpp / self.baseline_fpp
    }

    /// Attacked-to-honest FPP ratio of the hardened store.
    pub fn hardened_ratio(&self) -> f64 {
        self.attacked_hardened_fpp / self.baseline_fpp
    }
}

/// Runs the chosen-insertion mix: pre-fills an unhardened and a hardened
/// store with the same honest load, crafts `scale.crafted` polluting items
/// against the unhardened store, inserts them into both from `threads`
/// adversary workers, and measures observed FPP against an all-honest
/// baseline carrying the same total load.
pub fn adversarial_mix(scale: &LoadScale, threads: usize) -> AdversarialReport {
    let unhardened = fresh_store(scale, false, 2);
    let hardened = fresh_store(scale, true, 2);
    prefill(&unhardened, "prefill", scale.prefill);
    prefill(&hardened, "prefill", scale.prefill);

    // The fair baseline carries the same total load, all of it honest: a
    // hardened store treats crafted items as random, so it should sit on
    // this curve; the unhardened one blows past it.
    let baseline = fresh_store(scale, true, 3);
    prefill(&baseline, "prefill", scale.prefill);
    prefill(&baseline, "extra-honest", scale.crafted as u64);
    let baseline_fpp = observed_fpp(scale, &baseline, threads as u64);

    // Finite search budget (the full scale needs ~22M evaluations, so this
    // is a >20x margin): if a future sizing change starves the search of
    // fresh bits, the harness fails loudly here instead of wedging CI.
    const CRAFT_BUDGET: u64 = 500_000_000;
    let generator = UrlGenerator::new("evil");
    let plan = craft_store_pollution(&unhardened, &generator, scale.crafted, CRAFT_BUDGET)
        .expect("unhardened stores expose an adversarial view");
    assert_eq!(
        plan.items.len(),
        scale.crafted,
        "crafting search exhausted its budget — the scale no longer leaves enough fresh bits"
    );

    // The plan was computed against the unhardened store; against the
    // hardened one the same items are no better than random — that is the
    // defence.
    for store in [&unhardened, &hardened] {
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let items = &plan.items;
                scope.spawn(move || {
                    for item in items.iter().skip(worker).step_by(threads) {
                        store.insert(item.as_bytes());
                    }
                });
            }
        });
    }

    AdversarialReport {
        baseline_fpp,
        attacked_unhardened_fpp: observed_fpp(scale, &unhardened, threads as u64),
        attacked_hardened_fpp: observed_fpp(scale, &hardened, threads as u64),
        unhardened_alarms: unhardened.stats().alarms,
        hardened_alarms: hardened.stats().alarms,
        search_attempts: plan.stats.attempts,
        unhardened,
        hardened,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_adversarial_mix_upholds_table2_invariants() {
        let report = adversarial_mix(&LoadScale::smoke(), 2);
        assert!(report.hardened_ratio() < 2.0, "hardened ratio {}", report.hardened_ratio());
        assert!(report.unhardened_ratio() > 2.0, "unhardened ratio {}", report.unhardened_ratio());
        assert!(report.unhardened_alarms > 0);
        assert_eq!(report.hardened_alarms, 0);
        assert!(report.search_attempts > 0);
    }

    #[test]
    fn honest_throughput_reports_positive_rate() {
        let mut scale = LoadScale::smoke();
        scale.honest_ops_per_worker = 2_000;
        assert!(honest_throughput(&scale, 2) > 0.0);
    }
}

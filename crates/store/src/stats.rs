//! Store observability: per-shard fill statistics, false-positive estimates
//! and pollution (saturation) alarms.
//!
//! The alarm threshold comes straight out of the paper's analysis. Honest
//! insertions fill a filter along `E[w] = m(1 - (1 - 1/m)^{kn})`
//! ([`evilbloom_analysis::false_positive::expected_fill`]); a
//! chosen-insertion (pollution) adversary instead sets `min(nk, m)` bits
//! ([`evilbloom_analysis::worst_case::adversarial_set_bits`]), because every
//! crafted item contributes `k` fresh bits. A shard whose observed weight
//! crosses the midpoint between those two trajectories is far off the honest
//! path and almost certainly under attack — that is the pollution alarm.

use evilbloom_analysis::{false_positive, worst_case};
use evilbloom_filters::BackendKind;

/// Insertions below this count are too noisy to judge — a couple of lucky
/// collisions either way dominate the honest/adversarial gap.
pub const ALARM_MIN_INSERTIONS: u64 = 16;

/// Minimum divergence (in bits) between the honest and adversarial fill
/// trajectories before the alarm can trip. Early in a filter's life honest
/// insertions rarely collide, so the two trajectories coincide to within
/// sampling noise; alarming inside that band would be pure jitter.
pub const ALARM_MIN_GAP_BITS: f64 = 32.0;

/// Decides whether a shard's observed weight is pollution-suspicious: more
/// than halfway from the honest expected fill toward the chosen-insertion
/// worst case for the same number of insertions, once the two trajectories
/// have meaningfully diverged.
pub fn pollution_alarm(m: u64, k: u32, inserted: u64, weight: u64) -> bool {
    if inserted < ALARM_MIN_INSERTIONS {
        return false;
    }
    let honest = false_positive::expected_fill(m, inserted, k) * m as f64;
    let adversarial = worst_case::adversarial_set_bits(m, inserted, k) as f64;
    if adversarial - honest < ALARM_MIN_GAP_BITS {
        return false;
    }
    weight as f64 > honest + 0.5 * (adversarial - honest)
}

/// Snapshot of one shard's health.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStats {
    /// Shard index within the store.
    pub shard: usize,
    /// Active generation id (increases by one per key rotation).
    pub generation: u64,
    /// Whether a rotation's rebuild is in flight.
    pub rotating: bool,
    /// Bits in the shard's active filter.
    pub m: u64,
    /// Indexes per item.
    pub k: u32,
    /// Insert calls served by the active generation.
    pub inserted: u64,
    /// Set bits in the active generation (running counter; exact once
    /// writers are quiescent).
    pub weight: u64,
    /// Fill ratio `weight / m`.
    pub fill: f64,
    /// Estimated false-positive probability `(weight/m)^k` at the current
    /// fill.
    pub estimated_fpp: f64,
    /// Whether the fill trajectory looks like a pollution attack (see
    /// [`pollution_alarm`]).
    pub pollution_alarm: bool,
}

/// Snapshot of the whole store's health.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreStats {
    /// Filter family the shards hold (what the wire-level `STATS` response
    /// reports so clients know whether `DELETE` will be honoured).
    pub backend: BackendKind,
    /// Per-shard statistics, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Total insert calls across shards (active generations).
    pub total_inserted: u64,
    /// Mean shard fill ratio.
    pub mean_fill: f64,
    /// Highest per-shard false-positive estimate — the store-level exposure,
    /// since an adversary targets the weakest shard.
    pub max_estimated_fpp: f64,
    /// Number of shards currently raising the pollution alarm.
    pub alarms: usize,
}

impl StoreStats {
    /// Aggregates per-shard snapshots for a store of the given backend
    /// family.
    pub fn from_shards(backend: BackendKind, shards: Vec<ShardStats>) -> Self {
        let total_inserted = shards.iter().map(|s| s.inserted).sum();
        let mean_fill = if shards.is_empty() {
            0.0
        } else {
            shards.iter().map(|s| s.fill).sum::<f64>() / shards.len() as f64
        };
        let max_estimated_fpp = shards.iter().map(|s| s.estimated_fpp).fold(0.0f64, f64::max);
        let alarms = shards.iter().filter(|s| s.pollution_alarm).count();
        StoreStats { backend, shards, total_inserted, mean_fill, max_estimated_fpp, alarms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_fill_does_not_alarm() {
        // An honestly filled filter sits on (slightly below) the expected
        // trajectory: no alarm.
        let m = 4096u64;
        let k = 4u32;
        let n = 500u64;
        let honest_weight = (false_positive::expected_fill(m, n, k) * m as f64) as u64;
        assert!(!pollution_alarm(m, k, n, honest_weight));
    }

    #[test]
    fn adversarial_fill_alarms() {
        // A pollution adversary sets k fresh bits per insert.
        let m = 4096u64;
        let k = 4u32;
        let n = 500u64;
        assert!(pollution_alarm(m, k, n, n * u64::from(k)));
    }

    #[test]
    fn tiny_insert_counts_never_alarm() {
        assert!(!pollution_alarm(4096, 4, ALARM_MIN_INSERTIONS - 1, 60));
    }

    #[test]
    fn aggregation_counts_alarms_and_maxima() {
        let shard = |i: usize, fill: f64, fpp: f64, alarm: bool| ShardStats {
            shard: i,
            generation: 0,
            rotating: false,
            m: 1024,
            k: 4,
            inserted: 100,
            weight: (fill * 1024.0) as u64,
            fill,
            estimated_fpp: fpp,
            pollution_alarm: alarm,
        };
        let stats = StoreStats::from_shards(
            BackendKind::Counting,
            vec![shard(0, 0.3, 0.01, false), shard(1, 0.9, 0.65, true)],
        );
        assert_eq!(stats.backend, BackendKind::Counting);
        assert_eq!(stats.total_inserted, 200);
        assert_eq!(stats.alarms, 1);
        assert!((stats.mean_fill - 0.6).abs() < 1e-12);
        assert!((stats.max_estimated_fpp - 0.65).abs() < 1e-12);
    }
}

//! # evilbloom-store
//!
//! A sharded, lock-free concurrent Bloom-filter store: the serving layer
//! that keeps the hardened guarantees of `evilbloom-core` under
//! multi-threaded — including adversarial — load.
//!
//! The paper's defences (worst-case parameters, keyed SipHash/HMAC indexes,
//! Section 8) matter precisely in deployments that serve real traffic:
//! Squid digests, Bitly's dablooms and Scrapy's dupe filter are all
//! concurrent services. This crate provides:
//!
//! * [`BloomStore`] — `N` power-of-two shards, generic over the
//!   [`FilterBackend`] family they hold (plain
//!   [`evilbloom_filters::ConcurrentBloomFilter`], deletable
//!   [`evilbloom_filters::ConcurrentCountingFilter`], growing
//!   [`evilbloom_filters::ConcurrentScalableFilter`]), routed by a keyed
//!   shard hash so an adversary cannot target one shard, with batch
//!   [`BloomStore::insert_batch`] / [`BloomStore::query_batch`] APIs that
//!   amortise routing and locking — built fluently via
//!   [`BloomStore::builder`];
//! * deletion ([`BloomStore::remove`] / [`BloomStore::remove_batch`]) on
//!   counting backends, refused with a typed [`UnsupportedOp`] elsewhere —
//!   the substrate of the paper's deletion adversary;
//! * [`ServeStore`] — the object-safe facade a wire server holds so the
//!   backend family can be a runtime choice ([`serve`]);
//! * generation-based key rotation ([`BloomStore::begin_rotation`] /
//!   [`BloomStore::complete_rotation`]): a shard re-keys and rebuilds in the
//!   background while its old generation keeps answering queries;
//! * durability ([`BloomStore::enable_persistence`] /
//!   [`BloomStore::recover`]): racy per-shard snapshots plus a group-commit
//!   write-ahead log, so a restarted store comes back with its exact bit
//!   state — accumulated pollution included (see [`persist`]);
//! * [`StoreStats`] — per-shard fill, false-positive estimates, and
//!   pollution alarms tied to the chosen-insertion analysis in
//!   `evilbloom-analysis`;
//! * [`StoreMetrics`] — lock-free runtime telemetry ([`metrics`]): insert
//!   and query counters, per-shard fill gauges, WAL/snapshot latency
//!   histograms, and the bits-per-insert drift series that makes
//!   chosen-insertion pollution visible as an anomalous slope;
//! * [`AdversarialStoreView`] — the flattened [`TargetFilter`] view of an
//!   *unhardened* store that lets the existing `evilbloom-attacks` engines
//!   (pollution, saturation, forgery) attack the store unchanged — and that
//!   a hardened store refuses to produce;
//! * [`ConcurrentDedup`] — the small adapter that puts real applications
//!   (the `evilbloom-webspider` crawler) on the concurrent path.
//!
//! ## Example
//!
//! ```
//! use evilbloom_store::BloomStore;
//!
//! // 8 keyed shards sized for 8000 items at 1% false positives.
//! let store = BloomStore::builder().shards(8).capacity(8_000).target_fpp(0.01).seed(42).build();
//!
//! // Serve inserts from four workers sharing the store by reference.
//! std::thread::scope(|scope| {
//!     for worker in 0..4 {
//!         let store = &store;
//!         scope.spawn(move || {
//!             for i in 0..100 {
//!                 store.insert(format!("http://w{worker}.example/{i}").as_bytes());
//!             }
//!         });
//!     }
//! });
//!
//! assert!(store.contains(b"http://w0.example/0"));
//! let stats = store.stats();
//! assert_eq!(stats.total_inserted, 400);
//! assert_eq!(stats.alarms, 0, "honest traffic raises no pollution alarm");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod dedup;
pub mod harness;
pub mod metrics;
pub mod persist;
pub mod serve;
pub mod shard;
pub mod stats;
pub mod store;

pub use adversary::{
    craft_store_pollution, forge_store_ghosts, plan_store_deletion, AdversarialStoreView,
};
pub use dedup::ConcurrentDedup;
pub use metrics::StoreMetrics;
pub use persist::{
    PersistConfig, PersistError, RecoveryReport, SnapshotInfo, StorePersistence, SyncPolicy,
};
pub use serve::{ServeStore, WriteRefusal};
pub use shard::{Generation, Shard};
pub use stats::{pollution_alarm, ShardStats, StoreStats, ALARM_MIN_INSERTIONS};
pub use store::{
    BatchOutcome, BloomStore, StoreBuilder, StoreConfig, StoreHardening, UnsupportedOp,
};

// Re-exported so the doc examples and downstream callers can name the trait
// the adversarial view implements without importing `evilbloom-attacks`, and
// the backend vocabulary without importing `evilbloom-filters`.
pub use evilbloom_attacks::TargetFilter;
pub use evilbloom_filters::{
    BackendKind, ConcurrentBloomFilter, ConcurrentCountingFilter, ConcurrentScalableFilter,
    FilterBackend,
};

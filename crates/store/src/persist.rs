//! Durability for [`BloomStore`]: per-shard snapshots plus an append-only
//! insert log with group-commit batching, and generation-aware recovery.
//!
//! The paper's chosen-insertion adversary matters most against a
//! *long-lived* filter: pollution accumulates over the filter's lifetime, so
//! a store that loses its bits on restart resets the experiment (and, in a
//! real deployment, forces a full replay from the source of truth). This
//! module makes a restarted store come back with its exact bit state —
//! accumulated pollution, alarm trajectories and all.
//!
//! ## The torn-read safety argument
//!
//! Snapshots copy each shard's `AtomicBitVec` word array **racily under
//! `&self`** ([`evilbloom_filters::atomic_bitvec::AtomicBitVec::snapshot_words`]):
//! concurrent inserts may land between word loads, so the copy can mix
//! "before" and "after" words of an in-flight insert. For a Bloom filter
//! that is safe — bits are only ever set, so a torn copy only re-observes
//! bits an in-flight insert set, and replaying that insert from the log is
//! idempotent. The one trap is the ones-counter: the live running counter is
//! updated *after* each `fetch_or` and can disagree with any given word
//! copy, so it is **recounted from the snapshotted words** on recovery,
//! never persisted.
//!
//! ## Write-ahead log and group commit
//!
//! Every insert is applied to the shard first and *then* appended to the
//! WAL buffer **while still holding the shard lock** (read lock for
//! inserts, write lock for rotations). That makes WAL order consistent
//! with generation changes: an insert tagged generation `g` can never
//! appear after the `RotateBegin` that retired `g`. The fsync wait happens
//! *outside* the shard lock via group commit: concurrent committers elect
//! one leader to `write` + `fsync` the whole buffer while the rest wait on
//! a condvar, so one `fsync` amortises over every insert that arrived while
//! the previous one was in flight ([`SyncPolicy::GroupCommit`]).
//! [`SyncPolicy::OsOnly`] skips the fsync: records still reach `write(2)`
//! before the insert returns, so they survive a process kill (`SIGKILL`),
//! just not an OS crash.
//!
//! ## Snapshot ⇄ WAL protocol
//!
//! A snapshot first rotates the WAL to a fresh segment, then copies the
//! shards, then atomically publishes `snapshot-<seq>.evbs` (tmp + rename)
//! recording the first WAL segment to replay on top. Because log records
//! are appended only *after* their insert was applied, every record in the
//! rotated-out segments is already reflected in the bit copy; records
//! racing into the new segment may additionally be in the copy, which
//! replay tolerates (idempotence). Old segments and snapshots are pruned
//! after the rename.
//!
//! ## Recovery
//!
//! [`BloomStore::recover`] loads the newest valid snapshot (every record is
//! length-prefixed and CRC-checked; decode never panics on corrupt or
//! truncated files), rebuilds each shard's generations from the word
//! arrays, then replays the WAL segments the snapshot names in order.
//! Insert records from rotated-out generations are discarded — replaying
//! them would resurrect exactly the polluted bits a completed rotation
//! dropped. A torn final record (the crash cut a `write` short) is
//! tolerated as a clean end of log. Recovery finishes by writing a fresh
//! snapshot, so boot time is bounded by the WAL tail, not the store's
//! lifetime.
//!
//! Hardened stores refuse persistence with
//! [`PersistError::HardenedStore`]: their bits are derived under secret
//! keys that this module deliberately never writes to disk, so a restored
//! word array would be unanswerable garbage. (The WAL would replay, but a
//! fresh-keyed store diverges bit-for-bit — surfacing a typed error beats
//! quietly changing the store's contents.) The durable posture for a
//! hardened store is replay from the source of truth under a fresh key.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use evilbloom_fault::{self as fault, FaultPoint};
use evilbloom_filters::{BackendKind, FilterBackend};
use evilbloom_metrics::{log_info, log_warn};
use evilbloom_trace::TraceEvent;

use crate::metrics::StoreMetrics;
use crate::store::BloomStore;

/// Group-commit fsyncs at or above this latency are forensically notable:
/// on any healthy disk a data fsync lands well under this, so crossing it
/// means the device stalled — exactly the confounder to rule out when a
/// latency spike coincides with an attack window.
const WAL_FSYNC_STALL_NS: u64 = 20_000_000;

/// How the write-ahead log trades durability against insert latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Records reach `write(2)` before the insert returns (they survive a
    /// process crash / `SIGKILL`) but are never explicitly fsynced — an OS
    /// crash can lose the tail. The fastest durable-enough default for the
    /// attack-lab use case.
    #[default]
    OsOnly,
    /// Every insert waits until its record is fsynced. Concurrent inserts
    /// group-commit: one leader fsyncs the whole buffer while the rest wait,
    /// so the per-insert cost amortises under load.
    GroupCommit,
}

/// Configuration of a store's persistence layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistConfig {
    /// Directory holding `snapshot-<seq>.evbs` and `wal-<seq>.evbw` files
    /// (created if missing).
    pub dir: PathBuf,
    /// Durability policy of the write-ahead log.
    pub sync: SyncPolicy,
    /// Whether inserts are logged at all. With the WAL disabled only
    /// explicit snapshots persist state; inserts after the last snapshot
    /// are lost on restart.
    pub wal: bool,
}

impl PersistConfig {
    /// Persistence in `dir` with the default [`SyncPolicy::OsOnly`] WAL.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistConfig { dir: dir.into(), sync: SyncPolicy::default(), wal: true }
    }

    /// Same, with group-commit fsync on every insert.
    pub fn fsync(dir: impl Into<PathBuf>) -> Self {
        PersistConfig { dir: dir.into(), sync: SyncPolicy::GroupCommit, wal: true }
    }

    /// Snapshot-only persistence (no insert log).
    pub fn snapshot_only(dir: impl Into<PathBuf>) -> Self {
        PersistConfig { dir: dir.into(), sync: SyncPolicy::OsOnly, wal: false }
    }
}

/// A persistence failure. File-format problems are typed (never panics),
/// I/O problems carry the underlying error.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(io::Error),
    /// A snapshot or WAL file failed structural validation (bad magic,
    /// CRC mismatch, counts that do not add up, …).
    Corrupt {
        /// File that failed validation.
        file: String,
        /// What was wrong with it.
        what: &'static str,
    },
    /// The file was written by an incompatible format version.
    BadVersion {
        /// File carrying the version.
        file: String,
        /// The version it carries.
        version: u8,
    },
    /// The snapshot's geometry does not match the store configuration it
    /// claims (e.g. the parameter derivation changed between builds).
    ConfigMismatch(&'static str),
    /// Persistence was asked of a hardened store. Hardened bits are derived
    /// under secret keys that are never written to disk, so a restored word
    /// array could not answer queries; see the module docs.
    HardenedStore,
    /// Persistence was asked of a backend family that opts out of word-array
    /// snapshots (a scalable filter's slice stack has no fixed geometry).
    UnsupportedBackend(BackendKind),
    /// Recovery found no valid snapshot in the directory.
    NoSnapshot,
    /// A previous WAL write failed; the log is no longer trustworthy,
    /// appends have been disabled and the store is in degraded read-only
    /// mode until a snapshot repairs it. Carries the original error text.
    WalBroken(String),
    /// The store already has persistence attached.
    AlreadyPersistent,
    /// The operation needs persistence but none is attached (e.g. a
    /// `SNAPSHOT` command against a store started without a data directory).
    NotPersistent,
}

impl core::fmt::Display for PersistError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persistence I/O error: {e}"),
            PersistError::Corrupt { file, what } => write!(f, "corrupt {file}: {what}"),
            PersistError::BadVersion { file, version } => {
                write!(f, "{file}: unsupported format version {version}")
            }
            PersistError::ConfigMismatch(what) => {
                write!(f, "snapshot does not match the store configuration: {what}")
            }
            PersistError::HardenedStore => write!(
                f,
                "hardened stores refuse persistence: their bits are derived under \
                 secret keys that are never written to disk"
            ),
            PersistError::UnsupportedBackend(kind) => {
                write!(f, "the {kind} backend does not support word-array persistence")
            }
            PersistError::NoSnapshot => write!(f, "no valid snapshot found in the directory"),
            PersistError::WalBroken(e) => write!(f, "write-ahead log is broken: {e}"),
            PersistError::AlreadyPersistent => write!(f, "persistence is already attached"),
            PersistError::NotPersistent => write!(f, "no persistence is attached to this store"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Outcome of a completed snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Sequence number of the snapshot file (`snapshot-<seq>.evbs`).
    pub seq: u64,
    /// First WAL segment recovery replays on top of this snapshot.
    pub wal_seq: u64,
    /// Shards recorded.
    pub shards: u32,
    /// Bytes written.
    pub bytes: u64,
}

/// What recovery found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Sequence of the snapshot restored from.
    pub snapshot_seq: u64,
    /// WAL segments replayed.
    pub wal_segments: u64,
    /// Insert records applied.
    pub replayed_inserts: u64,
    /// Remove records applied (deletable backends only).
    pub replayed_removes: u64,
    /// Rotation records applied.
    pub replayed_rotations: u64,
    /// Insert records discarded because their generation was rotated out
    /// (replaying them would resurrect dropped pollution).
    pub discarded_stale: u64,
    /// Records whose generation ran *ahead* of the shard (should not occur
    /// with logs this module wrote; tolerated, counted).
    pub anomalies: u64,
    /// Whether the last WAL segment ended mid-record (a crash cut a write
    /// short) — tolerated as a clean end of log.
    pub torn_tail: bool,
}

// ---------------------------------------------------------------------------
// File format primitives: CRC-framed little-endian records.
// ---------------------------------------------------------------------------

/// Format version shared by snapshot and WAL files. Bump on incompatible
/// layout changes. Version 2 added the backend-family byte pair to the
/// snapshot header and the `REMOVE` WAL record; version-1 files are
/// rejected with [`PersistError::BadVersion`].
pub const PERSIST_FORMAT_VERSION: u8 = 2;

const SNAPSHOT_MAGIC: &[u8; 4] = b"EVBS";
const WAL_MAGIC: &[u8; 4] = b"EVBW";

const REC_SNAP_HEADER: u8 = 0x01;
const REC_SNAP_GENERATION: u8 = 0x02;
const REC_SNAP_END: u8 = 0x03;
const REC_WAL_INSERT: u8 = 0x10;
const REC_WAL_ROTATE_BEGIN: u8 = 0x11;
const REC_WAL_ROTATE_COMPLETE: u8 = 0x12;
const REC_WAL_REMOVE: u8 = 0x13;

const ROLE_ACTIVE: u8 = 0;
const ROLE_DRAINING: u8 = 1;

/// Cap on a single record body (a corrupt length prefix must not balloon
/// memory). Sized for the largest legitimate record: one shard's word array
/// (a 1-billion-bit shard is 128 MiB) or one insert batch (bounded by the
/// server frame cap, 16 MiB).
const MAX_RECORD_BYTES: u32 = 256 * 1024 * 1024;

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3), the checksum guarding every record.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Appends one framed record: `[body_len u32][type u8][body][crc32]`, the
/// CRC covering type + body.
fn put_record(out: &mut Vec<u8>, kind: u8, body: &[u8]) {
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    let crc_start = out.len();
    out.push(kind);
    out.extend_from_slice(body);
    let crc = crc32(&out[crc_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// One decoded record framing outcome.
enum RecordRead<'a> {
    /// A structurally valid record.
    Record { kind: u8, body: &'a [u8], consumed: usize },
    /// The buffer ends before the record it announces is complete — a torn
    /// tail (clean cut for WAL replay; fatal for snapshots).
    Torn,
    /// The record is complete but fails validation (CRC mismatch, hostile
    /// length).
    Corrupt(&'static str),
}

/// Reads the record framing at `buf[pos..]` without panicking on any input.
fn read_record(buf: &[u8], pos: usize) -> RecordRead<'_> {
    let avail = &buf[pos..];
    if avail.len() < 4 {
        return if avail.is_empty() { RecordRead::Corrupt("end") } else { RecordRead::Torn };
    }
    let body_len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes"));
    if body_len > MAX_RECORD_BYTES {
        return RecordRead::Corrupt("record length exceeds the record cap");
    }
    let body_len = body_len as usize;
    let total = 4 + 1 + body_len + 4;
    if avail.len() < total {
        return RecordRead::Torn;
    }
    let kind = avail[4];
    let body = &avail[5..5 + body_len];
    let crc = u32::from_le_bytes(avail[5 + body_len..total].try_into().expect("4 bytes"));
    if crc32(&avail[4..5 + body_len]) != crc {
        return RecordRead::Corrupt("record CRC mismatch");
    }
    RecordRead::Record { kind, body, consumed: total }
}

/// Bounds-checked little-endian cursor over a record body; every accessor
/// errors (`None`) instead of panicking.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn bytes(&mut self, len: usize) -> Option<&'a [u8]> {
        if self.buf.len() - self.pos < len {
            return None;
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.bytes(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.bytes(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// WAL writer with group commit.
// ---------------------------------------------------------------------------

struct WalState {
    file: File,
    seq: u64,
    /// Encoded records not yet handed to `write(2)`.
    buf: Vec<u8>,
    /// Log sequence number the next appended record gets.
    next_lsn: u64,
    /// Every record below this has reached `write(2)`.
    written_lsn: u64,
    /// … and `fsync`.
    durable_lsn: u64,
    /// A flush leader is currently writing outside the lock.
    flushing: bool,
    /// First unrecoverable write error; appends are disabled once set.
    broken: Option<String>,
}

/// The group-commit write-ahead log writer.
struct WalWriter {
    state: Mutex<WalState>,
    flushed: Condvar,
    sync: SyncPolicy,
    dir: PathBuf,
    /// Shared telemetry: fsync latency, batch sizes, the broken-flag gauge.
    metrics: Arc<StoreMetrics>,
}

impl WalWriter {
    /// Creates segment `wal-<seq>.evbw` (truncating any torn leftover of
    /// the same seq) and returns a writer positioned after its header.
    fn create(
        dir: &Path,
        seq: u64,
        sync: SyncPolicy,
        metrics: Arc<StoreMetrics>,
    ) -> Result<WalWriter, PersistError> {
        let mut file =
            OpenOptions::new().write(true).create(true).truncate(true).open(wal_path(dir, seq))?;
        file.write_all(&wal_header(seq))?;
        if sync == SyncPolicy::GroupCommit {
            file.sync_data()?;
        }
        Ok(WalWriter {
            state: Mutex::new(WalState {
                file,
                seq,
                buf: Vec::new(),
                next_lsn: 1,
                written_lsn: 0,
                durable_lsn: 0,
                flushing: false,
                broken: None,
            }),
            flushed: Condvar::new(),
            sync,
            dir: dir.to_path_buf(),
            metrics,
        })
    }

    /// Records the first unrecoverable write error: appends become no-ops,
    /// the gauges flip, the degraded-mode entry event lands in the flight
    /// recorder, and the operator hears about it immediately. The store is
    /// now in degraded read-only mode — the serve layer refuses writes —
    /// until a successful snapshot repairs the log ([`WalWriter::repair`]).
    fn mark_broken(&self, state: &mut WalState, error: &io::Error) {
        if state.broken.is_some() {
            return;
        }
        log_warn!("write-ahead log broken ({error}); degraded read-only mode entered");
        self.metrics.wal_broken.set(1.0);
        self.metrics.degraded.set(1.0);
        self.metrics.record_event(TraceEvent::DegradedEntered { wal_seq: state.seq });
        state.broken = Some(error.to_string());
    }

    /// Appends an encoded record to the in-memory buffer and returns its
    /// LSN, or `None` if the log is broken. Called *under the shard lock*
    /// so log order matches apply order; it never touches the filesystem.
    fn append(&self, record: impl FnOnce(&mut Vec<u8>)) -> Option<u64> {
        let mut s = self.state.lock().expect("wal lock poisoned");
        if s.broken.is_some() {
            return None;
        }
        if let Err(e) = fault::check_io(FaultPoint::WalAppend) {
            self.mark_broken(&mut s, &e);
            return None;
        }
        record(&mut s.buf);
        let lsn = s.next_lsn;
        s.next_lsn += 1;
        Some(lsn)
    }

    /// Waits until `lsn` is durable under the configured policy, electing a
    /// flush leader as needed (the group-commit core). Called *outside* the
    /// shard lock. Errors mark the log broken; later appends no-op.
    fn commit(&self, lsn: u64) {
        let mut s = self.state.lock().expect("wal lock poisoned");
        loop {
            if s.broken.is_some() {
                return;
            }
            let reached = match self.sync {
                SyncPolicy::OsOnly => s.written_lsn,
                SyncPolicy::GroupCommit => s.durable_lsn,
            };
            if reached >= lsn {
                return;
            }
            if s.flushing {
                s = self.flushed.wait(s).expect("wal lock poisoned");
                continue;
            }
            // Become the leader: take the whole buffer (covering every
            // append so far, ours and any group-commit followers') and
            // write + fsync it outside the lock.
            s.flushing = true;
            let buf = std::mem::take(&mut s.buf);
            let upto = s.next_lsn - 1;
            let batch = upto.saturating_sub(s.written_lsn);
            let file = s.file.try_clone();
            drop(s);
            let result = file.and_then(|mut file| {
                fault::check_io(FaultPoint::WalFsync)?;
                file.write_all(&buf)?;
                if self.sync == SyncPolicy::GroupCommit {
                    let fsync_started = Instant::now();
                    file.sync_data()?;
                    let fsync_ns = fsync_started.elapsed().as_nanos() as u64;
                    self.metrics.wal_fsync_ns.record(fsync_ns);
                    if fsync_ns >= WAL_FSYNC_STALL_NS {
                        self.metrics
                            .record_event(TraceEvent::WalFsyncStall { latency_ns: fsync_ns });
                        log_info!("wal fsync stalled for {}ms", fsync_ns / 1_000_000);
                    }
                }
                Ok(())
            });
            s = self.state.lock().expect("wal lock poisoned");
            s.flushing = false;
            match result {
                Ok(()) => {
                    if batch > 0 {
                        self.metrics.group_commit_batch.record(batch);
                    }
                    s.written_lsn = s.written_lsn.max(upto);
                    if self.sync == SyncPolicy::GroupCommit {
                        s.durable_lsn = s.durable_lsn.max(upto);
                    }
                }
                Err(e) => self.mark_broken(&mut s, &e),
            }
            self.flushed.notify_all();
        }
    }

    /// Flushes everything buffered, fsyncs the current segment, then
    /// switches appends to a fresh segment `seq + 1`. Returns the new
    /// segment's seq (the first segment a snapshot taken *after* this call
    /// must replay).
    fn rotate(&self) -> Result<u64, PersistError> {
        let mut s = self.state.lock().expect("wal lock poisoned");
        while s.flushing {
            s = self.flushed.wait(s).expect("wal lock poisoned");
        }
        if let Some(e) = &s.broken {
            return Err(PersistError::WalBroken(e.clone()));
        }
        let buf = std::mem::take(&mut s.buf);
        let upto = s.next_lsn - 1;
        let result = (|| {
            fault::check_io(FaultPoint::WalFsync)?;
            s.file.write_all(&buf)?;
            s.file.sync_data()?;
            let seq = s.seq + 1;
            let mut file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(wal_path(&self.dir, seq))?;
            file.write_all(&wal_header(seq))?;
            file.sync_data()?;
            Ok::<(File, u64), io::Error>((file, seq))
        })();
        match result {
            Ok((file, seq)) => {
                s.file = file;
                s.seq = seq;
                s.written_lsn = upto;
                s.durable_lsn = upto;
                self.flushed.notify_all();
                Ok(seq)
            }
            Err(e) => {
                self.mark_broken(&mut s, &e);
                self.flushed.notify_all();
                Err(PersistError::Io(e))
            }
        }
    }

    fn broken(&self) -> Option<String> {
        self.state.lock().expect("wal lock poisoned").broken.clone()
    }

    /// Repairs a broken log: discards the unwritable buffer (every record
    /// in it was applied in memory *before* being appended, so the snapshot
    /// about to be taken captures its effects) and switches appends to a
    /// fresh segment `seq + 1`. The broken flag is deliberately **left
    /// set** — the caller clears it via [`WalWriter::heal`] only once the
    /// covering snapshot has published, so a crash between repair and
    /// publish keeps the store refusing writes instead of silently logging
    /// into a segment no snapshot names.
    fn repair(&self) -> Result<u64, PersistError> {
        let mut s = self.state.lock().expect("wal lock poisoned");
        while s.flushing {
            s = self.flushed.wait(s).expect("wal lock poisoned");
        }
        let seq = s.seq + 1;
        let result = (|| {
            fault::check_io(FaultPoint::WalFsync)?;
            let mut file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(wal_path(&self.dir, seq))?;
            file.write_all(&wal_header(seq))?;
            file.sync_data()?;
            Ok::<File, io::Error>(file)
        })();
        match result {
            Ok(file) => {
                s.file = file;
                s.seq = seq;
                s.buf.clear();
                let upto = s.next_lsn - 1;
                s.written_lsn = upto;
                s.durable_lsn = upto;
                self.flushed.notify_all();
                Ok(seq)
            }
            Err(e) => Err(PersistError::Io(e)),
        }
    }

    /// Clears the broken flag (and its gauges) after a successful repair
    /// snapshot. Returns whether the log was actually broken.
    fn heal(&self) -> bool {
        let mut s = self.state.lock().expect("wal lock poisoned");
        if s.broken.take().is_some() {
            self.metrics.wal_broken.set(0.0);
            self.metrics.degraded.set(0.0);
            self.flushed.notify_all();
            true
        } else {
            false
        }
    }
}

fn wal_header(seq: u64) -> Vec<u8> {
    let mut header = Vec::with_capacity(21);
    header.extend_from_slice(WAL_MAGIC);
    header.push(PERSIST_FORMAT_VERSION);
    header.extend_from_slice(&seq.to_le_bytes());
    let crc = crc32(&header);
    header.extend_from_slice(&crc.to_le_bytes());
    header
}

const WAL_HEADER_BYTES: usize = 4 + 1 + 8 + 4;

pub(crate) fn wal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq}.evbw"))
}

pub(crate) fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{seq}.evbs"))
}

// ---------------------------------------------------------------------------
// The store-facing persistence handle.
// ---------------------------------------------------------------------------

/// A store's attached persistence: the WAL writer plus snapshot sequencing.
/// Held inside [`BloomStore`]; all methods take `&self`.
pub struct StorePersistence {
    dir: PathBuf,
    wal: Option<WalWriter>,
    /// Sequence the *next* snapshot gets (the newest on disk is one less).
    next_snapshot_seq: AtomicU64,
    /// Serialises snapshot writers (concurrent SNAPSHOT commands).
    snapshot_lock: Mutex<()>,
    /// Shared telemetry: commit-wait and snapshot histograms.
    metrics: Arc<StoreMetrics>,
}

impl core::fmt::Debug for StorePersistence {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StorePersistence")
            .field("dir", &self.dir)
            .field("wal", &self.wal.is_some())
            .finish()
    }
}

impl StorePersistence {
    pub(crate) fn create(
        config: &PersistConfig,
        wal_seq: u64,
        next_snapshot_seq: u64,
        metrics: Arc<StoreMetrics>,
    ) -> Result<StorePersistence, PersistError> {
        fs::create_dir_all(&config.dir)?;
        let wal = if config.wal {
            Some(WalWriter::create(&config.dir, wal_seq, config.sync, Arc::clone(&metrics))?)
        } else {
            None
        };
        Ok(StorePersistence {
            dir: config.dir.clone(),
            wal,
            next_snapshot_seq: AtomicU64::new(next_snapshot_seq),
            snapshot_lock: Mutex::new(()),
            metrics,
        })
    }

    /// The directory snapshots and WAL segments live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The first WAL write error, if the log has broken. Appends are
    /// disabled once set (the store is in degraded read-only mode); the
    /// next successful snapshot repairs the log and clears it.
    pub fn wal_error(&self) -> Option<String> {
        self.wal.as_ref().and_then(WalWriter::broken)
    }

    /// Logs one applied insert. Called under the shard read lock.
    pub(crate) fn log_insert(&self, shard: usize, generation: u64, item: &[u8]) -> Option<u64> {
        let wal = self.wal.as_ref()?;
        wal.append(|out| {
            let mut body = Vec::with_capacity(4 + 8 + 4 + 4 + item.len());
            body.extend_from_slice(&(shard as u32).to_le_bytes());
            body.extend_from_slice(&generation.to_le_bytes());
            body.extend_from_slice(&1u32.to_le_bytes());
            body.extend_from_slice(&(item.len() as u32).to_le_bytes());
            body.extend_from_slice(item);
            put_record(out, REC_WAL_INSERT, &body);
        })
    }

    /// Logs one applied per-shard insert bucket. Called under that shard's
    /// read lock.
    pub(crate) fn log_insert_bucket(
        &self,
        shard: usize,
        generation: u64,
        items: &[&[u8]],
    ) -> Option<u64> {
        let wal = self.wal.as_ref()?;
        wal.append(|out| {
            let payload: usize = items.iter().map(|i| 4 + i.len()).sum();
            let mut body = Vec::with_capacity(4 + 8 + 4 + payload);
            body.extend_from_slice(&(shard as u32).to_le_bytes());
            body.extend_from_slice(&generation.to_le_bytes());
            body.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                body.extend_from_slice(&(item.len() as u32).to_le_bytes());
                body.extend_from_slice(item);
            }
            put_record(out, REC_WAL_INSERT, &body);
        })
    }

    /// Logs one applied per-shard remove bucket (deletable backends only).
    /// Called under that shard's read lock. Same body layout as an insert
    /// record, distinguished by the record type.
    pub(crate) fn log_remove_bucket(
        &self,
        shard: usize,
        generation: u64,
        items: &[&[u8]],
    ) -> Option<u64> {
        let wal = self.wal.as_ref()?;
        wal.append(|out| {
            let payload: usize = items.iter().map(|i| 4 + i.len()).sum();
            let mut body = Vec::with_capacity(4 + 8 + 4 + payload);
            body.extend_from_slice(&(shard as u32).to_le_bytes());
            body.extend_from_slice(&generation.to_le_bytes());
            body.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                body.extend_from_slice(&(item.len() as u32).to_le_bytes());
                body.extend_from_slice(item);
            }
            put_record(out, REC_WAL_REMOVE, &body);
        })
    }

    /// Logs a rotation phase. Called under the shard write lock.
    pub(crate) fn log_rotation(&self, shard: usize, generation: u64, begin: bool) -> Option<u64> {
        let wal = self.wal.as_ref()?;
        let kind = if begin { REC_WAL_ROTATE_BEGIN } else { REC_WAL_ROTATE_COMPLETE };
        wal.append(|out| {
            let mut body = Vec::with_capacity(12);
            body.extend_from_slice(&(shard as u32).to_le_bytes());
            body.extend_from_slice(&generation.to_le_bytes());
            put_record(out, kind, &body);
        })
    }

    /// Waits until `lsn` is durable. Called outside the shard lock. The
    /// recorded latency is the full append-to-durable wait the inserting
    /// caller pays (including any group-commit queueing behind a leader).
    pub(crate) fn commit(&self, lsn: u64) {
        if let Some(wal) = &self.wal {
            let started = Instant::now();
            wal.commit(lsn);
            self.metrics.wal_append_ns.record(started.elapsed().as_nanos() as u64);
        }
    }

    /// Writes a snapshot of `store` and prunes superseded files. See the
    /// module docs for the full protocol.
    pub(crate) fn snapshot<B: FilterBackend>(
        &self,
        store: &BloomStore<B>,
    ) -> Result<SnapshotInfo, PersistError> {
        let started = Instant::now();
        let _serialised = self.snapshot_lock.lock().expect("snapshot lock poisoned");
        // 1. Rotate the WAL first: every record in the segments this closes
        //    was appended after its insert was applied, so the bit copy
        //    below is guaranteed to contain it. A *broken* WAL is repaired
        //    instead — appends switch to a fresh segment and this snapshot
        //    captures the applied-but-unlogged state; degraded mode (the
        //    broken flag) only clears once the snapshot has published.
        let was_broken = self.wal_error().is_some();
        let wal_seq = match &self.wal {
            Some(wal) if was_broken => wal.repair()?,
            Some(wal) => wal.rotate()?,
            None => 0,
        };
        let seq = self.next_snapshot_seq.fetch_add(1, Ordering::SeqCst);

        // 2. Racy per-shard copy. The shard read lock pins the generation
        //    *pair* (a rotation cannot install or drop a generation while we
        //    hold it), so a mid-rotation shard records both generations
        //    coherently; the word arrays themselves are copied racily.
        let mut out = Vec::new();
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.push(PERSIST_FORMAT_VERSION);
        let config = store.config();
        let params = store.shard_params();
        let mut header = Vec::with_capacity(46);
        header.extend_from_slice(&(config.shards as u32).to_le_bytes());
        header.extend_from_slice(&config.capacity.to_le_bytes());
        header.extend_from_slice(&config.target_fpp.to_bits().to_le_bytes());
        header.extend_from_slice(&params.m.to_le_bytes());
        header.extend_from_slice(&params.k.to_le_bytes());
        header.extend_from_slice(&seq.to_le_bytes());
        header.extend_from_slice(&wal_seq.to_le_bytes());
        header.push(B::KIND.code());
        header.push(B::persist_aux(store.options()));
        put_record(&mut out, REC_SNAP_HEADER, &header);

        let mut generations = 0u32;
        for index in 0..store.shard_count() {
            store.shard(index).with_generations(|active, draining| {
                put_generation(&mut out, index, ROLE_ACTIVE, active)?;
                generations += 1;
                if let Some(draining) = draining {
                    put_generation(&mut out, index, ROLE_DRAINING, draining)?;
                    generations += 1;
                }
                Ok::<(), PersistError>(())
            })?;
        }
        put_record(&mut out, REC_SNAP_END, &generations.to_le_bytes());

        // 3. Publish atomically: tmp + fsync + rename, then prune.
        let final_path = snapshot_path(&self.dir, seq);
        let tmp_path = self.dir.join(format!("snapshot-{seq}.tmp"));
        fault::check_io(FaultPoint::SnapshotWrite)?;
        let mut file = File::create(&tmp_path)?;
        file.write_all(&out)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp_path, &final_path)?;
        if let Ok(dir) = File::open(&self.dir) {
            drop(dir.sync_all()); // directory durability is best-effort
        }
        self.prune(seq, wal_seq);
        self.metrics.snapshot_ns.record(started.elapsed().as_nanos() as u64);
        self.metrics.snapshot_bytes.add(out.len() as u64);
        self.metrics.record_event(TraceEvent::SnapshotTaken { seq, bytes: out.len() as u64 });
        if was_broken {
            if let Some(wal) = &self.wal {
                wal.heal();
            }
            self.metrics.record_event(TraceEvent::DegradedExited { snapshot_seq: seq });
            log_info!("snapshot {seq} repaired the write-ahead log; degraded mode exited");
        }
        Ok(SnapshotInfo {
            seq,
            wal_seq,
            shards: store.shard_count() as u32,
            bytes: out.len() as u64,
        })
    }

    /// Removes snapshots older than `keep_snapshot` and WAL segments below
    /// `keep_wal`. Best-effort: a prune failure only costs disk.
    fn prune(&self, keep_snapshot: u64, keep_wal: u64) {
        let Ok(entries) = fs::read_dir(&self.dir) else { return };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let stale = match parse_file_seq(&name) {
                Some(PersistFile::Snapshot(seq)) => seq < keep_snapshot,
                Some(PersistFile::Wal(seq)) => seq < keep_wal,
                None => name.ends_with(".tmp"),
            };
            if stale {
                drop(fs::remove_file(entry.path()));
            }
        }
    }
}

fn put_generation<B: FilterBackend>(
    out: &mut Vec<u8>,
    shard: usize,
    role: u8,
    generation: &crate::shard::Generation<B>,
) -> Result<(), PersistError> {
    let filter = &generation.filter;
    // The racy word copy; the ones count is deliberately NOT persisted —
    // recovery recounts it from these words (the live RMW counter may
    // disagree with any given copy; see the module docs).
    let Some(words) = filter.snapshot_words() else {
        // `enable_persistence` gates on `persist_words_len`, so only a
        // backend lying about its own capability can reach this.
        return Err(PersistError::UnsupportedBackend(B::KIND));
    };
    let mut body = Vec::with_capacity(4 + 1 + 8 + 8 + 8 + 4 + words.len() * 8);
    body.extend_from_slice(&(shard as u32).to_le_bytes());
    body.push(role);
    body.extend_from_slice(&generation.id.to_le_bytes());
    body.extend_from_slice(&filter.inserted().to_le_bytes());
    body.extend_from_slice(&filter.m().to_le_bytes());
    body.extend_from_slice(&(words.len() as u32).to_le_bytes());
    for word in &words {
        body.extend_from_slice(&word.to_le_bytes());
    }
    put_record(out, REC_SNAP_GENERATION, &body);
    Ok(())
}

#[derive(Debug, PartialEq, Eq)]
enum PersistFile {
    Snapshot(u64),
    Wal(u64),
}

fn parse_file_seq(name: &str) -> Option<PersistFile> {
    if let Some(seq) = name.strip_prefix("snapshot-").and_then(|r| r.strip_suffix(".evbs")) {
        return seq.parse().ok().map(PersistFile::Snapshot);
    }
    if let Some(seq) = name.strip_prefix("wal-").and_then(|r| r.strip_suffix(".evbw")) {
        return seq.parse().ok().map(PersistFile::Wal);
    }
    None
}

// ---------------------------------------------------------------------------
// Snapshot decoding.
// ---------------------------------------------------------------------------

/// A decoded snapshot, pre-validation against a store configuration.
pub(crate) struct SnapshotDoc {
    pub(crate) shards: u32,
    pub(crate) capacity: u64,
    pub(crate) target_fpp: f64,
    pub(crate) m: u64,
    pub(crate) k: u32,
    pub(crate) seq: u64,
    pub(crate) wal_seq: u64,
    /// Backend family code ([`BackendKind::code`]) the snapshot was written
    /// by.
    pub(crate) backend: u8,
    /// Backend-specific options byte ([`FilterBackend::persist_aux`]).
    pub(crate) backend_aux: u8,
    /// `(shard, role, generation id, inserted, words)` in file order.
    pub(crate) generations: Vec<(u32, u8, u64, u64, Vec<u64>)>,
}

/// The [`BackendKind`] a decoded snapshot claims, if its code is known.
pub(crate) fn doc_backend_kind(doc: &SnapshotDoc) -> Option<BackendKind> {
    BackendKind::from_code(doc.backend)
}

fn corrupt(file: &Path, what: &'static str) -> PersistError {
    PersistError::Corrupt { file: file.display().to_string(), what }
}

/// Decodes and fully validates a snapshot file. Never panics on arbitrary
/// bytes; a snapshot with a torn tail is *invalid* (unlike a WAL — the
/// tmp + rename publish protocol means a real snapshot is never torn).
pub(crate) fn read_snapshot(path: &Path) -> Result<SnapshotDoc, PersistError> {
    let bytes = fs::read(path)?;
    if bytes.len() < 5 || &bytes[..4] != SNAPSHOT_MAGIC {
        return Err(corrupt(path, "missing snapshot magic"));
    }
    if bytes[4] != PERSIST_FORMAT_VERSION {
        return Err(PersistError::BadVersion {
            file: path.display().to_string(),
            version: bytes[4],
        });
    }
    let mut pos = 5;
    let header = match read_record(&bytes, pos) {
        RecordRead::Record { kind: REC_SNAP_HEADER, body, consumed } => {
            pos += consumed;
            body
        }
        RecordRead::Record { .. } => return Err(corrupt(path, "first record is not the header")),
        RecordRead::Torn => return Err(corrupt(path, "truncated header")),
        RecordRead::Corrupt(what) => return Err(corrupt(path, what)),
    };
    let mut c = Cursor::new(header);
    let (
        Some(shards),
        Some(capacity),
        Some(target_fpp),
        Some(m),
        Some(k),
        Some(seq),
        Some(wal_seq),
        Some(backend),
        Some(backend_aux),
    ) = (c.u32(), c.u64(), c.f64(), c.u64(), c.u32(), c.u64(), c.u64(), c.u8(), c.u8())
    else {
        return Err(corrupt(path, "short header record"));
    };
    if !c.done() {
        return Err(corrupt(path, "trailing bytes in header record"));
    }

    let mut generations = Vec::new();
    loop {
        match read_record(&bytes, pos) {
            RecordRead::Record { kind: REC_SNAP_GENERATION, body, consumed } => {
                pos += consumed;
                let mut c = Cursor::new(body);
                let (Some(shard), Some(role), Some(id), Some(inserted), Some(gen_m), Some(count)) =
                    (c.u32(), c.u8(), c.u64(), c.u64(), c.u64(), c.u32())
                else {
                    return Err(corrupt(path, "short generation record"));
                };
                if shard >= shards || role > ROLE_DRAINING {
                    return Err(corrupt(path, "generation record out of range"));
                }
                // The word count is NOT validated against `m` here: the
                // words-per-bit ratio is backend-specific (a counting
                // filter stores one multi-bit cell per index), so the
                // backend's `from_words` is the authority on it.
                if gen_m != m {
                    return Err(corrupt(path, "generation geometry mismatch"));
                }
                let mut words = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let Some(word) = c.u64() else {
                        return Err(corrupt(path, "short word array"));
                    };
                    words.push(word);
                }
                if !c.done() {
                    return Err(corrupt(path, "trailing bytes in generation record"));
                }
                generations.push((shard, role, id, inserted, words));
            }
            RecordRead::Record { kind: REC_SNAP_END, body, consumed } => {
                let mut c = Cursor::new(body);
                let count = c.u32();
                if count != Some(generations.len() as u32) || !c.done() {
                    return Err(corrupt(path, "end-record generation count mismatch"));
                }
                if pos + consumed != bytes.len() {
                    return Err(corrupt(path, "trailing bytes after end record"));
                }
                break;
            }
            RecordRead::Record { .. } => return Err(corrupt(path, "unknown record type")),
            RecordRead::Torn => return Err(corrupt(path, "truncated snapshot")),
            RecordRead::Corrupt(what) => return Err(corrupt(path, what)),
        }
    }
    Ok(SnapshotDoc {
        shards,
        capacity,
        target_fpp,
        m,
        k,
        seq,
        wal_seq,
        backend,
        backend_aux,
        generations,
    })
}

// ---------------------------------------------------------------------------
// WAL decoding and replay.
// ---------------------------------------------------------------------------

/// One decoded WAL record.
pub(crate) enum WalRecord<'a> {
    Insert { shard: u32, generation: u64, items: Vec<&'a [u8]> },
    Remove { shard: u32, generation: u64, items: Vec<&'a [u8]> },
    RotateBegin { shard: u32, generation: u64 },
    RotateComplete { shard: u32, generation: u64 },
}

/// Decodes a WAL segment body (header already validated) into records,
/// tolerating a torn tail. Returns the records and whether the tail was
/// torn. Never panics on arbitrary input; a CRC mismatch on a *complete*
/// record also ends replay there (the segment cannot be trusted past it).
pub(crate) fn decode_wal_records(bytes: &[u8]) -> (Vec<WalRecord<'_>>, bool) {
    let mut records = Vec::new();
    let mut pos = 0;
    loop {
        match read_record(bytes, pos) {
            RecordRead::Record { kind, body, consumed } => {
                pos += consumed;
                let mut c = Cursor::new(body);
                let decoded = match kind {
                    REC_WAL_INSERT | REC_WAL_REMOVE => {
                        let (Some(shard), Some(generation), Some(count)) =
                            (c.u32(), c.u64(), c.u32())
                        else {
                            return (records, true);
                        };
                        // Each item costs at least its 4-byte length field.
                        if count as usize > body.len() / 4 {
                            return (records, true);
                        }
                        let mut items = Vec::with_capacity(count as usize);
                        for _ in 0..count {
                            let Some(item) = c.u32().and_then(|len| c.bytes(len as usize)) else {
                                return (records, true);
                            };
                            items.push(item);
                        }
                        if kind == REC_WAL_INSERT {
                            WalRecord::Insert { shard, generation, items }
                        } else {
                            WalRecord::Remove { shard, generation, items }
                        }
                    }
                    REC_WAL_ROTATE_BEGIN | REC_WAL_ROTATE_COMPLETE => {
                        let (Some(shard), Some(generation)) = (c.u32(), c.u64()) else {
                            return (records, true);
                        };
                        if kind == REC_WAL_ROTATE_BEGIN {
                            WalRecord::RotateBegin { shard, generation }
                        } else {
                            WalRecord::RotateComplete { shard, generation }
                        }
                    }
                    _ => return (records, true),
                };
                if !c.done() {
                    return (records, true);
                }
                records.push(decoded);
            }
            RecordRead::Corrupt("end") => return (records, false),
            RecordRead::Torn | RecordRead::Corrupt(_) => return (records, true),
        }
    }
}

/// Validates a WAL segment header; returns the body offset.
pub(crate) fn check_wal_header(path: &Path, bytes: &[u8], seq: u64) -> Result<usize, PersistError> {
    if bytes.len() < WAL_HEADER_BYTES || &bytes[..4] != WAL_MAGIC {
        return Err(corrupt(path, "missing WAL magic"));
    }
    if bytes[4] != PERSIST_FORMAT_VERSION {
        return Err(PersistError::BadVersion {
            file: path.display().to_string(),
            version: bytes[4],
        });
    }
    let header_seq = u64::from_le_bytes(bytes[5..13].try_into().expect("8 bytes"));
    let crc = u32::from_le_bytes(bytes[13..17].try_into().expect("4 bytes"));
    if crc32(&bytes[..13]) != crc {
        return Err(corrupt(path, "WAL header CRC mismatch"));
    }
    if header_seq != seq {
        return Err(corrupt(path, "WAL header seq does not match its file name"));
    }
    Ok(WAL_HEADER_BYTES)
}

/// Scans a persistence directory for the newest snapshot and the sorted WAL
/// segment seqs.
pub(crate) fn scan_dir(dir: &Path) -> Result<(Option<u64>, Vec<u64>), PersistError> {
    let mut newest_snapshot = None;
    let mut wal_seqs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        match parse_file_seq(&name.to_string_lossy()) {
            Some(PersistFile::Snapshot(seq)) => {
                newest_snapshot = Some(newest_snapshot.map_or(seq, |s: u64| s.max(seq)));
            }
            Some(PersistFile::Wal(seq)) => wal_seqs.push(seq),
            None => {}
        }
    }
    wal_seqs.sort_unstable();
    Ok((newest_snapshot, wal_seqs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_answer() {
        // The classic check value: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_framing_roundtrip() {
        let mut out = Vec::new();
        put_record(&mut out, 0x42, b"hello");
        match read_record(&out, 0) {
            RecordRead::Record { kind, body, consumed } => {
                assert_eq!(kind, 0x42);
                assert_eq!(body, b"hello");
                assert_eq!(consumed, out.len());
            }
            _ => panic!("framed record must read back"),
        }
    }

    #[test]
    fn record_framing_detects_torn_and_corrupt() {
        let mut out = Vec::new();
        put_record(&mut out, 1, b"payload");
        for cut in 1..out.len() {
            assert!(
                matches!(read_record(&out[..cut], 0), RecordRead::Torn),
                "cut at {cut} must read as torn"
            );
        }
        let mut flipped = out.clone();
        flipped[6] ^= 0xFF; // corrupt the body
        assert!(matches!(read_record(&flipped, 0), RecordRead::Corrupt(_)));
        // A hostile length prefix is rejected before allocation.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        hostile.extend_from_slice(&[0; 16]);
        assert!(matches!(read_record(&hostile, 0), RecordRead::Corrupt(_)));
    }

    #[test]
    fn wal_decode_never_panics_on_byte_soup() {
        // Seeded LCG byte soup: decode must return, never panic.
        let mut state = 0x5EED_1234_u64;
        for len in [0usize, 1, 7, 64, 513, 4096] {
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (state >> 56) as u8
                })
                .collect();
            let (_, _) = decode_wal_records(&bytes);
        }
    }

    #[test]
    fn parse_file_seq_recognises_both_kinds() {
        assert_eq!(parse_file_seq("snapshot-7.evbs"), Some(PersistFile::Snapshot(7)));
        assert_eq!(parse_file_seq("wal-12.evbw"), Some(PersistFile::Wal(12)));
        assert_eq!(parse_file_seq("snapshot-7.tmp"), None);
        assert_eq!(parse_file_seq("wal-x.evbw"), None);
    }
}

//! The adversary's view of an *unhardened* store, wired into the existing
//! attack machinery of `evilbloom-attacks`.
//!
//! An unhardened store is just a bigger predictable filter: routing and
//! index derivation are public, so the chosen-insertion adversary computes
//! everything offline. [`AdversarialStoreView`] flattens the `N` shards
//! into one virtual filter (an item's `k` indexes all fall inside its
//! shard's window) and implements [`evilbloom_attacks::TargetFilter`],
//! which makes [`evilbloom_attacks::pollution::craft_polluting_items`] —
//! and every other offline search — work against the store unchanged.
//!
//! The view is generic over the store's [`FilterBackend`], because the
//! paper's attacks are too: pollution hits every family, deletion hits
//! counting shards, forced growth hits scalable shards. Each shard
//! contributes its backend's *attack surface*
//! ([`FilterBackend::attack_params`] — for a scalable shard that is the
//! active slice, the one accepting new bits), recorded as a `(offset,
//! params)` region at construction time. The view is therefore a
//! point-in-time geometry snapshot: after a scalable shard grows a new
//! slice, rebuild the view to target it.
//!
//! A hardened store refuses to produce a view at all: without the routing
//! and filter keys there is nothing the offline searches can compute. That
//! refusal *is* the paper's Section 8.2 defence.

use evilbloom_attacks::deletion::{plan_targeted_deletion, DeletionPlan};
use evilbloom_attacks::forgery::{craft_false_positives, ForgeryOutcome};
use evilbloom_attacks::pollution::{craft_polluting_items, PollutionPlan};
use evilbloom_attacks::TargetFilter;
use evilbloom_filters::{ConcurrentBloomFilter, FilterBackend, FilterParams};
use evilbloom_urlgen::UrlGenerator;

use crate::store::BloomStore;

/// Flattened adversarial view of an unhardened [`BloomStore`]: shard `s`'s
/// attack surface occupies the virtual bit range starting at its region
/// offset (regions are consecutive but not necessarily equal-sized once a
/// scalable shard has grown).
pub struct AdversarialStoreView<'a, B: FilterBackend = ConcurrentBloomFilter> {
    store: &'a BloomStore<B>,
    /// Per-shard `(virtual offset, attack-surface params)`, offsets strictly
    /// increasing; captured when the view was built.
    regions: Vec<(u64, FilterParams)>,
    total_m: u64,
}

impl<'a, B: FilterBackend> AdversarialStoreView<'a, B> {
    /// Builds the view, or `None` if the store is hardened (keyed routing
    /// and index derivation leave the adversary nothing to compute).
    pub fn new(store: &'a BloomStore<B>) -> Option<Self> {
        if store.is_hardened() {
            return None;
        }
        let mut regions = Vec::with_capacity(store.shard_count());
        let mut total_m = 0u64;
        for index in 0..store.shard_count() {
            let params =
                store.shard(index).with_generations(|active, _| active.filter.attack_params());
            regions.push((total_m, params));
            total_m += params.m;
        }
        Some(AdversarialStoreView { store, regions, total_m })
    }

    /// The region (shard index, offset, params) a virtual index falls in.
    fn region_of(&self, index: u64) -> (usize, u64, FilterParams) {
        let shard = self.regions.partition_point(|&(offset, _)| offset <= index) - 1;
        let (offset, params) = self.regions[shard];
        (shard, offset, params)
    }
}

impl<B: FilterBackend> TargetFilter for AdversarialStoreView<'_, B> {
    fn m(&self) -> u64 {
        self.total_m
    }

    fn k(&self) -> u32 {
        self.regions[0].1.k
    }

    fn indexes_of(&self, item: &[u8]) -> Vec<u64> {
        let shard = self.store.route(item);
        let (offset, params) = self.regions[shard];
        let strategy = self.store.public_strategy().expect("view exists only unhardened");
        strategy.indexes(item, params.k, params.m).into_iter().map(|index| offset + index).collect()
    }

    fn is_set(&self, index: u64) -> bool {
        let (shard, offset, _) = self.region_of(index);
        self.store.shard(shard).with_generations(|active, _| active.filter.is_set(index - offset))
    }

    fn weight(&self) -> u64 {
        (0..self.store.shard_count())
            .map(|s| {
                self.store.shard(s).with_generations(|active, _| active.filter.attack_weight())
            })
            .sum()
    }
}

/// Crafts `count` polluting items against an unhardened store (each sets
/// `k` fresh bits in whichever shard it routes to). Returns `None` for a
/// hardened store — the offline search cannot even start.
pub fn craft_store_pollution<B: FilterBackend>(
    store: &BloomStore<B>,
    generator: &UrlGenerator,
    count: usize,
    max_attempts: u64,
) -> Option<PollutionPlan> {
    let view = AdversarialStoreView::new(store)?;
    Some(craft_polluting_items(&view, generator, count, max_attempts))
}

/// Plans the paper's deletion attack against an unhardened store: crafted
/// items that cover every cell of `victim` in its shard, so deleting them
/// (locally via [`BloomStore::remove`] or remotely as `DELETE` frames)
/// evicts the victim from a counting backend. Returns `None` for a hardened
/// store. The plan is pure geometry — building it never requires deletion
/// support, but *executing* it does.
pub fn plan_store_deletion<B: FilterBackend>(
    store: &BloomStore<B>,
    victim: &[u8],
    generator: &UrlGenerator,
    max_attempts: u64,
) -> Option<DeletionPlan> {
    let view = AdversarialStoreView::new(store)?;
    Some(plan_targeted_deletion(&view, victim, generator, max_attempts))
}

/// Forges `count` ghost items against an unhardened store: never-inserted
/// items whose `k` indexes all land on set bits, so the store (or a server
/// mirroring its state) answers "present" for them — the paper's query-only
/// false-positive forgery (Section 4.2). Returns `None` for a hardened
/// store: without the keys the adversary cannot tell a set bit from a
/// clear one.
pub fn forge_store_ghosts<B: FilterBackend>(
    store: &BloomStore<B>,
    generator: &UrlGenerator,
    count: usize,
    max_attempts: u64,
) -> Option<ForgeryOutcome> {
    let view = AdversarialStoreView::new(store)?;
    Some(craft_false_positives(&view, generator, count, max_attempts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhardened_store() -> BloomStore {
        BloomStore::builder()
            .shards(4)
            .capacity(2_000)
            .target_fpp(0.02)
            .unhardened()
            .seed(9)
            .build()
    }

    #[test]
    fn hardened_store_yields_no_view() {
        let store =
            BloomStore::builder().shards(4).capacity(2_000).target_fpp(0.02).seed(9).build();
        assert!(AdversarialStoreView::new(&store).is_none());
        assert!(craft_store_pollution(&store, &UrlGenerator::new("x"), 5, 1_000).is_none());
    }

    #[test]
    fn view_indexes_match_store_routing_and_state() {
        let store = unhardened_store();
        for i in 0..50 {
            store.insert(format!("item-{i}").as_bytes());
        }
        let view = AdversarialStoreView::new(&store).expect("unhardened");
        assert_eq!(view.m(), 4 * store.shard_params().m);
        // Inserted items are fully set in the flattened view.
        for i in 0..50 {
            let item = format!("item-{i}");
            let indexes = view.indexes_of(item.as_bytes());
            assert_eq!(indexes.len() as u32, view.k());
            let shard = store.route(item.as_bytes()) as u64;
            let window = shard * store.shard_params().m..(shard + 1) * store.shard_params().m;
            assert!(indexes.iter().all(|i| window.contains(i)), "indexes stay in shard window");
            assert!(indexes.iter().all(|&i| view.is_set(i)));
        }
    }

    #[test]
    fn view_weight_sums_shards() {
        let store = unhardened_store();
        for i in 0..100 {
            store.insert(format!("item-{i}").as_bytes());
        }
        let view = AdversarialStoreView::new(&store).expect("unhardened");
        let per_shard: u64 = store.stats().shards.iter().map(|s| s.weight).sum();
        assert_eq!(view.weight(), per_shard);
    }

    #[test]
    fn crafted_pollution_sets_k_fresh_bits_per_item() {
        let store = unhardened_store();
        let generator = UrlGenerator::new("store-pollution");
        let plan = craft_store_pollution(&store, &generator, 100, 10_000_000).expect("unhardened");
        assert_eq!(plan.items.len(), 100);
        let k = store.shard_params().k;
        for item in &plan.items {
            let fresh = store.insert(item.as_bytes());
            assert_eq!(fresh, k, "every crafted item must set exactly k fresh bits");
        }
    }

    #[test]
    fn counting_store_view_drives_offline_pollution_too() {
        let store = BloomStore::builder()
            .shards(4)
            .capacity(2_000)
            .target_fpp(0.02)
            .unhardened()
            .counting(4)
            .build();
        let generator = UrlGenerator::new("counting-pollution");
        let plan = craft_store_pollution(&store, &generator, 50, 10_000_000).expect("unhardened");
        let k = store.shard_params().k;
        for item in &plan.items {
            assert_eq!(store.insert(item.as_bytes()), k);
        }
    }

    #[test]
    fn planned_deletions_evict_a_victim_from_a_counting_store() {
        let store = BloomStore::builder()
            .shards(4)
            .capacity(2_000)
            .target_fpp(0.02)
            .unhardened()
            .seed(11)
            .counting(4)
            .build();
        for i in 0..100 {
            store.insert(format!("legit-{i}").as_bytes());
        }
        let victim = b"http://victim.example/delisted";
        store.insert(victim);
        assert!(store.contains(victim));

        let generator = UrlGenerator::new("store-deletion");
        let plan = plan_store_deletion(&store, victim, &generator, 10_000_000).expect("unhardened");
        assert!(!plan.items.is_empty());

        // Victim cells shared with legitimate members may hold counts above
        // one, so replay the plan until the eviction lands (the paper's
        // "deletion of an item may require other deletions" caveat).
        let mut rounds = 0;
        while store.contains(victim) && rounds < 8 {
            for item in &plan.items {
                let _ = store.remove(item.as_bytes()).expect("counting stores delete");
            }
            rounds += 1;
        }
        assert!(!store.contains(victim), "victim must be evicted after {rounds} rounds");
    }

    #[test]
    fn forged_ghosts_test_positive_without_insertion() {
        let store = unhardened_store();
        for i in 0..400 {
            store.insert(format!("legit-{i}").as_bytes());
        }
        let outcome = forge_store_ghosts(&store, &UrlGenerator::new("ghost"), 20, 50_000_000)
            .expect("unhardened");
        assert_eq!(outcome.items.len(), 20);
        for ghost in &outcome.items {
            assert!(store.contains(ghost.as_bytes()), "{ghost} must be a false positive");
        }
    }

    #[test]
    fn hardened_store_yields_no_ghosts() {
        let store =
            BloomStore::builder().shards(4).capacity(2_000).target_fpp(0.02).seed(5).build();
        assert!(forge_store_ghosts(&store, &UrlGenerator::new("x"), 5, 1_000).is_none());
    }

    #[test]
    fn hardened_store_yields_no_deletion_plan() {
        let store = BloomStore::builder()
            .shards(2)
            .capacity(1_000)
            .target_fpp(0.02)
            .seed(3)
            .counting(4)
            .build();
        assert!(plan_store_deletion(&store, b"victim", &UrlGenerator::new("x"), 1_000).is_none());
    }

    #[test]
    fn scalable_view_targets_the_active_slice_and_tracks_growth() {
        let store = BloomStore::builder()
            .shards(2)
            .capacity(200)
            .target_fpp(0.02)
            .unhardened()
            .scalable(0.9)
            .build();
        let before = AdversarialStoreView::new(&store).expect("unhardened");
        assert_eq!(before.m(), 2 * store.shard_params().m, "fresh store: base slices only");

        // Overfill so every shard grows at least one slice.
        let items: Vec<String> = (0..2_000).map(|i| format!("item-{i}")).collect();
        store.insert_batch(&items);
        let after = AdversarialStoreView::new(&store).expect("unhardened");
        assert!(
            after.m() > before.m(),
            "a rebuilt view reflects the grown active slice ({} vs {})",
            after.m(),
            before.m()
        );
        // The view still answers coherently over the new geometry.
        let probe = b"item-1999";
        assert!(after.indexes_of(probe).iter().all(|&i| i < after.m()));
        assert!(after.indexes_of(probe).iter().all(|&i| after.is_set(i)));
    }
}

//! The adversary's view of an *unhardened* store, wired into the existing
//! attack machinery of `evilbloom-attacks`.
//!
//! An unhardened store is just a bigger predictable Bloom filter: routing
//! and index derivation are public, so the chosen-insertion adversary
//! computes everything offline. [`AdversarialStoreView`] flattens the `N`
//! shards into one virtual `N * m`-bit filter (an item's `k` indexes all
//! fall inside its shard's window) and implements
//! [`evilbloom_attacks::TargetFilter`], which makes
//! [`evilbloom_attacks::pollution::craft_polluting_items`] — and every other
//! offline search — work against the store unchanged.
//!
//! A hardened store refuses to produce a view at all: without the routing
//! and filter keys there is nothing the offline searches can compute. That
//! refusal *is* the paper's Section 8.2 defence.

use evilbloom_attacks::pollution::{craft_polluting_items, PollutionPlan};
use evilbloom_attacks::TargetFilter;
use evilbloom_urlgen::UrlGenerator;

use crate::store::BloomStore;

/// Flattened adversarial view of an unhardened [`BloomStore`]: shard `s`
/// occupies virtual bits `[s * m, (s + 1) * m)`.
pub struct AdversarialStoreView<'a> {
    store: &'a BloomStore,
    shard_m: u64,
}

impl<'a> AdversarialStoreView<'a> {
    /// Builds the view, or `None` if the store is hardened (keyed routing
    /// and index derivation leave the adversary nothing to compute).
    pub fn new(store: &'a BloomStore) -> Option<Self> {
        if store.is_hardened() {
            return None;
        }
        Some(AdversarialStoreView { store, shard_m: store.shard_params().m })
    }
}

impl TargetFilter for AdversarialStoreView<'_> {
    fn m(&self) -> u64 {
        self.store.shard_count() as u64 * self.shard_m
    }

    fn k(&self) -> u32 {
        self.store.shard_params().k
    }

    fn indexes_of(&self, item: &[u8]) -> Vec<u64> {
        let shard = self.store.route(item) as u64;
        let offset = shard * self.shard_m;
        let strategy = self.store.public_strategy().expect("view exists only unhardened");
        strategy
            .indexes(item, self.store.shard_params().k, self.shard_m)
            .into_iter()
            .map(|index| offset + index)
            .collect()
    }

    fn is_set(&self, index: u64) -> bool {
        let shard = (index / self.shard_m) as usize;
        let local = index % self.shard_m;
        self.store.shard(shard).with_generations(|active, _| active.filter.is_set(local))
    }

    fn weight(&self) -> u64 {
        (0..self.store.shard_count())
            .map(|s| {
                self.store.shard(s).with_generations(|active, _| active.filter.hamming_weight())
            })
            .sum()
    }
}

/// Crafts `count` polluting items against an unhardened store (each sets
/// `k` fresh bits in whichever shard it routes to). Returns `None` for a
/// hardened store — the offline search cannot even start.
pub fn craft_store_pollution(
    store: &BloomStore,
    generator: &UrlGenerator,
    count: usize,
    max_attempts: u64,
) -> Option<PollutionPlan> {
    let view = AdversarialStoreView::new(store)?;
    Some(craft_polluting_items(&view, generator, count, max_attempts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn unhardened_store() -> BloomStore {
        BloomStore::new(StoreConfig::unhardened(4, 2_000, 0.02), &mut StdRng::seed_from_u64(9))
    }

    #[test]
    fn hardened_store_yields_no_view() {
        let store =
            BloomStore::new(StoreConfig::hardened(4, 2_000, 0.02), &mut StdRng::seed_from_u64(9));
        assert!(AdversarialStoreView::new(&store).is_none());
        assert!(craft_store_pollution(&store, &UrlGenerator::new("x"), 5, 1_000).is_none());
    }

    #[test]
    fn view_indexes_match_store_routing_and_state() {
        let store = unhardened_store();
        for i in 0..50 {
            store.insert(format!("item-{i}").as_bytes());
        }
        let view = AdversarialStoreView::new(&store).expect("unhardened");
        assert_eq!(view.m(), 4 * store.shard_params().m);
        // Inserted items are fully set in the flattened view.
        for i in 0..50 {
            let item = format!("item-{i}");
            let indexes = view.indexes_of(item.as_bytes());
            assert_eq!(indexes.len() as u32, view.k());
            let shard = store.route(item.as_bytes()) as u64;
            let window = shard * store.shard_params().m..(shard + 1) * store.shard_params().m;
            assert!(indexes.iter().all(|i| window.contains(i)), "indexes stay in shard window");
            assert!(indexes.iter().all(|&i| view.is_set(i)));
        }
    }

    #[test]
    fn view_weight_sums_shards() {
        let store = unhardened_store();
        for i in 0..100 {
            store.insert(format!("item-{i}").as_bytes());
        }
        let view = AdversarialStoreView::new(&store).expect("unhardened");
        let per_shard: u64 = store.stats().shards.iter().map(|s| s.weight).sum();
        assert_eq!(view.weight(), per_shard);
    }

    #[test]
    fn crafted_pollution_sets_k_fresh_bits_per_item() {
        let store = unhardened_store();
        let generator = UrlGenerator::new("store-pollution");
        let plan = craft_store_pollution(&store, &generator, 100, 10_000_000).expect("unhardened");
        assert_eq!(plan.items.len(), 100);
        let k = store.shard_params().k;
        for item in &plan.items {
            let fresh = store.insert(item.as_bytes());
            assert_eq!(fresh, k, "every crafted item must set exactly k fresh bits");
        }
    }
}

//! Runtime telemetry for the store and its persistence layer.
//!
//! [`StoreMetrics`] owns one [`Registry`] holding every store- and
//! persist-layer metric. Hot paths ([`crate::BloomStore::insert`],
//! [`crate::BloomStore::query_batch`], the WAL group-commit leader) bump
//! shared lock-free handles; gauges derived from a full stats pass (per-shard
//! fill, active alarms, the bits-per-insert drift series) are refreshed by
//! [`crate::BloomStore::sample_metrics`], which the server's `METRICS`
//! opcode calls before rendering.
//!
//! ## The drift time series
//!
//! The paper's chosen-insertion adversary (Section 5) crafts items whose
//! every index lands on a currently-zero bit, so each adversarial insert
//! sets ≈ `k` fresh bits, while an honest insert sets ≈ `k · (1 − fill)` —
//! a gap that *widens* as the filter fills. The
//! `evilbloom_store_bits_per_insert_recent` gauge tracks the ratio
//! Δ`fresh_bits` / Δ`inserts` over a sliding window of recent scrapes:
//! under honest load it decays with fill; under pollution it pins near `k`.
//! That anomalous slope is the wire-visible fingerprint of the attack —
//! continuously sampled, unlike the point-in-time `STATS` alarm.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use evilbloom_filters::BackendKind;
use evilbloom_metrics::{Counter, Gauge, Histogram, Registry};
use evilbloom_trace::{FlightRecorder, TraceEvent};

use crate::stats::StoreStats;

/// How many `(inserts, fresh_bits)` scrape samples the drift window keeps.
/// At one scrape per poll interval this covers the recent past without ever
/// letting the series' memory grow with uptime.
const DRIFT_WINDOW: usize = 32;

/// All store- and persist-layer metrics, registered in one [`Registry`].
///
/// Created at store construction (and therefore present on every
/// store, persistent or not — a scraper can rely on the persist-layer
/// metric names existing at zero before persistence is attached). Shared
/// with the persistence layer via `Arc`.
pub struct StoreMetrics {
    registry: Registry,
    /// Items inserted (scalar and batch paths).
    pub(crate) inserts: Arc<Counter>,
    /// Bits flipped 0 → 1 by inserts — the numerator of the drift series.
    pub(crate) fresh_bits: Arc<Counter>,
    /// Membership queries answered (scalar and batch paths).
    pub(crate) queries: Arc<Counter>,
    /// Items removed (scalar and batch paths); only deletable backends bump
    /// this, so it stays zero on plain/scalable stores.
    pub(crate) deletes: Arc<Counter>,
    /// Rotations started / completed.
    pub(crate) rotations_begun: Arc<Counter>,
    /// See [`StoreMetrics::rotations_begun`].
    pub(crate) rotations_completed: Arc<Counter>,
    /// Per-shard pollution-alarm edges (off→on and on→off both count).
    alarm_transitions: Arc<Counter>,
    /// Shards currently alarming.
    alarms_active: Arc<Gauge>,
    /// Δ`fresh_bits` / Δ`inserts` over the drift window.
    bits_per_insert_recent: Arc<Gauge>,
    /// One fill gauge per shard, labelled `shard="<index>"`.
    shard_fill: Vec<Arc<Gauge>>,
    /// Last sampled alarm state per shard, for edge detection.
    last_alarm: Vec<AtomicBool>,
    /// Recent `(inserts, fresh_bits)` scrape samples.
    drift: Mutex<VecDeque<(u64, u64)>>,
    /// Flight recorder for storage-side forensic events (alarm edges, WAL
    /// fsync stalls, snapshots). Attached once by whoever owns a recorder —
    /// in practice the server at spawn; unattached stores record nothing.
    recorder: OnceLock<Arc<FlightRecorder>>,

    // Persist layer. Registered here so the names exist (at zero) even on
    // stores that never attach persistence.
    /// 1 when the WAL has broken (appends disabled), else 0.
    pub(crate) wal_broken: Arc<Gauge>,
    /// 1 while the store is in degraded read-only mode (WAL broken, writes
    /// refused); cleared by the snapshot that repairs the log.
    pub(crate) degraded: Arc<Gauge>,
    /// Commit wait per logged insert: append to durable-under-policy.
    pub(crate) wal_append_ns: Arc<Histogram>,
    /// `fsync` latency paid by group-commit flush leaders.
    pub(crate) wal_fsync_ns: Arc<Histogram>,
    /// Records covered per leader flush — the group-commit batching win.
    pub(crate) group_commit_batch: Arc<Histogram>,
    /// Wall time of each completed snapshot.
    pub(crate) snapshot_ns: Arc<Histogram>,
    /// Bytes written by completed snapshots.
    pub(crate) snapshot_bytes: Arc<Counter>,
}

impl StoreMetrics {
    /// Registers every store- and persist-layer metric for a store with
    /// `shards` shards serving the `backend` filter family.
    pub(crate) fn new(shards: usize, backend: BackendKind) -> StoreMetrics {
        let r = Registry::new();
        // Prometheus-style info metric: constant 1, the interesting part is
        // the label. Scrapers join on it to slice dashboards by family.
        r.gauge_with(
            "evilbloom_store_backend_info",
            "Filter family this store serves (constant 1; see the backend label)",
            &[("backend", backend.name())],
        )
        .set(1.0);
        let shard_fill = (0..shards)
            .map(|index| {
                r.gauge_with(
                    "evilbloom_store_shard_fill",
                    "Fraction of the shard's active-generation bits set",
                    &[("shard", &index.to_string())],
                )
            })
            .collect();
        StoreMetrics {
            inserts: r.counter("evilbloom_store_inserts_total", "Items inserted into the store"),
            fresh_bits: r.counter(
                "evilbloom_store_fresh_bits_total",
                "Bits flipped 0 to 1 by inserts (drift-series numerator)",
            ),
            queries: r.counter("evilbloom_store_queries_total", "Membership queries answered"),
            deletes: r.counter(
                "evilbloom_store_deletes_total",
                "Items removed from the store (deletable backends only)",
            ),
            rotations_begun: r
                .counter("evilbloom_store_rotations_begun_total", "Shard rotations started"),
            rotations_completed: r
                .counter("evilbloom_store_rotations_completed_total", "Shard rotations completed"),
            alarm_transitions: r.counter(
                "evilbloom_store_alarm_transitions_total",
                "Pollution-alarm state changes observed across scrapes (either edge)",
            ),
            alarms_active: r
                .gauge("evilbloom_store_alarms_active", "Shards whose pollution alarm is raised"),
            bits_per_insert_recent: r.gauge(
                "evilbloom_store_bits_per_insert_recent",
                "Fresh bits per insert over the recent scrape window; pins near k under \
                 chosen-insertion pollution",
            ),
            wal_broken: r.gauge(
                "evilbloom_persist_wal_broken",
                "1 once a WAL write has failed and appends are disabled",
            ),
            degraded: r.gauge(
                "evilbloom_store_degraded",
                "1 while the store is in degraded read-only mode (writes refused until a \
                 snapshot repairs the WAL)",
            ),
            wal_append_ns: r.histogram(
                "evilbloom_persist_wal_append_ns",
                "Per-commit wait until the appended records are durable under the sync policy",
            ),
            wal_fsync_ns: r.histogram(
                "evilbloom_persist_wal_fsync_ns",
                "fsync latency paid by group-commit flush leaders",
            ),
            group_commit_batch: r.histogram(
                "evilbloom_persist_group_commit_batch",
                "Log records covered by one leader flush (group-commit batch size)",
            ),
            snapshot_ns: r
                .histogram("evilbloom_persist_snapshot_ns", "Wall time of completed snapshots"),
            snapshot_bytes: r.counter(
                "evilbloom_persist_snapshot_bytes_total",
                "Bytes written by completed snapshots",
            ),
            shard_fill,
            last_alarm: (0..shards).map(|_| AtomicBool::new(false)).collect(),
            drift: Mutex::new(VecDeque::with_capacity(DRIFT_WINDOW)),
            recorder: OnceLock::new(),
            registry: r,
        }
    }

    /// Attaches a flight recorder; storage-side events (alarm edges, WAL
    /// fsync stalls, snapshots) are recorded into it from now on. Only the
    /// first attach wins — later calls are ignored, so a store shared by
    /// several servers keeps one coherent event stream.
    pub fn attach_recorder(&self, recorder: Arc<FlightRecorder>) {
        let _ = self.recorder.set(recorder);
    }

    /// Records a forensic event if a recorder is attached; free otherwise.
    pub(crate) fn record_event(&self, event: TraceEvent) {
        if let Some(recorder) = self.recorder.get() {
            recorder.record(event);
        }
    }

    /// The recent `(inserts, fresh_bits)` scrape samples, oldest first —
    /// the drift timeline a `TRACE` exposition replays.
    pub fn drift_series(&self) -> Vec<(u64, u64)> {
        self.drift.lock().expect("drift window mutex poisoned").iter().copied().collect()
    }

    /// The registry holding every store- and persist-layer metric (merge it
    /// with other layers' registries via
    /// [`Registry::render_merged`]).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Fresh bits per insert over the recent scrape window (the drift
    /// gauge's current value).
    pub fn bits_per_insert_recent(&self) -> f64 {
        self.bits_per_insert_recent.get()
    }

    /// Refreshes the sampled gauges and the drift series from a stats pass.
    pub(crate) fn sample(&self, stats: &StoreStats) {
        for shard in &stats.shards {
            if let Some(gauge) = self.shard_fill.get(shard.shard) {
                gauge.set(shard.fill);
            }
            if let Some(last) = self.last_alarm.get(shard.shard) {
                if last.swap(shard.pollution_alarm, Ordering::Relaxed) != shard.pollution_alarm {
                    self.alarm_transitions.inc();
                    if shard.pollution_alarm {
                        self.record_event(TraceEvent::AlarmTripped { shard: shard.shard as u64 });
                    }
                }
            }
        }
        self.alarms_active.set(stats.alarms as f64);

        let sample = (self.inserts.get(), self.fresh_bits.get());
        let mut drift = self.drift.lock().expect("drift window mutex poisoned");
        if drift.len() == DRIFT_WINDOW {
            drift.pop_front();
        }
        drift.push_back(sample);
        let (first_inserts, first_bits) = *drift.front().expect("just pushed");
        let (last_inserts, last_bits) = *drift.back().expect("just pushed");
        if last_inserts > first_inserts {
            let slope = (last_bits - first_bits) as f64 / (last_inserts - first_inserts) as f64;
            self.bits_per_insert_recent.set(slope);
        }
    }
}

impl core::fmt::Debug for StoreMetrics {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StoreMetrics")
            .field("inserts", &self.inserts.get())
            .field("fresh_bits", &self.fresh_bits.get())
            .field("queries", &self.queries.get())
            .finish()
    }
}

//! [`ServeStore`]: the object-safe facade a wire server holds.
//!
//! [`crate::BloomStore`] is generic over its [`FilterBackend`] — the right
//! shape for callers that know their filter family at compile time, and the
//! wrong shape for a TCP server that picks the family from a CLI flag at
//! runtime. `ServeStore` erases the type parameter: every serving operation
//! the wire protocol needs, expressed with object-safe signatures, so the
//! server stores an `Arc<dyn ServeStore>` and serves plain, counting and
//! scalable stores through one code path.
//!
//! Deletion is part of the trait (the wire has a `DELETE` opcode) but not
//! every family honours it: non-deletable backends answer with the same
//! typed [`UnsupportedOp`] the generic store raises, which the server maps
//! to its `Unsupported` response rather than a connection error.
//!
//! ## Degraded read-only mode
//!
//! Writes through this trait are **durability-checked**: when the store's
//! WAL has broken ([`BloomStore::degraded`]) they are refused with
//! [`WriteRefusal::Degraded`] *before* touching the shards, and a write
//! whose own commit broke the WAL is refused *after* applying — the item
//! may be in memory, but the caller must not acknowledge it as durable
//! (at-least-once, never silent loss). Queries are unaffected. Degraded
//! mode exits on the next successful [`ServeStore::snapshot_to_disk`].

use rand::RngCore;

use evilbloom_filters::{BackendKind, FilterBackend};

use crate::metrics::StoreMetrics;
use crate::persist::{PersistError, SnapshotInfo};
use crate::stats::StoreStats;
use crate::store::{BatchOutcome, BloomStore, UnsupportedOp};

/// A typed write refusal from the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteRefusal {
    /// The store is in degraded read-only mode (its WAL broke); carries the
    /// original write error. Queries still serve; a successful snapshot
    /// repairs the log and lifts the refusal.
    Degraded(String),
    /// The filter family cannot perform the operation (e.g. deletion on a
    /// plain Bloom backend).
    Unsupported(UnsupportedOp),
}

impl core::fmt::Display for WriteRefusal {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WriteRefusal::Degraded(e) => {
                write!(f, "store is in degraded read-only mode: {e}")
            }
            WriteRefusal::Unsupported(op) => op.fmt(f),
        }
    }
}

impl std::error::Error for WriteRefusal {}

impl From<UnsupportedOp> for WriteRefusal {
    fn from(op: UnsupportedOp) -> Self {
        WriteRefusal::Unsupported(op)
    }
}

/// Every operation a wire server performs on a store, object-safe so the
/// backend family can be chosen at runtime.
///
/// Implemented by [`BloomStore`] for every backend; the trait methods
/// delegate to the inherent ones, so behaviour (WAL logging, metrics,
/// rotation semantics) is identical through either interface.
pub trait ServeStore: Send + Sync {
    /// Inserts one item; returns the number of fresh cells it set.
    ///
    /// # Errors
    ///
    /// [`WriteRefusal::Degraded`] while the store is in degraded read-only
    /// mode, or if this very write broke the WAL (applied in memory but not
    /// durably logged — do not acknowledge it).
    fn insert(&self, item: &[u8]) -> Result<u32, WriteRefusal>;

    /// Membership query.
    fn contains(&self, item: &[u8]) -> bool;

    /// Batch insert; each shard is visited once.
    ///
    /// # Errors
    ///
    /// [`WriteRefusal::Degraded`]; see [`ServeStore::insert`].
    fn insert_batch(&self, items: &[&[u8]]) -> Result<BatchOutcome, WriteRefusal>;

    /// Batch membership query; answers in input order.
    fn query_batch(&self, items: &[&[u8]]) -> Vec<bool>;

    /// Removes one item (deletable backends); `Ok(was_present)`.
    ///
    /// # Errors
    ///
    /// [`WriteRefusal::Unsupported`] on families without deletion,
    /// [`WriteRefusal::Degraded`] while degraded.
    fn remove(&self, item: &[u8]) -> Result<bool, WriteRefusal>;

    /// Batch removal; answers in input order.
    ///
    /// # Errors
    ///
    /// [`WriteRefusal::Unsupported`] on families without deletion,
    /// [`WriteRefusal::Degraded`] while degraded.
    fn remove_batch(&self, items: &[&[u8]]) -> Result<Vec<bool>, WriteRefusal>;

    /// Why the store is in degraded read-only mode, if it is (the original
    /// WAL write error).
    fn degraded(&self) -> Option<String>;

    /// Health snapshot (per-shard fill, fpp estimates, pollution alarms).
    fn stats(&self) -> StoreStats;

    /// Stats pass that also refreshes the sampled gauges and the drift
    /// series (what a metrics scrape calls).
    fn sample_metrics(&self) -> StoreStats;

    /// The store's telemetry registry handle.
    fn metrics(&self) -> &StoreMetrics;

    /// Whether routing and index derivation are secret-keyed.
    fn is_hardened(&self) -> bool;

    /// The filter family being served.
    fn backend_kind(&self) -> BackendKind;

    /// Number of shards.
    fn shard_count(&self) -> usize;

    /// Active generation id of a shard.
    fn generation_id(&self, shard: usize) -> u64;

    /// Starts a rotation on `shard`, drawing any fresh key material from
    /// `rng`. Returns the new generation id, or `None` if a rotation is
    /// already draining there.
    fn begin_rotation_dyn(&self, shard: usize, rng: &mut dyn RngCore) -> Option<u64>;

    /// Completes a draining rotation on `shard`.
    fn complete_rotation(&self, shard: usize) -> bool;

    /// Writes a snapshot, if persistence is attached.
    ///
    /// # Errors
    ///
    /// [`PersistError::NotPersistent`] without persistence, or any snapshot
    /// failure.
    fn snapshot_to_disk(&self) -> Result<SnapshotInfo, PersistError>;
}

/// The degraded-mode write guard: checked before a write is applied (the
/// common refusal) and again after it committed (this very write may have
/// broken the WAL — applied in memory, but never acknowledge it as
/// durable).
fn write_guard<B: FilterBackend>(store: &BloomStore<B>) -> Result<(), WriteRefusal> {
    match store.degraded() {
        Some(reason) => Err(WriteRefusal::Degraded(reason)),
        None => Ok(()),
    }
}

impl<B: FilterBackend> ServeStore for BloomStore<B> {
    fn insert(&self, item: &[u8]) -> Result<u32, WriteRefusal> {
        write_guard(self)?;
        let fresh = BloomStore::insert(self, item);
        write_guard(self)?;
        Ok(fresh)
    }

    fn contains(&self, item: &[u8]) -> bool {
        BloomStore::contains(self, item)
    }

    fn insert_batch(&self, items: &[&[u8]]) -> Result<BatchOutcome, WriteRefusal> {
        write_guard(self)?;
        let outcome = BloomStore::insert_batch(self, items);
        write_guard(self)?;
        Ok(outcome)
    }

    fn query_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        BloomStore::query_batch(self, items)
    }

    fn remove(&self, item: &[u8]) -> Result<bool, WriteRefusal> {
        write_guard(self)?;
        let was_present = BloomStore::remove(self, item)?;
        write_guard(self)?;
        Ok(was_present)
    }

    fn remove_batch(&self, items: &[&[u8]]) -> Result<Vec<bool>, WriteRefusal> {
        write_guard(self)?;
        let answers = BloomStore::remove_batch(self, items)?;
        write_guard(self)?;
        Ok(answers)
    }

    fn degraded(&self) -> Option<String> {
        BloomStore::degraded(self)
    }

    fn stats(&self) -> StoreStats {
        BloomStore::stats(self)
    }

    fn sample_metrics(&self) -> StoreStats {
        BloomStore::sample_metrics(self)
    }

    fn metrics(&self) -> &StoreMetrics {
        BloomStore::metrics(self)
    }

    fn is_hardened(&self) -> bool {
        BloomStore::is_hardened(self)
    }

    fn backend_kind(&self) -> BackendKind {
        BloomStore::backend_kind(self)
    }

    fn shard_count(&self) -> usize {
        BloomStore::shard_count(self)
    }

    fn generation_id(&self, shard: usize) -> u64 {
        BloomStore::generation_id(self, shard)
    }

    fn begin_rotation_dyn(&self, shard: usize, rng: &mut dyn RngCore) -> Option<u64> {
        // Reborrow: `&mut dyn RngCore` itself implements `RngCore` via the
        // blanket impl, satisfying the inherent method's `R: RngCore`.
        let mut rng = rng;
        BloomStore::begin_rotation(self, shard, &mut rng)
    }

    fn complete_rotation(&self, shard: usize) -> bool {
        BloomStore::complete_rotation(self, shard)
    }

    fn snapshot_to_disk(&self) -> Result<SnapshotInfo, PersistError> {
        BloomStore::snapshot_to_disk(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// Builds each backend family behind the same trait object, the way the
    /// server will.
    fn all_backends() -> Vec<(&'static str, Arc<dyn ServeStore>)> {
        vec![
            ("bloom", Arc::new(BloomStore::builder().shards(4).capacity(4_000).seed(1).build())),
            (
                "counting",
                Arc::new(BloomStore::builder().shards(4).capacity(4_000).counting(4).build()),
            ),
            (
                "scalable",
                Arc::new(BloomStore::builder().shards(4).capacity(4_000).scalable(0.9).build()),
            ),
        ]
    }

    #[test]
    fn every_family_serves_through_the_trait_object() {
        for (name, store) in all_backends() {
            assert!(store.degraded().is_none(), "{name}");
            let fresh = store.insert(b"one").expect("healthy store accepts writes");
            assert_eq!(fresh, store.stats().shards[0].k.max(1), "{name}");
            assert!(store.contains(b"one"), "{name}");
            let outcome =
                store.insert_batch(&[b"two".as_slice(), b"three"]).expect("healthy store");
            assert_eq!(outcome.items, 2, "{name}");
            assert_eq!(
                store.query_batch(&[b"one".as_slice(), b"two", b"absent-xyz"])[..2],
                [true, true],
                "{name}"
            );
            assert_eq!(store.shard_count(), 4, "{name}");
        }
    }

    #[test]
    fn remove_capability_matches_the_family() {
        for (name, store) in all_backends() {
            let result = store.remove(b"one");
            match store.backend_kind() {
                BackendKind::Counting => assert!(result.is_ok(), "{name}"),
                kind => match result.unwrap_err() {
                    WriteRefusal::Unsupported(err) => assert_eq!(err.backend, kind, "{name}"),
                    refusal => panic!("{name}: expected Unsupported, got {refusal:?}"),
                },
            }
        }
    }

    #[test]
    fn rotation_through_the_trait_object() {
        for (name, store) in all_backends() {
            store.insert(b"old").expect("healthy store");
            let mut rng = StdRng::seed_from_u64(5);
            for shard in 0..store.shard_count() {
                assert_eq!(store.begin_rotation_dyn(shard, &mut rng), Some(1), "{name}");
            }
            assert!(store.contains(b"old"), "{name}: draining generation answers");
            for shard in 0..store.shard_count() {
                assert!(store.complete_rotation(shard), "{name}");
                assert_eq!(store.generation_id(shard), 1, "{name}");
            }
            assert!(!store.contains(b"old"), "{name}: rotation dropped the old bits");
        }
    }

    #[test]
    fn snapshot_without_persistence_is_a_typed_error() {
        for (name, store) in all_backends() {
            assert!(matches!(store.snapshot_to_disk(), Err(PersistError::NotPersistent)), "{name}");
        }
    }
}

//! The sharded concurrent Bloom-filter store.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use evilbloom_filters::{
    hardened_concurrent_filter, hardened_params, ConcurrentBloomFilter, FilterKey, FilterParams,
    HardeningLevel,
};
use evilbloom_hashes::{
    Hasher64, IndexStrategy, KeyedHash64, KirschMitzenmacher, Murmur3_128, SipHash24, SipKey,
};

use crate::metrics::StoreMetrics;
use crate::persist::{
    self, PersistConfig, PersistError, RecoveryReport, SnapshotInfo, StorePersistence, WalRecord,
};
use crate::shard::{Generation, Shard};
use crate::stats::{pollution_alarm, ShardStats, StoreStats};

/// Domain-separation tweak for the shard-routing PRF, far outside the
/// `0..k` tweak range the per-shard index derivation uses.
const ROUTING_TWEAK: u64 = 0x5AAD_2017_0DD5_EED5;

/// Whether (and how) the store's shards are hardened against the paper's
/// adversaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreHardening {
    /// Predictable everything: unkeyed Murmur-based shard routing and
    /// Kirsch–Mitzenmacher index derivation, average-case parameters — the
    /// deployment style of the attacked systems (Scrapy, Dablooms, Squid).
    Unhardened,
    /// Keyed shard routing (SipHash under a secret routing key, so an
    /// adversary cannot target one shard) plus per-shard hardening at the
    /// given [`HardeningLevel`].
    Hardened(HardeningLevel),
}

/// Configuration of a [`BloomStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Number of shards; must be a power of two so routing is a mask.
    pub shards: usize,
    /// Total item capacity, split evenly across shards.
    pub capacity: u64,
    /// Target false-positive probability per shard.
    pub target_fpp: f64,
    /// Hardening posture.
    pub hardening: StoreHardening,
}

impl StoreConfig {
    /// A hardened store (keyed SipHash shards and routing) — the posture the
    /// paper recommends for anything serving untrusted traffic.
    pub fn hardened(shards: usize, capacity: u64, target_fpp: f64) -> Self {
        StoreConfig {
            shards,
            capacity,
            target_fpp,
            hardening: StoreHardening::Hardened(HardeningLevel::KeyedSipHash),
        }
    }

    /// An unhardened store mirroring the attacked deployments (useful as the
    /// baseline in the adversarial load harness).
    pub fn unhardened(shards: usize, capacity: u64, target_fpp: f64) -> Self {
        StoreConfig { shards, capacity, target_fpp, hardening: StoreHardening::Unhardened }
    }
}

/// Outcome of a batch insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchOutcome {
    /// Items inserted.
    pub items: usize,
    /// Bits flipped 0 → 1 across all shards by this batch.
    pub fresh_bits: u64,
}

enum Router {
    /// Secret-keyed routing: the adversary cannot predict (or choose) which
    /// shard an item lands on.
    Keyed(SipHash24),
    /// Public routing, computable offline by anyone with the source code.
    Public(Murmur3_128),
}

impl Router {
    fn route(&self, item: &[u8], mask: u64) -> usize {
        let hash = match self {
            Router::Keyed(prf) => prf.mac_with_tweak(item, ROUTING_TWEAK),
            Router::Public(hasher) => hasher.hash_with_seed(item, ROUTING_TWEAK),
        };
        (hash & mask) as usize
    }
}

/// A sharded, lock-free concurrent Bloom-filter store.
///
/// Items are routed to one of `N` power-of-two shards by a routing hash
/// (secret-keyed unless the store is [`StoreHardening::Unhardened`]); each
/// shard is a [`ConcurrentBloomFilter`] built by the Section 8 hardened
/// constructors and wrapped in a generation pair so its key can be rotated
/// without downtime (see [`crate::shard::Shard`]).
///
/// All serving operations take `&self`: share the store across worker
/// threads by reference (`std::thread::scope`) or in an [`Arc`].
pub struct BloomStore {
    shards: Vec<Shard>,
    router: Router,
    config: StoreConfig,
    shard_capacity: u64,
    shard_params: FilterParams,
    /// The shared predictable strategy of an unhardened store (what the
    /// adversarial view uses to compute indexes offline); `None` when keyed.
    public_strategy: Option<Arc<dyn IndexStrategy>>,
    /// Attached durability (snapshots + WAL); `None` unless
    /// [`BloomStore::enable_persistence`] or [`BloomStore::recover`] set it.
    persistence: Option<StorePersistence>,
    /// Runtime telemetry, always present (shared with the persistence layer
    /// so WAL and snapshot probes record into the same registry).
    metrics: Arc<StoreMetrics>,
}

impl BloomStore {
    /// Builds a store, drawing all secret key material (per-shard filter
    /// keys and the shard-routing key) from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or not a power of two, or if the per-shard
    /// capacity would be zero.
    pub fn new<R: RngCore>(config: StoreConfig, rng: &mut R) -> Self {
        assert!(
            config.shards > 0 && config.shards.is_power_of_two(),
            "shard count must be a power of two"
        );
        let shard_capacity = config.capacity.div_ceil(config.shards as u64);
        assert!(shard_capacity > 0, "per-shard capacity must be positive");
        let shard_params = match config.hardening {
            StoreHardening::Hardened(level) => {
                hardened_params(shard_capacity, config.target_fpp, level)
            }
            StoreHardening::Unhardened => FilterParams::optimal(shard_capacity, config.target_fpp),
        };

        let public_strategy: Option<Arc<dyn IndexStrategy>> = match config.hardening {
            StoreHardening::Unhardened => Some(Arc::new(KirschMitzenmacher::new(Murmur3_128))),
            StoreHardening::Hardened(_) => None,
        };
        let router = match config.hardening {
            StoreHardening::Unhardened => Router::Public(Murmur3_128),
            StoreHardening::Hardened(_) => {
                Router::Keyed(SipHash24::new(SipKey::new(rng.next_u64(), rng.next_u64())))
            }
        };

        let mut store = BloomStore {
            shards: Vec::with_capacity(config.shards),
            router,
            config,
            shard_capacity,
            shard_params,
            public_strategy,
            persistence: None,
            metrics: Arc::new(StoreMetrics::new(config.shards)),
        };
        for _ in 0..config.shards {
            let filter = store.build_shard_filter(&FilterKey::generate(rng));
            store.shards.push(Shard::new(filter));
        }
        store
    }

    /// Builds a fresh (empty) per-shard filter for construction or rotation.
    fn build_shard_filter(&self, key: &FilterKey) -> ConcurrentBloomFilter {
        match self.config.hardening {
            StoreHardening::Hardened(level) => {
                hardened_concurrent_filter(self.shard_capacity, self.config.target_fpp, level, key)
            }
            StoreHardening::Unhardened => ConcurrentBloomFilter::with_shared_strategy(
                self.shard_params,
                Arc::clone(self.public_strategy.as_ref().expect("unhardened strategy")),
            ),
        }
    }

    /// The store's configuration.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The sizing parameters every shard uses.
    pub fn shard_params(&self) -> FilterParams {
        self.shard_params
    }

    /// Whether the store is hardened (keyed routing and indexes).
    pub fn is_hardened(&self) -> bool {
        matches!(self.config.hardening, StoreHardening::Hardened(_))
    }

    /// Shard an item routes to.
    pub fn route(&self, item: &[u8]) -> usize {
        self.router.route(item, self.shards.len() as u64 - 1)
    }

    pub(crate) fn shard(&self, index: usize) -> &Shard {
        &self.shards[index]
    }

    /// The shared predictable index strategy of an unhardened store (`None`
    /// when hardened — that is the defence).
    pub(crate) fn public_strategy(&self) -> Option<&Arc<dyn IndexStrategy>> {
        self.public_strategy.as_ref()
    }

    /// Inserts one item; returns the number of fresh bits it set.
    ///
    /// With persistence attached the insert is appended to the write-ahead
    /// log *after* it is applied, while the shard read lock is still held
    /// (log order matches generation order); the durability wait then
    /// happens outside the lock via group commit. A broken WAL never fails
    /// an insert — appends become no-ops and the error surfaces on the next
    /// snapshot ([`PersistError::WalBroken`]).
    pub fn insert(&self, item: &[u8]) -> u32 {
        let shard = self.route(item);
        let (fresh, lsn) = self.shards[shard].with_generations(|active, _| {
            let fresh = active.filter.insert(item);
            let lsn = self.persistence.as_ref().and_then(|p| p.log_insert(shard, active.id, item));
            (fresh, lsn)
        });
        if let (Some(p), Some(lsn)) = (self.persistence.as_ref(), lsn) {
            p.commit(lsn);
        }
        self.metrics.inserts.inc();
        self.metrics.fresh_bits.add(u64::from(fresh));
        fresh
    }

    /// Membership query (positives may be false positives; during a shard
    /// rotation the draining generation still answers).
    pub fn contains(&self, item: &[u8]) -> bool {
        self.metrics.queries.inc();
        self.shards[self.route(item)].contains(item)
    }

    /// Inserts a batch: routes every item first, then visits each shard
    /// exactly once and hands its whole bucket to the filter's
    /// hash-precomputing [`ConcurrentBloomFilter::insert_batch`] — amortising
    /// routing hashes, shard-lock acquisitions *and* per-item index-buffer
    /// allocations over the batch.
    pub fn insert_batch<I: AsRef<[u8]>>(&self, items: &[I]) -> BatchOutcome {
        let mut buckets: Vec<Vec<&[u8]>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for item in items {
            let item = item.as_ref();
            buckets[self.route(item)].push(item);
        }
        let mut fresh_bits = 0u64;
        let mut last_lsn = None;
        for (index, (shard, bucket)) in self.shards.iter().zip(&buckets).enumerate() {
            if bucket.is_empty() {
                continue;
            }
            shard.with_generations(|active, _| {
                fresh_bits += active.filter.insert_batch(bucket);
                if let Some(p) = &self.persistence {
                    // One WAL record per shard bucket; LSNs are monotonic,
                    // so committing the last covers the whole batch.
                    if let Some(lsn) = p.log_insert_bucket(index, active.id, bucket) {
                        last_lsn = Some(lsn);
                    }
                }
            });
        }
        if let (Some(p), Some(lsn)) = (self.persistence.as_ref(), last_lsn) {
            p.commit(lsn);
        }
        self.metrics.inserts.add(items.len() as u64);
        self.metrics.fresh_bits.add(fresh_bits);
        BatchOutcome { items: items.len(), fresh_bits }
    }

    /// Batch membership query; answers are in input order. Like
    /// [`BloomStore::insert_batch`], each shard lock is taken once and the
    /// active generation is probed through the filter's batch path; only
    /// active-generation misses fall back to a draining generation (which
    /// may use a different key, so its indexes cannot be shared).
    pub fn query_batch<I: AsRef<[u8]>>(&self, items: &[I]) -> Vec<bool> {
        self.metrics.queries.add(items.len() as u64);
        let shards = self.shards.len();
        let mut positions: Vec<Vec<usize>> = (0..shards).map(|_| Vec::new()).collect();
        let mut buckets: Vec<Vec<&[u8]>> = (0..shards).map(|_| Vec::new()).collect();
        for (position, item) in items.iter().enumerate() {
            let item = item.as_ref();
            let shard = self.route(item);
            positions[shard].push(position);
            buckets[shard].push(item);
        }
        let mut answers = vec![false; items.len()];
        for ((shard, bucket), bucket_positions) in self.shards.iter().zip(&buckets).zip(&positions)
        {
            if bucket.is_empty() {
                continue;
            }
            shard.with_generations(|active, draining| {
                let found = active.filter.query_batch(bucket);
                for ((&position, item), hit) in bucket_positions.iter().zip(bucket).zip(found) {
                    answers[position] = hit || draining.is_some_and(|g| g.filter.contains(item));
                }
            });
        }
        answers
    }

    /// Starts a rotation on one shard: installs a fresh filter while the old
    /// generation keeps answering queries. On a hardened store the fresh
    /// filter is built under a new secret key drawn from `rng` (a true
    /// re-key). On an unhardened store there is no key to rotate — the fresh
    /// generation only clears accumulated (possibly polluted) bits, and an
    /// adversary can re-craft pollution against the unchanged public
    /// derivation at will; the durable defence is hardening, not rotation.
    /// Returns the new generation id, or `None` if a rotation is already
    /// draining on that shard.
    pub fn begin_rotation<R: RngCore>(&self, shard: usize, rng: &mut R) -> Option<u64> {
        let fresh = match self.config.hardening {
            StoreHardening::Hardened(_) => self.build_shard_filter(&FilterKey::generate(rng)),
            // No key material to draw: the public strategy is reused.
            StoreHardening::Unhardened => self.build_shard_filter(&FilterKey::from_bytes([0; 32])),
        };
        let mut lsn = None;
        let id = self.shards[shard].begin_rotation_logged(fresh, |new_id| {
            lsn = self.persistence.as_ref().and_then(|p| p.log_rotation(shard, new_id, true));
        });
        if let (Some(p), Some(lsn)) = (self.persistence.as_ref(), lsn) {
            p.commit(lsn);
        }
        if id.is_some() {
            self.metrics.rotations_begun.inc();
        }
        id
    }

    /// Completes a rotation, dropping the drained generation (call after the
    /// application has replayed its items into the new generation). Returns
    /// `false` if no rotation was in flight.
    pub fn complete_rotation(&self, shard: usize) -> bool {
        let mut lsn = None;
        let completed = self.shards[shard].complete_rotation_logged(|dropped| {
            lsn = self.persistence.as_ref().and_then(|p| p.log_rotation(shard, dropped, false));
        });
        if let (Some(p), Some(lsn)) = (self.persistence.as_ref(), lsn) {
            p.commit(lsn);
        }
        if completed {
            self.metrics.rotations_completed.inc();
        }
        completed
    }

    /// Active generation id of a shard.
    pub fn generation_id(&self, shard: usize) -> u64 {
        self.shards[shard].generation_id()
    }

    /// Attaches durability (snapshots plus an optional write-ahead log) and
    /// writes an initial snapshot so the directory is always recoverable.
    /// If the directory already holds snapshots or WAL segments, sequence
    /// numbers continue after them (nothing is clobbered) — but the current
    /// in-memory store is what gets persisted; use [`BloomStore::recover`]
    /// to *load* a directory.
    ///
    /// # Errors
    ///
    /// [`PersistError::HardenedStore`] — hardened bits are derived under
    /// secret keys that are never written to disk, so a restored hardened
    /// store could not answer queries. [`PersistError::AlreadyPersistent`]
    /// if called twice, or [`PersistError::Io`] on filesystem failure.
    pub fn enable_persistence(
        &mut self,
        config: &PersistConfig,
    ) -> Result<SnapshotInfo, PersistError> {
        if self.is_hardened() {
            return Err(PersistError::HardenedStore);
        }
        if self.persistence.is_some() {
            return Err(PersistError::AlreadyPersistent);
        }
        std::fs::create_dir_all(&config.dir)?;
        let (newest_snapshot, wal_seqs) = persist::scan_dir(&config.dir)?;
        let wal_seq = wal_seqs.last().map_or(1, |s| s + 1);
        let next_snapshot_seq = newest_snapshot.map_or(1, |s| s + 1);
        self.persistence = Some(StorePersistence::create(
            config,
            wal_seq,
            next_snapshot_seq,
            Arc::clone(&self.metrics),
        )?);
        self.snapshot_to_disk()
    }

    /// The attached persistence layer, if any.
    pub fn persistence(&self) -> Option<&StorePersistence> {
        self.persistence.as_ref()
    }

    /// Writes a snapshot of the current store state while serving continues
    /// (shard words are copied racily under the shard read locks; see
    /// [`crate::persist`] for the safety argument) and prunes superseded
    /// snapshot and WAL files.
    ///
    /// # Errors
    ///
    /// [`PersistError::NotPersistent`] without an attached persistence
    /// layer, [`PersistError::WalBroken`] if a previous WAL write failed,
    /// or [`PersistError::Io`] on filesystem failure.
    pub fn snapshot_to_disk(&self) -> Result<SnapshotInfo, PersistError> {
        let persistence = self.persistence.as_ref().ok_or(PersistError::NotPersistent)?;
        persistence.snapshot(self)
    }

    /// Rebuilds a store from a persistence directory: loads the newest
    /// valid snapshot, replays the write-ahead log on top (discarding
    /// records from rotated-out generations), re-attaches persistence with
    /// a fresh WAL segment and writes a post-recovery snapshot so boot cost
    /// stays bounded by the WAL tail.
    ///
    /// The recovered store answers queries bit-for-bit identically to the
    /// crashed one for every acknowledged insert (plus any insert that was
    /// mid-flight, which replay applies idempotently).
    ///
    /// # Errors
    ///
    /// [`PersistError::NoSnapshot`] if the directory holds no valid
    /// snapshot, [`PersistError::Corrupt`] / [`PersistError::BadVersion`]
    /// on a damaged snapshot file (damaged WAL *tails* are tolerated as a
    /// clean cut instead), [`PersistError::ConfigMismatch`] if the snapshot
    /// geometry no longer matches what the parameters derive, or
    /// [`PersistError::Io`].
    pub fn recover(config: &PersistConfig) -> Result<(BloomStore, RecoveryReport), PersistError> {
        let (newest_snapshot, wal_seqs) = persist::scan_dir(&config.dir)?;
        let snapshot_seq = newest_snapshot.ok_or(PersistError::NoSnapshot)?;
        let path = persist::snapshot_path(&config.dir, snapshot_seq);
        let doc = persist::read_snapshot(&path)?;
        if doc.seq != snapshot_seq {
            return Err(PersistError::Corrupt {
                file: path.display().to_string(),
                what: "snapshot seq does not match its file name",
            });
        }

        // Validate geometry before handing it to constructors that assert.
        if doc.shards == 0 || !(doc.shards as usize).is_power_of_two() {
            return Err(PersistError::Corrupt {
                file: path.display().to_string(),
                what: "shard count is not a positive power of two",
            });
        }
        if doc.capacity == 0 || !doc.target_fpp.is_finite() || !(0.0..1.0).contains(&doc.target_fpp)
        {
            return Err(PersistError::Corrupt {
                file: path.display().to_string(),
                what: "capacity or target fpp out of range",
            });
        }
        let store_config =
            StoreConfig::unhardened(doc.shards as usize, doc.capacity, doc.target_fpp);
        // Unhardened stores draw no secret material; the seed is irrelevant.
        let mut store = BloomStore::new(store_config, &mut StdRng::seed_from_u64(0));
        if store.shard_params.m != doc.m || store.shard_params.k != doc.k {
            return Err(PersistError::ConfigMismatch(
                "persisted m/k disagree with what the snapshot's capacity and fpp derive",
            ));
        }

        // Install the persisted generations (ones-counters recounted from
        // the words inside `from_words`; see the persist module docs).
        let strategy = Arc::clone(store.public_strategy.as_ref().expect("unhardened strategy"));
        let mut actives: Vec<Option<Generation>> = (0..doc.shards).map(|_| None).collect();
        let mut drainings: Vec<Option<Generation>> = (0..doc.shards).map(|_| None).collect();
        for (shard, role, id, inserted, words) in doc.generations {
            let filter = ConcurrentBloomFilter::from_words(
                store.shard_params,
                Arc::clone(&strategy),
                words,
                inserted,
            );
            let slot = if role == 0 {
                &mut actives[shard as usize]
            } else {
                &mut drainings[shard as usize]
            };
            if slot.replace(Generation { filter, id }).is_some() {
                return Err(PersistError::Corrupt {
                    file: path.display().to_string(),
                    what: "duplicate generation record for a shard",
                });
            }
        }
        for (index, (active, draining)) in actives.into_iter().zip(drainings).enumerate() {
            let Some(active) = active else {
                return Err(PersistError::Corrupt {
                    file: path.display().to_string(),
                    what: "shard missing its active generation record",
                });
            };
            store.shards[index] = Shard::restore(active, draining);
        }

        let mut report = RecoveryReport { snapshot_seq, ..RecoveryReport::default() };

        // Replay the WAL tail. `wal_seq == 0` marks a snapshot written
        // without a log (nothing to replay).
        if doc.wal_seq > 0 {
            for &seq in wal_seqs.iter().filter(|&&s| s >= doc.wal_seq) {
                store.replay_segment(&config.dir, seq, &mut report)?;
                report.wal_segments += 1;
            }
        }

        // Re-attach with fresh sequence numbers (never append to a segment
        // that may have a torn tail), then fold the replayed tail into a
        // new snapshot — which also prunes everything it supersedes.
        let wal_seq = wal_seqs.last().copied().unwrap_or(doc.wal_seq).max(snapshot_seq) + 1;
        store.persistence = Some(StorePersistence::create(
            config,
            wal_seq,
            snapshot_seq + 1,
            Arc::clone(&store.metrics),
        )?);
        store.snapshot_to_disk()?;
        Ok((store, report))
    }

    /// Replays one WAL segment during recovery (persistence is not attached
    /// yet, so nothing here is re-logged).
    fn replay_segment(
        &self,
        dir: &std::path::Path,
        seq: u64,
        report: &mut RecoveryReport,
    ) -> Result<(), PersistError> {
        let path = persist::wal_path(dir, seq);
        let bytes = std::fs::read(&path)?;
        let body = persist::check_wal_header(&path, &bytes, seq)?;
        let (records, torn) = persist::decode_wal_records(&bytes[body..]);
        report.torn_tail |= torn;
        let mut rng = StdRng::seed_from_u64(0);
        for record in records {
            match record {
                WalRecord::Insert { shard, generation, items } => {
                    let Some(target) = self.shards.get(shard as usize) else {
                        report.anomalies += 1;
                        continue;
                    };
                    // A generation *ahead* of the shard means the log knows
                    // of rotations the snapshot predates the record for —
                    // cannot happen with logs this module wrote (rotations
                    // log under the write lock), but tolerated: roll the
                    // shard forward, then apply.
                    while target.generation_id() < generation {
                        if self.begin_rotation(shard as usize, &mut rng).is_none() {
                            break;
                        }
                        report.anomalies += 1;
                    }
                    target.with_generations(|active, draining| {
                        if generation == active.id {
                            for item in &items {
                                active.filter.insert(item);
                            }
                            report.replayed_inserts += items.len() as u64;
                        } else if draining.is_some_and(|d| d.id == generation) {
                            let draining = draining.expect("checked above");
                            for item in &items {
                                draining.filter.insert(item);
                            }
                            report.replayed_inserts += items.len() as u64;
                        } else if generation < active.id {
                            // Rotated out: replaying would resurrect exactly
                            // the pollution the completed rotation dropped.
                            report.discarded_stale += items.len() as u64;
                        } else {
                            report.anomalies += 1;
                        }
                    });
                }
                WalRecord::RotateBegin { shard, generation } => {
                    let Some(target) = self.shards.get(shard as usize) else {
                        report.anomalies += 1;
                        continue;
                    };
                    if target.generation_id() >= generation {
                        // The snapshot's shard copy happened after this
                        // rotation applied: already reflected, idempotently
                        // skipped.
                    } else if target.generation_id() + 1 == generation
                        && self.begin_rotation(shard as usize, &mut rng).is_some()
                    {
                        report.replayed_rotations += 1;
                    } else {
                        report.anomalies += 1;
                    }
                }
                WalRecord::RotateComplete { shard, generation } => {
                    let Some(target) = self.shards.get(shard as usize) else {
                        report.anomalies += 1;
                        continue;
                    };
                    let draining_id = target.with_generations(|_, draining| draining.map(|g| g.id));
                    match draining_id {
                        // Completed before the snapshot's shard copy:
                        // already reflected.
                        None => {}
                        Some(id) if id == generation => {
                            self.complete_rotation(shard as usize);
                            report.replayed_rotations += 1;
                        }
                        Some(_) => report.anomalies += 1,
                    }
                }
            }
        }
        Ok(())
    }

    /// Memory footprint in bytes of all active shard bit vectors.
    pub fn memory_bytes(&self) -> u64 {
        self.shards.len() as u64 * self.shard_params.memory_bytes()
    }

    /// Health snapshot: per-shard fill, false-positive estimates and
    /// pollution alarms (see [`crate::stats`]).
    pub fn stats(&self) -> StoreStats {
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                shard.with_generations(|active, draining| {
                    let filter = &active.filter;
                    let weight = filter.hamming_weight_approx();
                    let fill = weight as f64 / filter.m() as f64;
                    ShardStats {
                        shard: index,
                        generation: active.id,
                        rotating: draining.is_some(),
                        m: filter.m(),
                        k: filter.k(),
                        inserted: filter.inserted(),
                        weight,
                        fill,
                        estimated_fpp: evilbloom_analysis::false_positive::false_positive_for_fill(
                            fill,
                            filter.k(),
                        ),
                        pollution_alarm: pollution_alarm(
                            filter.m(),
                            filter.k(),
                            filter.inserted(),
                            weight,
                        ),
                    }
                })
            })
            .collect();
        StoreStats::from_shards(shards)
    }

    /// The store's runtime telemetry (see [`crate::metrics`]).
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    /// Runs a full stats pass *and* refreshes the sampled metrics derived
    /// from it (per-shard fill gauges, active-alarm gauge, alarm-transition
    /// edges, and the bits-per-insert drift series). The server's `METRICS`
    /// opcode calls this before rendering, so every scrape advances the
    /// drift window.
    pub fn sample_metrics(&self) -> StoreStats {
        let stats = self.stats();
        self.metrics.sample(&stats);
        stats
    }
}

impl core::fmt::Debug for BloomStore {
    /// Deliberately redacted: no routing-key or filter-key material reaches
    /// logs through this impl.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BloomStore")
            .field("shards", &self.shards.len())
            .field("shard_params", &self.shard_params)
            .field("hardening", &self.config.hardening)
            .field("keys", &"<redacted>")
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hardened_store(shards: usize) -> BloomStore {
        BloomStore::new(StoreConfig::hardened(shards, 4_000, 0.01), &mut StdRng::seed_from_u64(42))
    }

    #[test]
    fn insert_query_roundtrip() {
        let store = hardened_store(8);
        for i in 0..1000 {
            store.insert(format!("item-{i}").as_bytes());
        }
        for i in 0..1000 {
            assert!(store.contains(format!("item-{i}").as_bytes()));
        }
        assert_eq!(store.stats().total_inserted, 1000);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_rejected() {
        BloomStore::new(StoreConfig::hardened(3, 100, 0.01), &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn routing_spreads_items_across_shards() {
        let store = hardened_store(8);
        let mut seen = [false; 8];
        for i in 0..200 {
            seen[store.route(format!("item-{i}").as_bytes())] = true;
        }
        assert!(seen.iter().all(|&s| s), "200 items must touch all 8 shards");
    }

    #[test]
    fn routing_key_changes_routing() {
        let a =
            BloomStore::new(StoreConfig::hardened(16, 1000, 0.01), &mut StdRng::seed_from_u64(1));
        let b =
            BloomStore::new(StoreConfig::hardened(16, 1000, 0.01), &mut StdRng::seed_from_u64(2));
        let differing = (0..100)
            .filter(|i| {
                let item = format!("item-{i}");
                a.route(item.as_bytes()) != b.route(item.as_bytes())
            })
            .count();
        assert!(differing > 50, "only {differing}/100 items routed differently");
    }

    #[test]
    fn unhardened_routing_is_public_and_key_free() {
        let a =
            BloomStore::new(StoreConfig::unhardened(8, 1000, 0.01), &mut StdRng::seed_from_u64(1));
        let b =
            BloomStore::new(StoreConfig::unhardened(8, 1000, 0.01), &mut StdRng::seed_from_u64(2));
        for i in 0..100 {
            let item = format!("item-{i}");
            assert_eq!(a.route(item.as_bytes()), b.route(item.as_bytes()));
        }
    }

    #[test]
    fn batch_and_scalar_apis_agree() {
        let scalar = hardened_store(4);
        let batch =
            BloomStore::new(StoreConfig::hardened(4, 4_000, 0.01), &mut StdRng::seed_from_u64(42));
        let items: Vec<String> = (0..500).map(|i| format!("item-{i}")).collect();
        let mut scalar_fresh = 0u64;
        for item in &items {
            scalar_fresh += u64::from(scalar.insert(item.as_bytes()));
        }
        let outcome = batch.insert_batch(&items);
        assert_eq!(outcome.items, 500);
        assert_eq!(outcome.fresh_bits, scalar_fresh);

        let probes: Vec<String> = (0..500)
            .map(|i| format!("item-{i}"))
            .chain((0..100).map(|i| format!("absent-{i}")))
            .collect();
        let batch_answers = batch.query_batch(&probes);
        for (probe, answer) in probes.iter().zip(&batch_answers) {
            assert_eq!(*answer, scalar.contains(probe.as_bytes()), "{probe}");
        }
        assert!(batch_answers[..500].iter().all(|&a| a), "no false negatives in batch");
    }

    #[test]
    fn concurrent_writers_share_the_store_by_reference() {
        let store = hardened_store(8);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..500 {
                        store.insert(format!("t{t}-i{i}").as_bytes());
                    }
                });
            }
        });
        for t in 0..4 {
            for i in 0..500 {
                assert!(store.contains(format!("t{t}-i{i}").as_bytes()));
            }
        }
        assert_eq!(store.stats().total_inserted, 2000);
    }

    #[test]
    fn rotation_keeps_old_generation_answering() {
        let store = hardened_store(4);
        let items: Vec<String> = (0..400).map(|i| format!("item-{i}")).collect();
        store.insert_batch(&items);
        let mut rng = StdRng::seed_from_u64(7);
        for shard in 0..4 {
            assert_eq!(store.begin_rotation(shard, &mut rng), Some(1));
        }
        // Mid-rotation: every pre-rotation item still answers.
        assert!(store.query_batch(&items).iter().all(|&a| a));
        // Rebuild (replay), then complete.
        store.insert_batch(&items);
        for shard in 0..4 {
            assert!(store.complete_rotation(shard));
            assert_eq!(store.generation_id(shard), 1);
        }
        assert!(store.query_batch(&items).iter().all(|&a| a));
    }

    #[test]
    fn stats_report_shard_geometry() {
        let store = hardened_store(4);
        let stats = store.stats();
        assert_eq!(stats.shards.len(), 4);
        assert_eq!(stats.alarms, 0);
        for shard in &stats.shards {
            assert_eq!(shard.m, store.shard_params().m);
            assert_eq!(shard.k, store.shard_params().k);
            assert!(!shard.rotating);
        }
    }

    #[test]
    fn debug_output_redacts_keys() {
        let store = hardened_store(2);
        let text = format!("{store:?}");
        assert!(text.contains("<redacted>"), "{text}");
        assert!(text.contains("KeyedSipHash"));
        // No 32-byte key rendering can hide in there.
        assert!(!text.contains("SipKey"), "{text}");
    }
}

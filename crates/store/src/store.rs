//! The sharded concurrent filter store, generic over the
//! [`FilterBackend`] family its shards hold.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use evilbloom_filters::{
    hardened_params, hardened_parts, BackendKind, ConcurrentBloomFilter, ConcurrentCountingFilter,
    ConcurrentScalableFilter, CountingOptions, FilterBackend, FilterKey, FilterParams,
    HardeningLevel, ScalableOptions,
};
use evilbloom_hashes::{
    Hasher64, IndexStrategy, KeyedHash64, KirschMitzenmacher, Murmur3_128, SipHash24, SipKey,
};

use crate::metrics::StoreMetrics;
use crate::persist::{
    self, PersistConfig, PersistError, RecoveryReport, SnapshotInfo, StorePersistence, WalRecord,
};
use crate::shard::{Generation, Shard};
use crate::stats::{pollution_alarm, ShardStats, StoreStats};

/// Domain-separation tweak for the shard-routing PRF, far outside the
/// `0..k` tweak range the per-shard index derivation uses.
const ROUTING_TWEAK: u64 = 0x5AAD_2017_0DD5_EED5;

/// Whether (and how) the store's shards are hardened against the paper's
/// adversaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreHardening {
    /// Predictable everything: unkeyed Murmur-based shard routing and
    /// Kirsch–Mitzenmacher index derivation, average-case parameters — the
    /// deployment style of the attacked systems (Scrapy, Dablooms, Squid).
    Unhardened,
    /// Keyed shard routing (SipHash under a secret routing key, so an
    /// adversary cannot target one shard) plus per-shard hardening at the
    /// given [`HardeningLevel`].
    Hardened(HardeningLevel),
}

/// Configuration of a [`BloomStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Number of shards; must be a power of two so routing is a mask.
    pub shards: usize,
    /// Total item capacity, split evenly across shards.
    pub capacity: u64,
    /// Target false-positive probability per shard.
    pub target_fpp: f64,
    /// Hardening posture.
    pub hardening: StoreHardening,
    /// Filter family the shards hold. Informational on input (the store's
    /// type parameter is authoritative, and construction overwrites this
    /// field with [`FilterBackend::KIND`]); authoritative on output
    /// ([`BloomStore::config`] always reports the served family).
    pub backend: BackendKind,
}

impl StoreConfig {
    /// A hardened store (keyed SipHash shards and routing) — the posture the
    /// paper recommends for anything serving untrusted traffic.
    pub fn hardened(shards: usize, capacity: u64, target_fpp: f64) -> Self {
        StoreConfig {
            shards,
            capacity,
            target_fpp,
            hardening: StoreHardening::Hardened(HardeningLevel::KeyedSipHash),
            backend: BackendKind::Bloom,
        }
    }

    /// An unhardened store mirroring the attacked deployments (useful as the
    /// baseline in the adversarial load harness).
    pub fn unhardened(shards: usize, capacity: u64, target_fpp: f64) -> Self {
        StoreConfig {
            shards,
            capacity,
            target_fpp,
            hardening: StoreHardening::Unhardened,
            backend: BackendKind::Bloom,
        }
    }
}

/// Outcome of a batch insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchOutcome {
    /// Items inserted.
    pub items: usize,
    /// Cells flipped empty → occupied across all shards by this batch.
    pub fresh_bits: u64,
}

/// A typed refusal: the operation exists on the wire and in the API, but the
/// store's filter family cannot perform it (e.g. `DELETE` against a plain
/// Bloom backend, which has no way to unset a shared bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedOp {
    /// The family that refused.
    pub backend: BackendKind,
    /// The operation it refused.
    pub op: &'static str,
}

impl core::fmt::Display for UnsupportedOp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "the {} backend does not support {}", self.backend, self.op)
    }
}

impl std::error::Error for UnsupportedOp {}

enum Router {
    /// Secret-keyed routing: the adversary cannot predict (or choose) which
    /// shard an item lands on.
    Keyed(SipHash24),
    /// Public routing, computable offline by anyone with the source code.
    Public(Murmur3_128),
}

impl Router {
    fn route(&self, item: &[u8], mask: u64) -> usize {
        let hash = match self {
            Router::Keyed(prf) => prf.mac_with_tweak(item, ROUTING_TWEAK),
            Router::Public(hasher) => hasher.hash_with_seed(item, ROUTING_TWEAK),
        };
        (hash & mask) as usize
    }
}

/// A sharded, lock-free concurrent filter store.
///
/// Items are routed to one of `N` power-of-two shards by a routing hash
/// (secret-keyed unless the store is [`StoreHardening::Unhardened`]); each
/// shard holds a [`FilterBackend`] built by the Section 8 hardened
/// constructors and wrapped in a generation pair so its key can be rotated
/// without downtime (see [`crate::shard::Shard`]).
///
/// The backend type parameter picks the filter family — the default
/// [`ConcurrentBloomFilter`], a deletable [`ConcurrentCountingFilter`], or a
/// growing [`ConcurrentScalableFilter`] — via [`BloomStore::builder`]:
///
/// ```
/// use evilbloom_store::BloomStore;
///
/// let counting = BloomStore::builder().shards(4).capacity(4_000).counting(4).build();
/// assert_eq!(counting.remove(b"never inserted"), Ok(false));
/// ```
///
/// All serving operations take `&self`: share the store across worker
/// threads by reference (`std::thread::scope`) or in an [`Arc`].
pub struct BloomStore<B: FilterBackend = ConcurrentBloomFilter> {
    shards: Vec<Shard<B>>,
    router: Router,
    config: StoreConfig,
    shard_capacity: u64,
    shard_params: FilterParams,
    /// Backend-family construction options (counter width, tightening ratio).
    options: B::Options,
    /// The shared predictable strategy of an unhardened store (what the
    /// adversarial view uses to compute indexes offline); `None` when keyed.
    public_strategy: Option<Arc<dyn IndexStrategy>>,
    /// Attached durability (snapshots + WAL); `None` unless
    /// [`BloomStore::enable_persistence`] or [`BloomStore::recover`] set it.
    persistence: Option<StorePersistence>,
    /// Runtime telemetry, always present (shared with the persistence layer
    /// so WAL and snapshot probes record into the same registry).
    metrics: Arc<StoreMetrics>,
}

/// Fluent constructor for [`BloomStore`], including backend selection.
///
/// Defaults: 8 shards, 8 000-item capacity, 1% target false positives,
/// hardened with [`HardeningLevel::KeyedSipHash`], RNG seed 0. The seed
/// drives all secret key material — production deployments of a *hardened*
/// store must either set [`StoreBuilder::seed`] from real entropy or use
/// [`StoreBuilder::build_with_rng`] with an entropy-seeded RNG.
#[derive(Debug)]
pub struct StoreBuilder<B: FilterBackend = ConcurrentBloomFilter> {
    shards: usize,
    capacity: u64,
    target_fpp: f64,
    hardening: StoreHardening,
    seed: u64,
    options: B::Options,
}

impl StoreBuilder {
    fn new() -> Self {
        StoreBuilder {
            shards: 8,
            capacity: 8_000,
            target_fpp: 0.01,
            hardening: StoreHardening::Hardened(HardeningLevel::KeyedSipHash),
            seed: 0,
            options: (),
        }
    }
}

impl<B: FilterBackend> StoreBuilder<B> {
    /// Number of shards (must be a power of two).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Total item capacity, split evenly across shards.
    pub fn capacity(mut self, capacity: u64) -> Self {
        self.capacity = capacity;
        self
    }

    /// Target false-positive probability per shard.
    pub fn target_fpp(mut self, target_fpp: f64) -> Self {
        self.target_fpp = target_fpp;
        self
    }

    /// Explicit hardening posture.
    pub fn hardening(mut self, hardening: StoreHardening) -> Self {
        self.hardening = hardening;
        self
    }

    /// Keyed-SipHash hardening (the recommended serving posture).
    pub fn hardened(self) -> Self {
        self.hardening(StoreHardening::Hardened(HardeningLevel::KeyedSipHash))
    }

    /// Hardening at an explicit [`HardeningLevel`].
    pub fn hardened_at(self, level: HardeningLevel) -> Self {
        self.hardening(StoreHardening::Hardened(level))
    }

    /// No hardening: public routing and index derivation, the posture of the
    /// attacked deployments.
    pub fn unhardened(self) -> Self {
        self.hardening(StoreHardening::Unhardened)
    }

    /// Copies sizing and hardening from an existing [`StoreConfig`] (its
    /// `backend` field is ignored — the builder's type parameter decides).
    pub fn config(mut self, config: StoreConfig) -> Self {
        self.shards = config.shards;
        self.capacity = config.capacity;
        self.target_fpp = config.target_fpp;
        self.hardening = config.hardening;
        self
    }

    /// Seed of the RNG that [`StoreBuilder::build`] draws secret key
    /// material from. Deterministic by design for tests and reproducible
    /// experiments; hardened production stores need real entropy here.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Switches the builder to an arbitrary backend family with explicit
    /// options; [`StoreBuilder::counting`] and [`StoreBuilder::scalable`]
    /// are shorthands for the built-in families.
    pub fn backend<B2: FilterBackend>(self, options: B2::Options) -> StoreBuilder<B2> {
        StoreBuilder {
            shards: self.shards,
            capacity: self.capacity,
            target_fpp: self.target_fpp,
            hardening: self.hardening,
            seed: self.seed,
            options,
        }
    }

    /// Counting-filter shards with `counter_bits`-bit saturating cells —
    /// the deletable family (and the deletion adversary's target).
    pub fn counting(self, counter_bits: u8) -> StoreBuilder<ConcurrentCountingFilter> {
        self.backend(CountingOptions { counter_bits })
    }

    /// Scalable shards growing by `tightening_ratio` — the forced-growth
    /// target. Refuses persistence (slice stacks have no fixed geometry).
    pub fn scalable(self, tightening_ratio: f64) -> StoreBuilder<ConcurrentScalableFilter> {
        self.backend(ScalableOptions { tightening_ratio })
    }

    /// Builds the store, drawing key material from a [`StdRng`] seeded with
    /// [`StoreBuilder::seed`].
    pub fn build(self) -> BloomStore<B> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.build_with_rng(&mut rng)
    }

    /// Builds the store with an explicit RNG (overrides the seed).
    ///
    /// # Panics
    ///
    /// Panics if the shard count is zero or not a power of two, if the
    /// per-shard capacity would be zero, or if the backend options are
    /// invalid (zero counter width, tightening ratio outside `(0, 1]`).
    pub fn build_with_rng<R: RngCore + ?Sized>(self, rng: &mut R) -> BloomStore<B> {
        let config = StoreConfig {
            shards: self.shards,
            capacity: self.capacity,
            target_fpp: self.target_fpp,
            hardening: self.hardening,
            backend: B::KIND,
        };
        BloomStore::build_with(config, self.options, rng)
    }
}

impl BloomStore {
    /// Starts a fluent [`StoreBuilder`] (plain Bloom shards unless
    /// [`StoreBuilder::counting`] / [`StoreBuilder::scalable`] switch the
    /// family).
    pub fn builder() -> StoreBuilder {
        StoreBuilder::new()
    }

    /// Builds a plain-Bloom store, drawing all secret key material (per-shard
    /// filter keys and the shard-routing key) from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or not a power of two, or if the per-shard
    /// capacity would be zero.
    #[deprecated(note = "use BloomStore::builder(), which also selects counting/scalable backends")]
    pub fn new<R: RngCore>(config: StoreConfig, rng: &mut R) -> Self {
        BloomStore::build_with(config, (), rng)
    }
}

impl<B: FilterBackend> BloomStore<B> {
    /// The shared non-deprecated constructor behind the builder, the legacy
    /// shim and recovery. Overwrites `config.backend` with the type
    /// parameter's [`FilterBackend::KIND`] so the two can never disagree.
    fn build_with<R: RngCore + ?Sized>(
        mut config: StoreConfig,
        options: B::Options,
        rng: &mut R,
    ) -> Self {
        config.backend = B::KIND;
        assert!(
            config.shards > 0 && config.shards.is_power_of_two(),
            "shard count must be a power of two"
        );
        let shard_capacity = config.capacity.div_ceil(config.shards as u64);
        assert!(shard_capacity > 0, "per-shard capacity must be positive");
        let shard_params = match config.hardening {
            StoreHardening::Hardened(level) => {
                hardened_params(shard_capacity, config.target_fpp, level)
            }
            StoreHardening::Unhardened => FilterParams::optimal(shard_capacity, config.target_fpp),
        };

        let public_strategy: Option<Arc<dyn IndexStrategy>> = match config.hardening {
            StoreHardening::Unhardened => Some(Arc::new(KirschMitzenmacher::new(Murmur3_128))),
            StoreHardening::Hardened(_) => None,
        };
        let router = match config.hardening {
            StoreHardening::Unhardened => Router::Public(Murmur3_128),
            StoreHardening::Hardened(_) => {
                Router::Keyed(SipHash24::new(SipKey::new(rng.next_u64(), rng.next_u64())))
            }
        };

        let mut store = BloomStore {
            shards: Vec::with_capacity(config.shards),
            router,
            config,
            shard_capacity,
            shard_params,
            options,
            public_strategy,
            persistence: None,
            metrics: Arc::new(StoreMetrics::new(config.shards, B::KIND)),
        };
        // Reborrow so the possibly-unsized `R` is driven through the Sized
        // `&mut R`, which implements `RngCore` via the blanket impl.
        let mut rng = rng;
        for _ in 0..config.shards {
            let filter = store.build_shard_filter(&FilterKey::generate(&mut rng));
            store.shards.push(Shard::new(filter));
        }
        store
    }

    /// Builds a fresh (empty) per-shard filter for construction or rotation.
    fn build_shard_filter(&self, key: &FilterKey) -> B {
        match self.config.hardening {
            StoreHardening::Hardened(level) => {
                let (params, strategy) =
                    hardened_parts(self.shard_capacity, self.config.target_fpp, level, key);
                B::fresh(params, strategy.into(), &self.options)
            }
            StoreHardening::Unhardened => B::fresh(
                self.shard_params,
                Arc::clone(self.public_strategy.as_ref().expect("unhardened strategy")),
                &self.options,
            ),
        }
    }

    /// The store's configuration (its `backend` field always reports the
    /// served [`BackendKind`]).
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// The filter family the shards hold.
    pub fn backend_kind(&self) -> BackendKind {
        B::KIND
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The sizing parameters every shard uses (the base slice, for growing
    /// families).
    pub fn shard_params(&self) -> FilterParams {
        self.shard_params
    }

    /// Whether the store is hardened (keyed routing and indexes).
    pub fn is_hardened(&self) -> bool {
        matches!(self.config.hardening, StoreHardening::Hardened(_))
    }

    /// Shard an item routes to.
    pub fn route(&self, item: &[u8]) -> usize {
        self.router.route(item, self.shards.len() as u64 - 1)
    }

    pub(crate) fn shard(&self, index: usize) -> &Shard<B> {
        &self.shards[index]
    }

    pub(crate) fn options(&self) -> &B::Options {
        &self.options
    }

    /// The shared predictable index strategy of an unhardened store (`None`
    /// when hardened — that is the defence).
    pub(crate) fn public_strategy(&self) -> Option<&Arc<dyn IndexStrategy>> {
        self.public_strategy.as_ref()
    }

    /// Inserts one item; returns the number of fresh cells it set.
    ///
    /// With persistence attached the insert is appended to the write-ahead
    /// log *after* it is applied, while the shard read lock is still held
    /// (log order matches generation order); the durability wait then
    /// happens outside the lock via group commit. A broken WAL never fails
    /// an insert *through this method* — appends become no-ops — but the
    /// store is then degraded ([`BloomStore::degraded`]) and the serving
    /// layer refuses writes until a snapshot repairs the log.
    pub fn insert(&self, item: &[u8]) -> u32 {
        let shard = self.route(item);
        let (fresh, lsn) = self.shards[shard].with_generations(|active, _| {
            let fresh = active.filter.insert(item);
            let lsn = self.persistence.as_ref().and_then(|p| p.log_insert(shard, active.id, item));
            (fresh, lsn)
        });
        if let (Some(p), Some(lsn)) = (self.persistence.as_ref(), lsn) {
            p.commit(lsn);
        }
        self.metrics.inserts.inc();
        self.metrics.fresh_bits.add(u64::from(fresh));
        fresh
    }

    /// Membership query (positives may be false positives; during a shard
    /// rotation the draining generation still answers).
    pub fn contains(&self, item: &[u8]) -> bool {
        self.metrics.queries.inc();
        self.shards[self.route(item)].contains(item)
    }

    /// Removes one item, when the backend family supports deletion
    /// (counting filters). Returns whether the item read as present before
    /// the removal. Like inserts, removals are WAL-logged under the shard
    /// read lock so recovery replays them in apply order.
    ///
    /// Deleting items that were never inserted is exactly the paper's
    /// deletion adversary (Section 4.3): each such call can evict *other*
    /// items' cells. The store intentionally does not police this — the
    /// defence is hardening, which makes the required cell indexes
    /// uncomputable — but `was_present == false` returns are the audit
    /// trail.
    ///
    /// # Errors
    ///
    /// [`UnsupportedOp`] on families without deletion (plain, scalable).
    pub fn remove(&self, item: &[u8]) -> Result<bool, UnsupportedOp> {
        if !B::supports_remove() {
            return Err(UnsupportedOp { backend: B::KIND, op: "remove" });
        }
        let shard = self.route(item);
        let (was_present, lsn) = self.shards[shard].with_generations(|active, _| {
            let was_present = active.filter.remove(item).expect("supports_remove() checked above");
            let lsn = self
                .persistence
                .as_ref()
                .and_then(|p| p.log_remove_bucket(shard, active.id, &[item]));
            (was_present, lsn)
        });
        if let (Some(p), Some(lsn)) = (self.persistence.as_ref(), lsn) {
            p.commit(lsn);
        }
        self.metrics.deletes.inc();
        Ok(was_present)
    }

    /// Batch removal; answers (`was_present` per item) are in input order.
    /// Each shard is visited once, mirroring [`BloomStore::insert_batch`].
    ///
    /// # Errors
    ///
    /// [`UnsupportedOp`] on families without deletion.
    pub fn remove_batch<I: AsRef<[u8]>>(&self, items: &[I]) -> Result<Vec<bool>, UnsupportedOp> {
        if !B::supports_remove() {
            return Err(UnsupportedOp { backend: B::KIND, op: "remove_batch" });
        }
        let shards = self.shards.len();
        let mut positions: Vec<Vec<usize>> = (0..shards).map(|_| Vec::new()).collect();
        let mut buckets: Vec<Vec<&[u8]>> = (0..shards).map(|_| Vec::new()).collect();
        for (position, item) in items.iter().enumerate() {
            let item = item.as_ref();
            let shard = self.route(item);
            positions[shard].push(position);
            buckets[shard].push(item);
        }
        let mut answers = vec![false; items.len()];
        let mut last_lsn = None;
        for (index, ((shard, bucket), bucket_positions)) in
            self.shards.iter().zip(&buckets).zip(&positions).enumerate()
        {
            if bucket.is_empty() {
                continue;
            }
            shard.with_generations(|active, _| {
                let removed =
                    active.filter.remove_batch(bucket).expect("supports_remove() checked above");
                for (&position, was_present) in bucket_positions.iter().zip(removed) {
                    answers[position] = was_present;
                }
                if let Some(p) = &self.persistence {
                    if let Some(lsn) = p.log_remove_bucket(index, active.id, bucket) {
                        last_lsn = Some(lsn);
                    }
                }
            });
        }
        if let (Some(p), Some(lsn)) = (self.persistence.as_ref(), last_lsn) {
            p.commit(lsn);
        }
        self.metrics.deletes.add(items.len() as u64);
        Ok(answers)
    }

    /// Inserts a batch: routes every item first, then visits each shard
    /// exactly once and hands its whole bucket to the filter's
    /// hash-precomputing [`FilterBackend::insert_batch`] — amortising
    /// routing hashes, shard-lock acquisitions *and* per-item index-buffer
    /// allocations over the batch.
    pub fn insert_batch<I: AsRef<[u8]>>(&self, items: &[I]) -> BatchOutcome {
        let mut buckets: Vec<Vec<&[u8]>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for item in items {
            let item = item.as_ref();
            buckets[self.route(item)].push(item);
        }
        let mut fresh_bits = 0u64;
        let mut last_lsn = None;
        for (index, (shard, bucket)) in self.shards.iter().zip(&buckets).enumerate() {
            if bucket.is_empty() {
                continue;
            }
            shard.with_generations(|active, _| {
                fresh_bits += active.filter.insert_batch(bucket);
                if let Some(p) = &self.persistence {
                    // One WAL record per shard bucket; LSNs are monotonic,
                    // so committing the last covers the whole batch.
                    if let Some(lsn) = p.log_insert_bucket(index, active.id, bucket) {
                        last_lsn = Some(lsn);
                    }
                }
            });
        }
        if let (Some(p), Some(lsn)) = (self.persistence.as_ref(), last_lsn) {
            p.commit(lsn);
        }
        self.metrics.inserts.add(items.len() as u64);
        self.metrics.fresh_bits.add(fresh_bits);
        BatchOutcome { items: items.len(), fresh_bits }
    }

    /// Batch membership query; answers are in input order. Like
    /// [`BloomStore::insert_batch`], each shard lock is taken once and the
    /// active generation is probed through the filter's batch path; only
    /// active-generation misses fall back to a draining generation (which
    /// may use a different key, so its indexes cannot be shared).
    pub fn query_batch<I: AsRef<[u8]>>(&self, items: &[I]) -> Vec<bool> {
        self.metrics.queries.add(items.len() as u64);
        let shards = self.shards.len();
        let mut positions: Vec<Vec<usize>> = (0..shards).map(|_| Vec::new()).collect();
        let mut buckets: Vec<Vec<&[u8]>> = (0..shards).map(|_| Vec::new()).collect();
        for (position, item) in items.iter().enumerate() {
            let item = item.as_ref();
            let shard = self.route(item);
            positions[shard].push(position);
            buckets[shard].push(item);
        }
        let mut answers = vec![false; items.len()];
        for ((shard, bucket), bucket_positions) in self.shards.iter().zip(&buckets).zip(&positions)
        {
            if bucket.is_empty() {
                continue;
            }
            shard.with_generations(|active, draining| {
                let found = active.filter.query_batch(bucket);
                for ((&position, item), hit) in bucket_positions.iter().zip(bucket).zip(found) {
                    answers[position] = hit || draining.is_some_and(|g| g.filter.contains(item));
                }
            });
        }
        answers
    }

    /// Starts a rotation on one shard: installs a fresh filter while the old
    /// generation keeps answering queries. On a hardened store the fresh
    /// filter is built under a new secret key drawn from `rng` (a true
    /// re-key). On an unhardened store there is no key to rotate — the fresh
    /// generation only clears accumulated (possibly polluted) bits, and an
    /// adversary can re-craft pollution against the unchanged public
    /// derivation at will; the durable defence is hardening, not rotation.
    /// Returns the new generation id, or `None` if a rotation is already
    /// draining on that shard.
    pub fn begin_rotation<R: RngCore>(&self, shard: usize, rng: &mut R) -> Option<u64> {
        let fresh = match self.config.hardening {
            StoreHardening::Hardened(_) => self.build_shard_filter(&FilterKey::generate(rng)),
            // No key material to draw: the public strategy is reused.
            StoreHardening::Unhardened => self.build_shard_filter(&FilterKey::from_bytes([0; 32])),
        };
        let mut lsn = None;
        let id = self.shards[shard].begin_rotation_logged(fresh, |new_id| {
            lsn = self.persistence.as_ref().and_then(|p| p.log_rotation(shard, new_id, true));
        });
        if let (Some(p), Some(lsn)) = (self.persistence.as_ref(), lsn) {
            p.commit(lsn);
        }
        if id.is_some() {
            self.metrics.rotations_begun.inc();
        }
        id
    }

    /// Completes a rotation, dropping the drained generation (call after the
    /// application has replayed its items into the new generation). Returns
    /// `false` if no rotation was in flight.
    pub fn complete_rotation(&self, shard: usize) -> bool {
        let mut lsn = None;
        let completed = self.shards[shard].complete_rotation_logged(|dropped| {
            lsn = self.persistence.as_ref().and_then(|p| p.log_rotation(shard, dropped, false));
        });
        if let (Some(p), Some(lsn)) = (self.persistence.as_ref(), lsn) {
            p.commit(lsn);
        }
        if completed {
            self.metrics.rotations_completed.inc();
        }
        completed
    }

    /// Active generation id of a shard.
    pub fn generation_id(&self, shard: usize) -> u64 {
        self.shards[shard].generation_id()
    }

    /// Attaches durability (snapshots plus an optional write-ahead log) and
    /// writes an initial snapshot so the directory is always recoverable.
    /// If the directory already holds snapshots or WAL segments, sequence
    /// numbers continue after them (nothing is clobbered) — but the current
    /// in-memory store is what gets persisted; use [`BloomStore::recover`]
    /// to *load* a directory.
    ///
    /// # Errors
    ///
    /// [`PersistError::HardenedStore`] — hardened bits are derived under
    /// secret keys that are never written to disk, so a restored hardened
    /// store could not answer queries.
    /// [`PersistError::UnsupportedBackend`] — the family opts out of
    /// word-array persistence (a scalable filter's slice stack has no fixed
    /// geometry to snapshot). [`PersistError::AlreadyPersistent`] if called
    /// twice, or [`PersistError::Io`] on filesystem failure.
    pub fn enable_persistence(
        &mut self,
        config: &PersistConfig,
    ) -> Result<SnapshotInfo, PersistError> {
        if self.is_hardened() {
            return Err(PersistError::HardenedStore);
        }
        if B::persist_words_len(&self.shard_params, &self.options).is_none() {
            return Err(PersistError::UnsupportedBackend(B::KIND));
        }
        if self.persistence.is_some() {
            return Err(PersistError::AlreadyPersistent);
        }
        std::fs::create_dir_all(&config.dir)?;
        let (newest_snapshot, wal_seqs) = persist::scan_dir(&config.dir)?;
        let wal_seq = wal_seqs.last().map_or(1, |s| s + 1);
        let next_snapshot_seq = newest_snapshot.map_or(1, |s| s + 1);
        self.persistence = Some(StorePersistence::create(
            config,
            wal_seq,
            next_snapshot_seq,
            Arc::clone(&self.metrics),
        )?);
        self.snapshot_to_disk()
    }

    /// The attached persistence layer, if any.
    pub fn persistence(&self) -> Option<&StorePersistence> {
        self.persistence.as_ref()
    }

    /// Writes a snapshot of the current store state while serving continues
    /// (shard words are copied racily under the shard read locks; see
    /// [`crate::persist`] for the safety argument) and prunes superseded
    /// snapshot and WAL files.
    ///
    /// On a store in degraded read-only mode (broken WAL) a successful
    /// snapshot doubles as the **repair path**: the WAL switches to a fresh
    /// segment, the snapshot captures every applied-but-unlogged effect,
    /// and degraded mode exits.
    ///
    /// # Errors
    ///
    /// [`PersistError::NotPersistent`] without an attached persistence
    /// layer, or [`PersistError::Io`] on filesystem failure (after which a
    /// degraded store stays degraded).
    pub fn snapshot_to_disk(&self) -> Result<SnapshotInfo, PersistError> {
        let persistence = self.persistence.as_ref().ok_or(PersistError::NotPersistent)?;
        persistence.snapshot(self)
    }

    /// Why the store is in degraded read-only mode, if it is: the original
    /// WAL write error. A degraded store still answers queries, but the
    /// serving layer refuses writes (see
    /// [`crate::serve::ServeStore::insert`]) until a successful
    /// [`BloomStore::snapshot_to_disk`] repairs the log.
    pub fn degraded(&self) -> Option<String> {
        self.persistence.as_ref().and_then(|p| p.wal_error())
    }

    /// Rebuilds a store from a persistence directory: loads the newest
    /// valid snapshot, replays the write-ahead log on top (discarding
    /// records from rotated-out generations), re-attaches persistence with
    /// a fresh WAL segment and writes a post-recovery snapshot so boot cost
    /// stays bounded by the WAL tail.
    ///
    /// The recovered store answers queries identically to the crashed one
    /// for every acknowledged insert and removal (plus any operation that
    /// was mid-flight, which replay applies idempotently).
    ///
    /// # Errors
    ///
    /// [`PersistError::NoSnapshot`] if the directory holds no valid
    /// snapshot, [`PersistError::Corrupt`] / [`PersistError::BadVersion`]
    /// on a damaged snapshot file (damaged WAL *tails* are tolerated as a
    /// clean cut instead), [`PersistError::ConfigMismatch`] if the snapshot
    /// geometry or filter family no longer matches this store type, or
    /// [`PersistError::Io`].
    pub fn recover(
        config: &PersistConfig,
    ) -> Result<(BloomStore<B>, RecoveryReport), PersistError> {
        let (newest_snapshot, wal_seqs) = persist::scan_dir(&config.dir)?;
        let snapshot_seq = newest_snapshot.ok_or(PersistError::NoSnapshot)?;
        let path = persist::snapshot_path(&config.dir, snapshot_seq);
        let doc = persist::read_snapshot(&path)?;
        if doc.seq != snapshot_seq {
            return Err(PersistError::Corrupt {
                file: path.display().to_string(),
                what: "snapshot seq does not match its file name",
            });
        }
        if persist::doc_backend_kind(&doc) != Some(B::KIND) {
            return Err(PersistError::ConfigMismatch(
                "snapshot was written by a different filter backend",
            ));
        }
        let Some(options) = B::options_from_persist_aux(doc.backend_aux) else {
            return Err(PersistError::Corrupt {
                file: path.display().to_string(),
                what: "backend options byte is invalid for this filter family",
            });
        };

        // Validate geometry before handing it to constructors that assert.
        if doc.shards == 0 || !(doc.shards as usize).is_power_of_two() {
            return Err(PersistError::Corrupt {
                file: path.display().to_string(),
                what: "shard count is not a positive power of two",
            });
        }
        if doc.capacity == 0 || !doc.target_fpp.is_finite() || !(0.0..1.0).contains(&doc.target_fpp)
        {
            return Err(PersistError::Corrupt {
                file: path.display().to_string(),
                what: "capacity or target fpp out of range",
            });
        }
        let store_config =
            StoreConfig::unhardened(doc.shards as usize, doc.capacity, doc.target_fpp);
        // Unhardened stores draw no secret material; the seed is irrelevant.
        let mut store =
            BloomStore::<B>::build_with(store_config, options, &mut StdRng::seed_from_u64(0));
        if store.shard_params.m != doc.m || store.shard_params.k != doc.k {
            return Err(PersistError::ConfigMismatch(
                "persisted m/k disagree with what the snapshot's capacity and fpp derive",
            ));
        }

        // Install the persisted generations (occupancy counters recounted
        // from the words inside `from_words`; see the persist module docs).
        let strategy = Arc::clone(store.public_strategy.as_ref().expect("unhardened strategy"));
        let mut actives: Vec<Option<Generation<B>>> = (0..doc.shards).map(|_| None).collect();
        let mut drainings: Vec<Option<Generation<B>>> = (0..doc.shards).map(|_| None).collect();
        for (shard, role, id, inserted, words) in doc.generations {
            let Some(filter) = B::from_words(
                store.shard_params,
                Arc::clone(&strategy),
                words,
                inserted,
                &store.options,
            ) else {
                return Err(PersistError::Corrupt {
                    file: path.display().to_string(),
                    what: "generation geometry mismatch",
                });
            };
            let slot = if role == 0 {
                &mut actives[shard as usize]
            } else {
                &mut drainings[shard as usize]
            };
            if slot.replace(Generation { filter, id }).is_some() {
                return Err(PersistError::Corrupt {
                    file: path.display().to_string(),
                    what: "duplicate generation record for a shard",
                });
            }
        }
        for (index, (active, draining)) in actives.into_iter().zip(drainings).enumerate() {
            let Some(active) = active else {
                return Err(PersistError::Corrupt {
                    file: path.display().to_string(),
                    what: "shard missing its active generation record",
                });
            };
            store.shards[index] = Shard::restore(active, draining);
        }

        let mut report = RecoveryReport { snapshot_seq, ..RecoveryReport::default() };

        // Replay the WAL tail. `wal_seq == 0` marks a snapshot written
        // without a log (nothing to replay).
        if doc.wal_seq > 0 {
            for &seq in wal_seqs.iter().filter(|&&s| s >= doc.wal_seq) {
                store.replay_segment(&config.dir, seq, &mut report)?;
                report.wal_segments += 1;
            }
        }

        // Re-attach with fresh sequence numbers (never append to a segment
        // that may have a torn tail), then fold the replayed tail into a
        // new snapshot — which also prunes everything it supersedes.
        let wal_seq = wal_seqs.last().copied().unwrap_or(doc.wal_seq).max(snapshot_seq) + 1;
        store.persistence = Some(StorePersistence::create(
            config,
            wal_seq,
            snapshot_seq + 1,
            Arc::clone(&store.metrics),
        )?);
        store.snapshot_to_disk()?;
        Ok((store, report))
    }

    /// Replays one WAL segment during recovery (persistence is not attached
    /// yet, so nothing here is re-logged).
    fn replay_segment(
        &self,
        dir: &std::path::Path,
        seq: u64,
        report: &mut RecoveryReport,
    ) -> Result<(), PersistError> {
        let path = persist::wal_path(dir, seq);
        let bytes = std::fs::read(&path)?;
        let body = persist::check_wal_header(&path, &bytes, seq)?;
        let (records, torn) = persist::decode_wal_records(&bytes[body..]);
        report.torn_tail |= torn;
        let mut rng = StdRng::seed_from_u64(0);
        for record in records {
            match record {
                WalRecord::Insert { shard, generation, items } => {
                    let Some(target) = self.shards.get(shard as usize) else {
                        report.anomalies += 1;
                        continue;
                    };
                    // A generation *ahead* of the shard means the log knows
                    // of rotations the snapshot predates the record for —
                    // cannot happen with logs this module wrote (rotations
                    // log under the write lock), but tolerated: roll the
                    // shard forward, then apply.
                    while target.generation_id() < generation {
                        if self.begin_rotation(shard as usize, &mut rng).is_none() {
                            break;
                        }
                        report.anomalies += 1;
                    }
                    target.with_generations(|active, draining| {
                        if generation == active.id {
                            for item in &items {
                                active.filter.insert(item);
                            }
                            report.replayed_inserts += items.len() as u64;
                        } else if draining.is_some_and(|d| d.id == generation) {
                            let draining = draining.expect("checked above");
                            for item in &items {
                                draining.filter.insert(item);
                            }
                            report.replayed_inserts += items.len() as u64;
                        } else if generation < active.id {
                            // Rotated out: replaying would resurrect exactly
                            // the pollution the completed rotation dropped.
                            report.discarded_stale += items.len() as u64;
                        } else {
                            report.anomalies += 1;
                        }
                    });
                }
                WalRecord::Remove { shard, generation, items } => {
                    let Some(target) = self.shards.get(shard as usize) else {
                        report.anomalies += 1;
                        continue;
                    };
                    target.with_generations(|active, draining| {
                        let apply = |filter: &B, report: &mut RecoveryReport| {
                            for item in &items {
                                if filter.remove(item).is_some() {
                                    report.replayed_removes += 1;
                                } else {
                                    // A remove record against a family with
                                    // no deletion: a log this module never
                                    // writes.
                                    report.anomalies += 1;
                                }
                            }
                        };
                        if generation == active.id {
                            apply(&active.filter, report);
                        } else if let Some(d) = draining.filter(|d| d.id == generation) {
                            apply(&d.filter, report);
                        } else if generation < active.id {
                            report.discarded_stale += items.len() as u64;
                        } else {
                            report.anomalies += 1;
                        }
                    });
                }
                WalRecord::RotateBegin { shard, generation } => {
                    let Some(target) = self.shards.get(shard as usize) else {
                        report.anomalies += 1;
                        continue;
                    };
                    if target.generation_id() >= generation {
                        // The snapshot's shard copy happened after this
                        // rotation applied: already reflected, idempotently
                        // skipped.
                    } else if target.generation_id() + 1 == generation
                        && self.begin_rotation(shard as usize, &mut rng).is_some()
                    {
                        report.replayed_rotations += 1;
                    } else {
                        report.anomalies += 1;
                    }
                }
                WalRecord::RotateComplete { shard, generation } => {
                    let Some(target) = self.shards.get(shard as usize) else {
                        report.anomalies += 1;
                        continue;
                    };
                    let draining_id = target.with_generations(|_, draining| draining.map(|g| g.id));
                    match draining_id {
                        // Completed before the snapshot's shard copy:
                        // already reflected.
                        None => {}
                        Some(id) if id == generation => {
                            self.complete_rotation(shard as usize);
                            report.replayed_rotations += 1;
                        }
                        Some(_) => report.anomalies += 1,
                    }
                }
            }
        }
        Ok(())
    }

    /// Memory footprint in bytes of all active shard filter states.
    pub fn memory_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.with_generations(|active, _| active.filter.memory_bytes()))
            .sum()
    }

    /// Health snapshot: per-shard fill, false-positive estimates and
    /// pollution alarms (see [`crate::stats`]).
    pub fn stats(&self) -> StoreStats {
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                shard.with_generations(|active, draining| {
                    let filter = &active.filter;
                    let weight = filter.weight_approx();
                    let fill = weight as f64 / filter.m().max(1) as f64;
                    ShardStats {
                        shard: index,
                        generation: active.id,
                        rotating: draining.is_some(),
                        m: filter.m(),
                        k: filter.k(),
                        inserted: filter.inserted(),
                        weight,
                        fill,
                        estimated_fpp: evilbloom_analysis::false_positive::false_positive_for_fill(
                            fill,
                            filter.k(),
                        ),
                        pollution_alarm: pollution_alarm(
                            filter.m(),
                            filter.k(),
                            filter.inserted(),
                            weight,
                        ),
                    }
                })
            })
            .collect();
        StoreStats::from_shards(B::KIND, shards)
    }

    /// The store's runtime telemetry (see [`crate::metrics`]).
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    /// Runs a full stats pass *and* refreshes the sampled metrics derived
    /// from it (per-shard fill gauges, active-alarm gauge, alarm-transition
    /// edges, and the bits-per-insert drift series). The server's `METRICS`
    /// opcode calls this before rendering, so every scrape advances the
    /// drift window.
    pub fn sample_metrics(&self) -> StoreStats {
        let stats = self.stats();
        self.metrics.sample(&stats);
        stats
    }
}

impl<B: FilterBackend> core::fmt::Debug for BloomStore<B> {
    /// Deliberately redacted: no routing-key or filter-key material reaches
    /// logs through this impl.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BloomStore")
            .field("backend", &B::KIND)
            .field("shards", &self.shards.len())
            .field("shard_params", &self.shard_params)
            .field("hardening", &self.config.hardening)
            .field("keys", &"<redacted>")
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hardened_store(shards: usize) -> BloomStore {
        BloomStore::builder().shards(shards).capacity(4_000).target_fpp(0.01).seed(42).build()
    }

    #[test]
    fn insert_query_roundtrip() {
        let store = hardened_store(8);
        for i in 0..1000 {
            store.insert(format!("item-{i}").as_bytes());
        }
        for i in 0..1000 {
            assert!(store.contains(format!("item-{i}").as_bytes()));
        }
        assert_eq!(store.stats().total_inserted, 1000);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_rejected() {
        BloomStore::builder().shards(3).capacity(100).build();
    }

    #[test]
    fn deprecated_constructor_still_builds_an_equivalent_store() {
        // The pre-builder API must keep working for downstream callers.
        #[allow(deprecated)]
        let legacy =
            BloomStore::new(StoreConfig::hardened(8, 4_000, 0.01), &mut StdRng::seed_from_u64(42));
        let fluent = hardened_store(8);
        assert_eq!(legacy.shard_params(), fluent.shard_params());
        assert_eq!(legacy.config(), fluent.config());
        assert_eq!(legacy.backend_kind(), BackendKind::Bloom);
        // Same seed, same construction order: routing keys agree.
        for i in 0..100 {
            let item = format!("item-{i}");
            assert_eq!(legacy.route(item.as_bytes()), fluent.route(item.as_bytes()));
        }
    }

    #[test]
    fn builder_config_setter_copies_sizing_and_hardening() {
        let config = StoreConfig::unhardened(4, 2_000, 0.02);
        let store = BloomStore::builder().config(config).seed(7).build();
        assert_eq!(store.config(), config);
        assert!(!store.is_hardened());
    }

    #[test]
    fn routing_spreads_items_across_shards() {
        let store = hardened_store(8);
        let mut seen = [false; 8];
        for i in 0..200 {
            seen[store.route(format!("item-{i}").as_bytes())] = true;
        }
        assert!(seen.iter().all(|&s| s), "200 items must touch all 8 shards");
    }

    #[test]
    fn routing_key_changes_routing() {
        let a = BloomStore::builder().shards(16).capacity(1000).seed(1).build();
        let b = BloomStore::builder().shards(16).capacity(1000).seed(2).build();
        let differing = (0..100)
            .filter(|i| {
                let item = format!("item-{i}");
                a.route(item.as_bytes()) != b.route(item.as_bytes())
            })
            .count();
        assert!(differing > 50, "only {differing}/100 items routed differently");
    }

    #[test]
    fn unhardened_routing_is_public_and_key_free() {
        let a = BloomStore::builder().shards(8).capacity(1000).unhardened().seed(1).build();
        let b = BloomStore::builder().shards(8).capacity(1000).unhardened().seed(2).build();
        for i in 0..100 {
            let item = format!("item-{i}");
            assert_eq!(a.route(item.as_bytes()), b.route(item.as_bytes()));
        }
    }

    #[test]
    fn batch_and_scalar_apis_agree() {
        let scalar = hardened_store(4);
        let batch = BloomStore::builder().shards(4).capacity(4_000).seed(42).build();
        let items: Vec<String> = (0..500).map(|i| format!("item-{i}")).collect();
        let mut scalar_fresh = 0u64;
        for item in &items {
            scalar_fresh += u64::from(scalar.insert(item.as_bytes()));
        }
        let outcome = batch.insert_batch(&items);
        assert_eq!(outcome.items, 500);
        assert_eq!(outcome.fresh_bits, scalar_fresh);

        let probes: Vec<String> = (0..500)
            .map(|i| format!("item-{i}"))
            .chain((0..100).map(|i| format!("absent-{i}")))
            .collect();
        let batch_answers = batch.query_batch(&probes);
        for (probe, answer) in probes.iter().zip(&batch_answers) {
            assert_eq!(*answer, scalar.contains(probe.as_bytes()), "{probe}");
        }
        assert!(batch_answers[..500].iter().all(|&a| a), "no false negatives in batch");
    }

    #[test]
    fn concurrent_writers_share_the_store_by_reference() {
        let store = hardened_store(8);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..500 {
                        store.insert(format!("t{t}-i{i}").as_bytes());
                    }
                });
            }
        });
        for t in 0..4 {
            for i in 0..500 {
                assert!(store.contains(format!("t{t}-i{i}").as_bytes()));
            }
        }
        assert_eq!(store.stats().total_inserted, 2000);
    }

    #[test]
    fn rotation_keeps_old_generation_answering() {
        let store = hardened_store(4);
        let items: Vec<String> = (0..400).map(|i| format!("item-{i}")).collect();
        store.insert_batch(&items);
        let mut rng = StdRng::seed_from_u64(7);
        for shard in 0..4 {
            assert_eq!(store.begin_rotation(shard, &mut rng), Some(1));
        }
        // Mid-rotation: every pre-rotation item still answers.
        assert!(store.query_batch(&items).iter().all(|&a| a));
        // Rebuild (replay), then complete.
        store.insert_batch(&items);
        for shard in 0..4 {
            assert!(store.complete_rotation(shard));
            assert_eq!(store.generation_id(shard), 1);
        }
        assert!(store.query_batch(&items).iter().all(|&a| a));
    }

    #[test]
    fn stats_report_shard_geometry() {
        let store = hardened_store(4);
        let stats = store.stats();
        assert_eq!(stats.shards.len(), 4);
        assert_eq!(stats.alarms, 0);
        assert_eq!(stats.backend, BackendKind::Bloom);
        for shard in &stats.shards {
            assert_eq!(shard.m, store.shard_params().m);
            assert_eq!(shard.k, store.shard_params().k);
            assert!(!shard.rotating);
        }
    }

    #[test]
    fn debug_output_redacts_keys() {
        let store = hardened_store(2);
        let text = format!("{store:?}");
        assert!(text.contains("<redacted>"), "{text}");
        assert!(text.contains("KeyedSipHash"));
        // No 32-byte key rendering can hide in there.
        assert!(!text.contains("SipKey"), "{text}");
    }

    #[test]
    fn bloom_backend_refuses_remove_with_a_typed_error() {
        let store = hardened_store(2);
        let err = store.remove(b"anything").unwrap_err();
        assert_eq!(err.backend, BackendKind::Bloom);
        assert!(err.to_string().contains("bloom backend does not support"));
        assert!(store.remove_batch(&[b"a".as_slice(), b"b"]).is_err());
    }

    #[test]
    fn counting_store_inserts_removes_and_reports_backend() {
        let store = BloomStore::builder().shards(4).capacity(4_000).counting(4).seed(9).build();
        assert_eq!(store.backend_kind(), BackendKind::Counting);
        assert_eq!(store.config().backend, BackendKind::Counting);
        let items: Vec<String> = (0..300).map(|i| format!("item-{i}")).collect();
        store.insert_batch(&items);
        assert!(store.query_batch(&items).iter().all(|&a| a));
        // Remove half; the removed half must stop answering (no saturation
        // at this load), the rest must keep answering.
        let (gone, kept) = items.split_at(150);
        let answers = store.remove_batch(gone).expect("counting supports removal");
        assert!(answers.iter().all(|&was_present| was_present));
        assert!(store.query_batch(kept).iter().all(|&a| a), "kept items still answer");
        let still: usize = store.query_batch(gone).iter().filter(|&&a| a).count();
        assert!(still < 10, "{still}/150 removed items still answer (fp-level residue only)");
        assert_eq!(store.stats().backend, BackendKind::Counting);
    }

    #[test]
    fn counting_remove_of_absent_item_reports_not_present() {
        let store = BloomStore::builder().shards(2).capacity(1_000).counting(4).build();
        assert_eq!(store.remove(b"never inserted"), Ok(false));
    }

    #[test]
    fn scalable_store_grows_past_capacity_without_false_negatives() {
        let store = BloomStore::builder()
            .shards(2)
            .capacity(200)
            .unhardened()
            .scalable(0.9)
            .seed(3)
            .build();
        assert_eq!(store.backend_kind(), BackendKind::Scalable);
        let items: Vec<String> = (0..2_000).map(|i| format!("item-{i}")).collect();
        store.insert_batch(&items);
        assert!(store.query_batch(&items).iter().all(|&a| a), "growth never loses items");
        let stats = store.stats();
        assert_eq!(stats.backend, BackendKind::Scalable);
        // The per-shard bit count must have grown past the base slice.
        assert!(stats.shards.iter().all(|s| s.m > store.shard_params().m));
        assert!(store.remove(b"x").is_err(), "scalable has no deletion");
    }

    #[test]
    fn rotation_works_on_counting_and_scalable_backends() {
        let counting = BloomStore::builder().shards(2).capacity(1_000).counting(4).build();
        counting.insert(b"old");
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(counting.begin_rotation(0, &mut rng), Some(1));
        assert_eq!(counting.begin_rotation(1, &mut rng), Some(1));
        assert!(counting.contains(b"old"), "draining generation answers");
        assert!(counting.complete_rotation(0));
        assert!(counting.complete_rotation(1));
        assert!(!counting.contains(b"old"));

        let scalable = BloomStore::builder().shards(2).capacity(1_000).scalable(0.8).build();
        scalable.insert(b"old");
        assert_eq!(scalable.begin_rotation(0, &mut rng), Some(1));
        assert_eq!(scalable.begin_rotation(1, &mut rng), Some(1));
        assert!(scalable.contains(b"old"));
        assert!(scalable.complete_rotation(0) && scalable.complete_rotation(1));
        assert!(!scalable.contains(b"old"));
    }
}

//! The sharded concurrent Bloom-filter store.

use std::sync::Arc;

use rand::RngCore;

use evilbloom_filters::{
    hardened_concurrent_filter, hardened_params, ConcurrentBloomFilter, FilterKey, FilterParams,
    HardeningLevel,
};
use evilbloom_hashes::{
    Hasher64, IndexStrategy, KeyedHash64, KirschMitzenmacher, Murmur3_128, SipHash24, SipKey,
};

use crate::shard::Shard;
use crate::stats::{pollution_alarm, ShardStats, StoreStats};

/// Domain-separation tweak for the shard-routing PRF, far outside the
/// `0..k` tweak range the per-shard index derivation uses.
const ROUTING_TWEAK: u64 = 0x5AAD_2017_0DD5_EED5;

/// Whether (and how) the store's shards are hardened against the paper's
/// adversaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreHardening {
    /// Predictable everything: unkeyed Murmur-based shard routing and
    /// Kirsch–Mitzenmacher index derivation, average-case parameters — the
    /// deployment style of the attacked systems (Scrapy, Dablooms, Squid).
    Unhardened,
    /// Keyed shard routing (SipHash under a secret routing key, so an
    /// adversary cannot target one shard) plus per-shard hardening at the
    /// given [`HardeningLevel`].
    Hardened(HardeningLevel),
}

/// Configuration of a [`BloomStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Number of shards; must be a power of two so routing is a mask.
    pub shards: usize,
    /// Total item capacity, split evenly across shards.
    pub capacity: u64,
    /// Target false-positive probability per shard.
    pub target_fpp: f64,
    /// Hardening posture.
    pub hardening: StoreHardening,
}

impl StoreConfig {
    /// A hardened store (keyed SipHash shards and routing) — the posture the
    /// paper recommends for anything serving untrusted traffic.
    pub fn hardened(shards: usize, capacity: u64, target_fpp: f64) -> Self {
        StoreConfig {
            shards,
            capacity,
            target_fpp,
            hardening: StoreHardening::Hardened(HardeningLevel::KeyedSipHash),
        }
    }

    /// An unhardened store mirroring the attacked deployments (useful as the
    /// baseline in the adversarial load harness).
    pub fn unhardened(shards: usize, capacity: u64, target_fpp: f64) -> Self {
        StoreConfig { shards, capacity, target_fpp, hardening: StoreHardening::Unhardened }
    }
}

/// Outcome of a batch insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchOutcome {
    /// Items inserted.
    pub items: usize,
    /// Bits flipped 0 → 1 across all shards by this batch.
    pub fresh_bits: u64,
}

enum Router {
    /// Secret-keyed routing: the adversary cannot predict (or choose) which
    /// shard an item lands on.
    Keyed(SipHash24),
    /// Public routing, computable offline by anyone with the source code.
    Public(Murmur3_128),
}

impl Router {
    fn route(&self, item: &[u8], mask: u64) -> usize {
        let hash = match self {
            Router::Keyed(prf) => prf.mac_with_tweak(item, ROUTING_TWEAK),
            Router::Public(hasher) => hasher.hash_with_seed(item, ROUTING_TWEAK),
        };
        (hash & mask) as usize
    }
}

/// A sharded, lock-free concurrent Bloom-filter store.
///
/// Items are routed to one of `N` power-of-two shards by a routing hash
/// (secret-keyed unless the store is [`StoreHardening::Unhardened`]); each
/// shard is a [`ConcurrentBloomFilter`] built by the Section 8 hardened
/// constructors and wrapped in a generation pair so its key can be rotated
/// without downtime (see [`crate::shard::Shard`]).
///
/// All serving operations take `&self`: share the store across worker
/// threads by reference (`std::thread::scope`) or in an [`Arc`].
pub struct BloomStore {
    shards: Vec<Shard>,
    router: Router,
    config: StoreConfig,
    shard_capacity: u64,
    shard_params: FilterParams,
    /// The shared predictable strategy of an unhardened store (what the
    /// adversarial view uses to compute indexes offline); `None` when keyed.
    public_strategy: Option<Arc<dyn IndexStrategy>>,
}

impl BloomStore {
    /// Builds a store, drawing all secret key material (per-shard filter
    /// keys and the shard-routing key) from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or not a power of two, or if the per-shard
    /// capacity would be zero.
    pub fn new<R: RngCore>(config: StoreConfig, rng: &mut R) -> Self {
        assert!(
            config.shards > 0 && config.shards.is_power_of_two(),
            "shard count must be a power of two"
        );
        let shard_capacity = config.capacity.div_ceil(config.shards as u64);
        assert!(shard_capacity > 0, "per-shard capacity must be positive");
        let shard_params = match config.hardening {
            StoreHardening::Hardened(level) => {
                hardened_params(shard_capacity, config.target_fpp, level)
            }
            StoreHardening::Unhardened => FilterParams::optimal(shard_capacity, config.target_fpp),
        };

        let public_strategy: Option<Arc<dyn IndexStrategy>> = match config.hardening {
            StoreHardening::Unhardened => Some(Arc::new(KirschMitzenmacher::new(Murmur3_128))),
            StoreHardening::Hardened(_) => None,
        };
        let router = match config.hardening {
            StoreHardening::Unhardened => Router::Public(Murmur3_128),
            StoreHardening::Hardened(_) => {
                Router::Keyed(SipHash24::new(SipKey::new(rng.next_u64(), rng.next_u64())))
            }
        };

        let mut store = BloomStore {
            shards: Vec::with_capacity(config.shards),
            router,
            config,
            shard_capacity,
            shard_params,
            public_strategy,
        };
        for _ in 0..config.shards {
            let filter = store.build_shard_filter(&FilterKey::generate(rng));
            store.shards.push(Shard::new(filter));
        }
        store
    }

    /// Builds a fresh (empty) per-shard filter for construction or rotation.
    fn build_shard_filter(&self, key: &FilterKey) -> ConcurrentBloomFilter {
        match self.config.hardening {
            StoreHardening::Hardened(level) => {
                hardened_concurrent_filter(self.shard_capacity, self.config.target_fpp, level, key)
            }
            StoreHardening::Unhardened => ConcurrentBloomFilter::with_shared_strategy(
                self.shard_params,
                Arc::clone(self.public_strategy.as_ref().expect("unhardened strategy")),
            ),
        }
    }

    /// The store's configuration.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The sizing parameters every shard uses.
    pub fn shard_params(&self) -> FilterParams {
        self.shard_params
    }

    /// Whether the store is hardened (keyed routing and indexes).
    pub fn is_hardened(&self) -> bool {
        matches!(self.config.hardening, StoreHardening::Hardened(_))
    }

    /// Shard an item routes to.
    pub fn route(&self, item: &[u8]) -> usize {
        self.router.route(item, self.shards.len() as u64 - 1)
    }

    pub(crate) fn shard(&self, index: usize) -> &Shard {
        &self.shards[index]
    }

    /// The shared predictable index strategy of an unhardened store (`None`
    /// when hardened — that is the defence).
    pub(crate) fn public_strategy(&self) -> Option<&Arc<dyn IndexStrategy>> {
        self.public_strategy.as_ref()
    }

    /// Inserts one item; returns the number of fresh bits it set.
    pub fn insert(&self, item: &[u8]) -> u32 {
        self.shards[self.route(item)].insert(item)
    }

    /// Membership query (positives may be false positives; during a shard
    /// rotation the draining generation still answers).
    pub fn contains(&self, item: &[u8]) -> bool {
        self.shards[self.route(item)].contains(item)
    }

    /// Inserts a batch: routes every item first, then visits each shard
    /// exactly once and hands its whole bucket to the filter's
    /// hash-precomputing [`ConcurrentBloomFilter::insert_batch`] — amortising
    /// routing hashes, shard-lock acquisitions *and* per-item index-buffer
    /// allocations over the batch.
    pub fn insert_batch<I: AsRef<[u8]>>(&self, items: &[I]) -> BatchOutcome {
        let mut buckets: Vec<Vec<&[u8]>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for item in items {
            let item = item.as_ref();
            buckets[self.route(item)].push(item);
        }
        let mut fresh_bits = 0u64;
        for (shard, bucket) in self.shards.iter().zip(&buckets) {
            if bucket.is_empty() {
                continue;
            }
            shard.with_generations(|active, _| {
                fresh_bits += active.filter.insert_batch(bucket);
            });
        }
        BatchOutcome { items: items.len(), fresh_bits }
    }

    /// Batch membership query; answers are in input order. Like
    /// [`BloomStore::insert_batch`], each shard lock is taken once and the
    /// active generation is probed through the filter's batch path; only
    /// active-generation misses fall back to a draining generation (which
    /// may use a different key, so its indexes cannot be shared).
    pub fn query_batch<I: AsRef<[u8]>>(&self, items: &[I]) -> Vec<bool> {
        let shards = self.shards.len();
        let mut positions: Vec<Vec<usize>> = (0..shards).map(|_| Vec::new()).collect();
        let mut buckets: Vec<Vec<&[u8]>> = (0..shards).map(|_| Vec::new()).collect();
        for (position, item) in items.iter().enumerate() {
            let item = item.as_ref();
            let shard = self.route(item);
            positions[shard].push(position);
            buckets[shard].push(item);
        }
        let mut answers = vec![false; items.len()];
        for ((shard, bucket), bucket_positions) in self.shards.iter().zip(&buckets).zip(&positions)
        {
            if bucket.is_empty() {
                continue;
            }
            shard.with_generations(|active, draining| {
                let found = active.filter.query_batch(bucket);
                for ((&position, item), hit) in bucket_positions.iter().zip(bucket).zip(found) {
                    answers[position] = hit || draining.is_some_and(|g| g.filter.contains(item));
                }
            });
        }
        answers
    }

    /// Starts a rotation on one shard: installs a fresh filter while the old
    /// generation keeps answering queries. On a hardened store the fresh
    /// filter is built under a new secret key drawn from `rng` (a true
    /// re-key). On an unhardened store there is no key to rotate — the fresh
    /// generation only clears accumulated (possibly polluted) bits, and an
    /// adversary can re-craft pollution against the unchanged public
    /// derivation at will; the durable defence is hardening, not rotation.
    /// Returns the new generation id, or `None` if a rotation is already
    /// draining on that shard.
    pub fn begin_rotation<R: RngCore>(&self, shard: usize, rng: &mut R) -> Option<u64> {
        let fresh = match self.config.hardening {
            StoreHardening::Hardened(_) => self.build_shard_filter(&FilterKey::generate(rng)),
            // No key material to draw: the public strategy is reused.
            StoreHardening::Unhardened => self.build_shard_filter(&FilterKey::from_bytes([0; 32])),
        };
        self.shards[shard].begin_rotation(fresh)
    }

    /// Completes a rotation, dropping the drained generation (call after the
    /// application has replayed its items into the new generation). Returns
    /// `false` if no rotation was in flight.
    pub fn complete_rotation(&self, shard: usize) -> bool {
        self.shards[shard].complete_rotation()
    }

    /// Active generation id of a shard.
    pub fn generation_id(&self, shard: usize) -> u64 {
        self.shards[shard].generation_id()
    }

    /// Memory footprint in bytes of all active shard bit vectors.
    pub fn memory_bytes(&self) -> u64 {
        self.shards.len() as u64 * self.shard_params.memory_bytes()
    }

    /// Health snapshot: per-shard fill, false-positive estimates and
    /// pollution alarms (see [`crate::stats`]).
    pub fn stats(&self) -> StoreStats {
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                shard.with_generations(|active, draining| {
                    let filter = &active.filter;
                    let weight = filter.hamming_weight_approx();
                    let fill = weight as f64 / filter.m() as f64;
                    ShardStats {
                        shard: index,
                        generation: active.id,
                        rotating: draining.is_some(),
                        m: filter.m(),
                        k: filter.k(),
                        inserted: filter.inserted(),
                        weight,
                        fill,
                        estimated_fpp: evilbloom_analysis::false_positive::false_positive_for_fill(
                            fill,
                            filter.k(),
                        ),
                        pollution_alarm: pollution_alarm(
                            filter.m(),
                            filter.k(),
                            filter.inserted(),
                            weight,
                        ),
                    }
                })
            })
            .collect();
        StoreStats::from_shards(shards)
    }
}

impl core::fmt::Debug for BloomStore {
    /// Deliberately redacted: no routing-key or filter-key material reaches
    /// logs through this impl.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BloomStore")
            .field("shards", &self.shards.len())
            .field("shard_params", &self.shard_params)
            .field("hardening", &self.config.hardening)
            .field("keys", &"<redacted>")
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hardened_store(shards: usize) -> BloomStore {
        BloomStore::new(StoreConfig::hardened(shards, 4_000, 0.01), &mut StdRng::seed_from_u64(42))
    }

    #[test]
    fn insert_query_roundtrip() {
        let store = hardened_store(8);
        for i in 0..1000 {
            store.insert(format!("item-{i}").as_bytes());
        }
        for i in 0..1000 {
            assert!(store.contains(format!("item-{i}").as_bytes()));
        }
        assert_eq!(store.stats().total_inserted, 1000);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_rejected() {
        BloomStore::new(StoreConfig::hardened(3, 100, 0.01), &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn routing_spreads_items_across_shards() {
        let store = hardened_store(8);
        let mut seen = [false; 8];
        for i in 0..200 {
            seen[store.route(format!("item-{i}").as_bytes())] = true;
        }
        assert!(seen.iter().all(|&s| s), "200 items must touch all 8 shards");
    }

    #[test]
    fn routing_key_changes_routing() {
        let a =
            BloomStore::new(StoreConfig::hardened(16, 1000, 0.01), &mut StdRng::seed_from_u64(1));
        let b =
            BloomStore::new(StoreConfig::hardened(16, 1000, 0.01), &mut StdRng::seed_from_u64(2));
        let differing = (0..100)
            .filter(|i| {
                let item = format!("item-{i}");
                a.route(item.as_bytes()) != b.route(item.as_bytes())
            })
            .count();
        assert!(differing > 50, "only {differing}/100 items routed differently");
    }

    #[test]
    fn unhardened_routing_is_public_and_key_free() {
        let a =
            BloomStore::new(StoreConfig::unhardened(8, 1000, 0.01), &mut StdRng::seed_from_u64(1));
        let b =
            BloomStore::new(StoreConfig::unhardened(8, 1000, 0.01), &mut StdRng::seed_from_u64(2));
        for i in 0..100 {
            let item = format!("item-{i}");
            assert_eq!(a.route(item.as_bytes()), b.route(item.as_bytes()));
        }
    }

    #[test]
    fn batch_and_scalar_apis_agree() {
        let scalar = hardened_store(4);
        let batch =
            BloomStore::new(StoreConfig::hardened(4, 4_000, 0.01), &mut StdRng::seed_from_u64(42));
        let items: Vec<String> = (0..500).map(|i| format!("item-{i}")).collect();
        let mut scalar_fresh = 0u64;
        for item in &items {
            scalar_fresh += u64::from(scalar.insert(item.as_bytes()));
        }
        let outcome = batch.insert_batch(&items);
        assert_eq!(outcome.items, 500);
        assert_eq!(outcome.fresh_bits, scalar_fresh);

        let probes: Vec<String> = (0..500)
            .map(|i| format!("item-{i}"))
            .chain((0..100).map(|i| format!("absent-{i}")))
            .collect();
        let batch_answers = batch.query_batch(&probes);
        for (probe, answer) in probes.iter().zip(&batch_answers) {
            assert_eq!(*answer, scalar.contains(probe.as_bytes()), "{probe}");
        }
        assert!(batch_answers[..500].iter().all(|&a| a), "no false negatives in batch");
    }

    #[test]
    fn concurrent_writers_share_the_store_by_reference() {
        let store = hardened_store(8);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..500 {
                        store.insert(format!("t{t}-i{i}").as_bytes());
                    }
                });
            }
        });
        for t in 0..4 {
            for i in 0..500 {
                assert!(store.contains(format!("t{t}-i{i}").as_bytes()));
            }
        }
        assert_eq!(store.stats().total_inserted, 2000);
    }

    #[test]
    fn rotation_keeps_old_generation_answering() {
        let store = hardened_store(4);
        let items: Vec<String> = (0..400).map(|i| format!("item-{i}")).collect();
        store.insert_batch(&items);
        let mut rng = StdRng::seed_from_u64(7);
        for shard in 0..4 {
            assert_eq!(store.begin_rotation(shard, &mut rng), Some(1));
        }
        // Mid-rotation: every pre-rotation item still answers.
        assert!(store.query_batch(&items).iter().all(|&a| a));
        // Rebuild (replay), then complete.
        store.insert_batch(&items);
        for shard in 0..4 {
            assert!(store.complete_rotation(shard));
            assert_eq!(store.generation_id(shard), 1);
        }
        assert!(store.query_batch(&items).iter().all(|&a| a));
    }

    #[test]
    fn stats_report_shard_geometry() {
        let store = hardened_store(4);
        let stats = store.stats();
        assert_eq!(stats.shards.len(), 4);
        assert_eq!(stats.alarms, 0);
        for shard in &stats.shards {
            assert_eq!(shard.m, store.shard_params().m);
            assert_eq!(shard.k, store.shard_params().k);
            assert!(!shard.rotating);
        }
    }

    #[test]
    fn debug_output_redacts_keys() {
        let store = hardened_store(2);
        let text = format!("{store:?}");
        assert!(text.contains("<redacted>"), "{text}");
        assert!(text.contains("KeyedSipHash"));
        // No 32-byte key rendering can hide in there.
        assert!(!text.contains("SipKey"), "{text}");
    }
}

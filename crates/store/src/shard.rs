//! A single store shard: a concurrent filter backend wrapped in a generation
//! pair so its secret key can be rotated without a service interruption.
//!
//! Rotation model: a Bloom filter cannot enumerate its items, so rotation is
//! a two-phase hand-off driven by the application (which owns the source of
//! truth):
//!
//! 1. [`Shard::begin_rotation`] installs a fresh (re-keyed) *active*
//!    generation and demotes the old one to *draining*. Queries consult both
//!    generations, so everything inserted before the rotation keeps
//!    answering; new inserts go only to the active generation.
//! 2. The application replays its item set into the store in the background
//!    (the rebuild), then calls [`Shard::complete_rotation`] to drop the
//!    drained generation — and with it every bit the adversary polluted
//!    under the old key.
//!
//! The shard is generic over the [`FilterBackend`] family it holds (plain,
//! counting, scalable); the default keeps existing `Shard` mentions meaning
//! what they always did.

use std::sync::RwLock;

use evilbloom_filters::{ConcurrentBloomFilter, FilterBackend};

/// One filter generation: the filter plus a monotonically increasing id.
#[derive(Debug)]
pub struct Generation<B = ConcurrentBloomFilter> {
    /// The concurrent filter answering for this generation.
    pub filter: B,
    /// Generation number (0 at shard creation, +1 per rotation).
    pub id: u64,
}

#[derive(Debug)]
struct GenerationPair<B> {
    active: Generation<B>,
    draining: Option<Generation<B>>,
}

/// A store shard: an active filter generation, plus an optional draining
/// generation while a key rotation's rebuild is in flight.
///
/// The `RwLock` only guards the *installation* of generations; inserts and
/// queries take the read lock (shared, uncontended in steady state) and then
/// operate lock-free on the [`FilterBackend`] inside.
#[derive(Debug)]
pub struct Shard<B = ConcurrentBloomFilter> {
    generations: RwLock<GenerationPair<B>>,
}

impl<B: FilterBackend> Shard<B> {
    /// Creates a shard serving `filter` as generation 0.
    pub fn new(filter: B) -> Self {
        Shard {
            generations: RwLock::new(GenerationPair {
                active: Generation { filter, id: 0 },
                draining: None,
            }),
        }
    }

    /// Rebuilds a shard with explicit generation state — the recovery
    /// constructor (generation ids restored from a snapshot are usually
    /// non-zero, and a shard persisted mid-rotation restores both
    /// generations).
    pub(crate) fn restore(active: Generation<B>, draining: Option<Generation<B>>) -> Self {
        Shard { generations: RwLock::new(GenerationPair { active, draining }) }
    }

    /// Runs `f` with the active generation and (if a rotation is draining)
    /// the previous one. This is the primitive the store's batch APIs use to
    /// amortise lock acquisition over many items.
    pub fn with_generations<R>(
        &self,
        f: impl FnOnce(&Generation<B>, Option<&Generation<B>>) -> R,
    ) -> R {
        let pair = self.generations.read().expect("shard lock poisoned");
        f(&pair.active, pair.draining.as_ref())
    }

    /// Inserts `item` into the active generation; returns the number of
    /// fresh cells set.
    pub fn insert(&self, item: &[u8]) -> u32 {
        self.with_generations(|active, _| active.filter.insert(item))
    }

    /// Membership query against the active generation, falling back to the
    /// draining generation during a rotation (old data keeps answering until
    /// the rebuild completes).
    pub fn contains(&self, item: &[u8]) -> bool {
        self.with_generations(|active, draining| {
            active.filter.contains(item) || draining.is_some_and(|g| g.filter.contains(item))
        })
    }

    /// Starts a rotation: `fresh` (typically re-keyed and empty) becomes the
    /// active generation and the current one drains. Returns the new
    /// generation id, or `None` if a rotation is already in flight (finish
    /// it first — dropping a draining generation early would lose answers).
    pub fn begin_rotation(&self, fresh: B) -> Option<u64> {
        self.begin_rotation_logged(fresh, |_| {})
    }

    /// [`Shard::begin_rotation`] with a hook that runs *while the write lock
    /// is still held* — the store's WAL append point. Holding the lock keeps
    /// log order consistent with apply order: no insert (read lock) can log
    /// between the generation switch and its log record.
    pub(crate) fn begin_rotation_logged(&self, fresh: B, log: impl FnOnce(u64)) -> Option<u64> {
        let mut pair = self.generations.write().expect("shard lock poisoned");
        if pair.draining.is_some() {
            return None;
        }
        let next_id = pair.active.id + 1;
        let old = std::mem::replace(&mut pair.active, Generation { filter: fresh, id: next_id });
        pair.draining = Some(old);
        log(next_id);
        Some(next_id)
    }

    /// Finishes a rotation by dropping the draining generation. Returns
    /// `false` if no rotation was in flight.
    pub fn complete_rotation(&self) -> bool {
        self.complete_rotation_logged(|_| {})
    }

    /// [`Shard::complete_rotation`] with a WAL-append hook run under the
    /// write lock; the hook receives the dropped generation's id.
    pub(crate) fn complete_rotation_logged(&self, log: impl FnOnce(u64)) -> bool {
        let mut pair = self.generations.write().expect("shard lock poisoned");
        match pair.draining.take() {
            Some(dropped) => {
                log(dropped.id);
                true
            }
            None => false,
        }
    }

    /// Whether a rotation's rebuild is currently in flight.
    pub fn is_rotating(&self) -> bool {
        self.generations.read().expect("shard lock poisoned").draining.is_some()
    }

    /// Current active generation id.
    pub fn generation_id(&self) -> u64 {
        self.generations.read().expect("shard lock poisoned").active.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evilbloom_filters::{ConcurrentCountingFilter, CountingOptions, FilterParams};
    use evilbloom_hashes::{KirschMitzenmacher, Murmur3_128};
    use std::sync::Arc;

    fn fresh_filter() -> ConcurrentBloomFilter {
        ConcurrentBloomFilter::new(
            FilterParams::optimal(200, 0.01),
            KirschMitzenmacher::new(Murmur3_128),
        )
    }

    #[test]
    fn insert_then_contains() {
        let shard = Shard::new(fresh_filter());
        shard.insert(b"item");
        assert!(shard.contains(b"item"));
        assert!(!shard.contains(b"other"));
        assert_eq!(shard.generation_id(), 0);
        assert!(!shard.is_rotating());
    }

    #[test]
    fn draining_generation_keeps_answering() {
        let shard = Shard::new(fresh_filter());
        for i in 0..100 {
            shard.insert(format!("old-{i}").as_bytes());
        }
        assert_eq!(shard.begin_rotation(fresh_filter()), Some(1));
        assert!(shard.is_rotating());
        // Old items still answer via the draining generation…
        for i in 0..100 {
            assert!(shard.contains(format!("old-{i}").as_bytes()));
        }
        // …and new inserts land in the re-keyed active generation.
        shard.insert(b"new-item");
        assert!(shard.contains(b"new-item"));

        // Rebuild: the application replays its items, then completes.
        for i in 0..100 {
            shard.insert(format!("old-{i}").as_bytes());
        }
        assert!(shard.complete_rotation());
        for i in 0..100 {
            assert!(shard.contains(format!("old-{i}").as_bytes()));
        }
        assert!(shard.contains(b"new-item"));
        assert!(!shard.is_rotating());
    }

    #[test]
    fn second_rotation_refused_while_draining() {
        let shard = Shard::new(fresh_filter());
        assert_eq!(shard.begin_rotation(fresh_filter()), Some(1));
        assert_eq!(shard.begin_rotation(fresh_filter()), None);
        assert!(shard.complete_rotation());
        assert!(!shard.complete_rotation(), "nothing left to complete");
        assert_eq!(shard.begin_rotation(fresh_filter()), Some(2));
        assert_eq!(shard.generation_id(), 2);
    }

    #[test]
    fn dropping_the_drained_generation_forgets_unreplayed_items() {
        let shard = Shard::new(fresh_filter());
        shard.insert(b"pollution");
        shard.begin_rotation(fresh_filter());
        shard.complete_rotation();
        // The polluted bits lived only in the dropped generation.
        assert!(!shard.contains(b"pollution"));
    }

    #[test]
    fn counting_backend_shards_support_removal_through_the_generation_pair() {
        let shard = Shard::new(ConcurrentCountingFilter::fresh(
            FilterParams::optimal(200, 0.01),
            Arc::new(KirschMitzenmacher::new(Murmur3_128)),
            &CountingOptions::default(),
        ));
        shard.insert(b"victim");
        assert!(shard.contains(b"victim"));
        let removed = shard.with_generations(|active, _| active.filter.remove(b"victim"));
        assert!(removed);
        assert!(!shard.contains(b"victim"));
    }
}

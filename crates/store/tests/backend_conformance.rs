//! Backend conformance suite: the properties every [`FilterBackend`] family
//! must uphold to be servable — no false negatives, batch operations
//! bit-for-bit identical to scalar loops, deletion (where supported)
//! restoring pre-insert state, and the chosen-insertion drift signature the
//! paper predicts (≈ k fresh bits per crafted insert) showing up on every
//! family's metrics.

use std::sync::Arc;

use evilbloom_filters::{
    ConcurrentBloomFilter, ConcurrentCountingFilter, ConcurrentScalableFilter, FilterBackend,
    FilterParams,
};
use evilbloom_hashes::{IndexStrategy, KirschMitzenmacher, Murmur3_128};
use evilbloom_store::{craft_store_pollution, BloomStore};
use evilbloom_urlgen::UrlGenerator;

fn items(prefix: &str, n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| format!("{prefix}-{i}").into_bytes()).collect()
}

fn strategy() -> Arc<dyn IndexStrategy> {
    Arc::new(KirschMitzenmacher::new(Murmur3_128))
}

/// Runs the store-level no-false-negative property on one store.
fn assert_no_false_negatives<B: FilterBackend>(store: &BloomStore<B>, tag: &str) {
    let members = items(tag, 500);
    store.insert_batch(&members);
    // Concurrent readers while more writers land: still no false negative.
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let store = &store;
            let members = &members;
            scope.spawn(move || {
                for item in members.iter().skip(worker).step_by(4) {
                    assert!(store.contains(item), "{tag}: false negative");
                }
            });
        }
    });
    assert!(store.query_batch(&members).iter().all(|&a| a), "{tag}: batch false negative");
    assert_eq!(store.stats().total_inserted, members.len() as u64, "{tag}");
}

#[test]
fn no_false_negatives_on_any_backend_or_posture() {
    let base = || BloomStore::builder().shards(4).capacity(2_000).target_fpp(0.01).seed(11);
    assert_no_false_negatives(&base().hardened().build(), "bloom-hardened");
    assert_no_false_negatives(&base().unhardened().build(), "bloom-unhardened");
    assert_no_false_negatives(&base().hardened().counting(4).build(), "counting-hardened");
    assert_no_false_negatives(&base().unhardened().counting(4).build(), "counting-unhardened");
    assert_no_false_negatives(&base().hardened().scalable(0.9).build(), "scalable-hardened");
    assert_no_false_negatives(&base().unhardened().scalable(0.9).build(), "scalable-unhardened");
}

/// `insert_batch`/`query_batch` must be bit-for-bit the scalar loop: same
/// final word array (where the family can snapshot one), same per-item
/// answers, same fresh-bit totals.
fn assert_batch_equals_loop<B: FilterBackend>(options: &B::Options, tag: &str) {
    let params = FilterParams::optimal(1_000, 0.01);
    let batched = B::fresh(params, strategy(), options);
    let looped = B::fresh(params, strategy(), options);
    let members = items(tag, 400);
    let refs: Vec<&[u8]> = members.iter().map(|m| m.as_slice()).collect();

    let batch_fresh = batched.insert_batch(&refs);
    let loop_fresh: u64 = refs.iter().map(|item| u64::from(looped.insert(item))).sum();
    assert_eq!(batch_fresh, loop_fresh, "{tag}: fresh-bit totals diverged");
    assert_eq!(batched.inserted(), looped.inserted(), "{tag}");
    assert_eq!(batched.weight(), looped.weight(), "{tag}: weight diverged");
    if let (Some(a), Some(b)) = (batched.snapshot_words(), looped.snapshot_words()) {
        assert_eq!(a, b, "{tag}: word arrays diverged");
    }

    let probes: Vec<Vec<u8>> = members.iter().cloned().chain(items("absent", 300)).collect();
    let probe_refs: Vec<&[u8]> = probes.iter().map(|p| p.as_slice()).collect();
    let batch_answers = batched.query_batch(&probe_refs);
    let loop_answers: Vec<bool> = probe_refs.iter().map(|p| looped.contains(p)).collect();
    assert_eq!(batch_answers, loop_answers, "{tag}: answers diverged");
}

#[test]
fn batch_operations_equal_scalar_loops_bit_for_bit() {
    assert_batch_equals_loop::<ConcurrentBloomFilter>(&Default::default(), "bloom");
    assert_batch_equals_loop::<ConcurrentCountingFilter>(&Default::default(), "counting");
    assert_batch_equals_loop::<ConcurrentScalableFilter>(&Default::default(), "scalable");
}

#[test]
fn deletion_restores_pre_insert_state_on_the_counting_backend() {
    let params = FilterParams::optimal(1_000, 0.01);
    let filter = ConcurrentCountingFilter::fresh(params, strategy(), &Default::default());
    let baseline = items("baseline", 60);
    for item in &baseline {
        filter.insert(item);
    }
    let before = filter.snapshot_words();
    let before_weight = filter.weight();

    // Insert then fully remove a disjoint set: with Saturate semantics and
    // counters far from their 15-cap, every decrement must land and the
    // counter array must return to the exact pre-insert state.
    let transient = items("transient", 60);
    for item in &transient {
        filter.insert(item);
    }
    for item in &transient {
        assert!(filter.remove(item), "member removal reports presence");
    }

    assert_eq!(filter.snapshot_words(), before, "counter array must be bit-for-bit restored");
    assert_eq!(filter.weight(), before_weight);
    for item in &baseline {
        assert!(filter.contains(item), "baseline members must survive unrelated deletions");
    }
}

#[test]
fn store_remove_is_refused_on_non_deletable_backends() {
    let bloom = BloomStore::builder().shards(2).capacity(500).seed(3).build();
    let err = bloom.remove(b"x").expect_err("plain Bloom cannot remove");
    assert!(err.to_string().contains("bloom"), "{err}");
    let scalable = BloomStore::builder().shards(2).capacity(500).seed(3).scalable(0.9).build();
    assert!(scalable.remove(b"x").is_err(), "scalable slices cannot remove");
    assert!(scalable.remove_batch(&items("x", 4)).is_err());
}

/// Under crafted chosen insertions the drift gauge must pin at ≈ k fresh
/// bits per insert — the paper's detection signature — on every family that
/// exposes an adversarial view.
fn assert_drift_pins_at_k<B: FilterBackend>(store: &BloomStore<B>, tag: &str) {
    // Honest prefill, then a baseline scrape to seed the drift window.
    store.insert_batch(&items("prefill", 400));
    let stats = store.sample_metrics();
    let k = stats.shards[0].k;

    let generator = UrlGenerator::new("drift-evil");
    let plan = craft_store_pollution(store, &generator, 300, 200_000_000)
        .expect("unhardened stores expose an adversarial view");
    assert_eq!(plan.items.len(), 300, "{tag}: crafting search starved");
    for item in &plan.items {
        store.insert(item.as_bytes());
    }
    store.sample_metrics();

    let slope = store.metrics().bits_per_insert_recent();
    assert!(
        slope > 0.9 * k as f64,
        "{tag}: drift gauge reads {slope:.2}, expected ≈ k = {k} under chosen insertions"
    );
}

#[test]
fn drift_gauge_pins_at_k_under_chosen_insertions_on_every_family() {
    let base =
        || BloomStore::builder().shards(2).capacity(4_000).target_fpp(0.01).unhardened().seed(17);
    assert_drift_pins_at_k(&base().build(), "bloom");
    assert_drift_pins_at_k(&base().counting(4).build(), "counting");
    assert_drift_pins_at_k(&base().scalable(0.9).build(), "scalable");
}

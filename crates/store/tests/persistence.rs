//! Integration tests for the durability layer: snapshot/WAL roundtrips,
//! crash-shaped recovery, generation-aware replay and decoder robustness.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;

use evilbloom_filters::ConcurrentCountingFilter;
use evilbloom_store::{
    BackendKind, BloomStore, FilterBackend, PersistConfig, PersistError, RecoveryReport,
};

/// A unique scratch directory per test, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("evilbloom-persist-{tag}-{}-{n}", std::process::id()));
        fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        drop(fs::remove_dir_all(&self.0));
    }
}

fn unhardened_store() -> BloomStore {
    BloomStore::builder().shards(4).capacity(4_000).target_fpp(0.01).unhardened().seed(7).build()
}

/// `BloomStore::recover` pinned to the default (plain Bloom) backend, so
/// call sites that never bind the store still infer a type.
fn recover(config: &PersistConfig) -> Result<(BloomStore, RecoveryReport), PersistError> {
    BloomStore::recover(config)
}

fn items(prefix: &str, n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| format!("{prefix}-{i}").into_bytes()).collect()
}

/// Asserts two stores answer bit-for-bit identically: same per-shard
/// hamming weight and generation, and identical answers over a probe set
/// that mixes members and non-members.
fn assert_equivalent<B: FilterBackend>(a: &BloomStore<B>, b: &BloomStore<B>, probes: &[Vec<u8>]) {
    let (sa, sb) = (a.stats(), b.stats());
    assert_eq!(sa.shards.len(), sb.shards.len());
    for (x, y) in sa.shards.iter().zip(&sb.shards) {
        assert_eq!(x.weight, y.weight, "shard {} weight diverged", x.shard);
        assert_eq!(x.generation, y.generation, "shard {} generation diverged", x.shard);
        assert_eq!(x.inserted, y.inserted, "shard {} insert count diverged", x.shard);
    }
    assert_eq!(a.query_batch(probes), b.query_batch(probes));
}

#[test]
fn snapshot_only_roundtrip_is_bit_for_bit() {
    let dir = TempDir::new("roundtrip");
    let mut store = unhardened_store();
    store.insert_batch(&items("member", 800));
    store.enable_persistence(&PersistConfig::snapshot_only(dir.path())).expect("enable");
    let info = store.snapshot_to_disk().expect("snapshot");
    assert_eq!(info.shards, 4);
    assert_eq!(info.wal_seq, 0, "snapshot-only mode records no log to replay");

    let (recovered, report) = recover(&PersistConfig::snapshot_only(dir.path())).expect("recover");
    assert_eq!(report.replayed_inserts, 0);
    let probes: Vec<Vec<u8>> =
        items("member", 800).into_iter().chain(items("absent", 400)).collect();
    assert_equivalent(&store, &recovered, &probes);
    // No false negatives on members, ever.
    assert!(recovered.query_batch(&items("member", 800)).iter().all(|&a| a));
}

#[test]
fn wal_replays_inserts_after_the_last_snapshot() {
    let dir = TempDir::new("replay");
    let mut store = unhardened_store();
    store.enable_persistence(&PersistConfig::new(dir.path())).expect("enable");
    store.insert_batch(&items("early", 300));
    store.snapshot_to_disk().expect("snapshot");
    // These land only in the WAL tail — the "crash" happens before any
    // further snapshot (no clean shutdown of `store`).
    store.insert_batch(&items("late", 300));
    for item in items("scalar", 50) {
        store.insert(&item);
    }

    let (recovered, report) = recover(&PersistConfig::new(dir.path())).expect("recover");
    assert_eq!(report.replayed_inserts, 350);
    assert!(!report.torn_tail);
    assert_eq!(report.discarded_stale, 0);
    let probes: Vec<Vec<u8>> = items("early", 300)
        .into_iter()
        .chain(items("late", 300))
        .chain(items("scalar", 50))
        .chain(items("absent", 200))
        .collect();
    assert_equivalent(&store, &recovered, &probes);
}

#[test]
fn replay_discards_rotated_out_generations() {
    let dir = TempDir::new("rotation");
    let mut store = unhardened_store();
    store.enable_persistence(&PersistConfig::new(dir.path())).expect("enable");
    // Pollution lands in generation 0 and is logged there.
    store.insert_batch(&items("pollution", 200));
    // Rotate every shard and replay only the legitimate items.
    let mut rng = StdRng::seed_from_u64(1);
    for shard in 0..4 {
        store.begin_rotation(shard, &mut rng).expect("begin");
    }
    store.insert_batch(&items("legit", 200));
    for shard in 0..4 {
        assert!(store.complete_rotation(shard));
    }

    let (recovered, report) = recover(&PersistConfig::new(dir.path())).expect("recover");
    // Ordered replay re-applies the generation-0 inserts and then replays
    // the rotation that dropped them — ending bit-for-bit where the live
    // store did, with the pollution gone.
    assert_eq!(report.replayed_rotations, 8, "4 begins + 4 completes");
    assert!(recovered.query_batch(&items("legit", 200)).iter().all(|&a| a));
    let probes: Vec<Vec<u8>> =
        items("pollution", 200).into_iter().chain(items("legit", 200)).collect();
    assert_equivalent(&store, &recovered, &probes);
}

#[test]
fn stale_generation_records_in_the_tail_are_discarded() {
    // The snapshot race window: an insert logged to the fresh segment just
    // before the shard copy is both *in* the snapshot and *in* the tail. If
    // a rotation also completed in that window, the tail holds insert
    // records for a generation the snapshot has already rotated out —
    // replaying them would resurrect dropped pollution. Construct that tail
    // explicitly by grafting the generation-0 records onto the live
    // segment after rotating.
    let dir = TempDir::new("stale");
    let mut store = unhardened_store();
    store.enable_persistence(&PersistConfig::new(dir.path())).expect("enable");
    store.insert_batch(&items("pollution", 200));
    let polluted_segment = wal_segments(dir.path()).pop().expect("a wal segment");
    let stale_records = fs::read(&polluted_segment).expect("read wal")[17..].to_vec();

    let mut rng = StdRng::seed_from_u64(3);
    for shard in 0..4 {
        store.begin_rotation(shard, &mut rng).expect("begin");
        assert!(store.complete_rotation(shard));
    }
    store.insert_batch(&items("legit", 200));
    store.snapshot_to_disk().expect("snapshot reflects the rotation");
    // Inserts after the snapshot keep the tail realistic.
    store.insert_batch(&items("late", 100));

    let live_segment = wal_segments(dir.path()).pop().expect("live segment");
    let mut tail = fs::read(&live_segment).expect("read live segment");
    tail.extend_from_slice(&stale_records);
    fs::write(&live_segment, &tail).expect("graft stale records");

    let (recovered, report) = recover(&PersistConfig::new(dir.path())).expect("recover");
    assert_eq!(report.discarded_stale, 200, "generation-0 records must be discarded");
    assert_eq!(report.replayed_inserts, 100);
    assert!(recovered.query_batch(&items("legit", 200)).iter().all(|&a| a));
    assert!(recovered.query_batch(&items("late", 100)).iter().all(|&a| a));
    // The discarded records resurrect nothing: the recovered store answers
    // exactly like the live one (which dropped the pollution on rotation).
    let probes: Vec<Vec<u8>> = items("pollution", 200)
        .into_iter()
        .chain(items("legit", 200))
        .chain(items("late", 100))
        .collect();
    assert_equivalent(&store, &recovered, &probes);
}

#[test]
fn mid_rotation_snapshot_records_both_generations() {
    let dir = TempDir::new("midrot");
    let mut store = unhardened_store();
    store.insert_batch(&items("old", 300));
    store.enable_persistence(&PersistConfig::new(dir.path())).expect("enable");
    // Begin (but do not complete) a rotation on shard 0, then snapshot: the
    // snapshot must capture the coherent generation *pair*, not a
    // half-rotated shard.
    let mut rng = StdRng::seed_from_u64(2);
    store.begin_rotation(0, &mut rng).expect("begin");
    store.insert_batch(&items("during", 100));
    store.snapshot_to_disk().expect("mid-rotation snapshot");

    let (recovered, _) = recover(&PersistConfig::new(dir.path())).expect("recover");
    let stats = recovered.stats();
    assert!(stats.shards[0].rotating, "restored shard 0 must still be mid-rotation");
    assert_eq!(stats.shards[0].generation, 1);
    // Old items answer via the restored draining generation; new ones via
    // the active generation.
    let probes: Vec<Vec<u8>> = items("old", 300).into_iter().chain(items("during", 100)).collect();
    assert!(recovered.query_batch(&probes).iter().all(|&a| a));
    assert_equivalent(&store, &recovered, &probes);
    // And the restored pair finishes its rotation normally.
    assert!(recovered.complete_rotation(0));
    assert!(!recovered.stats().shards[0].rotating);
}

#[test]
fn seeded_interleavings_of_rotation_and_snapshot() {
    // Satellite 3: drive every interleaving of (insert*, begin, insert*,
    // snapshot, insert*, complete) deterministically and require recovery
    // to answer every acknowledged insert.
    for seed in 0..8u64 {
        let dir = TempDir::new("interleave");
        let mut store = unhardened_store();
        store.enable_persistence(&PersistConfig::new(dir.path())).expect("enable");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut acknowledged: Vec<Vec<u8>> = Vec::new();

        let before = items(&format!("s{seed}-before"), 50);
        store.insert_batch(&before);
        store.begin_rotation((seed % 4) as usize, &mut rng).expect("begin");
        // `before` items on the rotated shard now live in its draining
        // generation; the other shards are untouched.
        let during = items(&format!("s{seed}-during"), 50);
        store.insert_batch(&during);
        acknowledged.extend(during);
        if seed % 2 == 0 {
            store.snapshot_to_disk().expect("snapshot before complete");
        }
        let after = items(&format!("s{seed}-after"), 50);
        store.insert_batch(&after);
        acknowledged.extend(after);
        if seed % 3 == 0 {
            assert!(store.complete_rotation((seed % 4) as usize));
        }
        if seed % 2 == 1 {
            store.snapshot_to_disk().expect("snapshot after insert");
        }

        let (recovered, _) = recover(&PersistConfig::new(dir.path())).expect("recover");
        // Post-rotation inserts must all answer; `before` items only if the
        // rotation never completed — exactly like the live store.
        assert!(
            recovered.query_batch(&acknowledged).iter().all(|&a| a),
            "seed {seed}: lost an acknowledged insert"
        );
        let mut probes = acknowledged;
        probes.extend(before);
        probes.extend(items(&format!("s{seed}-absent"), 50));
        assert_equivalent(&store, &recovered, &probes);
    }
}

#[test]
fn group_commit_fsync_policy_roundtrips() {
    let dir = TempDir::new("fsync");
    let mut store = unhardened_store();
    store.enable_persistence(&PersistConfig::fsync(dir.path())).expect("enable");
    store.insert_batch(&items("durable", 100));
    // Concurrent committers exercise the leader/follower group-commit path.
    std::thread::scope(|scope| {
        for t in 0..4 {
            let store = &store;
            scope.spawn(move || {
                for item in items(&format!("thread{t}"), 50) {
                    store.insert(&item);
                }
            });
        }
    });
    let (recovered, report) = recover(&PersistConfig::fsync(dir.path())).expect("recover");
    assert_eq!(report.replayed_inserts, 300);
    for t in 0..4 {
        assert!(recovered.query_batch(&items(&format!("thread{t}"), 50)).iter().all(|&a| a));
    }
    assert_equivalent(&store, &recovered, &items("durable", 100));
}

#[test]
fn snapshot_while_inserting_never_loses_acknowledged_items() {
    // The racy-copy safety argument, end to end: snapshots run concurrently
    // with writers; recovery from snapshot + WAL must answer every insert
    // that completed before the crash point.
    let dir = TempDir::new("racy");
    let mut store = unhardened_store();
    store.enable_persistence(&PersistConfig::new(dir.path())).expect("enable");
    std::thread::scope(|scope| {
        let store = &store;
        let writer = scope.spawn(move || {
            for item in items("racing", 2_000) {
                store.insert(&item);
            }
        });
        for _ in 0..5 {
            store.snapshot_to_disk().expect("snapshot under load");
        }
        writer.join().expect("writer");
    });
    let (recovered, _) = recover(&PersistConfig::new(dir.path())).expect("recover");
    assert!(recovered.query_batch(&items("racing", 2_000)).iter().all(|&a| a));
    assert_equivalent(&store, &recovered, &items("racing", 2_000));
}

#[test]
fn hardened_store_refuses_persistence() {
    let dir = TempDir::new("hardened");
    let mut store =
        BloomStore::builder().shards(4).capacity(4_000).target_fpp(0.01).hardened().seed(7).build();
    match store.enable_persistence(&PersistConfig::new(dir.path())) {
        Err(PersistError::HardenedStore) => {}
        other => panic!("hardened store must refuse persistence, got {other:?}"),
    }
    assert!(store.persistence().is_none());
}

#[test]
fn double_enable_and_snapshot_without_persistence_are_typed_errors() {
    let dir = TempDir::new("typed");
    let mut store = unhardened_store();
    assert!(matches!(store.snapshot_to_disk(), Err(PersistError::NotPersistent)));
    store.enable_persistence(&PersistConfig::new(dir.path())).expect("enable");
    assert!(matches!(
        store.enable_persistence(&PersistConfig::new(dir.path())),
        Err(PersistError::AlreadyPersistent)
    ));
}

#[test]
fn recover_from_empty_dir_is_a_typed_error() {
    let dir = TempDir::new("empty");
    assert!(matches!(recover(&PersistConfig::new(dir.path())), Err(PersistError::NoSnapshot)));
}

fn newest_snapshot(dir: &std::path::Path) -> PathBuf {
    let mut snapshots: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "evbs"))
        .collect();
    snapshots.sort();
    snapshots.pop().expect("a snapshot exists")
}

fn wal_segments(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "evbw"))
        .collect();
    segments.sort();
    segments
}

#[test]
fn corrupt_snapshot_is_a_typed_error_not_a_panic() {
    let dir = TempDir::new("corrupt-snap");
    let mut store = unhardened_store();
    store.insert_batch(&items("member", 200));
    store.enable_persistence(&PersistConfig::new(dir.path())).expect("enable");
    let snapshot = newest_snapshot(dir.path());
    let original = fs::read(&snapshot).expect("read snapshot");

    // Flip one byte at a spread of offsets: every corruption must surface
    // as a typed error (or, for bits the CRC of some record doesn't cover
    // — there are none — recover fine), never panic.
    for offset in (0..original.len()).step_by(97) {
        let mut bytes = original.clone();
        bytes[offset] ^= 0xA5;
        fs::write(&snapshot, &bytes).expect("write corrupted");
        match recover(&PersistConfig::new(dir.path())) {
            Err(
                PersistError::Corrupt { .. }
                | PersistError::BadVersion { .. }
                | PersistError::ConfigMismatch(_),
            ) => {}
            Err(other) => panic!("offset {offset}: unexpected error {other:?}"),
            Ok(_) => panic!("offset {offset}: corruption went undetected"),
        }
    }

    // Truncations at every boundary are equally typed.
    for cut in [0, 1, 4, 5, 9, original.len() / 2, original.len() - 1] {
        fs::write(&snapshot, &original[..cut]).expect("write truncated");
        match recover(&PersistConfig::new(dir.path())) {
            Err(PersistError::Corrupt { .. } | PersistError::BadVersion { .. }) => {}
            other => panic!("cut {cut}: expected a corruption error, got {other:?}"),
        }
    }

    fs::write(&snapshot, &original).expect("restore");
    recover(&PersistConfig::new(dir.path())).expect("pristine snapshot recovers");
}

/// Saves every file in `dir`, so destructive recovery runs (which fold and
/// prune) can be rolled back between property-test iterations.
fn save_dir(dir: &std::path::Path) -> Vec<(PathBuf, Vec<u8>)> {
    fs::read_dir(dir)
        .expect("read dir")
        .flatten()
        .map(|e| (e.path(), fs::read(e.path()).expect("read file")))
        .collect()
}

fn restore_dir(dir: &std::path::Path, saved: &[(PathBuf, Vec<u8>)]) {
    for entry in fs::read_dir(dir).expect("read dir").flatten() {
        fs::remove_file(entry.path()).expect("clear dir");
    }
    for (path, bytes) in saved {
        fs::write(path, bytes).expect("restore file");
    }
}

#[test]
fn truncated_wal_tail_recovers_the_prefix() {
    let dir = TempDir::new("torn");
    let mut store = unhardened_store();
    store.enable_persistence(&PersistConfig::new(dir.path())).expect("enable");
    for item in items("logged", 100) {
        store.insert(&item);
    }
    let tail = wal_segments(dir.path()).pop().expect("a wal segment");
    let original = fs::read(&tail).expect("read wal");
    let saved = save_dir(dir.path());

    // Cut the live segment at a spread of byte boundaries: recovery must
    // never panic and must answer every insert whose record survived.
    for cut in (17..original.len()).step_by(53) {
        restore_dir(dir.path(), &saved);
        fs::write(&tail, &original[..cut]).expect("write torn");
        let (recovered, report) =
            recover(&PersistConfig::new(dir.path())).expect("torn tail is a clean cut");
        assert!(report.replayed_inserts <= 100, "cut {cut}");
        // Prefix property: records are in insert order, so exactly the
        // first `replayed_inserts` logged items must answer.
        let replayed = items("logged", report.replayed_inserts as usize);
        if !replayed.is_empty() {
            assert!(recovered.query_batch(&replayed).iter().all(|&a| a), "cut {cut}");
        }
    }
}

#[test]
fn byte_soup_wal_never_panics_recovery() {
    let dir = TempDir::new("soup");
    let mut store = unhardened_store();
    store.enable_persistence(&PersistConfig::new(dir.path())).expect("enable");
    store.insert_batch(&items("member", 100));
    store.snapshot_to_disk().expect("snapshot");
    let tail = wal_segments(dir.path()).pop().expect("a wal segment");
    let header = fs::read(&tail).expect("read wal")[..17].to_vec();
    let saved = save_dir(dir.path());

    // Seeded LCG soup appended after a valid header: decode must treat the
    // first unparseable point as the end of the log — never panic.
    let mut state = 0xDEAD_BEEF_u64;
    for len in [1usize, 8, 64, 257, 4096] {
        restore_dir(dir.path(), &saved);
        let mut bytes = header.clone();
        bytes.extend((0..len).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 56) as u8
        }));
        fs::write(&tail, &bytes).expect("write soup");
        let (recovered, _) = recover(&PersistConfig::new(dir.path())).expect("soup tail tolerated");
        assert!(recovered.query_batch(&items("member", 100)).iter().all(|&a| a));
    }
}

fn counting_store() -> BloomStore<ConcurrentCountingFilter> {
    BloomStore::builder()
        .shards(4)
        .capacity(4_000)
        .target_fpp(0.01)
        .unhardened()
        .seed(7)
        .counting(4)
        .build()
}

#[test]
fn counting_snapshot_roundtrips_counter_state_including_removes() {
    let dir = TempDir::new("counting-snap");
    let mut store = counting_store();
    store.insert_batch(&items("member", 600));
    // Delete a slice of real members before the snapshot: the persisted
    // counter array must carry the post-decrement state, not the inserts.
    let removed = store.remove_batch(&items("member", 200)).expect("counting supports remove");
    assert!(removed.iter().all(|&r| r), "removing real members reports presence");
    store.enable_persistence(&PersistConfig::snapshot_only(dir.path())).expect("enable");
    store.snapshot_to_disk().expect("snapshot");

    let (recovered, report) =
        BloomStore::<ConcurrentCountingFilter>::recover(&PersistConfig::snapshot_only(dir.path()))
            .expect("recover counting");
    assert_eq!(report.replayed_inserts, 0);
    assert_eq!(recovered.backend_kind(), BackendKind::Counting);
    let probes: Vec<Vec<u8>> =
        items("member", 600).into_iter().chain(items("absent", 300)).collect();
    assert_equivalent(&store, &recovered, &probes);
    // Surviving members never go false-negative across the restart.
    let survivors: Vec<Vec<u8>> = items("member", 600).into_iter().skip(200).collect();
    assert!(recovered.query_batch(&survivors).iter().all(|&a| a));
}

#[test]
fn wal_replays_removes_after_the_last_snapshot() {
    let dir = TempDir::new("counting-replay");
    let mut store = counting_store();
    store.enable_persistence(&PersistConfig::new(dir.path())).expect("enable");
    store.insert_batch(&items("member", 400));
    store.snapshot_to_disk().expect("snapshot");
    // Post-snapshot deletions land only in the WAL tail; the "crash"
    // happens before any further snapshot.
    store.remove_batch(&items("member", 150)).expect("batch remove");
    assert!(store.remove(&items("member", 151)[150]).expect("scalar remove"));

    let (recovered, report) =
        BloomStore::<ConcurrentCountingFilter>::recover(&PersistConfig::new(dir.path()))
            .expect("recover");
    assert_eq!(report.replayed_removes, 151);
    assert_eq!(report.replayed_inserts, 0);
    let probes: Vec<Vec<u8>> =
        items("member", 400).into_iter().chain(items("absent", 200)).collect();
    assert_equivalent(&store, &recovered, &probes);
}

#[test]
fn scalable_store_refuses_persistence_with_a_typed_error() {
    let dir = TempDir::new("scalable");
    let mut store = BloomStore::builder()
        .shards(2)
        .capacity(1_000)
        .target_fpp(0.01)
        .unhardened()
        .seed(7)
        .scalable(0.9)
        .build();
    match store.enable_persistence(&PersistConfig::new(dir.path())) {
        Err(PersistError::UnsupportedBackend(BackendKind::Scalable)) => {}
        other => panic!("scalable store must refuse persistence, got {other:?}"),
    }
    assert!(store.persistence().is_none());
}

#[test]
fn recovering_a_snapshot_under_the_wrong_backend_is_a_config_mismatch() {
    let dir = TempDir::new("backend-mismatch");
    let mut store = unhardened_store();
    store.insert_batch(&items("member", 100));
    store.enable_persistence(&PersistConfig::snapshot_only(dir.path())).expect("enable");
    store.snapshot_to_disk().expect("snapshot");

    match BloomStore::<ConcurrentCountingFilter>::recover(&PersistConfig::snapshot_only(dir.path()))
    {
        Err(PersistError::ConfigMismatch(reason)) => {
            assert!(reason.contains("backend"), "reason should name the backend: {reason}")
        }
        other => panic!("expected a backend mismatch, got {other:?}"),
    }
    // The same bytes still recover fine under the backend that wrote them.
    recover(&PersistConfig::snapshot_only(dir.path())).expect("matching backend recovers");
}

#[test]
fn recovery_prunes_superseded_files() {
    let dir = TempDir::new("prune");
    let mut store = unhardened_store();
    store.enable_persistence(&PersistConfig::new(dir.path())).expect("enable");
    for round in 0..3 {
        store.insert_batch(&items(&format!("round{round}"), 50));
        store.snapshot_to_disk().expect("snapshot");
    }
    // Only the newest snapshot and the live segment remain.
    let snapshots = fs::read_dir(dir.path())
        .expect("read dir")
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "evbs"))
        .count();
    assert_eq!(snapshots, 1, "old snapshots are pruned");
    assert_eq!(wal_segments(dir.path()).len(), 1, "rotated-out segments are pruned");
}

#[test]
fn wal_break_enters_degraded_mode_and_snapshot_repairs_it() {
    use evilbloom_fault::{self as fault, FaultPlan, FaultPoint};
    use evilbloom_store::{ServeStore, WriteRefusal};

    let dir = TempDir::new("degraded");
    let mut store = unhardened_store();
    store.enable_persistence(&PersistConfig::fsync(dir.path())).expect("enable");
    store.insert(b"acked-before-break");

    let _chaos = fault::arm(FaultPlan::new(1).fail_nth(FaultPoint::WalFsync, 1));
    // This write's own group-commit flush fails: the WAL breaks, the store
    // enters degraded read-only mode, and the serve layer refuses to
    // acknowledge the write (it is applied in memory but not durable).
    let refusal = ServeStore::insert(&store, b"limbo").unwrap_err();
    assert!(matches!(refusal, WriteRefusal::Degraded(_)), "{refusal:?}");
    assert!(store.degraded().is_some());
    let exposition = store.metrics().registry().render();
    assert!(exposition.contains("evilbloom_store_degraded 1"), "{exposition}");
    assert!(exposition.contains("evilbloom_persist_wal_broken 1"), "{exposition}");

    // Reads still serve; fresh writes are refused before they apply.
    assert!(store.contains(b"acked-before-break"));
    let refusal = ServeStore::insert(&store, b"refused").unwrap_err();
    assert!(matches!(refusal, WriteRefusal::Degraded(_)), "{refusal:?}");
    assert!(!store.contains(b"refused"), "a refused write must not apply");

    // A successful snapshot is the repair path: fresh WAL segment, state
    // captured, degraded mode exited.
    store.snapshot_to_disk().expect("repair snapshot");
    assert!(store.degraded().is_none());
    let exposition = store.metrics().registry().render();
    assert!(exposition.contains("evilbloom_store_degraded 0"), "{exposition}");
    ServeStore::insert(&store, b"acked-after-repair").expect("healthy again");

    // Crash-shaped recovery: every acknowledged write survives, including
    // pre-break ones whose segment the repair superseded.
    let (recovered, _) = recover(&PersistConfig::fsync(dir.path())).expect("recover");
    assert!(recovered.contains(b"acked-before-break"));
    assert!(recovered.contains(b"acked-after-repair"));
    assert!(recovered.degraded().is_none());
}

#[test]
fn failed_repair_snapshot_keeps_the_store_degraded() {
    use evilbloom_fault::{self as fault, FaultPlan, FaultPoint};
    use evilbloom_store::{ServeStore, WriteRefusal};

    let dir = TempDir::new("degraded-stuck");
    let mut store = unhardened_store();
    store.enable_persistence(&PersistConfig::fsync(dir.path())).expect("enable");

    let plan =
        FaultPlan::new(2).fail_nth(FaultPoint::WalFsync, 1).fail_nth(FaultPoint::SnapshotWrite, 1);
    let _chaos = fault::arm(plan);
    assert!(ServeStore::insert(&store, b"breaks-the-wal").is_err());
    // The repair rotates to a fresh segment, but the snapshot write itself
    // fails: the store must stay degraded (no half-repaired limbo).
    assert!(store.snapshot_to_disk().is_err());
    assert!(store.degraded().is_some());
    let refusal = ServeStore::insert(&store, b"still-refused").unwrap_err();
    assert!(matches!(refusal, WriteRefusal::Degraded(_)), "{refusal:?}");
    // The next attempt (fault exhausted) succeeds and exits degraded mode.
    store.snapshot_to_disk().expect("second repair attempt");
    assert!(store.degraded().is_none());
}

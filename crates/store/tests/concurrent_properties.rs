//! Seeded multi-threaded property tests for the concurrent filter and the
//! sharded store.
//!
//! The environment has no network access, so instead of `proptest` these
//! drive the properties from a seeded `StdRng`: every case is deterministic
//! and reproducible from the seed printed in the assertion message.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use evilbloom_filters::{BloomFilter, ConcurrentBloomFilter, FilterParams};
use evilbloom_hashes::{IndexStrategy, KirschMitzenmacher, Murmur3_128};
use evilbloom_store::{BloomStore, StoreConfig};

const CASES: u64 = 24;
const WORKERS: usize = 4;

/// Draws a batch of random byte-string items.
fn random_items(rng: &mut StdRng, max_items: usize, max_len: usize) -> Vec<Vec<u8>> {
    let count = rng.gen_range(1..max_items);
    (0..count)
        .map(|_| {
            let len = rng.gen_range(1..max_len);
            let mut item = vec![0u8; len];
            rng.fill(&mut item[..]);
            item
        })
        .collect()
}

/// After the same insert set, a concurrently filled filter is bit-for-bit
/// identical to a sequentially filled one (Bloom insertion is a commutative
/// monotone OR — thread interleaving cannot change the final state), and it
/// never reports a false negative.
#[test]
fn concurrent_filter_equals_sequential_after_parallel_inserts() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let items = random_items(&mut rng, 400, 48);
        let params = FilterParams::optimal(items.len() as u64, 0.01);
        let strategy: Arc<dyn IndexStrategy> = Arc::new(KirschMitzenmacher::new(Murmur3_128));

        let concurrent = ConcurrentBloomFilter::with_shared_strategy(params, Arc::clone(&strategy));
        std::thread::scope(|scope| {
            for worker in 0..WORKERS {
                let concurrent = &concurrent;
                let items = &items;
                scope.spawn(move || {
                    // Interleaved striping: workers contend on neighbouring
                    // items' bits.
                    for item in items.iter().skip(worker).step_by(WORKERS) {
                        concurrent.insert(item);
                    }
                });
            }
        });

        let mut sequential = BloomFilter::with_shared_strategy(params, strategy);
        for item in &items {
            sequential.insert(item);
        }

        assert_eq!(
            concurrent.snapshot(),
            *sequential.bits(),
            "seed {seed}: concurrent and sequential filters diverged"
        );
        assert_eq!(concurrent.inserted(), items.len() as u64, "seed {seed}");
        assert_eq!(
            concurrent.hamming_weight_approx(),
            sequential.hamming_weight(),
            "seed {seed}: running ones-counter drifted"
        );
        for item in &items {
            assert!(concurrent.contains(item), "seed {seed}: false negative");
        }
    }
}

/// The store never reports a false negative, under any shard count, any
/// hardening posture and concurrent insertion.
#[test]
fn store_has_no_false_negatives_under_concurrent_load() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let shards = 1usize << rng.gen_range(0u32..4);
        let items = random_items(&mut rng, 600, 40);
        let config = if rng.gen_range(0..2) == 0 {
            StoreConfig::hardened(shards, items.len().max(8) as u64, 0.01)
        } else {
            StoreConfig::unhardened(shards, items.len().max(8) as u64, 0.01)
        };
        let store = BloomStore::builder().config(config).build_with_rng(&mut rng);

        std::thread::scope(|scope| {
            for worker in 0..WORKERS {
                let store = &store;
                let items = &items;
                scope.spawn(move || {
                    for item in items.iter().skip(worker).step_by(WORKERS) {
                        store.insert(item);
                    }
                });
            }
        });

        for item in &items {
            assert!(store.contains(item), "seed {seed} shards {shards}: false negative");
        }
        let answers = store.query_batch(&items);
        assert!(answers.iter().all(|&a| a), "seed {seed} shards {shards}: batch false negative");
        assert_eq!(store.stats().total_inserted, items.len() as u64, "seed {seed}");
    }
}

/// A single-shard store over the same key and parameters is bit-for-bit the
/// hardened sequential filter: sharding adds routing, not semantics.
#[test]
fn single_shard_store_matches_hardened_filter() {
    use evilbloom_filters::{hardened_filter, FilterKey, HardeningLevel};

    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let items = random_items(&mut rng, 300, 32);
        let capacity = items.len() as u64;

        // Drive the store's internal key generation with a cloned RNG so we
        // can reconstruct the shard key for the reference filter. new()
        // draws the routing SipKey (two u64s) first, then the shard key.
        let mut store_rng = StdRng::seed_from_u64(3000 + seed);
        let store = BloomStore::builder()
            .shards(1)
            .capacity(capacity)
            .target_fpp(0.01)
            .hardened()
            .build_with_rng(&mut store_rng);

        let mut key_rng = StdRng::seed_from_u64(3000 + seed);
        let _routing = (key_rng.next_u64(), key_rng.next_u64());
        let key = FilterKey::generate(&mut key_rng);
        let mut reference = hardened_filter(capacity, 0.01, HardeningLevel::KeyedSipHash, &key);

        for item in &items {
            store.insert(item);
            reference.insert(item);
        }
        let snapshot = store.query_batch(&items).iter().all(|&a| a);
        assert!(snapshot, "seed {seed}: store lost an item");
        for item in &items {
            assert_eq!(store.contains(item), reference.contains(item), "seed {seed}");
        }
        // Every probe (member or not) gets the same answer: same key, same
        // params, same strategy — the store is the filter.
        for probe in 0..200u64 {
            let probe = format!("probe-{probe}");
            assert_eq!(
                store.contains(probe.as_bytes()),
                reference.contains(probe.as_bytes()),
                "seed {seed}: {probe}"
            );
        }
    }
}

/// Key rotation: while a shard rebuilds under a new key, queries for
/// pre-rotation items keep answering out of the draining generation, new
/// inserts land in the re-keyed generation, and completing the rotation
/// after a replay loses nothing.
#[test]
fn rotation_keeps_answering_during_rebuild() {
    for seed in 0..8 {
        let mut rng = StdRng::seed_from_u64(4000 + seed);
        let store = BloomStore::builder()
            .shards(4)
            .capacity(2_000)
            .target_fpp(0.01)
            .hardened()
            .build_with_rng(&mut rng);
        let old_items: Vec<String> = (0..500).map(|i| format!("old-{seed}-{i}")).collect();
        store.insert_batch(&old_items);

        for shard in 0..store.shard_count() {
            assert_eq!(store.begin_rotation(shard, &mut rng), Some(1), "seed {seed}");
        }

        // Rebuild runs in a background thread (replaying the source of
        // truth) while a foreground reader keeps querying the old items.
        std::thread::scope(|scope| {
            let store = &store;
            let old_items = &old_items;
            let rebuild = scope.spawn(move || {
                store.insert_batch(old_items);
            });
            for item in old_items {
                assert!(
                    store.contains(item.as_bytes()),
                    "seed {seed}: old generation stopped answering during rebuild"
                );
            }
            rebuild.join().expect("rebuild thread");
        });

        // New traffic during/after rotation lands in the new generation.
        store.insert(format!("new-{seed}").as_bytes());

        for shard in 0..store.shard_count() {
            assert!(store.complete_rotation(shard), "seed {seed}");
            assert_eq!(store.generation_id(shard), 1);
        }
        for item in &old_items {
            assert!(store.contains(item.as_bytes()), "seed {seed}: lost after completion");
        }
        assert!(store.contains(format!("new-{seed}").as_bytes()), "seed {seed}");
    }
}

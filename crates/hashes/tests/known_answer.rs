//! Known-answer tests against official test vectors.
//!
//! Every attack result in this workspace is only as trustworthy as the hash
//! implementations underneath it, so the primitives are pinned here against
//! published vectors:
//!
//! * MD5 — RFC 1321, appendix A.5;
//! * SHA-1 / SHA-224 / SHA-256 / SHA-384 / SHA-512 — FIPS 180 examples
//!   (the NIST "abc" / two-block / million-`a` messages);
//! * MurmurHash3 (x86-32 and x64-128) — the canonical C++ reference
//!   implementation outputs (verified against an independent from-spec
//!   reimplementation);
//! * SipHash-2-4 / SipHash-1-3 — the reference vectors of the SipHash paper
//!   (key `00 01 … 0f`, messages `ε`, `00`, `00 01`, …).

use evilbloom_hashes::{
    hex, md5, murmur3_32, murmur3_x64_128, sha1, sha224, sha256, sha384, sha512, siphash13,
    siphash24, SipKey,
};

/// RFC 1321 appendix A.5 — the full MD5 test suite.
#[test]
fn md5_rfc1321_suite() {
    for (message, expected) in [
        ("", "d41d8cd98f00b204e9800998ecf8427e"),
        ("a", "0cc175b9c0f1b6a831c399e269772661"),
        ("abc", "900150983cd24fb0d6963f7d28e17f72"),
        ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
        ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"),
        (
            "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
            "d174ab98d277d9f5a5611c2c9f419d9f",
        ),
        (
            "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
            "57edf4a22be3c955ac49da2e2107b67a",
        ),
    ] {
        assert_eq!(hex::encode(&md5(message.as_bytes())), expected, "MD5({message:?})");
    }
}

/// FIPS 180 SHA-1 examples, including the million-`a` message.
#[test]
fn sha1_fips180_vectors() {
    for (message, expected) in [
        (String::new(), "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
        ("abc".to_owned(), "a9993e364706816aba3e25717850c26c9cd0d89d"),
        (
            "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq".to_owned(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
        ),
        ("a".repeat(1_000_000), "34aa973cd4c4daa4f61eeb2bdbad27316534016f"),
    ] {
        assert_eq!(hex::encode(&sha1(message.as_bytes())), expected);
    }
}

/// FIPS 180 SHA-256 examples, including the million-`a` message.
#[test]
fn sha256_fips180_vectors() {
    for (message, expected) in [
        (String::new(), "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
        ("abc".to_owned(), "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
        (
            "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq".to_owned(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        ("a".repeat(1_000_000), "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"),
    ] {
        assert_eq!(hex::encode(&sha256(message.as_bytes())), expected);
    }
}

/// FIPS 180 SHA-224 / SHA-384 / SHA-512 "abc" examples.
#[test]
fn sha2_family_abc_vectors() {
    assert_eq!(
        hex::encode(&sha224(b"abc")),
        "23097d223405d8228642a477bda255b32aadbce4bda0b3f7e36c9da7"
    );
    assert_eq!(
        hex::encode(&sha384(b"abc")),
        "cb00753f45a35e8bb5a03d699ac65007272c32ab0eded1631a8b605a43ff5bed\
         8086072ba1e7cc2358baeca134c825a7"
    );
    assert_eq!(
        hex::encode(&sha512(b"abc")),
        "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a\
         2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
    );
}

/// FIPS 180 two-block SHA-384/SHA-512 message
/// (`abcdefgh…` 112 characters).
#[test]
fn sha2_family_two_block_vectors() {
    let message = "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
                   hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
    assert_eq!(
        hex::encode(&sha384(message.as_bytes())),
        "09330c33f71147e83d192fc782cd1b4753111b173b3b05d22fa08086e3b0f712\
         fcc7c71a557e2db966c3e9fa91746039"
    );
    assert_eq!(
        hex::encode(&sha512(message.as_bytes())),
        "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018\
         501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909"
    );
}

/// MurmurHash3 x86-32 vectors from the canonical C++ implementation.
#[test]
fn murmur3_32_reference_vectors() {
    assert_eq!(murmur3_32(b"", 0), 0);
    assert_eq!(murmur3_32(b"", 1), 0x514e_28b7);
    assert_eq!(murmur3_32(b"", 0xffff_ffff), 0x81f1_6f39);
    assert_eq!(murmur3_32(b"test", 0), 0xba6b_d213);
    assert_eq!(murmur3_32(b"The quick brown fox jumps over the lazy dog", 0), 0x2e4f_f723);
}

/// MurmurHash3 x64-128 vectors from the canonical C++ implementation
/// (cross-checked against an independent from-spec reimplementation).
#[test]
fn murmur3_x64_128_reference_vectors() {
    assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
    assert_eq!(
        murmur3_x64_128(b"The quick brown fox jumps over the lazy dog", 0),
        (0xe34b_bc7b_bc07_1b6c, 0x7a43_3ca9_c49a_9347)
    );
    assert_eq!(murmur3_x64_128(b"hello", 0), (0xcbd8_a7b3_41bd_9b02, 0x5b1e_906a_48ae_1d19));
    assert_eq!(
        murmur3_x64_128(b"Hello, world!", 123),
        (0x421c_8c73_8743_acad, 0xf197_32fd_d373_c3f5)
    );
}

/// The SipHash paper's reference key: `00 01 02 … 0f`.
fn sip_reference_key() -> SipKey {
    let bytes: Vec<u8> = (0u8..16).collect();
    SipKey::from_bytes(&bytes.try_into().expect("16 bytes"))
}

/// The SipHash paper's reference messages: `ε`, `00`, `00 01`, … (prefixes of
/// the byte sequence 0, 1, 2, …).
fn sip_reference_message(len: usize) -> Vec<u8> {
    (0..len as u8).collect()
}

/// SipHash-2-4 against the official test-vector table of the SipHash paper.
#[test]
fn siphash24_paper_vectors() {
    let key = sip_reference_key();
    for (len, expected) in [
        (0usize, 0x726f_db47_dd0e_0e31u64),
        (1, 0x74f8_39c5_93dc_67fd),
        (2, 0x0d6c_8009_d9a9_4f5a),
        (3, 0x8567_6696_d7fb_7e2d),
        (7, 0xab02_00f5_8b01_d137),
        (8, 0x93f5_f579_9a93_2462),
        (15, 0xa129_ca61_49be_45e5),
        (63, 0x958a_324c_eb06_4572),
    ] {
        assert_eq!(
            siphash24(key, &sip_reference_message(len)),
            expected,
            "SipHash-2-4, {len}-byte reference message"
        );
    }
}

/// SipHash-1-3 under the same reference key (vectors from the reference
/// implementation's 1-3 parametrisation).
#[test]
fn siphash13_reference_vectors() {
    let key = sip_reference_key();
    for (len, expected) in [
        (0usize, 0xabac_0158_050f_c4dcu64),
        (1, 0xc9f4_9bf3_7d57_ca93),
        (15, 0xd320_d86d_2a51_9956),
    ] {
        assert_eq!(
            siphash13(key, &sip_reference_message(len)),
            expected,
            "SipHash-1-3, {len}-byte reference message"
        );
    }
}

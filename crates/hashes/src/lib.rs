//! # evilbloom-hashes
//!
//! Hash-function substrate for the `evilbloom` reproduction of *"The Power of
//! Evil Choices in Bloom Filters"* (Gerbet, Kumar & Lauradoux, DSN 2015).
//!
//! The crate provides, from scratch and with reference test vectors:
//!
//! * **non-cryptographic hashes** — MurmurHash2 (32/64), MurmurHash3
//!   (x86-32 / x64-128), FNV-1a, Jenkins one-at-a-time and `lookup3`;
//! * **cryptographic hashes** — MD5, SHA-1, SHA-224/256, SHA-384/512 and a
//!   generic HMAC;
//! * **keyed PRFs** — SipHash-2-4 and SipHash-1-3;
//! * **digest plumbing** — truncation with security accounting
//!   ([`truncate`]), the Kirsch–Mitzenmacher trick, Squid's MD5 split, and
//!   the paper's *digest recycling* countermeasure ([`recycle`]);
//! * **index strategies** ([`index`]) — the pluggable mapping from an item to
//!   its `k` Bloom-filter indexes, in every flavour the paper attacks or
//!   recommends;
//! * **double hashing** ([`double`]) — the Kirsch–Mitzenmacher trick as a
//!   reusable `(h1, h2)` pair source ([`HashStrategy`]), the substrate of the
//!   cache-line blocked filter and the hash-precomputing batch APIs;
//! * **inversions** ([`inversion`]) — constant-time pre-images for
//!   MurmurHash2/64A and the MurmurHash3 finalizers, as used by the Dablooms
//!   deletion attack;
//! * **quality tests** ([`quality`]) — avalanche and chi-square uniformity, a
//!   miniature SMHasher showing that statistical quality does not imply
//!   adversarial resistance.
//!
//! ## Example
//!
//! ```
//! use evilbloom_hashes::{IndexStrategy, KirschMitzenmacher, Murmur3_32};
//!
//! // Dablooms-style index derivation: MurmurHash3 + Kirsch–Mitzenmacher.
//! let strategy = KirschMitzenmacher::new(Murmur3_32);
//! let indexes = strategy.indexes(b"http://evil.example/", 4, 3200);
//! assert_eq!(indexes.len(), 4);
//! assert!(indexes.iter().all(|&i| i < 3200));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod double;
pub mod fnv;
pub mod hex;
pub mod hmac;
pub mod index;
pub mod inversion;
pub mod jenkins;
pub mod md5;
pub mod murmur2;
pub mod murmur3;
pub mod quality;
pub mod recycle;
pub mod sha1;
pub mod sha2;
pub mod siphash;
pub mod traits;
pub mod truncate;

pub use double::{DoubleHasher, HashStrategy, KeyedPair, KmIndexes, Murmur128Pair};
pub use fnv::{Fnv1a32, Fnv1a64};
pub use hmac::{hmac, Hmac};
pub use index::{
    BoxedIndexStrategy, IndexStrategy, KeyedIndexes, KirschMitzenmacher, Md5Split, RecycledCrypto,
    SaltedCrypto, SaltedHashes,
};
pub use jenkins::{JenkinsLookup3, JenkinsOneAtATime};
pub use md5::{md5, Md5, Md5Context};
pub use murmur2::{murmur2_32, murmur64a, Murmur2_32, Murmur64A};
pub use murmur3::{murmur3_32, murmur3_x64_128, Murmur3_128, Murmur3_32};
pub use recycle::{recycled_indexes, RecyclingReader};
pub use sha1::{sha1, Sha1, Sha1Context};
pub use sha2::{
    sha224, sha256, sha384, sha512, Sha224, Sha256, Sha256Context, Sha384, Sha512, Sha512Context,
};
pub use siphash::{siphash13, siphash24, SipHash13, SipHash24, SipKey};
pub use traits::{CryptoHash, DigestBytes, Hasher64, KeyedHash64};

/// Enumerates one instance of every [`CryptoHash`] in the crate, in the order
/// used by the paper's Table 2 and Figure 9 (MD5, SHA-1, SHA-256, SHA-384,
/// SHA-512). Convenient for benchmarks and reports.
pub fn all_crypto_hashes() -> Vec<Box<dyn CryptoHash>> {
    vec![Box::new(Md5), Box::new(Sha1), Box::new(Sha256), Box::new(Sha384), Box::new(Sha512)]
}

/// Enumerates one instance of every unkeyed [`Hasher64`] in the crate.
pub fn all_fast_hashers() -> Vec<Box<dyn Hasher64>> {
    vec![
        Box::new(Murmur2_32),
        Box::new(Murmur64A),
        Box::new(Murmur3_32),
        Box::new(Murmur3_128),
        Box::new(Fnv1a32),
        Box::new(Fnv1a64),
        Box::new(JenkinsOneAtATime),
        Box::new(JenkinsLookup3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_functions_have_unique_names() {
        let mut names: Vec<&str> = all_crypto_hashes().iter().map(|h| h.name()).collect();
        names.extend(all_fast_hashers().iter().map(|h| h.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }

    #[test]
    fn crypto_catalogue_is_ordered_by_digest_size() {
        let sizes: Vec<usize> = all_crypto_hashes().iter().map(|h| h.output_len()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
    }
}

//! Digest truncation and its security consequences.
//!
//! The paper's central observation about "misused hash functions" is that
//! developers truncate cryptographic digests — explicitly, or implicitly by
//! reducing them modulo a small filter size `m` — and that the security of a
//! truncated digest collapses to the truncated length: pre-image and second
//! pre-image cost `2^{l'}`, collisions `2^{l'/2}` (NIST SP 800-107).

/// Security levels (in bits of work) implied by a digest of `bits` bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecurityLevel {
    /// Cost exponent of finding a pre-image: `2^preimage` work.
    pub preimage: f64,
    /// Cost exponent of finding a second pre-image.
    pub second_preimage: f64,
    /// Cost exponent of finding a collision (birthday bound).
    pub collision: f64,
}

impl SecurityLevel {
    /// Security level of an `bits`-bit digest under generic attacks.
    pub fn for_bits(bits: u32) -> Self {
        let b = f64::from(bits);
        SecurityLevel { preimage: b, second_preimage: b, collision: b / 2.0 }
    }

    /// Whether every generic attack costs at least `2^threshold_bits` work.
    pub fn is_at_least(&self, threshold_bits: f64) -> bool {
        self.preimage >= threshold_bits
            && self.second_preimage >= threshold_bits
            && self.collision >= threshold_bits
    }
}

/// Truncates a digest to its first `bits` bits, zeroing the spare low bits of
/// the last byte (most-significant-bit-first convention, as in NIST SP
/// 800-107 left-truncation).
///
/// # Panics
///
/// Panics if `bits` exceeds the digest length in bits.
pub fn truncate_bits(digest: &[u8], bits: u32) -> Vec<u8> {
    let total_bits = digest.len() as u32 * 8;
    assert!(bits <= total_bits, "cannot truncate {total_bits}-bit digest to {bits} bits");
    let full_bytes = (bits / 8) as usize;
    let rem = bits % 8;
    let mut out = digest[..full_bytes].to_vec();
    if rem != 0 {
        let mask = 0xffu8 << (8 - rem);
        out.push(digest[full_bytes] & mask);
    }
    out
}

/// Interprets the first 8 bytes (or fewer) of a digest as a big-endian
/// integer — the "take a prefix and reduce it" idiom found in Bloom-filter
/// code.
pub fn prefix_to_u64(digest: &[u8]) -> u64 {
    let take = digest.len().min(8);
    let mut word = [0u8; 8];
    word[8 - take..].copy_from_slice(&digest[..take]);
    u64::from_be_bytes(word)
}

/// Reads `count` consecutive big-endian `u32` words from a digest, the way
/// Squid splits an MD5 digest into four filter indexes.
///
/// # Panics
///
/// Panics if the digest is shorter than `4 * count` bytes.
pub fn split_u32_words(digest: &[u8], count: usize) -> Vec<u32> {
    assert!(digest.len() >= count * 4, "digest too short to split into {count} u32 words");
    (0..count)
        .map(|i| u32::from_be_bytes(digest[i * 4..(i + 1) * 4].try_into().expect("4-byte word")))
        .collect()
}

/// Effective security of using a digest *modulo m* as a Bloom-filter index:
/// the adversary only needs to control `log2(m)` bits, so the work factor for
/// hitting one chosen index is `m` trials regardless of the original digest
/// length.
pub fn effective_index_bits(m: u64) -> f64 {
    (m as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_whole_bytes() {
        let d = vec![0xAA, 0xBB, 0xCC, 0xDD];
        assert_eq!(truncate_bits(&d, 16), vec![0xAA, 0xBB]);
        assert_eq!(truncate_bits(&d, 32), d);
        assert_eq!(truncate_bits(&d, 0), Vec::<u8>::new());
    }

    #[test]
    fn truncate_partial_byte_masks_low_bits() {
        let d = vec![0b1111_1111, 0b1111_1111];
        assert_eq!(truncate_bits(&d, 12), vec![0xFF, 0b1111_0000]);
        assert_eq!(truncate_bits(&d, 3), vec![0b1110_0000]);
    }

    #[test]
    #[should_panic(expected = "cannot truncate")]
    fn truncate_beyond_length_panics() {
        truncate_bits(&[0xAA], 9);
    }

    #[test]
    fn security_level_halves_collisions() {
        let lvl = SecurityLevel::for_bits(128);
        assert_eq!(lvl.preimage, 128.0);
        assert_eq!(lvl.collision, 64.0);
        assert!(lvl.is_at_least(64.0));
        assert!(!lvl.is_at_least(80.0));
    }

    #[test]
    fn truncation_destroys_security() {
        // A 512-bit digest truncated to 16 bits offers only 2^16 pre-image work.
        let truncated = SecurityLevel::for_bits(16);
        assert!(!truncated.is_at_least(20.0));
    }

    #[test]
    fn prefix_to_u64_is_big_endian() {
        assert_eq!(prefix_to_u64(&[0, 0, 0, 0, 0, 0, 0, 1]), 1);
        assert_eq!(prefix_to_u64(&[1, 0, 0, 0, 0, 0, 0, 0]), 1 << 56);
        assert_eq!(prefix_to_u64(&[0xAB]), 0xAB);
        assert_eq!(
            prefix_to_u64(&[0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 0xff]),
            0x1234_5678_9abc_def0
        );
    }

    #[test]
    fn split_u32_words_matches_manual_read() {
        let digest: Vec<u8> = (0u8..16).collect();
        let words = split_u32_words(&digest, 4);
        assert_eq!(words, vec![0x0001_0203, 0x0405_0607, 0x0809_0a0b, 0x0c0d_0e0f]);
    }

    #[test]
    #[should_panic(expected = "digest too short")]
    fn split_too_many_words_panics() {
        split_u32_words(&[0u8; 8], 3);
    }

    #[test]
    fn effective_index_bits_for_typical_filters() {
        assert_eq!(effective_index_bits(1 << 20), 20.0);
        assert!((effective_index_bits(3200) - 11.64).abs() < 0.01);
    }
}

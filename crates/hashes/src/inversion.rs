//! Inversion of non-cryptographic hash functions.
//!
//! The paper notes (Section 6.2) that "the forgery of the required URLs is
//! straightforward since MurmurHash can be inverted in constant time". This
//! module provides those inversions:
//!
//! * the MurmurHash3 finalizers `fmix32`/`fmix64` are bijections whose
//!   multiplicative constants are invertible modulo 2^32 / 2^64;
//! * for single-block inputs, MurmurHash2 (32-bit) and MurmurHash64A can be
//!   run backwards, yielding a 4- or 8-byte **pre-image** of any target
//!   digest under any seed — no search required.

/// Multiplicative inverse of an odd 32-bit constant modulo 2^32, computed by
/// Newton–Hensel lifting (each step doubles the number of correct low bits).
const fn inv_mod_2_32(a: u32) -> u32 {
    let mut x: u32 = a; // correct to 3 bits for odd a
    let mut i = 0;
    while i < 5 {
        x = x.wrapping_mul(2u32.wrapping_sub(a.wrapping_mul(x)));
        i += 1;
    }
    x
}

/// Multiplicative inverse of an odd 64-bit constant modulo 2^64.
const fn inv_mod_2_64(a: u64) -> u64 {
    let mut x: u64 = a;
    let mut i = 0;
    while i < 6 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
        i += 1;
    }
    x
}

/// Modular inverse of `0x85eb_ca6b` modulo 2^32 (first `fmix32` constant).
const INV_C1_32: u32 = inv_mod_2_32(0x85eb_ca6b);
/// Modular inverse of `0xc2b2_ae35` modulo 2^32 (second `fmix32` constant).
const INV_C2_32: u32 = inv_mod_2_32(0xc2b2_ae35);
/// Modular inverse of `0xff51_afd7_ed55_8ccd` modulo 2^64.
const INV_C1_64: u64 = inv_mod_2_64(0xff51_afd7_ed55_8ccd);
/// Modular inverse of `0xc4ce_b9fe_1a85_ec53` modulo 2^64.
const INV_C2_64: u64 = inv_mod_2_64(0xc4ce_b9fe_1a85_ec53);
/// Modular inverse of the MurmurHash2 constant `0x5bd1_e995` modulo 2^32.
const INV_M2_32: u32 = inv_mod_2_32(0x5bd1_e995);
/// Modular inverse of the MurmurHash64A constant `0xc6a4_a793_5bd1_e995`.
const INV_M64A: u64 = inv_mod_2_64(0xc6a4_a793_5bd1_e995);

/// Inverts `x ^= x >> shift` for 32-bit `x`.
#[inline]
fn unxorshift32(mut value: u32, shift: u32) -> u32 {
    // Applying the forward operation repeatedly recovers the original value
    // because the high `shift` bits are already correct after the first pass.
    let mut recovered = value;
    let mut steps = 32 / shift + 1;
    while steps > 0 {
        recovered = value ^ (recovered >> shift);
        steps -= 1;
    }
    value = recovered;
    value
}

/// Inverts `x ^= x >> shift` for 64-bit `x`.
#[inline]
fn unxorshift64(value: u64, shift: u32) -> u64 {
    let mut recovered = value;
    let mut steps = 64 / shift + 1;
    while steps > 0 {
        recovered = value ^ (recovered >> shift);
        steps -= 1;
    }
    recovered
}

/// Inverse of [`crate::murmur3::fmix32`].
pub fn unfmix32(mut h: u32) -> u32 {
    h = unxorshift32(h, 16);
    h = h.wrapping_mul(INV_C2_32);
    h = unxorshift32(h, 13);
    h = h.wrapping_mul(INV_C1_32);
    h = unxorshift32(h, 16);
    h
}

/// Inverse of [`crate::murmur3::fmix64`].
pub fn unfmix64(mut k: u64) -> u64 {
    k = unxorshift64(k, 33);
    k = k.wrapping_mul(INV_C2_64);
    k = unxorshift64(k, 33);
    k = k.wrapping_mul(INV_C1_64);
    k = unxorshift64(k, 33);
    k
}

/// Computes a 4-byte pre-image of `target` under 32-bit MurmurHash2 with
/// `seed`: the returned bytes `x` satisfy `murmur2_32(&x, seed) == target`.
///
/// This is the constant-time inversion the paper invokes for the Dablooms
/// deletion attack — no brute force involved.
pub fn murmur2_32_preimage(target: u32, seed: u32) -> [u8; 4] {
    const M: u32 = 0x5bd1_e995;
    const R: u32 = 24;
    let len: u32 = 4;

    // Undo the finalization h ^= h>>13; h *= M; h ^= h>>15.
    let mut h = target;
    h = unxorshift32(h, 15);
    h = h.wrapping_mul(INV_M2_32);
    h = unxorshift32(h, 13);

    // Forward: h = (seed ^ len) * M ^ k', where k' = mixed data word.
    let h0 = (seed ^ len).wrapping_mul(M);
    let k_mixed = h ^ h0;

    // Undo the data mixing k *= M; k ^= k>>R; k *= M.
    let mut k = k_mixed.wrapping_mul(INV_M2_32);
    k = unxorshift32(k, R);
    k = k.wrapping_mul(INV_M2_32);

    k.to_le_bytes()
}

/// Computes an 8-byte pre-image of `target` under MurmurHash64A with `seed`.
pub fn murmur64a_preimage(target: u64, seed: u64) -> [u8; 8] {
    const M: u64 = 0xc6a4_a793_5bd1_e995;
    const R: u32 = 47;
    let len: u64 = 8;

    // Undo the finalization h ^= h>>R; h *= M; h ^= h>>R.
    let mut h = target;
    h = unxorshift64(h, R);
    h = h.wrapping_mul(INV_M64A);
    h = unxorshift64(h, R);

    // Forward for a single 8-byte block: h = ((seed ^ len*M) ^ k') * M.
    let h0 = seed ^ len.wrapping_mul(M);
    let k_mixed = h.wrapping_mul(INV_M64A) ^ h0;

    // Undo k *= M; k ^= k>>R; k *= M.
    let mut k = k_mixed.wrapping_mul(INV_M64A);
    k = unxorshift64(k, R);
    k = k.wrapping_mul(INV_M64A);

    k.to_le_bytes()
}

/// Computes `n` distinct pre-images of the same 32-bit MurmurHash2 target by
/// exploiting seed-independence of the construction: each pre-image is an
/// 8-byte message whose first word is free and whose second word compensates.
///
/// This realizes the paper's notion of *multiple pre-images* for a
/// non-cryptographic hash: the cost is `O(n)`, not `O(n * 2^l)`.
pub fn murmur2_32_multi_preimage(target: u32, seed: u32, n: usize) -> Vec<[u8; 8]> {
    const M: u32 = 0x5bd1_e995;
    const R: u32 = 24;
    let len: u32 = 8;

    let mut out = Vec::with_capacity(n);
    for free in 0..n as u32 {
        // Forward structure for 8 bytes:
        //   h = seed ^ len
        //   h = h*M ^ mix(w0)   (after first word)
        //   h = h*M ^ mix(w1)   (after second word)
        //   finalize(h)
        // Pick w0 = free, then solve for mix(w1) so that the pre-final state
        // matches the one needed to finalize to `target`.
        let mix = |mut k: u32| {
            k = k.wrapping_mul(M);
            k ^= k >> R;
            k.wrapping_mul(M)
        };
        let unmix = |mut k: u32| {
            k = k.wrapping_mul(INV_M2_32);
            k = unxorshift32(k, R);
            k.wrapping_mul(INV_M2_32)
        };

        // Required state right before finalization.
        let mut pre_final = target;
        pre_final = unxorshift32(pre_final, 15);
        pre_final = pre_final.wrapping_mul(INV_M2_32);
        pre_final = unxorshift32(pre_final, 13);

        let h_after_w0 = (seed ^ len).wrapping_mul(M) ^ mix(free);
        let needed_mix_w1 = pre_final ^ h_after_w0.wrapping_mul(M);
        let w1 = unmix(needed_mix_w1);

        let mut msg = [0u8; 8];
        msg[..4].copy_from_slice(&free.to_le_bytes());
        msg[4..].copy_from_slice(&w1.to_le_bytes());
        out.push(msg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::murmur2::{murmur2_32, murmur64a};
    use crate::murmur3::{fmix32, fmix64};

    #[test]
    fn modular_inverse_constants_are_correct() {
        assert_eq!(0x85eb_ca6bu32.wrapping_mul(INV_C1_32), 1);
        assert_eq!(0xc2b2_ae35u32.wrapping_mul(INV_C2_32), 1);
        assert_eq!(0xff51_afd7_ed55_8ccdu64.wrapping_mul(INV_C1_64), 1);
        assert_eq!(0xc4ce_b9fe_1a85_ec53u64.wrapping_mul(INV_C2_64), 1);
        assert_eq!(0x5bd1_e995u32.wrapping_mul(INV_M2_32), 1);
        assert_eq!(0xc6a4_a793_5bd1_e995u64.wrapping_mul(INV_M64A), 1);
    }

    #[test]
    fn unfmix32_inverts_fmix32() {
        for x in [0u32, 1, 42, 0xdead_beef, u32::MAX, 0x1234_5678] {
            assert_eq!(unfmix32(fmix32(x)), x);
            assert_eq!(fmix32(unfmix32(x)), x);
        }
    }

    #[test]
    fn unfmix64_inverts_fmix64() {
        for x in [0u64, 1, 42, 0xdead_beef_cafe_babe, u64::MAX, 0x0123_4567_89ab_cdef] {
            assert_eq!(unfmix64(fmix64(x)), x);
            assert_eq!(fmix64(unfmix64(x)), x);
        }
    }

    #[test]
    fn murmur2_32_preimage_hits_target() {
        for target in [0u32, 1, 0xdead_beef, 0x7fff_ffff, u32::MAX] {
            for seed in [0u32, 1, 0x9747_b28c] {
                let msg = murmur2_32_preimage(target, seed);
                assert_eq!(murmur2_32(&msg, seed), target, "target {target:#x} seed {seed:#x}");
            }
        }
    }

    #[test]
    fn murmur64a_preimage_hits_target() {
        for target in [0u64, 1, 0xdead_beef_cafe_babe, u64::MAX] {
            for seed in [0u64, 1, 0xdead_beef] {
                let msg = murmur64a_preimage(target, seed);
                assert_eq!(murmur64a(&msg, seed), target, "target {target:#x} seed {seed:#x}");
            }
        }
    }

    #[test]
    fn multi_preimages_all_hit_target_and_are_distinct() {
        let target = 0xcafe_f00du32;
        let seed = 7;
        let preimages = murmur2_32_multi_preimage(target, seed, 50);
        assert_eq!(preimages.len(), 50);
        let unique: std::collections::HashSet<_> = preimages.iter().collect();
        assert_eq!(unique.len(), 50);
        for msg in preimages {
            assert_eq!(murmur2_32(&msg, seed), target);
        }
    }
}

//! Jenkins hash functions: `one_at_a_time` and `lookup3` (`hashlittle`).
//!
//! Bob Jenkins' functions are cited by the paper (reference \[6\]) as typical
//! non-cryptographic choices. `lookup3` is the function historically used by
//! several caching systems; `one_at_a_time` shows up in countless ad-hoc
//! Bloom-filter implementations.

use crate::traits::Hasher64;

/// Jenkins "one-at-a-time" hash of `data`, starting from `seed`.
pub fn one_at_a_time(data: &[u8], seed: u32) -> u32 {
    let mut hash = seed;
    for &b in data {
        hash = hash.wrapping_add(u32::from(b));
        hash = hash.wrapping_add(hash << 10);
        hash ^= hash >> 6;
    }
    hash = hash.wrapping_add(hash << 3);
    hash ^= hash >> 11;
    hash = hash.wrapping_add(hash << 15);
    hash
}

#[inline(always)]
fn rot(x: u32, k: u32) -> u32 {
    x.rotate_left(k)
}

#[inline(always)]
fn mix(a: &mut u32, b: &mut u32, c: &mut u32) {
    *a = a.wrapping_sub(*c);
    *a ^= rot(*c, 4);
    *c = c.wrapping_add(*b);
    *b = b.wrapping_sub(*a);
    *b ^= rot(*a, 6);
    *a = a.wrapping_add(*c);
    *c = c.wrapping_sub(*b);
    *c ^= rot(*b, 8);
    *b = b.wrapping_add(*a);
    *a = a.wrapping_sub(*c);
    *a ^= rot(*c, 16);
    *c = c.wrapping_add(*b);
    *b = b.wrapping_sub(*a);
    *b ^= rot(*a, 19);
    *a = a.wrapping_add(*c);
    *c = c.wrapping_sub(*b);
    *c ^= rot(*b, 4);
    *b = b.wrapping_add(*a);
}

#[inline(always)]
fn final_mix(a: &mut u32, b: &mut u32, c: &mut u32) {
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 14));
    *a ^= *c;
    *a = a.wrapping_sub(rot(*c, 11));
    *b ^= *a;
    *b = b.wrapping_sub(rot(*a, 25));
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 16));
    *a ^= *c;
    *a = a.wrapping_sub(rot(*c, 4));
    *b ^= *a;
    *b = b.wrapping_sub(rot(*a, 14));
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 24));
}

#[inline]
fn read_u32_le(data: &[u8], at: usize) -> u32 {
    let mut word = [0u8; 4];
    let take = (data.len() - at).min(4);
    word[..take].copy_from_slice(&data[at..at + take]);
    u32::from_le_bytes(word)
}

/// Jenkins `lookup3` `hashlittle`: 32-bit hash of `data` with an initial value.
///
/// This is a byte-oriented port of the reference implementation; it produces
/// the same values as `hashlittle()` on little-endian machines (the case the
/// reference test vectors cover).
pub fn lookup3(data: &[u8], initval: u32) -> u32 {
    let (c, _b) = lookup3_pair(data, initval, 0);
    c
}

/// `hashlittle2`: returns both 32-bit results `(c, b)`, usable as two
/// independent-looking hash values — exactly the trick Bloom-filter code uses
/// to get two indexes from one invocation.
pub fn lookup3_pair(data: &[u8], initval_c: u32, initval_b: u32) -> (u32, u32) {
    let mut length = data.len();
    let base = 0xdead_beef_u32.wrapping_add(length as u32).wrapping_add(initval_c);
    let mut a = base;
    let mut b = base;
    let mut c = base.wrapping_add(initval_b);

    let mut offset = 0usize;
    while length > 12 {
        a = a.wrapping_add(read_u32_le(data, offset));
        b = b.wrapping_add(read_u32_le(data, offset + 4));
        c = c.wrapping_add(read_u32_le(data, offset + 8));
        mix(&mut a, &mut b, &mut c);
        length -= 12;
        offset += 12;
    }

    // Last block: affect all of (a, b, c). The reference implementation
    // reads whole words and masks; reading byte-wise gives the same result.
    if length == 0 {
        // The reference returns (c, b) untouched for zero-length tails that
        // follow at least one mixed block, and the initial state for empty
        // input.
        return (c, b);
    }
    let tail = &data[offset..];
    if length > 8 {
        a = a.wrapping_add(read_u32_le(tail, 0));
        b = b.wrapping_add(read_u32_le(tail, 4));
        c = c.wrapping_add(read_u32_le(tail, 8));
    } else if length > 4 {
        a = a.wrapping_add(read_u32_le(tail, 0));
        b = b.wrapping_add(read_u32_le(tail, 4));
    } else {
        a = a.wrapping_add(read_u32_le(tail, 0));
    }
    final_mix(&mut a, &mut b, &mut c);
    (c, b)
}

/// Jenkins `one_at_a_time` as a seedable [`Hasher64`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JenkinsOneAtATime;

impl Hasher64 for JenkinsOneAtATime {
    fn hash_with_seed(&self, data: &[u8], seed: u64) -> u64 {
        u64::from(one_at_a_time(data, seed as u32))
    }

    fn name(&self) -> &'static str {
        "Jenkins-OAAT"
    }

    fn output_bits(&self) -> u32 {
        32
    }
}

/// Jenkins `lookup3` as a seedable [`Hasher64`].
///
/// The 64-bit seed is split into the two 32-bit init values of `hashlittle2`
/// and the two 32-bit results are concatenated, giving a 64-bit digest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JenkinsLookup3;

impl Hasher64 for JenkinsLookup3 {
    fn hash_with_seed(&self, data: &[u8], seed: u64) -> u64 {
        let (c, b) = lookup3_pair(data, seed as u32, (seed >> 32) as u32);
        (u64::from(b) << 32) | u64::from(c)
    }

    fn name(&self) -> &'static str {
        "Jenkins-lookup3"
    }

    fn output_bits(&self) -> u32 {
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_at_a_time_known_values() {
        // Values computed with the canonical C implementation.
        assert_eq!(one_at_a_time(b"", 0), 0);
        assert_eq!(one_at_a_time(b"a", 0), 0xca2e9442);
        assert_eq!(one_at_a_time(b"The quick brown fox jumps over the lazy dog", 0), 0x519e91f5);
    }

    // lookup3 self-test from the reference lookup3.c: hashlittle("", 0) = 0xdeadbeef,
    // hashlittle("", 0xdeadbeef) = 0xbd5b7dde,
    // hashlittle("Four score and seven years ago", 0) = 0x17770551.
    #[test]
    fn lookup3_reference_vectors() {
        assert_eq!(lookup3(b"", 0), 0xdead_beef);
        assert_eq!(lookup3(b"", 0xdead_beef), 0xbd5b_7dde);
        assert_eq!(lookup3(b"Four score and seven years ago", 0), 0x1777_0551);
        assert_eq!(lookup3(b"Four score and seven years ago", 1), 0xcd62_8161);
    }

    #[test]
    fn lookup3_pair_gives_two_values() {
        let (c, b) = lookup3_pair(b"hello world", 0, 0);
        assert_ne!(c, b);
    }

    #[test]
    fn hasher64_wrappers_are_seed_sensitive() {
        assert_ne!(
            JenkinsOneAtATime.hash_with_seed(b"x", 1),
            JenkinsOneAtATime.hash_with_seed(b"x", 2)
        );
        assert_ne!(JenkinsLookup3.hash_with_seed(b"x", 1), JenkinsLookup3.hash_with_seed(b"x", 2));
    }

    #[test]
    fn lookup3_handles_all_tail_lengths() {
        // Exercise every `length % 12` branch; values just need to be stable
        // and distinct for distinct inputs.
        let data: Vec<u8> = (0u8..64).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=data.len() {
            assert!(seen.insert(lookup3(&data[..len], 7)) || len == 0);
        }
    }
}

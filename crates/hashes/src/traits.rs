//! Core hashing traits shared by every primitive in this crate.
//!
//! The paper distinguishes two families of hash functions:
//!
//! * **non-cryptographic** functions (MurmurHash, Jenkins, FNV, …) designed
//!   for speed and statistical uniformity, represented here by [`Hasher64`];
//! * **cryptographic** functions (MD5, SHA-1, SHA-2, …) that additionally aim
//!   for pre-image, second pre-image and collision resistance, represented by
//!   [`CryptoHash`].
//!
//! Bloom filters consume *indexes* derived from digests; the strategies doing
//! that derivation live in [`crate::index`] and are generic over these traits.

use core::fmt;

/// A seeded, non-cryptographic hash function producing a 64-bit digest.
///
/// Implementations are deterministic: the same `(data, seed)` pair always
/// yields the same digest. The seed plays the role of the *salt* used by
/// Bloom-filter implementations that call one function `k` times.
///
/// # Examples
///
/// ```
/// use evilbloom_hashes::{Hasher64, Murmur3_32};
///
/// let h = Murmur3_32;
/// let a = h.hash_with_seed(b"http://example.org/", 0);
/// let b = h.hash_with_seed(b"http://example.org/", 1);
/// assert_ne!(a, b, "different seeds give different digests");
/// ```
pub trait Hasher64: Send + Sync {
    /// Hashes `data` under the given `seed` and returns a 64-bit digest.
    ///
    /// Functions whose native output is 32 bits zero-extend it to 64 bits.
    fn hash_with_seed(&self, data: &[u8], seed: u64) -> u64;

    /// Hashes `data` with the all-zero seed.
    fn hash(&self, data: &[u8]) -> u64 {
        self.hash_with_seed(data, 0)
    }

    /// Human-readable name used in reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Width of the native digest in bits (32 or 64 for the functions in this
    /// crate). Attack-complexity estimates use this value.
    fn output_bits(&self) -> u32;
}

/// A cryptographic hash function with a fixed-size digest.
///
/// The trait is object-safe so that higher-level components (HMAC, the digest
/// recycler, benchmark tables) can iterate over a heterogeneous list of
/// functions.
///
/// # Examples
///
/// ```
/// use evilbloom_hashes::{CryptoHash, Sha256};
///
/// let d = Sha256.digest(b"abc");
/// assert_eq!(d.len(), Sha256.output_len());
/// ```
pub trait CryptoHash: Send + Sync {
    /// Digest length in bytes.
    fn output_len(&self) -> usize;

    /// Internal block length in bytes (used by the HMAC construction).
    fn block_len(&self) -> usize;

    /// Computes the digest of `data`.
    fn digest(&self, data: &[u8]) -> Vec<u8>;

    /// Human-readable name used in reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Digest length in bits.
    fn output_bits(&self) -> u32 {
        (self.output_len() as u32) * 8
    }
}

/// A keyed pseudo-random function producing a 64-bit tag.
///
/// Keyed functions are the paper's recommended countermeasure (Section 8.2):
/// because the adversary does not know the key, she cannot run the offline
/// forgery searches that power the pollution, false-positive and deletion
/// attacks.
pub trait KeyedHash64: Send + Sync {
    /// Computes the keyed tag of `data`. The extra `tweak` plays the role of
    /// the per-index salt when one keyed function must emulate `k`
    /// independent ones.
    fn mac_with_tweak(&self, data: &[u8], tweak: u64) -> u64;

    /// Computes the keyed tag of `data` with a zero tweak.
    fn mac(&self, data: &[u8]) -> u64 {
        self.mac_with_tweak(data, 0)
    }

    /// Human-readable name used in reports and benchmarks.
    fn name(&self) -> &'static str;
}

/// Fixed-size digest wrapper used where owned digests cross module borders.
///
/// The wrapper mostly exists to provide hex formatting for test vectors and
/// reports without pulling in an external dependency.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct DigestBytes(pub Vec<u8>);

impl DigestBytes {
    /// Returns the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Returns the digest length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the digest is empty (never the case for real hashes).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Renders the digest as a lowercase hexadecimal string.
    pub fn to_hex(&self) -> String {
        crate::hex::encode(&self.0)
    }
}

impl fmt::Debug for DigestBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DigestBytes({})", self.to_hex())
    }
}

impl fmt::Display for DigestBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<Vec<u8>> for DigestBytes {
    fn from(v: Vec<u8>) -> Self {
        DigestBytes(v)
    }
}

impl AsRef<[u8]> for DigestBytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fnv1a64, Sha1};

    #[test]
    fn hasher64_default_hash_uses_zero_seed() {
        let h = Fnv1a64;
        assert_eq!(h.hash(b"abc"), h.hash_with_seed(b"abc", 0));
    }

    #[test]
    fn digest_bytes_hex_roundtrip() {
        let d = DigestBytes(vec![0x00, 0xff, 0x10, 0xab]);
        assert_eq!(d.to_hex(), "00ff10ab");
        assert_eq!(format!("{d}"), "00ff10ab");
        assert_eq!(format!("{d:?}"), "DigestBytes(00ff10ab)");
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
    }

    #[test]
    fn crypto_hash_output_bits_consistent() {
        assert_eq!(Sha1.output_bits(), 160);
        assert_eq!(Sha1.output_len() * 8, 160);
    }

    #[test]
    fn traits_are_object_safe() {
        let hashers: Vec<Box<dyn Hasher64>> = vec![Box::new(Fnv1a64)];
        assert_eq!(hashers[0].name(), "FNV-1a-64");
        let digests: Vec<Box<dyn CryptoHash>> = vec![Box::new(Sha1)];
        assert_eq!(digests[0].name(), "SHA-1");
    }
}

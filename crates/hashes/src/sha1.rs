//! SHA-1 (FIPS 180-4).
//!
//! SHA-1 is no longer collision resistant but remains common in deployed
//! Bloom-filter code (pyBloom uses it for mid-sized filters, and HMAC-SHA-1
//! appears in the paper's Table 2 countermeasure benchmark).

use crate::traits::CryptoHash;

/// Streaming SHA-1 context.
///
/// # Examples
///
/// ```
/// use evilbloom_hashes::Sha1Context;
///
/// let mut ctx = Sha1Context::new();
/// ctx.update(b"abc");
/// assert_eq!(
///     evilbloom_hashes::hex::encode(&ctx.finalize()),
///     "a9993e364706816aba3e25717850c26c9cd0d89d"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha1Context {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha1Context {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1Context {
    /// Creates a fresh context with the FIPS 180-4 initial state.
    pub fn new() -> Self {
        Sha1Context {
            state: [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476, 0xc3d2_e1f0],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the context.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;

        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffer_len = 0;
            }
            if input.is_empty() {
                // Nothing left beyond what went into the partial buffer.
                return;
            }
        }

        let mut chunks = input.chunks_exact(64);
        for chunk in &mut chunks {
            let block: [u8; 64] = chunk.try_into().expect("64-byte block");
            self.process_block(&block);
        }
        let rest = chunks.remainder();
        self.buffer[..rest.len()].copy_from_slice(rest);
        self.buffer_len = rest.len();
    }

    /// Finalizes the hash and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffer_len != 56 {
            self.update(&[0]);
        }
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.process_block(&block);

        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(block[i * 4..(i + 1) * 4].try_into().expect("4-byte word"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;

        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), 0x5a82_7999),
                1 => (b ^ c ^ d, 0x6ed9_eba1),
                2 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6),
            };
            let tmp =
                a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(k).wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// Convenience one-shot SHA-1.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut ctx = Sha1Context::new();
    ctx.update(data);
    ctx.finalize()
}

/// SHA-1 as a [`CryptoHash`] implementation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sha1;

impl CryptoHash for Sha1 {
    fn output_len(&self) -> usize {
        20
    }

    fn block_len(&self) -> usize {
        64
    }

    fn digest(&self, data: &[u8]) -> Vec<u8> {
        sha1(data).to_vec()
    }

    fn name(&self) -> &'static str {
        "SHA-1"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // FIPS 180-4 / RFC 3174 test vectors.
    #[test]
    fn fips_vectors() {
        let cases = [
            ("", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            ("abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            (
                "The quick brown fox jumps over the lazy dog",
                "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(hex::encode(&sha1(input.as_bytes())), want, "sha1({input:?})");
        }
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hex::encode(&sha1(&data)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0u8..200).collect();
        for split in [0usize, 1, 55, 56, 63, 64, 65, 128, 200] {
            let mut ctx = Sha1Context::new();
            ctx.update(&data[..split]);
            ctx.update(&data[split..]);
            assert_eq!(ctx.finalize(), sha1(&data), "split at {split}");
        }
    }

    #[test]
    fn crypto_hash_impl() {
        assert_eq!(Sha1.output_len(), 20);
        assert_eq!(Sha1.block_len(), 64);
        assert_eq!(Sha1.output_bits(), 160);
        assert_eq!(Sha1.digest(b"abc"), sha1(b"abc").to_vec());
    }
}

//! MurmurHash3: the x86 32-bit and x64 128-bit variants.
//!
//! MurmurHash3 is the function Bitly's Dablooms uses, combined with the
//! Kirsch–Mitzenmacher trick, to derive all Bloom-filter indexes. Like its
//! predecessor it offers no resistance against a motivated adversary, which
//! is the crux of the Dablooms attacks in Section 6 of the paper.

use crate::traits::Hasher64;

/// Finalization mix of MurmurHash3 (32-bit) — forces avalanche.
#[inline]
pub fn fmix32(mut h: u32) -> u32 {
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^= h >> 16;
    h
}

/// Finalization mix of MurmurHash3 (64-bit lanes).
#[inline]
pub fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// MurmurHash3 x86_32.
pub fn murmur3_32(data: &[u8], seed: u32) -> u32 {
    const C1: u32 = 0xcc9e_2d51;
    const C2: u32 = 0x1b87_3593;

    let mut h1 = seed;
    let mut chunks = data.chunks_exact(4);
    for chunk in &mut chunks {
        let mut k1 = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1.rotate_left(13);
        h1 = h1.wrapping_mul(5).wrapping_add(0xe654_6b64);
    }

    let tail = chunks.remainder();
    let mut k1: u32 = 0;
    if tail.len() >= 3 {
        k1 ^= u32::from(tail[2]) << 16;
    }
    if tail.len() >= 2 {
        k1 ^= u32::from(tail[1]) << 8;
    }
    if !tail.is_empty() {
        k1 ^= u32::from(tail[0]);
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= data.len() as u32;
    fmix32(h1)
}

/// MurmurHash3 x64_128. Returns the 128-bit digest as `(low, high)` 64-bit
/// halves, matching `out[0]`/`out[1]` of the reference implementation.
pub fn murmur3_x64_128(data: &[u8], seed: u32) -> (u64, u64) {
    const C1: u64 = 0x87c3_7b91_1142_53d5;
    const C2: u64 = 0x4cf5_ad43_2745_937f;

    let len = data.len();
    let mut h1: u64 = u64::from(seed);
    let mut h2: u64 = u64::from(seed);

    let mut chunks = data.chunks_exact(16);
    for chunk in &mut chunks {
        let mut k1 = u64::from_le_bytes(chunk[0..8].try_into().expect("8-byte slice"));
        let mut k2 = u64::from_le_bytes(chunk[8..16].try_into().expect("8-byte slice"));

        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52dc_e729);

        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5ab5);
    }

    let tail = chunks.remainder();
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    let t = |i: usize| u64::from(tail[i]);
    if tail.len() >= 15 {
        k2 ^= t(14) << 48;
    }
    if tail.len() >= 14 {
        k2 ^= t(13) << 40;
    }
    if tail.len() >= 13 {
        k2 ^= t(12) << 32;
    }
    if tail.len() >= 12 {
        k2 ^= t(11) << 24;
    }
    if tail.len() >= 11 {
        k2 ^= t(10) << 16;
    }
    if tail.len() >= 10 {
        k2 ^= t(9) << 8;
    }
    if tail.len() >= 9 {
        k2 ^= t(8);
        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
    }
    if tail.len() >= 8 {
        k1 ^= t(7) << 56;
    }
    if tail.len() >= 7 {
        k1 ^= t(6) << 48;
    }
    if tail.len() >= 6 {
        k1 ^= t(5) << 40;
    }
    if tail.len() >= 5 {
        k1 ^= t(4) << 32;
    }
    if tail.len() >= 4 {
        k1 ^= t(3) << 24;
    }
    if tail.len() >= 3 {
        k1 ^= t(2) << 16;
    }
    if tail.len() >= 2 {
        k1 ^= t(1) << 8;
    }
    if !tail.is_empty() {
        k1 ^= t(0);
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= len as u64;
    h2 ^= len as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (h1, h2)
}

/// MurmurHash3 x86_32 as a seedable [`Hasher64`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Murmur3_32;

impl Hasher64 for Murmur3_32 {
    fn hash_with_seed(&self, data: &[u8], seed: u64) -> u64 {
        u64::from(murmur3_32(data, seed as u32))
    }

    fn name(&self) -> &'static str {
        "MurmurHash3-x86-32"
    }

    fn output_bits(&self) -> u32 {
        32
    }
}

/// MurmurHash3 x64_128 truncated to its low 64 bits, as a seedable
/// [`Hasher64`]. The full 128-bit digest is available through
/// [`murmur3_x64_128`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Murmur3_128;

impl Hasher64 for Murmur3_128 {
    fn hash_with_seed(&self, data: &[u8], seed: u64) -> u64 {
        murmur3_x64_128(data, seed as u32).0
    }

    fn name(&self) -> &'static str {
        "MurmurHash3-x64-128"
    }

    fn output_bits(&self) -> u32 {
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Widely published MurmurHash3 x86_32 test vectors.
    #[test]
    fn murmur3_32_reference_vectors() {
        assert_eq!(murmur3_32(b"", 0), 0);
        assert_eq!(murmur3_32(b"", 1), 0x514e_28b7);
        assert_eq!(murmur3_32(b"", 0xffff_ffff), 0x81f1_6f39);
        assert_eq!(murmur3_32(&[0xff, 0xff, 0xff, 0xff], 0), 0x7629_3b50);
        assert_eq!(murmur3_32(&[0x21, 0x43, 0x65, 0x87], 0), 0xf55b_516b);
        assert_eq!(murmur3_32(&[0x21, 0x43, 0x65, 0x87], 0x5082_edee), 0x2362_f9de);
        assert_eq!(murmur3_32(b"Hello, world!", 0x9747_b28c), 0x24884cba);
        assert_eq!(murmur3_32(b"aaaa", 0x9747_b28c), 0x5a97_808a);
    }

    #[test]
    fn murmur3_128_known_values() {
        // Values cross-checked against the reference MurmurHash3_x64_128.
        assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
        let (lo, hi) = murmur3_x64_128(b"", 1);
        assert_eq!(lo, 0x4610abe56eff5cb5);
        assert_eq!(hi, 0x51622daa78f83583);
        let (lo, hi) = murmur3_x64_128(b"The quick brown fox jumps over the lazy dog", 0);
        assert_eq!(lo, 0xe34bbc7bbc071b6c);
        assert_eq!(hi, 0x7a433ca9c49a9347);
    }

    #[test]
    fn fmix_are_bijective_samples() {
        // fmix is a bijection; spot check that distinct inputs stay distinct.
        let mut seen32 = std::collections::HashSet::new();
        let mut seen64 = std::collections::HashSet::new();
        for i in 0..1000u64 {
            assert!(seen32.insert(fmix32(i as u32)));
            assert!(seen64.insert(fmix64(i)));
        }
    }

    #[test]
    fn every_tail_length_changes_the_digest() {
        let data: Vec<u8> = (1u8..=40).collect();
        let mut outputs = std::collections::HashSet::new();
        for len in 0..=data.len() {
            outputs.insert(murmur3_x64_128(&data[..len], 7));
        }
        assert_eq!(outputs.len(), data.len() + 1);
    }

    #[test]
    fn hasher64_wrappers() {
        assert_eq!(Murmur3_32.hash(b"abc"), u64::from(murmur3_32(b"abc", 0)));
        assert_eq!(Murmur3_128.hash(b"abc"), murmur3_x64_128(b"abc", 0).0);
    }
}

//! Double hashing: one (or two) hash calls yielding a 64-bit pair from which
//! all `k` Bloom-filter indexes are derived — the Kirsch–Mitzenmacher "less
//! hashing, same performance" result packaged as a reusable *hash strategy*.
//!
//! [`crate::KirschMitzenmacher`] already applies the KM trick as an
//! [`IndexStrategy`], but it recomputes both base hashes on every call and
//! cannot be shared with structures that need the raw pair (the blocked
//! filter picks a *block* with one half and probes inside it with the other).
//! [`HashStrategy`] separates the expensive part (hashing the item once into
//! a `(u64, u64)` pair) from the cheap part (deriving indexes from the pair),
//! which is what makes batch APIs able to precompute hashes in one pass and
//! replay them in a second, memory-bound pass.
//!
//! Three pair sources are provided:
//!
//! * [`Murmur128Pair`] — a **single** MurmurHash3 x64_128 call split into its
//!   two 64-bit halves (the cheapest option, what Dablooms would do if it
//!   used the full digest); predictable, hence attackable;
//! * [`DoubleHasher`] — two seeded calls of any [`Hasher64`] (seeds 0 and 1),
//!   bit-compatible with [`crate::KirschMitzenmacher`] over the same hash;
//!   predictable;
//! * [`KeyedPair`] — two tweaked calls of a secret-keyed [`KeyedHash64`]
//!   (SipHash/HMAC), the Section 8.2 countermeasure carried over to the
//!   double-hashing world; **unpredictable** without the key.

use crate::traits::{Hasher64, KeyedHash64};
use crate::IndexStrategy;

/// Hashes an item once into a 64-bit pair `(h1, h2)` from which `k` filter
/// indexes (or a block and `k` in-block offsets) are derived.
///
/// Implementations must be deterministic — the same item always yields the
/// same pair — or the consuming filter would exhibit false negatives.
pub trait HashStrategy: Send + Sync {
    /// The `(h1, h2)` pair of `item`.
    fn hash_pair(&self, item: &[u8]) -> (u64, u64);

    /// Human-readable name used in reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Whether an adversary with full knowledge of the implementation (but
    /// not of any secret key) can compute the pair herself — the property
    /// every offline attack search requires.
    fn is_predictable(&self) -> bool {
        true
    }
}

/// One MurmurHash3 x64_128 call, split into its two 64-bit halves.
#[derive(Debug, Clone, Copy, Default)]
pub struct Murmur128Pair;

impl HashStrategy for Murmur128Pair {
    fn hash_pair(&self, item: &[u8]) -> (u64, u64) {
        crate::murmur3::murmur3_x64_128(item, 0)
    }

    fn name(&self) -> &'static str {
        "MurmurHash3-x64-128-pair"
    }
}

/// Two seeded calls (seeds 0 and 1) of any 64-bit hash — the classic
/// formulation, pair-compatible with [`crate::KirschMitzenmacher`] over the
/// same base hash.
#[derive(Debug, Clone)]
pub struct DoubleHasher<H> {
    hasher: H,
}

impl<H: Hasher64> DoubleHasher<H> {
    /// Uses `hasher` with seeds 0 and 1.
    pub fn new(hasher: H) -> Self {
        DoubleHasher { hasher }
    }
}

impl<H: Hasher64> HashStrategy for DoubleHasher<H> {
    fn hash_pair(&self, item: &[u8]) -> (u64, u64) {
        (self.hasher.hash_with_seed(item, 0), self.hasher.hash_with_seed(item, 1))
    }

    fn name(&self) -> &'static str {
        self.hasher.name()
    }
}

/// Two tweaked calls of a secret-keyed PRF — the keyed countermeasure for
/// pair-consuming filters. Without the key the adversary cannot evaluate the
/// pair, so none of the offline searches apply.
pub struct KeyedPair {
    prf: Box<dyn KeyedHash64>,
}

impl KeyedPair {
    /// Uses `prf` with tweaks 0 and 1.
    pub fn new(prf: Box<dyn KeyedHash64>) -> Self {
        KeyedPair { prf }
    }
}

impl core::fmt::Debug for KeyedPair {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("KeyedPair").field("prf", &self.prf.name()).finish()
    }
}

impl HashStrategy for KeyedPair {
    fn hash_pair(&self, item: &[u8]) -> (u64, u64) {
        (self.prf.mac_with_tweak(item, 0), self.prf.mac_with_tweak(item, 1))
    }

    fn name(&self) -> &'static str {
        self.prf.name()
    }

    fn is_predictable(&self) -> bool {
        false
    }
}

/// Derives the `k` Kirsch–Mitzenmacher indexes `g_i = h1 + i·h2 mod m` from a
/// precomputed pair. Shared by [`KmIndexes`] and the batch query paths.
#[inline]
pub fn km_indexes_from_pair(pair: (u64, u64), k: u32, m: u64) -> impl Iterator<Item = u64> {
    let h1 = pair.0 % m;
    let h2 = pair.1 % m;
    (0..u64::from(k)).map(move |i| (h1 + i.wrapping_mul(h2) % m) % m)
}

/// Kirsch–Mitzenmacher double hashing over any [`HashStrategy`] pair source,
/// as an [`IndexStrategy`] pluggable into every filter in `evilbloom-filters`.
///
/// Over [`DoubleHasher`] this produces exactly the same indexes as
/// [`crate::KirschMitzenmacher`] over the same base hash; over
/// [`Murmur128Pair`] it halves the hashing work; over [`KeyedPair`] it is the
/// keyed (unpredictable) variant.
pub struct KmIndexes<S> {
    strategy: S,
}

impl<S: HashStrategy> KmIndexes<S> {
    /// Wraps a pair source.
    pub fn new(strategy: S) -> Self {
        KmIndexes { strategy }
    }

    /// The underlying pair source.
    pub fn pair_strategy(&self) -> &S {
        &self.strategy
    }
}

impl<S: core::fmt::Debug> core::fmt::Debug for KmIndexes<S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("KmIndexes").field("strategy", &self.strategy).finish()
    }
}

impl<S: HashStrategy> IndexStrategy for KmIndexes<S> {
    fn indexes(&self, item: &[u8], k: u32, m: u64) -> Vec<u64> {
        km_indexes_from_pair(self.strategy.hash_pair(item), k, m).collect()
    }

    fn indexes_into(&self, item: &[u8], k: u32, m: u64, out: &mut Vec<u64>) {
        out.extend(km_indexes_from_pair(self.strategy.hash_pair(item), k, m));
    }

    fn name(&self) -> &'static str {
        self.strategy.name()
    }

    fn is_predictable(&self) -> bool {
        self.strategy.is_predictable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KirschMitzenmacher, Murmur3_128, SipHash24, SipKey};

    #[test]
    fn murmur128_pair_matches_reference_halves() {
        let (lo, hi) = crate::murmur3::murmur3_x64_128(b"item", 0);
        assert_eq!(Murmur128Pair.hash_pair(b"item"), (lo, hi));
    }

    #[test]
    fn double_hasher_matches_seeded_calls() {
        let pair = DoubleHasher::new(Murmur3_128).hash_pair(b"item");
        assert_eq!(pair.0, Murmur3_128.hash_with_seed(b"item", 0));
        assert_eq!(pair.1, Murmur3_128.hash_with_seed(b"item", 1));
    }

    #[test]
    fn km_over_double_hasher_matches_classic_strategy() {
        let classic = KirschMitzenmacher::new(Murmur3_128);
        let pair_based = KmIndexes::new(DoubleHasher::new(Murmur3_128));
        for m in [97u64, 3200, 1 << 20] {
            for k in [1u32, 4, 10] {
                assert_eq!(
                    pair_based.indexes(b"http://example.org/", k, m),
                    classic.indexes(b"http://example.org/", k, m),
                    "m={m} k={k}"
                );
            }
        }
    }

    #[test]
    fn km_indexes_are_in_range_and_deterministic() {
        let strategy = KmIndexes::new(Murmur128Pair);
        let a = strategy.indexes(b"item", 7, 4099);
        let b = strategy.indexes(b"item", 7, 4099);
        assert_eq!(a, b);
        assert_eq!(a.len(), 7);
        assert!(a.iter().all(|&i| i < 4099));
    }

    #[test]
    fn indexes_into_matches_indexes() {
        let strategy = KmIndexes::new(Murmur128Pair);
        let mut out = vec![999];
        strategy.indexes_into(b"item", 5, 1 << 16, &mut out);
        assert_eq!(out[0], 999, "indexes_into must append, not overwrite");
        assert_eq!(out[1..], strategy.indexes(b"item", 5, 1 << 16));
    }

    #[test]
    fn keyed_pair_depends_on_the_key() {
        let a = KeyedPair::new(Box::new(SipHash24::new(SipKey::new(1, 2))));
        let b = KeyedPair::new(Box::new(SipHash24::new(SipKey::new(3, 4))));
        assert_ne!(a.hash_pair(b"item"), b.hash_pair(b"item"));
        assert!(!a.is_predictable());
        assert!(Murmur128Pair.is_predictable());
    }

    #[test]
    fn keyed_km_strategy_is_unpredictable() {
        let keyed = KmIndexes::new(KeyedPair::new(Box::new(SipHash24::new(SipKey::new(1, 2)))));
        assert!(!IndexStrategy::is_predictable(&keyed));
        let idx = keyed.indexes(b"item", 4, 1 << 16);
        assert_eq!(idx.len(), 4);
        assert!(idx.iter().all(|&i| i < (1 << 16)));
    }
}

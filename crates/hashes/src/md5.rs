//! MD5 (RFC 1321).
//!
//! MD5 is cryptographically broken for collision resistance, yet it is the
//! digest Squid splits to obtain its four cache-digest indexes and one of the
//! functions pyBloom offers. The paper's Squid attack does not even need to
//! break MD5 — truncating its output modulo a small filter size is enough.

use crate::traits::CryptoHash;

/// Streaming MD5 context.
///
/// # Examples
///
/// ```
/// use evilbloom_hashes::Md5Context;
///
/// let mut ctx = Md5Context::new();
/// ctx.update(b"ab");
/// ctx.update(b"c");
/// assert_eq!(
///     evilbloom_hashes::hex::encode(&ctx.finalize()),
///     "900150983cd24fb0d6963f7d28e17f72"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Md5Context {
    state: [u32; 4],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Md5Context {
    fn default() -> Self {
        Self::new()
    }
}

const S: [[u32; 4]; 4] = [[7, 12, 17, 22], [5, 9, 14, 20], [4, 11, 16, 23], [6, 10, 15, 21]];

// Integer parts of abs(sin(i+1)) * 2^32 for i in 0..64, per RFC 1321.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

impl Md5Context {
    /// Creates a fresh context with the RFC 1321 initial state.
    pub fn new() -> Self {
        Md5Context {
            state: [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the context.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;

        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffer_len = 0;
            }
            if input.is_empty() {
                // Nothing left beyond what went into the partial buffer.
                return;
            }
        }

        let mut chunks = input.chunks_exact(64);
        for chunk in &mut chunks {
            let block: [u8; 64] = chunk.try_into().expect("64-byte block");
            self.process_block(&block);
        }
        let rest = chunks.remainder();
        self.buffer[..rest.len()].copy_from_slice(rest);
        self.buffer_len = rest.len();
    }

    /// Finalizes the hash and returns the 16-byte digest.
    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffer_len != 56 {
            self.update(&[0]);
        }
        // Length padding is appended manually to avoid counting it.
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_le_bytes());
        self.process_block(&block);

        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, word) in m.iter_mut().enumerate() {
            *word = u32::from_le_bytes(block[i * 4..(i + 1) * 4].try_into().expect("4-byte word"));
        }

        let [mut a, mut b, mut c, mut d] = self.state;

        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            let rotated = a
                .wrapping_add(f)
                .wrapping_add(K[i])
                .wrapping_add(m[g])
                .rotate_left(S[i / 16][i % 4]);
            b = b.wrapping_add(rotated);
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// Convenience one-shot MD5.
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut ctx = Md5Context::new();
    ctx.update(data);
    ctx.finalize()
}

/// MD5 as a [`CryptoHash`] implementation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Md5;

impl CryptoHash for Md5 {
    fn output_len(&self) -> usize {
        16
    }

    fn block_len(&self) -> usize {
        64
    }

    fn digest(&self, data: &[u8]) -> Vec<u8> {
        md5(data).to_vec()
    }

    fn name(&self) -> &'static str {
        "MD5"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 1321 Appendix A.5 test suite.
    #[test]
    fn rfc1321_test_suite() {
        let cases = [
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(hex::encode(&md5(input.as_bytes())), want, "md5({input:?})");
        }
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        for split in [0usize, 1, 17, 63, 64, 65, 500, 999, 1000] {
            let mut ctx = Md5Context::new();
            ctx.update(&data[..split]);
            ctx.update(&data[split..]);
            assert_eq!(ctx.finalize(), md5(&data), "split at {split}");
        }
    }

    #[test]
    fn long_input_spanning_many_blocks() {
        // One million 'a' characters: classic extended test vector.
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hex::encode(&md5(&data)), "7707d6ae4e027c70eea2a935c2296f21");
    }

    #[test]
    fn crypto_hash_impl() {
        assert_eq!(Md5.output_len(), 16);
        assert_eq!(Md5.block_len(), 64);
        assert_eq!(Md5.digest(b"abc"), md5(b"abc").to_vec());
        assert_eq!(Md5.output_bits(), 128);
    }

    #[test]
    fn inputs_near_padding_boundary() {
        // Lengths 55, 56, 57, 63, 64, 65 exercise the padding logic.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 121] {
            let data = vec![b'x'; len];
            let mut ctx = Md5Context::new();
            for b in &data {
                ctx.update(core::slice::from_ref(b));
            }
            assert_eq!(ctx.finalize(), md5(&data), "length {len}");
        }
    }
}

//! HMAC (RFC 2104) over any [`CryptoHash`].
//!
//! HMAC is the classic keyed countermeasure evaluated in Table 2 of the
//! paper: the server picks a secret key, and the adversary can no longer
//! predict which filter bits an item maps to, defeating all three adversary
//! models at the cost of two hash invocations per MAC.

use crate::traits::{CryptoHash, KeyedHash64};

/// HMAC instance binding a [`CryptoHash`] and a secret key.
///
/// # Examples
///
/// ```
/// use evilbloom_hashes::{Hmac, Sha256};
///
/// let mac = Hmac::new(Box::new(Sha256), b"secret key");
/// let tag = mac.compute(b"message");
/// assert_eq!(tag.len(), 32);
/// ```
pub struct Hmac {
    hash: Box<dyn CryptoHash>,
    /// Key padded (or hashed down) to exactly one block.
    padded_key: Vec<u8>,
}

impl Hmac {
    /// Creates an HMAC instance for `hash` with the given `key`.
    ///
    /// Keys longer than the hash block size are first hashed, as mandated by
    /// RFC 2104.
    pub fn new(hash: Box<dyn CryptoHash>, key: &[u8]) -> Self {
        let block = hash.block_len();
        let mut padded_key = if key.len() > block { hash.digest(key) } else { key.to_vec() };
        padded_key.resize(block, 0);
        Hmac { hash, padded_key }
    }

    /// Computes the HMAC tag of `data`.
    pub fn compute(&self, data: &[u8]) -> Vec<u8> {
        self.compute_with_suffix(data, &[])
    }

    /// Computes the HMAC tag of `data || suffix` without allocating the
    /// concatenation twice; used by index strategies that append a salt.
    pub fn compute_with_suffix(&self, data: &[u8], suffix: &[u8]) -> Vec<u8> {
        let block = self.hash.block_len();
        let mut inner = Vec::with_capacity(block + data.len() + suffix.len());
        for &b in &self.padded_key {
            inner.push(b ^ 0x36);
        }
        inner.extend_from_slice(data);
        inner.extend_from_slice(suffix);
        let inner_digest = self.hash.digest(&inner);

        let mut outer = Vec::with_capacity(block + inner_digest.len());
        for &b in &self.padded_key {
            outer.push(b ^ 0x5c);
        }
        outer.extend_from_slice(&inner_digest);
        self.hash.digest(&outer)
    }

    /// Returns the underlying hash function's name, e.g. `"SHA-1"`.
    pub fn hash_name(&self) -> &'static str {
        self.hash.name()
    }

    /// Digest length of the produced tags in bytes.
    pub fn output_len(&self) -> usize {
        self.hash.output_len()
    }
}

impl core::fmt::Debug for Hmac {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Hmac").field("hash", &self.hash.name()).finish_non_exhaustive()
    }
}

impl KeyedHash64 for Hmac {
    fn mac_with_tweak(&self, data: &[u8], tweak: u64) -> u64 {
        let tag = self.compute_with_suffix(data, &tweak.to_le_bytes());
        let mut word = [0u8; 8];
        word.copy_from_slice(&tag[..8]);
        u64::from_le_bytes(word)
    }

    fn name(&self) -> &'static str {
        "HMAC"
    }
}

/// Convenience one-shot HMAC.
pub fn hmac(hash: Box<dyn CryptoHash>, key: &[u8], data: &[u8]) -> Vec<u8> {
    Hmac::new(hash, key).compute(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;
    use crate::{Md5, Sha1, Sha256, Sha512};

    // RFC 2202 (MD5, SHA-1) and RFC 4231 (SHA-2) test vectors.
    #[test]
    fn rfc2202_hmac_md5_case1() {
        let key = [0x0b; 16];
        let tag = hmac(Box::new(Md5), &key, b"Hi There");
        assert_eq!(hex::encode(&tag), "9294727a3638bb1c13f48ef8158bfc9d");
    }

    #[test]
    fn rfc2202_hmac_md5_case2() {
        let tag = hmac(Box::new(Md5), b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex::encode(&tag), "750c783e6ab0b503eaa86e310a5db738");
    }

    #[test]
    fn rfc2202_hmac_sha1_case1() {
        let key = [0x0b; 20];
        let tag = hmac(Box::new(Sha1), &key, b"Hi There");
        assert_eq!(hex::encode(&tag), "b617318655057264e28bc0b6fb378c8ef146be00");
    }

    #[test]
    fn rfc2202_hmac_sha1_case2() {
        let tag = hmac(Box::new(Sha1), b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex::encode(&tag), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
    }

    #[test]
    fn rfc4231_hmac_sha256_case1() {
        let key = [0x0b; 20];
        let tag = hmac(Box::new(Sha256), &key, b"Hi There");
        assert_eq!(
            hex::encode(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_hmac_sha512_case1() {
        let key = [0x0b; 20];
        let tag = hmac(Box::new(Sha512), &key, b"Hi There");
        assert_eq!(
            hex::encode(&tag),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
             daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
        );
    }

    #[test]
    fn rfc4231_hmac_sha256_long_key() {
        // Case 6: 131-byte key (longer than the block size) is hashed first.
        let key = [0xaa; 131];
        let tag =
            hmac(Box::new(Sha256), &key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hex::encode(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn suffix_is_equivalent_to_concatenation() {
        let mac = Hmac::new(Box::new(Sha256), b"key");
        let direct = mac.compute(b"dataSUFFIX");
        let suffixed = mac.compute_with_suffix(b"data", b"SUFFIX");
        assert_eq!(direct, suffixed);
    }

    #[test]
    fn keyed_hash64_tweak_variation() {
        let mac = Hmac::new(Box::new(Sha1), b"key");
        assert_ne!(mac.mac_with_tweak(b"item", 0), mac.mac_with_tweak(b"item", 1));
        assert_eq!(mac.output_len(), 20);
        assert_eq!(mac.hash_name(), "SHA-1");
    }

    #[test]
    fn different_keys_give_different_tags() {
        let a = Hmac::new(Box::new(Sha256), b"key-a");
        let b = Hmac::new(Box::new(Sha256), b"key-b");
        assert_ne!(a.compute(b"item"), b.compute(b"item"));
    }
}

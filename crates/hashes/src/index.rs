//! Index-derivation strategies: how an item becomes `k` Bloom-filter indexes.
//!
//! Every attack and every countermeasure in the paper is, at bottom, about
//! this mapping. The strategies below reproduce the derivations used by the
//! three attacked systems and by the proposed defences:
//!
//! | Strategy | Models | Adversary can predict indexes? |
//! |---|---|---|
//! | [`SaltedHashes`] over a non-crypto hash | pyBloom-with-Murmur, ad-hoc filters | yes (trivially) |
//! | [`SaltedCrypto`] | pyBloom (SHA/MD5 + deterministic salt) | yes (public salt, truncation) |
//! | [`KirschMitzenmacher`] | Dablooms (MurmurHash + KM trick) | yes |
//! | [`Md5Split`] | Squid cache digests | yes |
//! | [`RecycledCrypto`] | Section 8.2 recycling countermeasure | yes (but at full-digest cost per trial) |
//! | [`KeyedIndexes`] | HMAC / SipHash countermeasure | **no** (secret key) |

use crate::recycle::recycled_indexes;
use crate::traits::{CryptoHash, Hasher64, KeyedHash64};
use crate::truncate::prefix_to_u64;

/// Derives the `k` filter indexes of an item for a filter with `m` cells.
///
/// Implementations must be deterministic: the same `(item, k, m)` triple must
/// always produce the same indexes, otherwise the filter would exhibit false
/// negatives.
pub trait IndexStrategy: Send + Sync {
    /// Returns the `k` indexes of `item` in `[0, m)`.
    fn indexes(&self, item: &[u8], k: u32, m: u64) -> Vec<u64>;

    /// Appends the `k` indexes of `item` to `out` instead of allocating a
    /// fresh vector — the building block of the batch insert/query APIs,
    /// which reuse one flat buffer across a whole batch. The default
    /// implementation delegates to [`IndexStrategy::indexes`]; hot strategies
    /// override it to write directly.
    fn indexes_into(&self, item: &[u8], k: u32, m: u64, out: &mut Vec<u64>) {
        out.extend(self.indexes(item, k, m));
    }

    /// Human-readable name used in reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Whether an adversary with full knowledge of the implementation (but
    /// not of any secret key) can compute `indexes` herself. This is the
    /// property all three attack families require.
    fn is_predictable(&self) -> bool {
        true
    }
}

/// `k` invocations of a (non-cryptographic or cryptographic-wrapped) seeded
/// hash function, one per salt `0..k`.
#[derive(Debug, Clone)]
pub struct SaltedHashes<H> {
    hasher: H,
}

impl<H: Hasher64> SaltedHashes<H> {
    /// Uses `hasher` with salts `0..k`.
    pub fn new(hasher: H) -> Self {
        SaltedHashes { hasher }
    }
}

impl<H: Hasher64> IndexStrategy for SaltedHashes<H> {
    fn indexes(&self, item: &[u8], k: u32, m: u64) -> Vec<u64> {
        (0..u64::from(k)).map(|salt| self.hasher.hash_with_seed(item, salt) % m).collect()
    }

    fn indexes_into(&self, item: &[u8], k: u32, m: u64, out: &mut Vec<u64>) {
        out.extend((0..u64::from(k)).map(|salt| self.hasher.hash_with_seed(item, salt) % m));
    }

    fn name(&self) -> &'static str {
        self.hasher.name()
    }
}

/// `k` invocations of a cryptographic hash over `item || salt`, each digest
/// truncated to a 64-bit prefix before reduction modulo `m` — the pattern
/// pyBloom and many "we use SHA so we are safe" implementations follow.
///
/// Despite the strong hash, the reduction modulo `m` means an adversary only
/// needs `~m` trials per index: this is the *naive* (and attackable) way of
/// using cryptography that the paper contrasts with recycling + keys.
pub struct SaltedCrypto {
    hash: Box<dyn CryptoHash>,
}

impl SaltedCrypto {
    /// Uses `hash` over `item || le64(salt)` for salts `0..k`.
    pub fn new(hash: Box<dyn CryptoHash>) -> Self {
        SaltedCrypto { hash }
    }
}

impl core::fmt::Debug for SaltedCrypto {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SaltedCrypto").field("hash", &self.hash.name()).finish()
    }
}

impl IndexStrategy for SaltedCrypto {
    fn indexes(&self, item: &[u8], k: u32, m: u64) -> Vec<u64> {
        (0..u64::from(k))
            .map(|salt| {
                let mut buf = Vec::with_capacity(item.len() + 8);
                buf.extend_from_slice(item);
                buf.extend_from_slice(&salt.to_le_bytes());
                prefix_to_u64(&self.hash.digest(&buf)) % m
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        self.hash.name()
    }
}

/// The Kirsch–Mitzenmacher "less hashing, same performance" derivation:
/// `g_i(x) = h1(x) + i * h2(x) mod m`, computed from two seeded calls of one
/// base hash — exactly what Dablooms does with MurmurHash.
#[derive(Debug, Clone)]
pub struct KirschMitzenmacher<H> {
    hasher: H,
}

impl<H: Hasher64> KirschMitzenmacher<H> {
    /// Uses `hasher` with seeds 0 and 1 for the two base hashes.
    pub fn new(hasher: H) -> Self {
        KirschMitzenmacher { hasher }
    }
}

impl<H: Hasher64> IndexStrategy for KirschMitzenmacher<H> {
    fn indexes(&self, item: &[u8], k: u32, m: u64) -> Vec<u64> {
        let h1 = self.hasher.hash_with_seed(item, 0) % m;
        let h2 = self.hasher.hash_with_seed(item, 1) % m;
        (0..u64::from(k)).map(|i| (h1 + i.wrapping_mul(h2) % m) % m).collect()
    }

    fn indexes_into(&self, item: &[u8], k: u32, m: u64, out: &mut Vec<u64>) {
        let h1 = self.hasher.hash_with_seed(item, 0) % m;
        let h2 = self.hasher.hash_with_seed(item, 1) % m;
        out.extend((0..u64::from(k)).map(|i| (h1 + i.wrapping_mul(h2) % m) % m));
    }

    fn name(&self) -> &'static str {
        "Kirsch-Mitzenmacher"
    }
}

/// Squid's cache-digest derivation: one 128-bit MD5 of the key, split into
/// four 32-bit words, each reduced modulo `m`.
///
/// When `k > 4` the words are reused cyclically with an offset, mirroring the
/// protocol's "dissuades developers from using more" stance; Squid itself
/// always uses `k = 4`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Md5Split;

impl IndexStrategy for Md5Split {
    fn indexes(&self, item: &[u8], k: u32, m: u64) -> Vec<u64> {
        let digest = crate::md5::md5(item);
        let words = crate::truncate::split_u32_words(&digest, 4);
        (0..k as usize)
            .map(|i| {
                let base = u64::from(words[i % 4]);
                let round = (i / 4) as u64;
                (base.wrapping_add(round.wrapping_mul(0x9e37_79b9))) % m
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "MD5-split"
    }
}

/// The recycling countermeasure of Section 8.2: slice all `k` indexes out of
/// a single cryptographic digest, re-hashing with a salt only when the digest
/// runs out of bits.
pub struct RecycledCrypto {
    hash: Box<dyn CryptoHash>,
}

impl RecycledCrypto {
    /// Recycles digests of `hash`.
    pub fn new(hash: Box<dyn CryptoHash>) -> Self {
        RecycledCrypto { hash }
    }
}

impl core::fmt::Debug for RecycledCrypto {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RecycledCrypto").field("hash", &self.hash.name()).finish()
    }
}

impl IndexStrategy for RecycledCrypto {
    fn indexes(&self, item: &[u8], k: u32, m: u64) -> Vec<u64> {
        recycled_indexes(self.hash.as_ref(), item, k, m)
    }

    fn name(&self) -> &'static str {
        self.hash.name()
    }
}

/// The keyed countermeasure: a secret-keyed PRF (HMAC or SipHash) with a
/// per-index tweak. Without the key the adversary cannot evaluate the map and
/// none of the offline forgery searches apply.
pub struct KeyedIndexes {
    prf: Box<dyn KeyedHash64>,
}

impl KeyedIndexes {
    /// Uses `prf` with tweaks `0..k`.
    pub fn new(prf: Box<dyn KeyedHash64>) -> Self {
        KeyedIndexes { prf }
    }
}

impl core::fmt::Debug for KeyedIndexes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("KeyedIndexes").field("prf", &self.prf.name()).finish()
    }
}

impl IndexStrategy for KeyedIndexes {
    fn indexes(&self, item: &[u8], k: u32, m: u64) -> Vec<u64> {
        (0..u64::from(k)).map(|tweak| self.prf.mac_with_tweak(item, tweak) % m).collect()
    }

    fn indexes_into(&self, item: &[u8], k: u32, m: u64, out: &mut Vec<u64>) {
        out.extend((0..u64::from(k)).map(|tweak| self.prf.mac_with_tweak(item, tweak) % m));
    }

    fn name(&self) -> &'static str {
        self.prf.name()
    }

    fn is_predictable(&self) -> bool {
        false
    }
}

/// Boxed strategy alias used where heterogeneous strategies are stored.
pub type BoxedIndexStrategy = Box<dyn IndexStrategy>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Md5, Murmur3_32, Sha1, Sha256, Sha512, SipHash24, SipKey};

    fn all_strategies() -> Vec<BoxedIndexStrategy> {
        vec![
            Box::new(SaltedHashes::new(Murmur3_32)),
            Box::new(SaltedCrypto::new(Box::new(Sha1))),
            Box::new(KirschMitzenmacher::new(Murmur3_32)),
            Box::new(Md5Split),
            Box::new(RecycledCrypto::new(Box::new(Sha512))),
            Box::new(KeyedIndexes::new(Box::new(SipHash24::new(SipKey::new(1, 2))))),
        ]
    }

    #[test]
    fn all_strategies_produce_k_indexes_in_range() {
        for strategy in all_strategies() {
            for m in [2u64, 97, 3200, 1 << 20] {
                for k in [1u32, 2, 4, 10] {
                    let idx = strategy.indexes(b"http://example.org/page", k, m);
                    assert_eq!(idx.len(), k as usize, "{} k={k}", strategy.name());
                    assert!(idx.iter().all(|&i| i < m), "{} m={m}", strategy.name());
                }
            }
        }
    }

    #[test]
    fn all_strategies_are_deterministic() {
        for strategy in all_strategies() {
            let a = strategy.indexes(b"item", 7, 4099);
            let b = strategy.indexes(b"item", 7, 4099);
            assert_eq!(a, b, "{}", strategy.name());
        }
    }

    #[test]
    fn distinct_items_differ_with_high_probability() {
        for strategy in all_strategies() {
            let a = strategy.indexes(b"http://a.example/", 4, 1 << 20);
            let b = strategy.indexes(b"http://b.example/", 4, 1 << 20);
            assert_ne!(a, b, "{}", strategy.name());
        }
    }

    #[test]
    fn only_keyed_strategy_is_unpredictable() {
        for strategy in all_strategies() {
            let keyed = strategy.name().starts_with("SipHash") || strategy.name() == "HMAC";
            assert_eq!(!strategy.is_predictable(), keyed, "{}", strategy.name());
        }
    }

    #[test]
    fn kirsch_mitzenmacher_matches_formula() {
        let strategy = KirschMitzenmacher::new(Murmur3_32);
        let m = 10_007u64;
        let h1 = Murmur3_32.hash_with_seed(b"x", 0) % m;
        let h2 = Murmur3_32.hash_with_seed(b"x", 1) % m;
        let idx = strategy.indexes(b"x", 5, m);
        for (i, &got) in idx.iter().enumerate() {
            assert_eq!(got, (h1 + (i as u64) * h2 % m) % m);
        }
    }

    #[test]
    fn md5_split_uses_the_four_digest_words() {
        let m = 1u64 << 32;
        let idx = Md5Split.indexes(b"GET http://example.org/", 4, m);
        let digest = crate::md5::md5(b"GET http://example.org/");
        let words = crate::truncate::split_u32_words(&digest, 4);
        assert_eq!(idx, words.iter().map(|&w| u64::from(w)).collect::<Vec<_>>());
    }

    #[test]
    fn md5_split_extends_past_four_indexes() {
        let idx = Md5Split.indexes(b"key", 8, 762);
        assert_eq!(idx.len(), 8);
        assert_ne!(idx[0], idx[4], "cyclic reuse must be offset");
    }

    #[test]
    fn salted_crypto_matches_manual_construction() {
        let strategy = SaltedCrypto::new(Box::new(Sha256));
        let m = 9973u64;
        let idx = strategy.indexes(b"item", 3, m);
        for (salt, &got) in idx.iter().enumerate() {
            let mut buf = b"item".to_vec();
            buf.extend_from_slice(&(salt as u64).to_le_bytes());
            let expect = prefix_to_u64(&Sha256.digest(&buf)) % m;
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn keyed_indexes_depend_on_the_key() {
        let a = KeyedIndexes::new(Box::new(SipHash24::new(SipKey::new(1, 2))));
        let b = KeyedIndexes::new(Box::new(SipHash24::new(SipKey::new(3, 4))));
        assert_ne!(a.indexes(b"item", 4, 1 << 16), b.indexes(b"item", 4, 1 << 16));
    }

    #[test]
    fn recycled_crypto_matches_free_function() {
        let strategy = RecycledCrypto::new(Box::new(Md5));
        assert_eq!(strategy.indexes(b"item", 6, 3200), recycled_indexes(&Md5, b"item", 6, 3200));
    }
}

//! Minimal hexadecimal encoding/decoding used by test vectors and reports.

/// Encodes `bytes` as a lowercase hexadecimal string.
///
/// # Examples
///
/// ```
/// assert_eq!(evilbloom_hashes::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decodes a hexadecimal string into bytes.
///
/// Accepts upper- and lowercase digits. Returns `None` when the input has odd
/// length or contains a non-hexadecimal character.
///
/// # Examples
///
/// ```
/// assert_eq!(evilbloom_hashes::hex::decode("DEad"), Some(vec![0xde, 0xad]));
/// assert_eq!(evilbloom_hashes::hex::decode("xyz"), None);
/// ```
pub fn decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let nibble = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_empty() {
        assert_eq!(encode(&[]), "");
    }

    #[test]
    fn encode_all_byte_values_roundtrip() {
        let all: Vec<u8> = (0..=255u8).collect();
        let text = encode(&all);
        assert_eq!(text.len(), 512);
        assert_eq!(decode(&text).unwrap(), all);
    }

    #[test]
    fn decode_rejects_odd_length() {
        assert_eq!(decode("abc"), None);
    }

    #[test]
    fn decode_rejects_bad_characters() {
        assert_eq!(decode("zz"), None);
        assert_eq!(decode("0g"), None);
    }

    #[test]
    fn decode_accepts_mixed_case() {
        assert_eq!(decode("AbCd"), Some(vec![0xab, 0xcd]));
    }
}

//! Fowler–Noll–Vo hashes (FNV-1a, 32- and 64-bit).
//!
//! FNV is one of the simplest non-cryptographic hash functions and a frequent
//! "default" choice in Bloom-filter implementations. Its simplicity is exactly
//! why the paper warns against it: pre-images for a target index can be found
//! by a trivial brute-force loop, and the function is easily run backwards for
//! short inputs.

use crate::traits::Hasher64;

const FNV32_PRIME: u32 = 0x0100_0193;
const FNV32_OFFSET: u32 = 0x811c_9dc5;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Raw 32-bit FNV-1a of `data` starting from the standard offset basis.
pub fn fnv1a_32(data: &[u8]) -> u32 {
    fnv1a_32_with_basis(data, FNV32_OFFSET)
}

/// 32-bit FNV-1a starting from a caller-provided basis (used for seeding).
pub fn fnv1a_32_with_basis(data: &[u8], basis: u32) -> u32 {
    let mut h = basis;
    for &b in data {
        h ^= u32::from(b);
        h = h.wrapping_mul(FNV32_PRIME);
    }
    h
}

/// Raw 64-bit FNV-1a of `data` starting from the standard offset basis.
pub fn fnv1a_64(data: &[u8]) -> u64 {
    fnv1a_64_with_basis(data, FNV64_OFFSET)
}

/// 64-bit FNV-1a starting from a caller-provided basis (used for seeding).
pub fn fnv1a_64_with_basis(data: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// The 32-bit FNV-1a function as a seedable [`Hasher64`].
///
/// Seeding XORs the seed into the offset basis, mirroring how Bloom-filter
/// libraries derive "independent" functions from one FNV core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fnv1a32;

impl Hasher64 for Fnv1a32 {
    fn hash_with_seed(&self, data: &[u8], seed: u64) -> u64 {
        u64::from(fnv1a_32_with_basis(data, FNV32_OFFSET ^ (seed as u32)))
    }

    fn name(&self) -> &'static str {
        "FNV-1a-32"
    }

    fn output_bits(&self) -> u32 {
        32
    }
}

/// The 64-bit FNV-1a function as a seedable [`Hasher64`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fnv1a64;

impl Hasher64 for Fnv1a64 {
    fn hash_with_seed(&self, data: &[u8], seed: u64) -> u64 {
        fnv1a_64_with_basis(data, FNV64_OFFSET ^ seed)
    }

    fn name(&self) -> &'static str {
        "FNV-1a-64"
    }

    fn output_bits(&self) -> u32 {
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values from the FNV specification (draft-eastlake-fnv) and
    // the widely used test vectors of Landon Curt Noll's reference code.
    #[test]
    fn fnv1a_32_reference_vectors() {
        assert_eq!(fnv1a_32(b""), 0x811c_9dc5);
        assert_eq!(fnv1a_32(b"a"), 0xe40c_292c);
        assert_eq!(fnv1a_32(b"foobar"), 0xbf9c_f968);
    }

    #[test]
    fn fnv1a_64_reference_vectors() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn seed_changes_output() {
        let h = Fnv1a64;
        assert_ne!(h.hash_with_seed(b"abc", 0), h.hash_with_seed(b"abc", 1));
        let h32 = Fnv1a32;
        assert_ne!(h32.hash_with_seed(b"abc", 0), h32.hash_with_seed(b"abc", 1));
    }

    #[test]
    fn thirty_two_bit_variant_fits_in_low_word() {
        let h = Fnv1a32;
        assert_eq!(h.hash(b"anything") >> 32, 0);
        assert_eq!(h.output_bits(), 32);
    }

    #[test]
    fn names_are_distinct() {
        assert_ne!(Fnv1a32.name(), Fnv1a64.name());
    }
}

//! Statistical quality tests for hash functions (a miniature SMHasher).
//!
//! The paper stresses that non-cryptographic functions are designed to pass
//! *statistical* tests — uniformity, avalanche — which say nothing about
//! adversarial resistance. This module provides those tests so the
//! distinction can be demonstrated: MurmurHash passes them with flying
//! colours and is still trivially invertible (see [`crate::inversion`]).

use crate::traits::Hasher64;

/// Result of an avalanche test.
#[derive(Debug, Clone, PartialEq)]
pub struct AvalancheReport {
    /// For every input bit, the fraction of output bits that flipped when the
    /// input bit was flipped (ideal: 0.5).
    pub per_input_bit: Vec<f64>,
    /// Worst absolute deviation from 0.5 across input bits.
    pub worst_bias: f64,
    /// Mean absolute deviation from 0.5.
    pub mean_bias: f64,
}

/// Runs an avalanche test over `samples` random-ish inputs of `input_len`
/// bytes, considering the low `output_bits` bits of the digest.
///
/// The test is deterministic: inputs are generated from a small internal
/// counter-based generator so results are reproducible across runs.
pub fn avalanche<H: Hasher64>(
    hasher: &H,
    input_len: usize,
    samples: usize,
    output_bits: u32,
) -> AvalancheReport {
    assert!(input_len > 0, "input length must be positive");
    assert!(samples > 0, "sample count must be positive");
    assert!((1..=64).contains(&output_bits), "output_bits must be in 1..=64");

    let input_bits = input_len * 8;
    let mut flip_counts = vec![0u64; input_bits];
    let out_mask: u64 = if output_bits == 64 { u64::MAX } else { (1u64 << output_bits) - 1 };

    let mut input = vec![0u8; input_len];
    for sample in 0..samples {
        // Fill the input from a cheap counter-based generator (SplitMix-like)
        // so the test does not depend on the function under test.
        let mut state = (sample as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        for byte in input.iter_mut() {
            state ^= state >> 30;
            state = state.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            state ^= state >> 27;
            *byte = state as u8;
        }

        let base = hasher.hash(&input) & out_mask;
        for bit in 0..input_bits {
            input[bit / 8] ^= 1 << (bit % 8);
            let flipped = hasher.hash(&input) & out_mask;
            input[bit / 8] ^= 1 << (bit % 8);
            flip_counts[bit] += u64::from((base ^ flipped).count_ones());
        }
    }

    let denom = (samples as f64) * f64::from(output_bits);
    let per_input_bit: Vec<f64> = flip_counts.iter().map(|&c| c as f64 / denom).collect();
    let worst_bias = per_input_bit.iter().map(|p| (p - 0.5).abs()).fold(0.0f64, f64::max);
    let mean_bias =
        per_input_bit.iter().map(|p| (p - 0.5).abs()).sum::<f64>() / per_input_bit.len() as f64;

    AvalancheReport { per_input_bit, worst_bias, mean_bias }
}

/// Result of a chi-square uniformity test over reduced digests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformityReport {
    /// Number of buckets the digests were reduced into.
    pub buckets: usize,
    /// Number of hashed samples.
    pub samples: usize,
    /// Chi-square statistic of the observed bucket counts.
    pub chi_square: f64,
    /// Degrees of freedom (`buckets - 1`).
    pub degrees_of_freedom: usize,
}

impl UniformityReport {
    /// Rough acceptance test: the chi-square statistic of a uniform source
    /// concentrates around `df` with standard deviation `sqrt(2 df)`; accept
    /// anything within `sigmas` standard deviations.
    pub fn is_uniform(&self, sigmas: f64) -> bool {
        let df = self.degrees_of_freedom as f64;
        (self.chi_square - df).abs() <= sigmas * (2.0 * df).sqrt()
    }
}

/// Hashes `samples` distinct byte strings, reduces each digest modulo
/// `buckets`, and computes the chi-square statistic of the bucket counts.
pub fn uniformity<H: Hasher64>(hasher: &H, buckets: usize, samples: usize) -> UniformityReport {
    assert!(buckets >= 2, "need at least two buckets");
    assert!(samples >= buckets, "need at least as many samples as buckets");

    let mut counts = vec![0u64; buckets];
    for i in 0..samples {
        let item = format!("item-{i}");
        let idx = (hasher.hash(item.as_bytes()) % buckets as u64) as usize;
        counts[idx] += 1;
    }

    let expected = samples as f64 / buckets as f64;
    let chi_square = counts
        .iter()
        .map(|&c| {
            let diff = c as f64 - expected;
            diff * diff / expected
        })
        .sum();

    UniformityReport { buckets, samples, chi_square, degrees_of_freedom: buckets - 1 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fnv1a64, Murmur3_32, Murmur64A, SipHash24, SipKey};

    #[test]
    fn murmur3_passes_avalanche() {
        let report = avalanche(&Murmur3_32, 8, 200, 32);
        assert!(report.worst_bias < 0.1, "worst bias {}", report.worst_bias);
        assert!(report.mean_bias < 0.05, "mean bias {}", report.mean_bias);
    }

    #[test]
    fn murmur64a_passes_avalanche() {
        let report = avalanche(&Murmur64A, 8, 200, 64);
        assert!(report.worst_bias < 0.1, "worst bias {}", report.worst_bias);
    }

    #[test]
    fn siphash_passes_avalanche() {
        let prf = SipHash24::new(SipKey::new(7, 11));
        let report = avalanche(&prf, 8, 200, 64);
        assert!(report.worst_bias < 0.1, "worst bias {}", report.worst_bias);
    }

    #[test]
    fn fnv_has_weak_avalanche_in_high_bits() {
        // FNV-1a mixes poorly: flipping the last input byte barely affects
        // high output bits. The mini-SMHasher must be able to see that.
        let murmur = avalanche(&Murmur3_32, 4, 300, 32);
        let fnv = avalanche(&Fnv1a64, 4, 300, 64);
        assert!(
            fnv.worst_bias > murmur.worst_bias,
            "fnv {} vs murmur {}",
            fnv.worst_bias,
            murmur.worst_bias
        );
    }

    #[test]
    fn uniformity_of_good_hashes() {
        for report in [uniformity(&Murmur3_32, 64, 20_000), uniformity(&Murmur64A, 64, 20_000)] {
            assert!(
                report.is_uniform(4.0),
                "chi2 {} df {}",
                report.chi_square,
                report.degrees_of_freedom
            );
        }
    }

    #[test]
    fn constant_function_fails_uniformity() {
        struct Constant;
        impl Hasher64 for Constant {
            fn hash_with_seed(&self, _data: &[u8], _seed: u64) -> u64 {
                42
            }
            fn name(&self) -> &'static str {
                "constant"
            }
            fn output_bits(&self) -> u32 {
                64
            }
        }
        let report = uniformity(&Constant, 16, 1600);
        assert!(!report.is_uniform(4.0));
    }

    #[test]
    #[should_panic(expected = "need at least two buckets")]
    fn uniformity_rejects_single_bucket() {
        uniformity(&Murmur3_32, 1, 10);
    }
}

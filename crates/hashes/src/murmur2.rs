//! MurmurHash2 (32-bit) and MurmurHash64A.
//!
//! MurmurHash2 is the historical default of many Bloom-filter libraries. It
//! is *not* collision resistant: Aumasson and Bernstein (paper reference \[7\])
//! showed practical inversion and multicollision attacks, and the paper's
//! Dablooms deletion attack relies on the fact that "MurmurHash can be
//! inverted in constant time". See [`crate::inversion`] for the inversion.

use crate::traits::Hasher64;

/// Original 32-bit MurmurHash2 by Austin Appleby.
pub fn murmur2_32(data: &[u8], seed: u32) -> u32 {
    const M: u32 = 0x5bd1_e995;
    const R: u32 = 24;

    let len = data.len();
    let mut h: u32 = seed ^ (len as u32);

    let mut chunks = data.chunks_exact(4);
    for chunk in &mut chunks {
        let mut k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        k = k.wrapping_mul(M);
        k ^= k >> R;
        k = k.wrapping_mul(M);
        h = h.wrapping_mul(M);
        h ^= k;
    }

    let tail = chunks.remainder();
    match tail.len() {
        3 => {
            h ^= u32::from(tail[2]) << 16;
            h ^= u32::from(tail[1]) << 8;
            h ^= u32::from(tail[0]);
            h = h.wrapping_mul(M);
        }
        2 => {
            h ^= u32::from(tail[1]) << 8;
            h ^= u32::from(tail[0]);
            h = h.wrapping_mul(M);
        }
        1 => {
            h ^= u32::from(tail[0]);
            h = h.wrapping_mul(M);
        }
        _ => {}
    }

    h ^= h >> 13;
    h = h.wrapping_mul(M);
    h ^= h >> 15;
    h
}

/// MurmurHash64A — the 64-bit variant for 64-bit platforms.
pub fn murmur64a(data: &[u8], seed: u64) -> u64 {
    const M: u64 = 0xc6a4_a793_5bd1_e995;
    const R: u32 = 47;

    let len = data.len();
    let mut h: u64 = seed ^ (len as u64).wrapping_mul(M);

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let mut k = u64::from_le_bytes([
            chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
        ]);
        k = k.wrapping_mul(M);
        k ^= k >> R;
        k = k.wrapping_mul(M);
        h ^= k;
        h = h.wrapping_mul(M);
    }

    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut last = [0u8; 8];
        last[..tail.len()].copy_from_slice(tail);
        // The reference implementation XORs the tail bytes shifted by their
        // position, which is exactly a little-endian read of the padded word.
        h ^= u64::from_le_bytes(last);
        h = h.wrapping_mul(M);
    }

    h ^= h >> R;
    h = h.wrapping_mul(M);
    h ^= h >> R;
    h
}

/// MurmurHash2 (32-bit) as a seedable [`Hasher64`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Murmur2_32;

impl Hasher64 for Murmur2_32 {
    fn hash_with_seed(&self, data: &[u8], seed: u64) -> u64 {
        u64::from(murmur2_32(data, seed as u32))
    }

    fn name(&self) -> &'static str {
        "MurmurHash2-32"
    }

    fn output_bits(&self) -> u32 {
        32
    }
}

/// MurmurHash64A as a seedable [`Hasher64`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Murmur64A;

impl Hasher64 for Murmur64A {
    fn hash_with_seed(&self, data: &[u8], seed: u64) -> u64 {
        murmur64a(data, seed)
    }

    fn name(&self) -> &'static str {
        "MurmurHash64A"
    }

    fn output_bits(&self) -> u32 {
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Cross-checked against Austin Appleby's reference C++ implementation.
    #[test]
    fn murmur2_32_reference_vectors() {
        assert_eq!(murmur2_32(b"", 0), 0);
        assert_eq!(murmur2_32(b"", 1), 0x5bd15e36);
        assert_eq!(murmur2_32(b"hello", 0), 0xe56129cb);
        assert_eq!(murmur2_32(b"hello, world", 0), 0x4b4c9d80);
    }

    #[test]
    fn murmur64a_reference_vectors() {
        assert_eq!(murmur64a(b"", 0), 0);
        assert_eq!(murmur64a(b"a", 0), 0x071717d2d36b6b11);
        assert_eq!(murmur64a(b"abc", 0), 0x9cc9c33498a95efb);
        assert_eq!(murmur64a(b"hello, world", 0), 0x9659ad0699a8465f);
    }

    #[test]
    fn seed_sensitivity() {
        assert_ne!(murmur2_32(b"abc", 0), murmur2_32(b"abc", 1));
        assert_ne!(murmur64a(b"abc", 0), murmur64a(b"abc", 1));
    }

    #[test]
    fn all_tail_lengths_are_distinct() {
        let data: Vec<u8> = (1u8..=32).collect();
        let mut outputs = std::collections::HashSet::new();
        for len in 0..=data.len() {
            outputs.insert(murmur64a(&data[..len], 99));
        }
        assert_eq!(outputs.len(), data.len() + 1);
    }

    #[test]
    fn hasher64_wrappers() {
        assert_eq!(Murmur2_32.output_bits(), 32);
        assert_eq!(Murmur64A.output_bits(), 64);
        assert_eq!(Murmur2_32.hash(b"hello"), u64::from(murmur2_32(b"hello", 0)));
        assert_eq!(Murmur64A.hash(b"hello"), murmur64a(b"hello", 0));
    }
}

//! Digest recycling — deriving every Bloom-filter index from one (or as few
//! as possible) cryptographic digests.
//!
//! Section 8.2 of the paper observes that a Bloom filter needs only
//! `k * ceil(log2 m)` digest bits per item, so a single SHA-512 (or even
//! SHA-1) call usually provides enough entropy for all `k` indexes. Instead
//! of calling the hash `k` times with `k` salts (the "naive" column of
//! Table 2), the **recycling** strategy slices the required bits out of one
//! digest and only re-hashes with an incremented salt when the digest runs
//! out. Figure 9 plots which function suffices for which `(m, f)` domain.

use crate::traits::CryptoHash;

/// Number of digest bits consumed per index for a filter of `m` bits/cells.
pub fn bits_per_index(m: u64) -> u32 {
    assert!(m > 1, "filter size must exceed one cell");
    64 - (m - 1).leading_zeros()
}

/// Total digest bits required to derive `k` indexes for a filter of size `m`
/// — the quantity `k * ceil(log2 m)` plotted in Figure 9 of the paper.
pub fn required_bits(k: u32, m: u64) -> u32 {
    k * bits_per_index(m)
}

/// Number of calls to a hash function with `digest_bits`-bit output needed to
/// derive `k` indexes for a filter of size `m`.
pub fn calls_needed(digest_bits: u32, k: u32, m: u64) -> u32 {
    let per_index = bits_per_index(m);
    if per_index > digest_bits {
        // A single index does not even fit in one digest; the strategy is
        // unusable (never the case for real filter sizes and SHA digests).
        return u32::MAX;
    }
    let indexes_per_call = digest_bits / per_index;
    k.div_ceil(indexes_per_call)
}

/// A bit-level cursor over one or more digests of the same item.
///
/// The reader consumes `width`-bit big-endian slices of the digest stream; it
/// transparently requests a fresh digest (same item, incremented salt) when
/// the current digest has fewer than `width` bits left. Partial leftovers at
/// the end of a digest are discarded, matching the conservative reading of
/// "reuse unused bits" in the paper: only whole, uniformly distributed
/// windows are used.
pub struct RecyclingReader<'a> {
    hash: &'a dyn CryptoHash,
    item: &'a [u8],
    digest: Vec<u8>,
    bit_pos: usize,
    salt: u64,
}

impl<'a> RecyclingReader<'a> {
    /// Starts reading recycled bits of `item` under `hash` (salt 0 first).
    pub fn new(hash: &'a dyn CryptoHash, item: &'a [u8]) -> Self {
        let digest = Self::salted_digest(hash, item, 0);
        RecyclingReader { hash, item, digest, bit_pos: 0, salt: 0 }
    }

    fn salted_digest(hash: &dyn CryptoHash, item: &[u8], salt: u64) -> Vec<u8> {
        if salt == 0 {
            hash.digest(item)
        } else {
            let mut buf = Vec::with_capacity(item.len() + 8);
            buf.extend_from_slice(item);
            buf.extend_from_slice(&salt.to_le_bytes());
            hash.digest(&buf)
        }
    }

    /// Number of digest computations performed so far.
    pub fn digests_computed(&self) -> u64 {
        self.salt + 1
    }

    /// Reads the next `width` bits (1..=64) as a big-endian integer.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero, exceeds 64, or exceeds the digest length.
    pub fn read_bits(&mut self, width: u32) -> u64 {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        let digest_bits = self.digest.len() * 8;
        assert!(width as usize <= digest_bits, "width exceeds digest size");

        if self.bit_pos + width as usize > digest_bits {
            self.salt += 1;
            self.digest = Self::salted_digest(self.hash, self.item, self.salt);
            self.bit_pos = 0;
        }

        let mut value: u64 = 0;
        for offset in 0..width as usize {
            let bit_index = self.bit_pos + offset;
            let byte = self.digest[bit_index / 8];
            let bit = (byte >> (7 - (bit_index % 8))) & 1;
            value = (value << 1) | u64::from(bit);
        }
        self.bit_pos += width as usize;
        value
    }

    /// Reads the next index for a filter of size `m`, reduced modulo `m`.
    pub fn read_index(&mut self, m: u64) -> u64 {
        self.read_bits(bits_per_index(m)) % m
    }
}

impl core::fmt::Debug for RecyclingReader<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RecyclingReader")
            .field("hash", &self.hash.name())
            .field("bit_pos", &self.bit_pos)
            .field("salt", &self.salt)
            .finish()
    }
}

/// Derives `k` indexes for a filter of size `m` by recycling digest bits.
///
/// This is the workhorse behind the "Recycling" column of Table 2.
pub fn recycled_indexes(hash: &dyn CryptoHash, item: &[u8], k: u32, m: u64) -> Vec<u64> {
    let mut reader = RecyclingReader::new(hash, item);
    (0..k).map(|_| reader.read_index(m)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Md5, Sha1, Sha256, Sha512};

    #[test]
    fn bits_per_index_matches_ceil_log2() {
        assert_eq!(bits_per_index(2), 1);
        assert_eq!(bits_per_index(3), 2);
        assert_eq!(bits_per_index(4), 2);
        assert_eq!(bits_per_index(5), 3);
        assert_eq!(bits_per_index(1024), 10);
        assert_eq!(bits_per_index(1025), 11);
        assert_eq!(bits_per_index(3200), 12);
    }

    #[test]
    #[should_panic(expected = "filter size must exceed")]
    fn bits_per_index_rejects_degenerate_filter() {
        bits_per_index(1);
    }

    #[test]
    fn required_bits_fig9_examples() {
        // A 2.48 MB filter (~20.8M bits) with k = 10 needs 10 * 25 = 250 bits:
        // more than SHA-1 provides but a single SHA-256 digest covers it.
        let m = 20_800_000u64;
        assert_eq!(bits_per_index(m), 25);
        assert_eq!(required_bits(10, m), 250);
        assert!(required_bits(10, m) > 160);
        assert!(required_bits(10, m) <= 256);
    }

    #[test]
    fn calls_needed_counts_whole_digests() {
        let m = 20_800_000u64; // 25 bits per index
        assert_eq!(calls_needed(512, 10, m), 1); // SHA-512: 20 indexes per call
        assert_eq!(calls_needed(256, 10, m), 1); // SHA-256: 10 indexes per call
        assert_eq!(calls_needed(160, 10, m), 2); // SHA-1: 6 indexes per call
        assert_eq!(calls_needed(128, 10, m), 2); // MD5: 5 indexes per call
        assert_eq!(calls_needed(32, 10, m), 10); // 32-bit hash: one index per call
        assert_eq!(calls_needed(16, 10, m), u32::MAX); // index does not fit at all
    }

    #[test]
    fn reader_is_deterministic() {
        let a = recycled_indexes(&Sha256, b"http://example.org/", 10, 4096);
        let b = recycled_indexes(&Sha256, b"http://example.org/", 10, 4096);
        assert_eq!(a, b);
    }

    #[test]
    fn indexes_are_in_range() {
        for m in [2u64, 3, 100, 3200, 1 << 20] {
            for idx in recycled_indexes(&Sha512, b"item", 16, m) {
                assert!(idx < m, "index {idx} out of range for m={m}");
            }
        }
    }

    #[test]
    fn first_indexes_match_manual_bit_extraction() {
        // With m = 65536 each index is exactly 16 bits, so the first index is
        // the first two digest bytes read big-endian.
        let digest = Sha1.digest(b"item");
        let expected0 = u64::from(u16::from_be_bytes([digest[0], digest[1]]));
        let expected1 = u64::from(u16::from_be_bytes([digest[2], digest[3]]));
        let got = recycled_indexes(&Sha1, b"item", 2, 65536);
        assert_eq!(got, vec![expected0, expected1]);
    }

    #[test]
    fn reader_rolls_over_to_salted_digest() {
        // MD5 has 128 bits; with 25-bit indexes only 5 fit per digest, so the
        // sixth index must trigger a second (salted) digest computation.
        let m = 20_800_000u64;
        let mut reader = RecyclingReader::new(&Md5, b"item");
        for _ in 0..5 {
            reader.read_index(m);
        }
        assert_eq!(reader.digests_computed(), 1);
        reader.read_index(m);
        assert_eq!(reader.digests_computed(), 2);
    }

    #[test]
    fn salted_continuation_differs_from_restart() {
        // Indexes 5.. come from a different digest than indexes 0..5.
        let m = 20_800_000u64;
        let ten = recycled_indexes(&Md5, b"item", 10, m);
        let five = recycled_indexes(&Md5, b"item", 5, m);
        assert_eq!(&ten[..5], &five[..]);
        assert_ne!(&ten[5..], &five[..]);
    }

    #[test]
    fn distinct_items_get_distinct_index_sets() {
        let a = recycled_indexes(&Sha256, b"url-a", 8, 1 << 22);
        let b = recycled_indexes(&Sha256, b"url-b", 8, 1 << 22);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=64")]
    fn zero_width_read_panics() {
        let mut reader = RecyclingReader::new(&Sha256, b"x");
        reader.read_bits(0);
    }
}

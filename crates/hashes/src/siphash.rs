//! SipHash — a fast, keyed, short-input PRF (Aumasson & Bernstein).
//!
//! SipHash is the countermeasure the paper benchmarks against HMAC in
//! Table 2: a keyed function fast enough to replace MurmurHash while denying
//! the adversary the ability to predict filter indexes. Both the standard
//! SipHash-2-4 and the faster SipHash-1-3 are provided.

use crate::traits::{Hasher64, KeyedHash64};

/// A 128-bit SipHash key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SipKey {
    /// Low 64 bits of the key (`k0`).
    pub k0: u64,
    /// High 64 bits of the key (`k1`).
    pub k1: u64,
}

impl SipKey {
    /// Builds a key from two 64-bit halves.
    pub fn new(k0: u64, k1: u64) -> Self {
        SipKey { k0, k1 }
    }

    /// Builds a key from 16 little-endian bytes.
    pub fn from_bytes(bytes: &[u8; 16]) -> Self {
        SipKey {
            k0: u64::from_le_bytes(bytes[0..8].try_into().expect("8-byte slice")),
            k1: u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice")),
        }
    }
}

#[inline(always)]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// Generic SipHash-c-d producing a 64-bit tag.
pub fn siphash_cd(c_rounds: usize, d_rounds: usize, key: SipKey, data: &[u8]) -> u64 {
    let mut v = [
        key.k0 ^ 0x736f_6d65_7073_6575,
        key.k1 ^ 0x646f_7261_6e64_6f6d,
        key.k0 ^ 0x6c79_6765_6e65_7261,
        key.k1 ^ 0x7465_6462_7974_6573,
    ];

    let len = data.len();
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8-byte slice"));
        v[3] ^= m;
        for _ in 0..c_rounds {
            sipround(&mut v);
        }
        v[0] ^= m;
    }

    let tail = chunks.remainder();
    let mut last = [0u8; 8];
    last[..tail.len()].copy_from_slice(tail);
    last[7] = len as u8;
    let m = u64::from_le_bytes(last);
    v[3] ^= m;
    for _ in 0..c_rounds {
        sipround(&mut v);
    }
    v[0] ^= m;

    v[2] ^= 0xff;
    for _ in 0..d_rounds {
        sipround(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

/// SipHash-2-4 of `data` under `key`.
pub fn siphash24(key: SipKey, data: &[u8]) -> u64 {
    siphash_cd(2, 4, key, data)
}

/// SipHash-1-3 of `data` under `key` — the reduced-round variant used when
/// throughput matters more than the full security margin.
pub fn siphash13(key: SipKey, data: &[u8]) -> u64 {
    siphash_cd(1, 3, key, data)
}

/// Keyed SipHash-2-4 implementing both [`KeyedHash64`] (the countermeasure
/// interface) and [`Hasher64`] (so it can slot into unkeyed benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SipHash24 {
    key: SipKey,
}

impl SipHash24 {
    /// Creates the PRF with the given secret key.
    pub fn new(key: SipKey) -> Self {
        SipHash24 { key }
    }

    /// Returns the key (useful for persisting a filter's configuration).
    pub fn key(&self) -> SipKey {
        self.key
    }
}

impl Default for SipHash24 {
    fn default() -> Self {
        SipHash24::new(SipKey::new(0, 0))
    }
}

impl KeyedHash64 for SipHash24 {
    fn mac_with_tweak(&self, data: &[u8], tweak: u64) -> u64 {
        // The tweak is folded into k1 so that distinct tweaks behave as
        // independent PRFs while the secret k0 remains required to predict
        // outputs.
        let tweaked = SipKey::new(self.key.k0, self.key.k1 ^ tweak);
        siphash24(tweaked, data)
    }

    fn name(&self) -> &'static str {
        "SipHash-2-4"
    }
}

impl Hasher64 for SipHash24 {
    fn hash_with_seed(&self, data: &[u8], seed: u64) -> u64 {
        self.mac_with_tweak(data, seed)
    }

    fn name(&self) -> &'static str {
        "SipHash-2-4"
    }

    fn output_bits(&self) -> u32 {
        64
    }
}

/// Keyed SipHash-1-3 (reduced-round) PRF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SipHash13 {
    key: SipKey,
}

impl SipHash13 {
    /// Creates the PRF with the given secret key.
    pub fn new(key: SipKey) -> Self {
        SipHash13 { key }
    }
}

impl Default for SipHash13 {
    fn default() -> Self {
        SipHash13::new(SipKey::new(0, 0))
    }
}

impl KeyedHash64 for SipHash13 {
    fn mac_with_tweak(&self, data: &[u8], tweak: u64) -> u64 {
        let tweaked = SipKey::new(self.key.k0, self.key.k1 ^ tweak);
        siphash13(tweaked, data)
    }

    fn name(&self) -> &'static str {
        "SipHash-1-3"
    }
}

impl Hasher64 for SipHash13 {
    fn hash_with_seed(&self, data: &[u8], seed: u64) -> u64 {
        self.mac_with_tweak(data, seed)
    }

    fn name(&self) -> &'static str {
        "SipHash-1-3"
    }

    fn output_bits(&self) -> u32 {
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_key() -> SipKey {
        let bytes: [u8; 16] = core::array::from_fn(|i| i as u8);
        SipKey::from_bytes(&bytes)
    }

    // Official SipHash-2-4 test vectors from the reference implementation
    // (Aumasson & Bernstein): key = 00 01 .. 0f, message = 00 01 .. (len-1).
    #[test]
    fn siphash24_official_vectors() {
        let key = reference_key();
        let expected: [u64; 8] = [
            0x726f_db47_dd0e_0e31,
            0x74f8_39c5_93dc_67fd,
            0x0d6c_8009_d9a9_4f5a,
            0x8567_6696_d7fb_7e2d,
            0xcf27_94e0_2771_87b7,
            0x1876_5564_cd99_a68d,
            0xcbc9_466e_58fe_e3ce,
            0xab02_00f5_8b01_d137,
        ];
        for (len, want) in expected.iter().enumerate() {
            let msg: Vec<u8> = (0..len as u8).collect();
            assert_eq!(siphash24(key, &msg), *want, "length {len}");
        }
    }

    #[test]
    fn siphash24_longer_official_vector() {
        // Vector for message length 63 from the reference test set.
        let key = reference_key();
        let msg: Vec<u8> = (0..63u8).collect();
        assert_eq!(siphash24(key, &msg), 0x958a_324c_eb06_4572);
    }

    #[test]
    fn key_from_bytes_matches_halves() {
        let key = reference_key();
        assert_eq!(key.k0, 0x0706_0504_0302_0100);
        assert_eq!(key.k1, 0x0f0e_0d0c_0b0a_0908);
    }

    #[test]
    fn different_keys_give_different_tags() {
        let a = SipHash24::new(SipKey::new(1, 2));
        let b = SipHash24::new(SipKey::new(3, 4));
        assert_ne!(a.mac(b"item"), b.mac(b"item"));
    }

    #[test]
    fn tweak_acts_as_independent_function() {
        let prf = SipHash24::new(SipKey::new(42, 43));
        assert_ne!(prf.mac_with_tweak(b"item", 0), prf.mac_with_tweak(b"item", 1));
    }

    #[test]
    fn siphash13_differs_from_siphash24() {
        let key = reference_key();
        assert_ne!(siphash13(key, b"message"), siphash24(key, b"message"));
    }

    #[test]
    fn hasher64_and_keyed_interfaces_agree() {
        let prf = SipHash24::new(SipKey::new(7, 9));
        assert_eq!(Hasher64::hash_with_seed(&prf, b"x", 5), prf.mac_with_tweak(b"x", 5));
    }
}

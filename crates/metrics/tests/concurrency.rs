//! Seeded multithreaded consistency: many threads hammering one shared
//! counter and one shared histogram must lose nothing — the final counter
//! value, histogram count, sum and max all equal what a single-threaded
//! replay of the same seeded value stream produces.

use std::sync::Arc;

use evilbloom_metrics::{Counter, Histogram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREADS: u64 = 8;
const RECORDS_PER_THREAD: u64 = 20_000;

/// The seeded value stream thread `t` records (shifted so most values are
/// small, with occasional huge outliers exercising the top buckets).
fn values(thread: u64) -> impl Iterator<Item = u64> {
    let mut rng = StdRng::seed_from_u64(0xB100_0000 + thread);
    (0..RECORDS_PER_THREAD).map(move |_| {
        let raw: u64 = rng.gen();
        raw >> (raw % 56)
    })
}

#[test]
fn concurrent_recording_loses_nothing() {
    let counter = Arc::new(Counter::new());
    let histogram = Arc::new(Histogram::new());

    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let (counter, histogram) = (Arc::clone(&counter), Arc::clone(&histogram));
            scope.spawn(move || {
                for value in values(thread) {
                    counter.add(value % 7);
                    histogram.record(value);
                }
            });
        }
    });

    // Single-threaded replay of the identical streams.
    let (expected_counter, expected_histogram) = (Counter::new(), Histogram::new());
    for thread in 0..THREADS {
        for value in values(thread) {
            expected_counter.add(value % 7);
            expected_histogram.record(value);
        }
    }

    assert_eq!(counter.get(), expected_counter.get());
    let (got, want) = (histogram.snapshot(), expected_histogram.snapshot());
    assert_eq!(got.count(), THREADS * RECORDS_PER_THREAD);
    assert_eq!(got, want, "bucket counts, sum and max must match the serial replay exactly");
}

/// Merging per-thread private histograms equals one shared histogram fed
/// the union of the streams — the merge contract under real concurrency.
#[test]
fn per_thread_snapshots_merge_to_the_shared_total() {
    let shared = Arc::new(Histogram::new());
    let locals: Vec<Histogram> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|thread| {
                let shared = Arc::clone(&shared);
                scope.spawn(move || {
                    let local = Histogram::new();
                    for value in values(thread) {
                        shared.record(value);
                        local.record(value);
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("recorder thread")).collect()
    });

    let mut merged = evilbloom_metrics::HistogramSnapshot::default();
    for local in &locals {
        merged.merge(&local.snapshot());
    }
    assert_eq!(merged, shared.snapshot());
}

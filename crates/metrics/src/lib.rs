//! # evilbloom-metrics
//!
//! Dependency-free runtime telemetry for the evilbloom serving stack.
//!
//! The paper's core observable — false-positive-probability drift under
//! chosen-insertion pollution (Gerbet, Kumar & Lauradoux, DSN 2015) — is a
//! *time series*, not a point-in-time snapshot: an adversary reveals itself
//! by how many fresh bits each insertion sets, sampled continuously. This
//! crate provides the primitives every layer of the stack (server, reactor,
//! buffer pool, store, WAL) records into, and a registry that renders them
//! as a deterministic Prometheus-style text exposition served over the wire
//! by the `METRICS` opcode:
//!
//! * [`Counter`] — a relaxed atomic monotone counter (`inc`/`add`/`get`);
//! * [`Gauge`] — a last-write-wins `f64` gauge stored as atomic bits;
//! * [`Histogram`] — a lock-free power-of-two-bucketed histogram: `&self`
//!   recording (two relaxed `fetch_add`s and a `fetch_max`), mergeable
//!   [`HistogramSnapshot`]s with p50/p90/p99 quantiles and an exact max;
//! * [`Registry`] — named-metric registration and rendering, including
//!   [`Registry::render_merged`] for stitching several layers' registries
//!   into one globally-sorted exposition;
//! * [`logger`] — a tiny leveled logger filtered by the `EVILBLOOM_LOG`
//!   environment variable (`off`/`error`/`warn`/`info`/`debug`/`trace`),
//!   replacing the scattered `eprintln!` diagnostics so tests can silence
//!   them; every line is prefixed with coarse uptime millis and a
//!   subsystem tag derived from the calling crate.
//!
//! Everything is `std`-only and records through `&self`, so hot paths share
//! handles (`Arc<Counter>`, `Arc<Histogram>`) without locks; the only mutex
//! in the crate guards the registry's entry list, touched at registration
//! and render time, never on the record path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod histogram;
pub mod logger;
mod registry;

pub use counter::{Counter, Gauge};
pub use histogram::{Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use logger::Level;
pub use registry::Registry;

//! The named-metric [`Registry`] and its deterministic Prometheus-style
//! text exposition.

use std::sync::{Arc, Mutex};

use crate::counter::{Counter, Gauge};
use crate::histogram::{Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};

/// One registered metric: a name, a help line, an optional label set and a
/// shared handle to the live value.
#[derive(Clone)]
struct Entry {
    name: &'static str,
    help: &'static str,
    /// Sorted `(key, value)` pairs; empty for unlabelled metrics.
    labels: Vec<(String, String)>,
    metric: Metric,
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A collection of named metrics that renders as a deterministic
/// Prometheus-style text exposition.
///
/// Registration hands back an `Arc` handle the instrumented code keeps and
/// records through directly — the registry is only consulted again at render
/// time, so its internal mutex never sits on a hot path. Each layer of the
/// stack owns its own registry; [`Registry::render_merged`] stitches several
/// into one globally-sorted exposition (the `METRICS` opcode serves the
/// server's and the store's registries merged).
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers an unlabelled counter and returns its recording handle.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Registers a labelled counter (`labels` are `(key, value)` pairs).
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        let handle = Arc::new(Counter::new());
        self.push(name, help, labels, Metric::Counter(Arc::clone(&handle)));
        handle
    }

    /// Registers an unlabelled gauge and returns its recording handle.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Registers a labelled gauge.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        let handle = Arc::new(Gauge::new());
        self.push(name, help, labels, Metric::Gauge(Arc::clone(&handle)));
        handle
    }

    /// Registers an unlabelled histogram and returns its recording handle.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Registers a labelled histogram.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let handle = Arc::new(Histogram::new());
        self.push(name, help, labels, Metric::Histogram(Arc::clone(&handle)));
        handle
    }

    fn push(&self, name: &'static str, help: &'static str, labels: &[(&str, &str)], m: Metric) {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        let mut entries = self.entries.lock().expect("registry mutex poisoned");
        entries.push(Entry { name, help, labels, metric: m });
    }

    /// Renders this registry alone (see [`Registry::render_merged`]).
    pub fn render(&self) -> String {
        Registry::render_merged(&[self])
    }

    /// Renders several registries as one exposition: entries from all inputs
    /// are sorted by metric name then label set, each family gets exactly
    /// one `# HELP`/`# TYPE` header, and every registered metric appears
    /// even at zero — so the exposition's *shape* is deterministic and a
    /// scraper can rely on a metric existing before its first event.
    pub fn render_merged(registries: &[&Registry]) -> String {
        let mut entries: Vec<Entry> = Vec::new();
        for registry in registries {
            entries
                .extend(registry.entries.lock().expect("registry mutex poisoned").iter().cloned());
        }
        entries.sort_by(|a, b| (a.name, &a.labels).cmp(&(b.name, &b.labels)));

        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for entry in &entries {
            if last_family != Some(entry.name) {
                out.push_str(&format!("# HELP {} {}\n", entry.name, entry.help));
                out.push_str(&format!("# TYPE {} {}\n", entry.name, entry.metric.type_name()));
                last_family = Some(entry.name);
            }
            match &entry.metric {
                Metric::Counter(c) => {
                    sample_line(&mut out, entry.name, "", &entry.labels, &[], &c.get().to_string());
                }
                Metric::Gauge(g) => {
                    sample_line(&mut out, entry.name, "", &entry.labels, &[], &g.get().to_string());
                }
                Metric::Histogram(h) => render_histogram(&mut out, entry, &h.snapshot()),
            }
        }
        out
    }
}

/// Renders one histogram entry: cumulative `_bucket{le=...}` lines (empty
/// buckets skipped, `+Inf` always present), `_sum`, `_count`, the
/// p50/p90/p99 quantiles as `{quantile=...}` samples, and the exact `_max`.
fn render_histogram(out: &mut String, entry: &Entry, snapshot: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for i in 0..HISTOGRAM_BUCKETS {
        let in_bucket = snapshot.bucket_count(i);
        cumulative += in_bucket;
        if in_bucket == 0 {
            continue;
        }
        let le = HistogramSnapshot::bucket_le(i).to_string();
        sample_line(
            out,
            entry.name,
            "_bucket",
            &entry.labels,
            &[("le", &le)],
            &cumulative.to_string(),
        );
    }
    sample_line(
        out,
        entry.name,
        "_bucket",
        &entry.labels,
        &[("le", "+Inf")],
        &cumulative.to_string(),
    );
    sample_line(out, entry.name, "_sum", &entry.labels, &[], &snapshot.sum().to_string());
    sample_line(out, entry.name, "_count", &entry.labels, &[], &snapshot.count().to_string());
    for (q, value) in [("0.5", snapshot.p50()), ("0.9", snapshot.p90()), ("0.99", snapshot.p99())] {
        sample_line(out, entry.name, "", &entry.labels, &[("quantile", q)], &value.to_string());
    }
    sample_line(out, entry.name, "_max", &entry.labels, &[], &snapshot.max().to_string());
}

/// Writes one sample line: `name[suffix]{labels,extra} value`.
fn sample_line(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &[(String, String)],
    extra: &[(&str, &str)],
    value: &str,
) {
    out.push_str(name);
    out.push_str(suffix);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        for (key, val) in
            labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(key);
            out.push_str("=\"");
            for ch in val.chars() {
                match ch {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    other => out.push(other),
                }
            }
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_is_sorted_and_headed() {
        let registry = Registry::new();
        let b = registry.counter("test_beta_total", "second family");
        let a1 = registry.counter_with("test_alpha_total", "first family", &[("op", "query")]);
        let a2 = registry.counter_with("test_alpha_total", "first family", &[("op", "insert")]);
        a1.add(3);
        a2.add(2);
        b.inc();

        let text = registry.render();
        assert_eq!(
            text,
            "# HELP test_alpha_total first family\n\
             # TYPE test_alpha_total counter\n\
             test_alpha_total{op=\"insert\"} 2\n\
             test_alpha_total{op=\"query\"} 3\n\
             # HELP test_beta_total second family\n\
             # TYPE test_beta_total counter\n\
             test_beta_total 1\n"
        );
    }

    #[test]
    fn zero_valued_metrics_still_render() {
        let registry = Registry::new();
        let _gauge = registry.gauge("test_fill", "a gauge");
        let _histogram = registry.histogram("test_latency_ns", "a histogram");
        let text = registry.render();
        assert!(text.contains("test_fill 0\n"));
        assert!(text.contains("test_latency_ns_count 0\n"));
        assert!(text.contains("test_latency_ns_bucket{le=\"+Inf\"} 0\n"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets_and_quantiles() {
        let registry = Registry::new();
        let h = registry.histogram_with("test_ns", "latencies", &[("op", "ping")]);
        h.record(1);
        h.record(1);
        h.record(8);
        let text = registry.render();
        assert!(text.contains("# TYPE test_ns histogram\n"), "{text}");
        assert!(text.contains("test_ns_bucket{op=\"ping\",le=\"1\"} 2\n"), "{text}");
        assert!(text.contains("test_ns_bucket{op=\"ping\",le=\"15\"} 3\n"), "{text}");
        assert!(text.contains("test_ns_bucket{op=\"ping\",le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("test_ns_sum{op=\"ping\"} 10\n"), "{text}");
        assert!(text.contains("test_ns_count{op=\"ping\"} 3\n"), "{text}");
        assert!(text.contains("test_ns{op=\"ping\",quantile=\"0.5\"} 1\n"), "{text}");
        assert!(text.contains("test_ns_max{op=\"ping\"} 8\n"), "{text}");
    }

    #[test]
    fn merged_render_interleaves_families_across_registries() {
        let left = Registry::new();
        let right = Registry::new();
        left.counter("test_a_total", "a").inc();
        left.counter("test_c_total", "c").inc();
        right.counter("test_b_total", "b").inc();
        let text = Registry::render_merged(&[&left, &right]);
        let a = text.find("test_a_total 1").expect("a rendered");
        let b = text.find("test_b_total 1").expect("b rendered");
        let c = text.find("test_c_total 1").expect("c rendered");
        assert!(a < b && b < c, "families must be globally sorted:\n{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = Registry::new();
        let _ = registry.counter_with("test_esc_total", "escapes", &[("path", "a\"b\\c\nd")]);
        assert!(registry.render().contains("path=\"a\\\"b\\\\c\\nd\""));
    }
}

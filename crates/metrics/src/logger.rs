//! A tiny leveled stderr logger, env-filtered via `EVILBLOOM_LOG`.
//!
//! The serving stack used to scatter bare `eprintln!` diagnostics (acceptor
//! backoff, reactor-shard failure, WAL broken-flag). This module gives them
//! one switch: `EVILBLOOM_LOG=off` silences everything (useful in tests),
//! `error`/`warn` (the default)/`info`/`debug` open progressively chattier
//! tiers. Call sites use the [`log_error!`](crate::log_error),
//! [`log_warn!`](crate::log_warn), [`log_info!`](crate::log_info) and
//! [`log_debug!`](crate::log_debug) macros, which skip all formatting work
//! when the level is filtered out.

use std::sync::OnceLock;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The process is losing functionality (a reactor shard died).
    Error,
    /// Degraded but serving (accept backoff, WAL broken, fsync failed).
    Warn,
    /// Lifecycle landmarks.
    Info,
    /// High-volume diagnostics.
    Debug,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// The effective filter: `None` is `off`, otherwise the most verbose level
/// still emitted. Parsed from `EVILBLOOM_LOG` once, on first use.
fn max_level() -> Option<Level> {
    static FILTER: OnceLock<Option<Level>> = OnceLock::new();
    *FILTER.get_or_init(|| parse_filter(std::env::var("EVILBLOOM_LOG").ok().as_deref()))
}

/// `EVILBLOOM_LOG` values, case-insensitive; unset or unrecognised values
/// fall back to `warn` so misconfiguration never silences real warnings.
fn parse_filter(value: Option<&str>) -> Option<Level> {
    match value.map(str::trim).map(str::to_ascii_lowercase).as_deref() {
        Some("off") | Some("none") => None,
        Some("error") => Some(Level::Error),
        Some("info") => Some(Level::Info),
        Some("debug") => Some(Level::Debug),
        Some("warn") | Some(_) | None => Some(Level::Warn),
    }
}

/// Whether a message at `level` would currently be emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    max_level().is_some_and(|max| level <= max)
}

/// Emits one pre-filtered log line to stderr. Use the macros instead of
/// calling this directly — they check [`enabled`] first so filtered-out
/// messages never format.
pub fn write(level: Level, args: std::fmt::Arguments<'_>) {
    eprintln!("[{}] {}", level.as_str(), args);
}

/// Logs at [`Level::Error`] with `format!` syntax.
#[macro_export]
macro_rules! log_error {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::Level::Error) {
            $crate::logger::write($crate::Level::Error, ::core::format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`] with `format!` syntax.
#[macro_export]
macro_rules! log_warn {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::Level::Warn) {
            $crate::logger::write($crate::Level::Warn, ::core::format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`] with `format!` syntax.
#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::Level::Info) {
            $crate::logger::write($crate::Level::Info, ::core::format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`] with `format!` syntax.
#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::Level::Debug) {
            $crate::logger::write($crate::Level::Debug, ::core::format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_parsing_covers_every_tier() {
        assert_eq!(parse_filter(Some("off")), None);
        assert_eq!(parse_filter(Some("none")), None);
        assert_eq!(parse_filter(Some("ERROR")), Some(Level::Error));
        assert_eq!(parse_filter(Some(" warn ")), Some(Level::Warn));
        assert_eq!(parse_filter(Some("info")), Some(Level::Info));
        assert_eq!(parse_filter(Some("debug")), Some(Level::Debug));
        // Unset and garbage both fall back to warn.
        assert_eq!(parse_filter(None), Some(Level::Warn));
        assert_eq!(parse_filter(Some("verbose")), Some(Level::Warn));
    }

    #[test]
    fn severity_orders_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn macros_expand_without_a_use_of_internals() {
        // Compile-time check: the macros resolve through `$crate` paths.
        crate::log_debug!("never shown under the default filter: {}", 42);
    }
}

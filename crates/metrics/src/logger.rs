//! A tiny leveled stderr logger, env-filtered via `EVILBLOOM_LOG`.
//!
//! The serving stack used to scatter bare `eprintln!` diagnostics (acceptor
//! backoff, reactor-shard failure, WAL broken-flag). This module gives them
//! one switch: `EVILBLOOM_LOG=off` silences everything (useful in tests),
//! `error`/`warn` (the default)/`info`/`debug`/`trace` open progressively
//! chattier tiers. Call sites use the [`log_error!`](crate::log_error),
//! [`log_warn!`](crate::log_warn), [`log_info!`](crate::log_info),
//! [`log_debug!`](crate::log_debug) and [`log_trace!`](crate::log_trace)
//! macros, which skip all formatting work when the level is filtered out.
//!
//! Every emitted line carries a coarse uptime timestamp (milliseconds since
//! the process first logged) and a subsystem tag derived from the calling
//! crate, so interleaved diagnostics from the server, store and persistence
//! layers stay attributable:
//!
//! ```text
//! [    1042ms warn  server] accept failed (too many open files); backing off
//! ```

use std::sync::OnceLock;
use std::time::Instant;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The process is losing functionality (a reactor shard died).
    Error,
    /// Degraded but serving (accept backoff, WAL broken, fsync failed).
    Warn,
    /// Lifecycle landmarks.
    Info,
    /// High-volume diagnostics.
    Debug,
    /// Per-event firehose (forensic tracing).
    Trace,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// The effective filter: `None` is `off`, otherwise the most verbose level
/// still emitted. Parsed from `EVILBLOOM_LOG` once, on first use; an
/// unrecognised value warns once and falls back to `warn` instead of
/// silently changing behaviour.
fn max_level() -> Option<Level> {
    static FILTER: OnceLock<Option<Level>> = OnceLock::new();
    *FILTER.get_or_init(|| {
        let raw = std::env::var("EVILBLOOM_LOG").ok();
        match parse_filter(raw.as_deref()) {
            Ok(filter) => filter,
            Err(unknown) => {
                write(
                    Level::Warn,
                    module_path!(),
                    format_args!("unrecognised EVILBLOOM_LOG value {unknown:?}; using \"warn\""),
                );
                Some(Level::Warn)
            }
        }
    })
}

/// `EVILBLOOM_LOG` values, case-insensitive. Unset falls back to `warn`;
/// an unrecognised value is surfaced as `Err` so [`max_level`] can warn
/// once before applying the same fallback (misconfiguration must neither
/// silence real warnings nor pass unnoticed).
fn parse_filter(value: Option<&str>) -> Result<Option<Level>, String> {
    let Some(value) = value else { return Ok(Some(Level::Warn)) };
    match value.trim().to_ascii_lowercase().as_str() {
        // An empty value is "set but says nothing" — treat it as unset.
        "" => Ok(Some(Level::Warn)),
        "off" | "none" => Ok(None),
        "error" => Ok(Some(Level::Error)),
        "warn" => Ok(Some(Level::Warn)),
        "info" => Ok(Some(Level::Info)),
        "debug" => Ok(Some(Level::Debug)),
        "trace" => Ok(Some(Level::Trace)),
        other => Err(other.to_string()),
    }
}

/// Whether a message at `level` would currently be emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    max_level().is_some_and(|max| level <= max)
}

/// Milliseconds since the process first logged — a coarse shared uptime
/// clock, enough to correlate lines without syscall-per-log cost concerns.
fn uptime_ms() -> u128 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_millis()
}

/// Shortens a `module_path!()` to its subsystem tag: the crate name with
/// the `evilbloom_` prefix dropped (`evilbloom_server::reactor` → `server`).
fn subsystem(module_path: &str) -> &str {
    let krate = module_path.split("::").next().unwrap_or(module_path);
    krate.strip_prefix("evilbloom_").unwrap_or(krate)
}

/// Emits one pre-filtered log line to stderr, prefixed with the uptime
/// clock, the severity and the subsystem tag derived from `module_path`
/// (pass `module_path!()`). Use the macros instead of calling this
/// directly — they check [`enabled`] first so filtered-out messages never
/// format.
pub fn write(level: Level, module_path: &str, args: std::fmt::Arguments<'_>) {
    eprintln!("[{:>8}ms {:<5} {}] {}", uptime_ms(), level.as_str(), subsystem(module_path), args);
}

/// Logs at [`Level::Error`] with `format!` syntax.
#[macro_export]
macro_rules! log_error {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::Level::Error) {
            $crate::logger::write(
                $crate::Level::Error,
                ::core::module_path!(),
                ::core::format_args!($($arg)*),
            );
        }
    };
}

/// Logs at [`Level::Warn`] with `format!` syntax.
#[macro_export]
macro_rules! log_warn {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::Level::Warn) {
            $crate::logger::write(
                $crate::Level::Warn,
                ::core::module_path!(),
                ::core::format_args!($($arg)*),
            );
        }
    };
}

/// Logs at [`Level::Info`] with `format!` syntax.
#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::Level::Info) {
            $crate::logger::write(
                $crate::Level::Info,
                ::core::module_path!(),
                ::core::format_args!($($arg)*),
            );
        }
    };
}

/// Logs at [`Level::Debug`] with `format!` syntax.
#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::Level::Debug) {
            $crate::logger::write(
                $crate::Level::Debug,
                ::core::module_path!(),
                ::core::format_args!($($arg)*),
            );
        }
    };
}

/// Logs at [`Level::Trace`] with `format!` syntax.
#[macro_export]
macro_rules! log_trace {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::Level::Trace) {
            $crate::logger::write(
                $crate::Level::Trace,
                ::core::module_path!(),
                ::core::format_args!($($arg)*),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_parsing_covers_every_tier() {
        assert_eq!(parse_filter(Some("off")), Ok(None));
        assert_eq!(parse_filter(Some("none")), Ok(None));
        assert_eq!(parse_filter(Some("ERROR")), Ok(Some(Level::Error)));
        assert_eq!(parse_filter(Some(" warn ")), Ok(Some(Level::Warn)));
        assert_eq!(parse_filter(Some("info")), Ok(Some(Level::Info)));
        assert_eq!(parse_filter(Some("debug")), Ok(Some(Level::Debug)));
        assert_eq!(parse_filter(Some("TRACE")), Ok(Some(Level::Trace)));
        // Unset falls back to warn silently.
        assert_eq!(parse_filter(None), Ok(Some(Level::Warn)));
    }

    #[test]
    fn unrecognised_values_are_surfaced_not_swallowed() {
        // The pre-existing gap: "verbose" used to silently become `warn`.
        // Parsing now reports the offending value (normalised) so the
        // caller warns once before applying the same fallback.
        assert_eq!(parse_filter(Some("verbose")), Err("verbose".to_string()));
        assert_eq!(parse_filter(Some("  TrAcing ")), Err("tracing".to_string()));
        // Empty counts as unset, not as garbage.
        assert_eq!(parse_filter(Some("")), Ok(Some(Level::Warn)));
    }

    #[test]
    fn severity_orders_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn subsystem_tags_drop_the_crate_prefix() {
        assert_eq!(subsystem("evilbloom_server::reactor"), "server");
        assert_eq!(subsystem("evilbloom_store"), "store");
        assert_eq!(subsystem("my_app::main"), "my_app");
    }

    #[test]
    fn macros_expand_without_a_use_of_internals() {
        // Compile-time check: the macros resolve through `$crate` paths.
        crate::log_debug!("never shown under the default filter: {}", 42);
        crate::log_trace!("never shown under the default filter: {}", 43);
    }
}

//! The lock-free power-of-two-bucketed [`Histogram`] and its mergeable
//! [`HistogramSnapshot`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for the value `0`, then one per power of two
/// (`[2^j, 2^{j+1})` for `j` in `0..63`), and a top bucket `[2^63, u64::MAX]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index of a recorded value: `0` maps to bucket 0, everything else
/// to `64 - leading_zeros`, so each bucket `i ≥ 1` covers
/// `[2^{i-1}, 2^i - 1]` and `u64::MAX` lands in bucket 64 without any
/// overflow arithmetic.
#[inline]
fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i` — also the representative value
/// quantiles report, so a histogram fed only the value `2^j` answers every
/// quantile with exactly `2^j`.
fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of bucket `i`, used for the exposition's `le`
/// labels.
fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A fixed-size, lock-free latency/size histogram.
///
/// Recording is `&self` and wait-free: one relaxed `fetch_add` into the
/// value's power-of-two bucket, one into the running sum, and a relaxed
/// `fetch_max` for the exact maximum — cheap enough for per-request hot
/// paths. Reading takes a [`HistogramSnapshot`], a plain-value copy that can
/// be merged with snapshots of other histograms (or of the same histogram
/// at other times) and interrogated for quantiles.
///
/// Power-of-two buckets trade resolution for zero configuration: every
/// `u64` (nanoseconds, bytes, batch sizes) has a bucket, `u64::MAX`
/// included, and quantile error is bounded by 2x — plenty to tell a 100ns
/// fast path from a 10ms fsync stall.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Never panics, for any `u64` value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        // The sum wraps on overflow; with nanosecond latencies that needs
        // half a millennium of recorded time, and a wrapped sum only skews
        // the advisory mean, never the bucket counts or quantiles.
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A plain-value copy of the current state.
    ///
    /// Concurrent recorders may land between the individual bucket loads;
    /// the snapshot is a consistent-enough view for monitoring (each bucket
    /// value is exact as of its own load), not a linearisable cut.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: [u64; HISTOGRAM_BUCKETS] =
            std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed));
        HistogramSnapshot {
            counts,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value copy of a [`Histogram`]: bucket counts, running sum and
/// exact observed maximum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: [u64; HISTOGRAM_BUCKETS],
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot { counts: [0; HISTOGRAM_BUCKETS], sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all recorded values (wrapping, see [`Histogram::record`]).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The exact largest recorded value (`0` when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Count in bucket `i` (`i < HISTOGRAM_BUCKETS`).
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Inclusive upper bound of bucket `i`, for rendering `le` labels.
    pub fn bucket_le(i: usize) -> u64 {
        bucket_upper_bound(i)
    }

    /// Folds another snapshot into this one — the result is exactly the
    /// snapshot of a histogram that recorded both inputs' observations.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the lower bound of the bucket
    /// holding the `ceil(q·count)`-th smallest observation; `0` when empty.
    ///
    /// Reporting the bucket *lower* bound keeps quantiles exact whenever all
    /// observations in the deciding bucket share the bucket's boundary value
    /// (e.g. a histogram fed only powers of two), and makes the estimate
    /// conservative — never above the true quantile's bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_lower_bound(i);
            }
        }
        bucket_lower_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// The median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_exhaustive_and_ordered() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for i in 1..HISTOGRAM_BUCKETS {
            let lo = bucket_lower_bound(i);
            let hi = bucket_upper_bound(i);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            assert!(bucket_upper_bound(i - 1) < lo, "buckets {i} are disjoint and ordered");
        }
    }

    /// Bucket-boundary exactness: a histogram fed only `2^j` answers every
    /// quantile with exactly `2^j`.
    #[test]
    fn quantiles_are_exact_at_powers_of_two() {
        for j in 0..64 {
            let h = Histogram::new();
            for _ in 0..7 {
                h.record(1u64 << j);
            }
            let s = h.snapshot();
            for q in [0.0, 0.01, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(s.quantile(q), 1u64 << j, "q={q} j={j}");
            }
            assert_eq!(s.max(), 1u64 << j);
        }
    }

    #[test]
    fn extreme_values_never_panic() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.max(), u64::MAX);
        assert_eq!(s.quantile(1.0), 1u64 << 63);
        assert_eq!(s.quantile(0.01), 0);
    }

    /// merge(a, b) must equal the snapshot of one histogram that recorded
    /// the concatenation of a's and b's observations.
    #[test]
    fn merge_equals_concatenated_recordings() {
        let values_a = [0u64, 1, 1, 5, 4096, u64::MAX, 77];
        let values_b = [3u64, 3, 1 << 40, 2, 0, 1 << 63];

        let (a, b, both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &v in &values_a {
            a.record(v);
            both.record(v);
        }
        for &v in &values_b {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h = Histogram::new();
        let mut state = 0x9e3779b97f4a7c15u64; // fixed-seed xorshift values
        for _ in 0..10_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            h.record(state >> (state % 48));
        }
        let s = h.snapshot();
        let mut last = 0u64;
        for step in 0..=100 {
            let q = step as f64 / 100.0;
            let value = s.quantile(q);
            assert!(value >= last, "quantile({q}) = {value} < {last}");
            last = value;
        }
        assert!(s.quantile(1.0) <= s.max());
    }

    #[test]
    fn empty_snapshot_answers_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.max(), 0);
    }
}

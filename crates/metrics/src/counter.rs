//! Scalar metrics: the monotone [`Counter`] and the last-write-wins
//! [`Gauge`].

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// All operations are single relaxed atomics: increments from any number of
/// threads never lose counts, and `get` observes some recent value. Relaxed
/// ordering is deliberate — metrics are advisory and never synchronise
/// program state, so the hot path pays one uncontended RMW and nothing else.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (wrapping on overflow, which at one event per nanosecond
    /// takes five centuries to reach).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time measurement (fill ratio, active alarms, uptime): the
/// last `set` wins, readers see some recently written value.
///
/// The `f64` payload is stored as its IEEE-754 bit pattern in an
/// `AtomicU64`, so reads and writes are single atomics — no lock, no torn
/// values.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh gauge at `0.0`.
    pub fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Replaces the current value.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The most recently written value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_round_trips_exact_bits() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        for value in [0.25, -1.5, 1e300, f64::MIN_POSITIVE] {
            g.set(value);
            assert_eq!(g.get().to_bits(), value.to_bits());
        }
    }
}

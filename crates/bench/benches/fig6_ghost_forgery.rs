//! Figure 6 — cost of forging ghost (false-positive) URLs as a function of
//! the filter occupation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evilbloom_attacks::craft_false_positives;
use evilbloom_bench::loaded_filter;
use evilbloom_urlgen::UrlGenerator;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_ghost_urls");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(200));

    for occupation in [20u64, 40, 60, 80] {
        let filter = loaded_filter(1 << 16, 5, occupation as f64 / 100.0);
        let generator = UrlGenerator::new("fig6-bench");
        group.bench_with_input(
            BenchmarkId::new("forge_5_ghosts", format!("{occupation}%_full")),
            &occupation,
            |b, _| b.iter(|| black_box(craft_false_positives(&filter, &generator, 5, u64::MAX))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);

//! Figure 8 — Dablooms under pollution: inserting a slice worth of crafted
//! URLs versus honest URLs into a scaling-counting filter.

use criterion::{criterion_group, criterion_main, Criterion};
use evilbloom_attacks::craft_polluting_items;
use evilbloom_filters::{Dablooms, ScalableConfig};
use evilbloom_hashes::{KirschMitzenmacher, Murmur3_128};
use evilbloom_urlgen::UrlGenerator;
use std::hint::black_box;

fn small_dablooms() -> Dablooms {
    Dablooms::new(
        ScalableConfig { slice_capacity: 500, base_fpp: 0.01, tightening_ratio: 0.9 },
        KirschMitzenmacher::new(Murmur3_128),
    )
}

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_dablooms_pollution");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));

    group.bench_function("honest_slice_load", |b| {
        b.iter(|| {
            let mut filter = small_dablooms();
            for i in 0..500u32 {
                filter.insert(format!("honest-{i}").as_bytes());
            }
            black_box(filter.current_false_positive_probability())
        })
    });

    group.bench_function("polluted_slice_load", |b| {
        b.iter(|| {
            let mut filter = small_dablooms();
            let plan = {
                let slice = &filter.slices()[0];
                craft_polluting_items(slice, &UrlGenerator::new("fig8-bench"), 500, u64::MAX)
            };
            for url in &plan.items {
                filter.insert(url.as_bytes());
            }
            black_box(filter.current_false_positive_probability())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);

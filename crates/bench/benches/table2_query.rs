//! Table 2 — time to derive all k Bloom-filter indexes of a 32-byte item:
//! naive (k salted hash calls) versus digest recycling, per hash function.

use criterion::{criterion_group, criterion_main, Criterion};
use evilbloom_bench::{derive, table2_params, ITEM_32B};
use evilbloom_hashes::{
    CryptoHash, Md5, Murmur2_32, RecycledCrypto, SaltedCrypto, SaltedHashes, Sha1, Sha256, Sha384,
    Sha512, SipHash24, SipKey,
};
use std::hint::black_box;

fn crypto_hashes() -> Vec<Box<dyn CryptoHash>> {
    vec![Box::new(Md5), Box::new(Sha1), Box::new(Sha256), Box::new(Sha384), Box::new(Sha512)]
}

fn bench_table2(c: &mut Criterion) {
    let params = table2_params();
    let mut group = c.benchmark_group("table2_query_time");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(700));
    group.warm_up_time(std::time::Duration::from_millis(200));

    group.bench_function("MurmurHash-32/naive", |b| {
        let strategy = SaltedHashes::new(Murmur2_32);
        b.iter(|| derive(black_box(&strategy), params))
    });
    group.bench_function("SipHash-2-4/naive", |b| {
        let strategy = SaltedHashes::new(SipHash24::new(SipKey::new(7, 7)));
        b.iter(|| derive(black_box(&strategy), params))
    });

    for hash in crypto_hashes() {
        let name = hash.name();
        group.bench_function(format!("{name}/naive"), |b| {
            let strategy = SaltedCrypto::new(by_name(name));
            b.iter(|| derive(black_box(&strategy), params))
        });
        group.bench_function(format!("{name}/recycling"), |b| {
            let strategy = RecycledCrypto::new(by_name(name));
            b.iter(|| derive(black_box(&strategy), params))
        });
    }
    group.finish();

    // Keep the 32-byte item alive so the setup matches the paper exactly.
    black_box(ITEM_32B);
}

fn by_name(name: &str) -> Box<dyn CryptoHash> {
    match name {
        "MD5" => Box::new(Md5),
        "SHA-1" => Box::new(Sha1),
        "SHA-256" => Box::new(Sha256),
        "SHA-384" => Box::new(Sha384),
        _ => Box::new(Sha512),
    }
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);

//! Throughput and adversarial-degradation benchmark for the
//! `evilbloom-store` serving layer, built on the shared traffic mixes in
//! `evilbloom_store::harness` (the same code the `store_load` example
//! demonstrates, so the asserted invariants cannot drift from it).
//!
//! Two measurements:
//!
//! * **honest-mix scaling** — ops/sec of mixed insert/query traffic at 1, 2
//!   and 4 worker threads over a hardened store (the store is lock-free, so
//!   on multi-core hardware throughput scales with threads; the report
//!   notes when the machine has fewer cores than workers);
//! * **adversarial mix** — observed false-positive rate after a
//!   chosen-insertion (pollution) attack, on an unhardened store (degrades,
//!   pollution alarms fire) versus a hardened one (holds the honest rate) —
//!   the paper's Table 2 story at serving scale.
//!
//! Runs standalone (`harness = false`). Pass `--test` for the CI smoke mode:
//! the same phases at a fraction of the size, with the adversarial
//! invariants asserted, so the harness cannot silently rot.

use evilbloom_store::harness::{adversarial_mix, honest_throughput, LoadScale};

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let scale = if smoke { LoadScale::smoke() } else { LoadScale::full() };
    if smoke {
        println!("store_throughput: smoke mode (--test)");
    }

    println!("\n== store_throughput/honest_mix ==");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let single = honest_throughput(&scale, 1);
    println!("threads=1 {single:>12.0} ops/sec");
    let mut at4 = single;
    for threads in [2usize, 4] {
        let rate = honest_throughput(&scale, threads);
        if threads == 4 {
            at4 = rate;
        }
        let note = if cores < threads {
            format!("  [only {cores} core(s) available: no hardware parallelism to win]")
        } else {
            String::new()
        };
        println!("threads={threads} {rate:>12.0} ops/sec  ({:.2}x){note}", rate / single);
    }
    if cores >= 4 && at4 < 2.0 * single {
        println!(
            "WARNING: expected >= 2x scaling at 4 threads on {cores} cores, got {:.2}x",
            at4 / single
        );
    }

    println!("\n== store_throughput/adversarial_mix ==");
    let report = adversarial_mix(&scale, 4);
    println!("honest baseline (same load) : {:.5}", report.baseline_fpp);
    println!(
        "unhardened after attack     : {:.5}  ({:.1}x honest)",
        report.attacked_unhardened_fpp,
        report.unhardened_ratio()
    );
    println!(
        "hardened after attack       : {:.5}  ({:.1}x honest)",
        report.attacked_hardened_fpp,
        report.hardened_ratio()
    );
    println!(
        "pollution alarms: unhardened {}/{}, hardened {}/{}",
        report.unhardened_alarms, scale.shards, report.hardened_alarms, scale.shards
    );

    // The Table 2 invariants, asserted so CI catches a rotted harness:
    // hardening pins the adversarial rate to the honest curve; no hardening
    // lets the adversary blow past it.
    assert!(
        report.hardened_ratio() < 2.0,
        "hardened store must hold observed FPP within 2x of honest (got {:.2}x)",
        report.hardened_ratio()
    );
    assert!(
        report.unhardened_ratio() > 2.0,
        "unhardened store must degrade measurably under attack (got {:.2}x)",
        report.unhardened_ratio()
    );
    assert!(
        report.unhardened_alarms > 0,
        "pollution alarms must fire on the attacked unhardened store"
    );
    assert_eq!(report.hardened_alarms, 0, "hardened store under the same traffic must stay quiet");
    println!("adversarial-mix invariants: OK");
}

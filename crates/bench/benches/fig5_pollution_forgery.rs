//! Figure 5 — cost of forging polluting URLs, as forged URLs per second for
//! filters tuned to the paper's four target false-positive probabilities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evilbloom_attacks::craft_polluting_items;
use evilbloom_filters::{BloomFilter, FilterParams};
use evilbloom_hashes::{SaltedCrypto, Sha512};
use evilbloom_urlgen::UrlGenerator;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_polluting_urls");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(200));

    for exponent in [5i32, 10, 15, 20] {
        let params = FilterParams::optimal(20_000, 2f64.powi(-exponent));
        let filter = BloomFilter::new(params, SaltedCrypto::new(Box::new(Sha512)));
        let generator = UrlGenerator::new("fig5-bench");
        group.bench_with_input(
            BenchmarkId::new("forge_100_urls", format!("f=2^-{exponent}")),
            &exponent,
            |b, _| b.iter(|| black_box(craft_polluting_items(&filter, &generator, 100, u64::MAX))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);

//! Baseline filter operation cost: insert and query across the filter
//! variants and index strategies (supports the countermeasure trade-off
//! discussion of Section 8).

use criterion::{criterion_group, criterion_main, Criterion};
use evilbloom_bench::ITEM_32B;
use evilbloom_filters::{
    hardened_filter, BloomFilter, CountingBloomFilter, FilterKey, FilterParams, HardeningLevel,
};
use evilbloom_hashes::{KirschMitzenmacher, Murmur3_128, SaltedCrypto, Sha256};
use std::hint::black_box;

fn bench_filter_ops(c: &mut Criterion) {
    let params = FilterParams::optimal(100_000, 0.01);
    let mut group = c.benchmark_group("filter_ops");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(700));
    group.warm_up_time(std::time::Duration::from_millis(200));

    group.bench_function("bloom_murmur_km/query", |b| {
        let mut filter = BloomFilter::new(params, KirschMitzenmacher::new(Murmur3_128));
        filter.insert(&ITEM_32B);
        b.iter(|| filter.contains(black_box(&ITEM_32B)))
    });
    group.bench_function("bloom_salted_sha256/query", |b| {
        let mut filter = BloomFilter::new(params, SaltedCrypto::new(Box::new(Sha256)));
        filter.insert(&ITEM_32B);
        b.iter(|| filter.contains(black_box(&ITEM_32B)))
    });
    group.bench_function("bloom_keyed_siphash/query", |b| {
        let filter = hardened_filter(
            100_000,
            0.01,
            HardeningLevel::KeyedSipHash,
            &FilterKey::from_bytes([1; 32]),
        );
        b.iter(|| filter.contains(black_box(&ITEM_32B)))
    });
    group.bench_function("bloom_keyed_hmac/query", |b| {
        let filter = hardened_filter(
            100_000,
            0.01,
            HardeningLevel::KeyedHmac,
            &FilterKey::from_bytes([1; 32]),
        );
        b.iter(|| filter.contains(black_box(&ITEM_32B)))
    });
    group.bench_function("counting_murmur_km/insert_delete", |b| {
        let mut filter = CountingBloomFilter::new(params, KirschMitzenmacher::new(Murmur3_128));
        b.iter(|| {
            filter.insert(black_box(&ITEM_32B));
            filter.delete(black_box(&ITEM_32B));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_filter_ops);
criterion_main!(benches);

//! Raw digest throughput of every hash primitive (supporting data for
//! Table 2 and the countermeasure discussion).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use evilbloom_hashes::{all_crypto_hashes, all_fast_hashers, siphash24, SipKey};
use std::hint::black_box;

fn bench_hashes(c: &mut Criterion) {
    let data = vec![0x5au8; 64];
    let mut group = c.benchmark_group("hash_throughput_64B");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(600));
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.throughput(Throughput::Bytes(data.len() as u64));

    for hasher in all_fast_hashers() {
        group.bench_function(hasher.name(), |b| b.iter(|| hasher.hash(black_box(&data))));
    }
    for hash in all_crypto_hashes() {
        group.bench_function(hash.name(), |b| b.iter(|| hash.digest(black_box(&data))));
    }
    group.bench_function("SipHash-2-4", |b| {
        let key = SipKey::new(1, 2);
        b.iter(|| siphash24(key, black_box(&data)))
    });
    group.finish();
}

criterion_group!(benches, bench_hashes);
criterion_main!(benches);

//! Figure 3 — cost of mounting the chosen-insertion attack on the paper's
//! m=3200, k=4 filter: crafting and inserting the full 600-item pollution
//! plan versus inserting 600 honest items.

use criterion::{criterion_group, criterion_main, Criterion};
use evilbloom_attacks::craft_polluting_items;
use evilbloom_filters::{BloomFilter, FilterParams};
use evilbloom_hashes::{KirschMitzenmacher, Murmur3_128};
use evilbloom_urlgen::UrlGenerator;
use std::hint::black_box;

fn figure3_filter() -> BloomFilter {
    BloomFilter::new(FilterParams::explicit(3200, 4, 600), KirschMitzenmacher::new(Murmur3_128))
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_chosen_insertion");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));

    group.bench_function("honest_600_insertions", |b| {
        b.iter(|| {
            let mut filter = figure3_filter();
            for i in 0..600u32 {
                filter.insert(format!("honest-{i}").as_bytes());
            }
            black_box(filter.current_false_positive_probability())
        })
    });

    group.bench_function("adversarial_422_insertions", |b| {
        b.iter(|| {
            let mut filter = figure3_filter();
            let generator = UrlGenerator::new("fig3-bench");
            let plan = craft_polluting_items(&filter, &generator, 422, u64::MAX);
            for item in &plan.items {
                filter.insert(item.as_bytes());
            }
            black_box(filter.current_false_positive_probability())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);

//! # evilbloom-bench
//!
//! Criterion benchmarks regenerating the performance figures and tables of
//! the paper. Helpers shared by the benches live here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use evilbloom_filters::{BloomFilter, FilterParams};
use evilbloom_hashes::{IndexStrategy, KirschMitzenmacher, Murmur3_128};

/// Builds a Bloom filter loaded to roughly `fill` fraction of set bits, used
/// as the target of forgery benches.
pub fn loaded_filter(m: u64, k: u32, fill: f64) -> BloomFilter {
    assert!((0.0..1.0).contains(&fill), "fill must be in [0, 1)");
    let mut filter = BloomFilter::new(
        FilterParams::explicit(m, k, m / (2 * u64::from(k)).max(1)),
        KirschMitzenmacher::new(Murmur3_128),
    );
    let mut i = 0u64;
    while filter.fill_ratio() < fill {
        filter.insert(format!("load-{i}").as_bytes());
        i += 1;
    }
    filter
}

/// A fixed 32-byte item, matching the Table 2 setup.
pub const ITEM_32B: [u8; 32] = [0xabu8; 32];

/// The Table 2 filter parameters: n = 10^6 items at f = 2^-10.
pub fn table2_params() -> FilterParams {
    FilterParams::optimal(1_000_000, 2f64.powi(-10))
}

/// Derives indexes with a strategy once (convenience for benches).
pub fn derive(strategy: &dyn IndexStrategy, params: FilterParams) -> u64 {
    strategy.indexes(&ITEM_32B, params.k, params.m)[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loaded_filter_reaches_target_fill() {
        let filter = loaded_filter(4096, 4, 0.5);
        assert!(filter.fill_ratio() >= 0.5);
        assert!(filter.fill_ratio() < 0.6);
    }

    #[test]
    fn table2_params_match_paper_setup() {
        let params = table2_params();
        assert_eq!(params.k, 10);
    }
}

//! # evilbloom-bench
//!
//! Criterion benchmarks regenerating the performance figures and tables of
//! the paper. Helpers shared by the benches live here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use criterion::report::Json;
use evilbloom_filters::{BloomFilter, FilterParams};
use evilbloom_hashes::{IndexStrategy, KirschMitzenmacher, Murmur3_128};

/// Schema version of the perf runner's report (`BENCH_<n>.json`). Bump when
/// a field changes meaning; baselines from other schema versions are
/// rejected by [`load_baseline`].
pub const PERF_SCHEMA_VERSION: f64 = 1.0;

/// Parses and validates a perf baseline document. Errors are one-line,
/// operator-readable strings — the perf runner prints them and exits
/// instead of panicking on a stale or corrupted baseline file.
pub fn parse_baseline(text: &str, expected_schema: f64) -> Result<Json, String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON ({e})"))?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or_else(|| "missing a numeric schema_version field".to_string())?;
    if version != expected_schema {
        return Err(format!(
            "schema_version {version} does not match the supported version {expected_schema} \
             (regenerate it with the current perf runner)"
        ));
    }
    if doc.get("workloads").and_then(Json::as_array).is_none() {
        return Err("missing the workloads array".to_string());
    }
    Ok(doc)
}

/// Reads and validates a baseline file; see [`parse_baseline`].
pub fn load_baseline(path: &str, expected_schema: f64) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("baseline {path}: cannot read ({e})"))?;
    parse_baseline(&text, expected_schema).map_err(|e| format!("baseline {path}: {e}"))
}

/// Whether a workload id is selected by the perf runner's `--filter`
/// argument: no filter selects everything, otherwise plain substring
/// matching (so `--filter server/` runs the whole server family and
/// `--filter conn_scaling` just the slow connection-scaling suite).
pub fn workload_selected(id: &str, filter: Option<&str>) -> bool {
    filter.is_none_or(|needle| id.contains(needle))
}

/// Applies [`workload_selected`] to a workload-id list, preserving order —
/// what `perf --list --filter <substring>` prints and `perf --filter`
/// runs.
pub fn select_workloads<'a>(ids: &[&'a str], filter: Option<&str>) -> Vec<&'a str> {
    ids.iter().copied().filter(|id| workload_selected(id, filter)).collect()
}

/// Builds a Bloom filter loaded to roughly `fill` fraction of set bits, used
/// as the target of forgery benches.
pub fn loaded_filter(m: u64, k: u32, fill: f64) -> BloomFilter {
    assert!((0.0..1.0).contains(&fill), "fill must be in [0, 1)");
    let mut filter = BloomFilter::new(
        FilterParams::explicit(m, k, m / (2 * u64::from(k)).max(1)),
        KirschMitzenmacher::new(Murmur3_128),
    );
    let mut i = 0u64;
    while filter.fill_ratio() < fill {
        filter.insert(format!("load-{i}").as_bytes());
        i += 1;
    }
    filter
}

/// A fixed 32-byte item, matching the Table 2 setup.
pub const ITEM_32B: [u8; 32] = [0xabu8; 32];

/// The Table 2 filter parameters: n = 10^6 items at f = 2^-10.
pub fn table2_params() -> FilterParams {
    FilterParams::optimal(1_000_000, 2f64.powi(-10))
}

/// Derives indexes with a strategy once (convenience for benches).
pub fn derive(strategy: &dyn IndexStrategy, params: FilterParams) -> u64 {
    strategy.indexes(&ITEM_32B, params.k, params.m)[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loaded_filter_reaches_target_fill() {
        let filter = loaded_filter(4096, 4, 0.5);
        assert!(filter.fill_ratio() >= 0.5);
        assert!(filter.fill_ratio() < 0.6);
    }

    #[test]
    fn table2_params_match_paper_setup() {
        let params = table2_params();
        assert_eq!(params.k, 10);
    }

    #[test]
    fn unparsable_baseline_is_a_clear_error() {
        let err = parse_baseline("{not json", PERF_SCHEMA_VERSION).expect_err("must reject");
        assert!(err.contains("not valid JSON"), "{err}");
        // One line: the perf runner prints this verbatim.
        assert!(!err.contains('\n'), "{err}");
    }

    #[test]
    fn mismatched_schema_version_is_a_clear_error() {
        let text = r#"{"schema_version": 99.0, "workloads": []}"#;
        let err = parse_baseline(text, PERF_SCHEMA_VERSION).expect_err("must reject");
        assert!(err.contains("schema_version 99"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
        assert!(!err.contains('\n'), "{err}");
    }

    #[test]
    fn missing_schema_version_is_a_clear_error() {
        let err =
            parse_baseline(r#"{"workloads": []}"#, PERF_SCHEMA_VERSION).expect_err("must reject");
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn missing_workloads_is_a_clear_error() {
        let err = parse_baseline(r#"{"schema_version": 1.0}"#, PERF_SCHEMA_VERSION)
            .expect_err("must reject");
        assert!(err.contains("workloads"), "{err}");
    }

    #[test]
    fn valid_baseline_loads() {
        let text = r#"{"schema_version": 1.0, "workloads": [{"id": "hash/md5", "ns_per_op_median": 100.0}]}"#;
        let doc = parse_baseline(text, PERF_SCHEMA_VERSION).expect("valid");
        assert_eq!(doc.get("workloads").and_then(Json::as_array).map(<[Json]>::len), Some(1));
    }

    #[test]
    fn no_filter_selects_every_workload() {
        let ids = ["hash/md5", "server/query", "server/conn_scaling/async/c1k"];
        assert_eq!(select_workloads(&ids, None), ids.to_vec());
    }

    #[test]
    fn filter_is_substring_matching() {
        let ids = ["hash/md5", "server/query", "server/query_batch", "store/query_batch"];
        assert_eq!(
            select_workloads(&ids, Some("server/")),
            vec!["server/query", "server/query_batch"]
        );
        assert_eq!(
            select_workloads(&ids, Some("query_batch")),
            vec!["server/query_batch", "store/query_batch"]
        );
        assert!(select_workloads(&ids, Some("no-such-workload")).is_empty());
        assert!(workload_selected("hash/md5", Some("md5")));
        assert!(!workload_selected("hash/md5", Some("sha")));
    }

    #[test]
    fn filter_preserves_suite_order() {
        let ids = ["b/2", "a/1", "b/1"];
        assert_eq!(select_workloads(&ids, Some("b/")), vec!["b/2", "b/1"]);
    }

    #[test]
    fn unreadable_baseline_file_is_a_clear_error() {
        let err = load_baseline("/nonexistent/baseline.json", PERF_SCHEMA_VERSION)
            .expect_err("must reject");
        assert!(err.contains("cannot read"), "{err}");
    }
}

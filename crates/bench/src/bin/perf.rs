//! The perf-lab runner: a fixed suite of workloads timed with warm-up +
//! median-of-N sampling, emitted as a schema'd, machine-readable
//! `BENCH_<n>.json` at the repo root and regression-gated against a
//! committed baseline in CI.
//!
//! ```text
//! cargo run --release -p evilbloom-bench --bin perf            # full suite
//! cargo run --release -p evilbloom-bench --bin perf -- --quick # CI smoke
//! cargo run --release -p evilbloom-bench --bin perf -- \
//!     --quick --baseline bench/baseline.json                   # guarded
//! cargo run --release -p evilbloom-bench --bin perf -- \
//!     --filter conn_scaling                                    # a subset
//! ```
//!
//! See the README's "Performance lab" section for the JSON schema and the
//! regression-guard semantics (calibration-normalised ns/op, default
//! tolerance 25%).

use std::sync::Arc;
use std::time::Instant;

use criterion::report::Json;
use criterion::{black_box, measure, MeasureOptions, Measurement};

use evilbloom_attacks::pollution::craft_polluting_items;
use evilbloom_bench::{load_baseline, select_workloads, workload_selected, PERF_SCHEMA_VERSION};
use evilbloom_fault::{FaultPlan, FaultPoint};
use evilbloom_filters::{
    hardened_filter, BlockedBloomFilter, BloomFilter, ConcurrentBloomFilter, FilterKey,
    FilterParams, HardeningLevel, BLOCK_BITS,
};
use evilbloom_hashes::{
    md5, sha256, siphash24, HashStrategy, KirschMitzenmacher, Murmur128Pair, Murmur3_128, SipKey,
};
use evilbloom_server::{
    loopback_connection_budget, Backend, Client, Command, Response, Server, ServerConfig,
};
use evilbloom_store::{craft_store_pollution, BloomStore, PersistConfig};
use evilbloom_urlgen::UrlGenerator;

/// Workloads whose geometric-mean ns/op is the calibration unit every
/// regression comparison is normalised by (see `compare_against_baseline`).
/// Using the whole hash family (instead of a single workload) keeps the
/// denominator stable when one hash regresses — and every hash workload is
/// itself gated, so a calibration-member regression still trips the guard.
const CALIBRATION_PREFIX: &str = "hash/";
/// Default regression tolerance: fail on > 25% normalised ns/op growth.
const DEFAULT_TOLERANCE: f64 = 0.25;

fn main() {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut dir = ".".to_string();
    let mut baseline: Option<String> = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut list = false;
    let mut filter: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--list" => list = true,
            "--out" => out = Some(expect_value(&args, &mut i, "--out")),
            "--dir" => dir = expect_value(&args, &mut i, "--dir"),
            "--baseline" => baseline = Some(expect_value(&args, &mut i, "--baseline")),
            "--filter" => filter = Some(expect_value(&args, &mut i, "--filter")),
            "--tolerance" => {
                tolerance = expect_value(&args, &mut i, "--tolerance")
                    .parse()
                    .expect("--tolerance takes a fraction, e.g. 0.25");
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                print_usage();
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let suite = Suite::new(quick, filter);
    if list {
        for id in select_workloads(&suite.workload_ids(), suite.filter.as_deref()) {
            println!("{id}");
        }
        return;
    }

    // Validate the baseline BEFORE spending minutes on the suite: a stale
    // or corrupted baseline is an operator problem, not a bug — one clear
    // line and a distinct exit code, never a panic.
    let baseline =
        baseline.map(|baseline_path| match load_baseline(&baseline_path, PERF_SCHEMA_VERSION) {
            Ok(doc) => (baseline_path, doc),
            Err(message) => {
                eprintln!("perf: {message}");
                std::process::exit(2);
            }
        });

    let started = Instant::now();
    let report = suite.run();
    eprintln!("\nsuite completed in {:.1}s", started.elapsed().as_secs_f64());

    let path = out.unwrap_or_else(|| next_bench_path(&dir));
    std::fs::write(&path, report.to_json().to_pretty()).expect("write report");
    println!("\nreport written to {path}");

    // Evaluate every paired gate before exiting so a run that blows more
    // than one budget reports all of them, not just the first.
    let metrics_ok = paired_overhead_gate(
        &report,
        "server/scrape_overhead",
        "metrics_scrape_ratio_median",
        "METRICS",
    );
    let trace_ok = paired_overhead_gate(
        &report,
        "server/scrape_overhead",
        "trace_scrape_ratio_median",
        "TRACE",
    );
    let fault_ok = paired_overhead_gate(
        &report,
        "server/fault_hooks_overhead",
        "fault_hooks_ratio_median",
        "fault hooks",
    );
    if !(metrics_ok && trace_ok && fault_ok) {
        std::process::exit(1);
    }

    if let Some((baseline_path, baseline_doc)) = baseline {
        if !compare_against_baseline(&report, &baseline_doc, tolerance) {
            eprintln!(
                "\nPERF REGRESSION against {baseline_path} (tolerance {:.0}%)",
                tolerance * 100.0
            );
            std::process::exit(1);
        }
        println!(
            "no perf regression against {baseline_path} (tolerance {:.0}%)",
            tolerance * 100.0
        );
    }
}

fn expect_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i).unwrap_or_else(|| panic!("{flag} requires a value")).clone()
}

fn print_usage() {
    eprintln!(
        "usage: perf [--quick] [--out PATH] [--dir DIR] [--baseline PATH] \
         [--tolerance FRAC] [--filter SUBSTRING] [--list]"
    );
}

/// Next unused `BENCH_<n>.json` path in `dir` (n starts at 1).
fn next_bench_path(dir: &str) -> String {
    let mut max = 0u64;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(n) = name.strip_prefix("BENCH_").and_then(|r| r.strip_suffix(".json")) {
                if let Ok(n) = n.parse::<u64>() {
                    max = max.max(n);
                }
            }
        }
    }
    format!("{}/BENCH_{}.json", dir.trim_end_matches('/'), max + 1)
}

/// One timed workload: median ns per *element* (a batch workload divides the
/// per-call time by its batch size).
struct TimingRecord {
    id: String,
    ns_per_op_median: f64,
    ns_per_op_best: f64,
    samples: usize,
    iters_per_sample: u64,
    elements_per_iter: u64,
}

impl TimingRecord {
    fn from_measurement(m: Measurement, elements_per_iter: u64) -> Self {
        let e = elements_per_iter as f64;
        TimingRecord {
            id: m.id,
            ns_per_op_median: m.ns_per_op_median / e,
            ns_per_op_best: m.ns_per_op_best / e,
            samples: m.samples,
            iters_per_sample: m.iters_per_sample,
            elements_per_iter,
        }
    }

    fn ops_per_sec(&self) -> f64 {
        1e9 / self.ns_per_op_median
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("kind", Json::Str("timing".to_string())),
            ("ns_per_op_median", Json::Num(self.ns_per_op_median)),
            ("ns_per_op_best", Json::Num(self.ns_per_op_best)),
            ("ops_per_sec", Json::Num(self.ops_per_sec())),
            ("samples", Json::Num(self.samples as f64)),
            ("iters_per_sample", Json::Num(self.iters_per_sample as f64)),
            ("elements_per_iter", Json::Num(self.elements_per_iter as f64)),
        ])
    }
}

/// One observable (non-timing) workload: named scalar metrics, e.g. the
/// false-positive drift a pollution attack induces.
struct ObservableRecord {
    id: String,
    metrics: Vec<(&'static str, f64)>,
}

impl ObservableRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("kind", Json::Str("observable".to_string())),
            (
                "metrics",
                Json::Obj(
                    self.metrics.iter().map(|(k, v)| (k.to_string(), Json::Num(*v))).collect(),
                ),
            ),
        ])
    }
}

struct Comparison {
    id: &'static str,
    baseline: &'static str,
    candidate: &'static str,
    /// `baseline_ns / candidate_ns` — above 1.0 the candidate wins.
    speedup: f64,
}

struct Report {
    quick: bool,
    timings: Vec<TimingRecord>,
    observables: Vec<ObservableRecord>,
    comparisons: Vec<Comparison>,
}

impl Report {
    fn to_json(&self) -> Json {
        let mut workloads: Vec<Json> = self.timings.iter().map(TimingRecord::to_json).collect();
        workloads.extend(self.observables.iter().map(ObservableRecord::to_json));
        Json::obj(vec![
            ("schema_version", Json::Num(PERF_SCHEMA_VERSION)),
            ("suite", Json::Str("evilbloom-perf".to_string())),
            ("mode", Json::Str(if self.quick { "quick" } else { "full" }.to_string())),
            ("env", env_info()),
            ("calibration", Json::Str(format!("geomean({CALIBRATION_PREFIX}*)"))),
            ("workloads", Json::Arr(workloads)),
            (
                "comparisons",
                Json::Arr(
                    self.comparisons
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("id", Json::Str(c.id.to_string())),
                                ("baseline", Json::Str(c.baseline.to_string())),
                                ("candidate", Json::Str(c.candidate.to_string())),
                                ("speedup", Json::Num(c.speedup)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn env_info() -> Json {
    Json::obj(vec![
        ("os", Json::Str(std::env::consts::OS.to_string())),
        ("arch", Json::Str(std::env::consts::ARCH.to_string())),
        ("cpus", Json::Num(std::thread::available_parallelism().map_or(0, |p| p.get()) as f64)),
        ("debug_build", Json::Bool(cfg!(debug_assertions))),
        ("crate_version", Json::Str(env!("CARGO_PKG_VERSION").to_string())),
    ])
}

/// The fixed workload suite. `quick` shrinks data sizes and sampling budget
/// (CI smoke mode); ids and shapes are identical in both modes so quick runs
/// compare against quick baselines.
struct Suite {
    quick: bool,
    filter: Option<String>,
    opts: MeasureOptions,
    filter_capacity: u64,
    batch: usize,
    pollution_attempts: u64,
    /// Open-connection tiers of the `server/conn_scaling/*` workloads
    /// (quick mode shrinks the counts like every other size knob; the tier
    /// names stay fixed so quick runs compare against quick baselines).
    conn_tiers: [(&'static str, usize); 3],
}

impl Suite {
    fn new(quick: bool, filter: Option<String>) -> Self {
        Suite {
            quick,
            filter,
            opts: if quick { MeasureOptions::quick() } else { MeasureOptions::default() },
            filter_capacity: if quick { 200_000 } else { 1_000_000 },
            batch: 1024,
            pollution_attempts: if quick { 3_000_000 } else { 30_000_000 },
            conn_tiers: if quick {
                [("c64", 64), ("c1k", 256), ("c8k", 1024)]
            } else {
                [("c64", 64), ("c1k", 1000), ("c8k", 8000)]
            },
        }
    }

    /// Whether `--filter` selects this workload id.
    fn selected(&self, id: &str) -> bool {
        workload_selected(id, self.filter.as_deref())
    }

    /// Whether any id with this prefix is selected (guards expensive
    /// workload-family setup when `--filter` excludes the whole family).
    fn family_selected(&self, prefix: &str) -> bool {
        self.workload_ids().iter().any(|id| id.starts_with(prefix) && self.selected(id))
    }

    fn workload_ids(&self) -> Vec<&'static str> {
        vec![
            "hash/murmur3_128",
            "hash/murmur3_128_pair",
            "hash/siphash24",
            "hash/sha256",
            "hash/md5",
            "filter/standard/insert",
            "filter/standard/query",
            "filter/blocked/insert",
            "filter/blocked/query",
            "filter/hardened/query",
            "concurrent/query_loop",
            "concurrent/query_batch",
            "store/insert_batch",
            "store/query_loop",
            "store/query_batch",
            "store/snapshot_while_serving",
            "store/recovery_replay",
            "server/query",
            "server/query_batch",
            "server/metrics_overhead",
            "server/trace_overhead",
            "server/fault_hooks_overhead",
            "server/attack_mix",
            "server/async/query",
            "server/async/query_batch",
            "server/async/attack_mix",
            "server/conn_scaling/threaded/c64",
            "server/conn_scaling/threaded/c1k",
            "server/conn_scaling/threaded/c8k",
            "server/conn_scaling/async/c64",
            "server/conn_scaling/async/c1k",
            "server/conn_scaling/async/c8k",
            "attack/pollution_drift/standard",
            "attack/pollution_drift/blocked",
        ]
    }

    fn run(&self) -> Report {
        let mut timings = Vec::new();
        let mut observables = Vec::new();

        // One shared item universe: the member/probe sets are the costly
        // part of the setup (millions of string allocations in full mode).
        // Skipped when --filter selects none of the workloads that use it.
        let needs_items = self.family_selected("filter/")
            || self.family_selected("concurrent/")
            || self.family_selected("store/")
            || self.family_selected("server/query")
            || self.family_selected("server/attack_mix")
            || self.family_selected("server/fault")
            || self.family_selected("server/async/");
        let (members, probes) =
            if needs_items { self.items(self.filter_capacity as usize) } else { (vec![], vec![]) };

        self.hash_workloads(&mut timings);
        if self.family_selected("filter/") {
            self.filter_workloads(&mut timings, &members, &probes);
        }
        if self.family_selected("concurrent/") || self.family_selected("store/") {
            self.batch_workloads(&mut timings, &members, &probes);
        }
        if self.selected("store/snapshot_while_serving") || self.selected("store/recovery_replay") {
            self.persistence_workloads(&mut timings, &members, &probes);
        }
        for backend in Backend::ALL.into_iter().filter(|b| b.is_supported()) {
            let prefix = match backend {
                Backend::Threaded => "server/",
                Backend::Async => "server/async/",
            };
            if self.family_selected(&format!("{prefix}query"))
                || self.family_selected(&format!("{prefix}attack_mix"))
                || self.family_selected(&format!("{prefix}fault"))
            {
                self.server_workloads(
                    &mut timings,
                    &mut observables,
                    &members,
                    &probes,
                    backend,
                    prefix,
                );
            }
        }
        if self.family_selected("server/conn_scaling/") {
            self.conn_scaling_workloads(&mut timings);
        }
        self.pollution_workloads(&mut observables);

        let comparisons = build_comparisons(&timings);
        for c in &comparisons {
            println!(
                "{:<32} {} vs {}: speedup {:.2}x {}",
                c.id,
                c.candidate,
                c.baseline,
                c.speedup,
                if c.speedup > 1.0 { "(candidate wins)" } else { "(BASELINE WINS)" }
            );
        }
        Report { quick: self.quick, timings, observables, comparisons }
    }

    fn time<O>(&self, out: &mut Vec<TimingRecord>, id: &str, elements: u64, f: impl FnMut() -> O) {
        if !self.selected(id) {
            return;
        }
        let m = measure(id, &self.opts, f);
        let record = TimingRecord::from_measurement(m, elements);
        println!(
            "{:<32} {:>10.1} ns/op  {:>10.1} Mops/s",
            record.id,
            record.ns_per_op_median,
            record.ops_per_sec() / 1e6
        );
        out.push(record);
    }

    fn hash_workloads(&self, out: &mut Vec<TimingRecord>) {
        let item = [0xabu8; 32];
        let key = SipKey::new(7, 9);
        self.time(out, "hash/murmur3_128", 1, || {
            evilbloom_hashes::murmur3_x64_128(black_box(&item), 0)
        });
        self.time(out, "hash/murmur3_128_pair", 1, || Murmur128Pair.hash_pair(black_box(&item)));
        self.time(out, "hash/siphash24", 1, || siphash24(key, black_box(&item)));
        self.time(out, "hash/sha256", 1, || sha256(black_box(&item)));
        self.time(out, "hash/md5", 1, || md5(black_box(&item)));
    }

    /// Pre-generates `count` member items and `count` absent probes.
    fn items(&self, count: usize) -> (Vec<String>, Vec<String>) {
        let members = (0..count).map(|i| format!("https://host{i}.example/page/{i}")).collect();
        let probes = (0..count).map(|i| format!("https://absent{i}.example/page/{i}")).collect();
        (members, probes)
    }

    fn filter_workloads(&self, out: &mut Vec<TimingRecord>, members: &[String], probes: &[String]) {
        let n = self.filter_capacity;
        let params = FilterParams::optimal(n, 0.01);

        // Standard filter: classic layout, KM over two Murmur3 calls — the
        // Dablooms configuration.
        let mut standard = BloomFilter::new(params, KirschMitzenmacher::new(Murmur3_128));
        for item in members {
            standard.insert(item.as_bytes());
        }
        let mut i = 0usize;
        self.time(out, "filter/standard/insert", 1, || {
            i = (i + 1) % members.len();
            standard.insert(members[i].as_bytes())
        });
        let mut i = 0usize;
        self.time(out, "filter/standard/query", 1, || {
            i = (i + 1) % members.len();
            // Alternate hit and miss probes — the serving mix.
            if i.is_multiple_of(2) {
                standard.contains(members[i].as_bytes())
            } else {
                standard.contains(probes[i].as_bytes())
            }
        });

        // Blocked filter: same (n, target fpp) budget, one cache line per op.
        let mut blocked = BlockedBloomFilter::new(params, Murmur128Pair);
        for item in members {
            blocked.insert(item.as_bytes());
        }
        let mut i = 0usize;
        self.time(out, "filter/blocked/insert", 1, || {
            i = (i + 1) % members.len();
            blocked.insert(members[i].as_bytes())
        });
        let mut i = 0usize;
        self.time(out, "filter/blocked/query", 1, || {
            i = (i + 1) % members.len();
            if i.is_multiple_of(2) {
                blocked.contains(members[i].as_bytes())
            } else {
                blocked.contains(probes[i].as_bytes())
            }
        });

        // Hardened filter: keyed SipHash indexes (Section 8.2) — the price
        // of unpredictability, for the Table 2 narrative.
        let mut hardened = hardened_filter(
            n,
            0.01,
            HardeningLevel::KeyedSipHash,
            &FilterKey::from_bytes([0x42; 32]),
        );
        for item in members.iter().take((n / 10) as usize) {
            hardened.insert(item.as_bytes());
        }
        let mut i = 0usize;
        self.time(out, "filter/hardened/query", 1, || {
            i = (i + 1) % members.len();
            hardened.contains(members[i].as_bytes())
        });
    }

    fn batch_workloads(&self, out: &mut Vec<TimingRecord>, members: &[String], probes: &[String]) {
        let n = self.filter_capacity;
        let batch = self.batch;
        let params = FilterParams::optimal(n, 0.01);

        let concurrent = ConcurrentBloomFilter::new(params, KirschMitzenmacher::new(Murmur3_128));
        concurrent.insert_batch(members);
        // Probe mix for the loop-vs-batch comparison: half hits, half misses.
        let mix: Vec<&[u8]> = members
            .iter()
            .zip(probes)
            .take(batch / 2)
            .flat_map(|(m, p)| [m.as_bytes(), p.as_bytes()])
            .collect();

        self.time(out, "concurrent/query_loop", batch as u64, || {
            let mut hits = 0u32;
            for item in &mix {
                hits += u32::from(concurrent.contains(item));
            }
            hits
        });
        self.time(out, "concurrent/query_batch", batch as u64, || concurrent.query_batch(&mix));

        // The sharded serving layer, hardened as recommended.
        let store = BloomStore::builder().shards(8).capacity(n).target_fpp(0.01).seed(42).build();
        store.insert_batch(members);
        let mut offset = 0usize;
        self.time(out, "store/insert_batch", batch as u64, || {
            offset = (offset + batch) % members.len().saturating_sub(batch).max(1);
            store.insert_batch(&members[offset..offset + batch])
        });
        self.time(out, "store/query_loop", batch as u64, || {
            let mut hits = 0u32;
            for item in &mix {
                hits += u32::from(store.contains(item));
            }
            hits
        });
        self.time(out, "store/query_batch", batch as u64, || store.query_batch(&mix));

        // The deletable family: 4-bit counters cost an atomic CAS loop per
        // cell where the plain filter pays one fetch_or per word, and
        // deletion is the paper's Section 4.3 surface — both deserve a
        // regression guard.
        let counting = BloomStore::builder()
            .shards(8)
            .capacity(n)
            .target_fpp(0.01)
            .seed(43)
            .counting(4)
            .build();
        counting.insert_batch(members);
        let mut offset = 0usize;
        self.time(out, "store/counting_insert_batch", batch as u64, || {
            offset = (offset + batch) % members.len().saturating_sub(batch).max(1);
            counting.insert_batch(&members[offset..offset + batch])
        });
        self.time(out, "store/counting_query_batch", batch as u64, || counting.query_batch(&mix));
        // Remove + re-insert the same slice per iteration: the filter state
        // is stationary, and the per-element figure prices one decrement
        // plus the paired increment that restores it.
        let mut offset = 0usize;
        self.time(out, "store/counting_remove_batch", batch as u64, || {
            offset = (offset + batch) % members.len().saturating_sub(batch).max(1);
            let window = &members[offset..offset + batch];
            let removed = counting.remove_batch(window).expect("counting stores delete");
            counting.insert_batch(window);
            removed
        });
    }

    /// Durability workloads: per-snapshot cost while live query traffic
    /// keeps hammering the shards (the racy-copy design means the snapshot
    /// never blocks readers — this measures what the *snapshot* pays, not
    /// what the serving path pays), and cold-start recovery (newest-snapshot
    /// load + WAL replay + post-recovery fold snapshot), reported as ns per
    /// replayed insert.
    fn persistence_workloads(
        &self,
        out: &mut Vec<TimingRecord>,
        members: &[String],
        probes: &[String],
    ) {
        use std::sync::atomic::{AtomicBool, Ordering};

        let scratch =
            std::env::temp_dir().join(format!("evilbloom-perf-persist-{}", std::process::id()));

        if self.selected("store/snapshot_while_serving") {
            let dir = scratch.join("snapshot");
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("create snapshot dir");
            let mut store = BloomStore::builder()
                .shards(8)
                .capacity(self.filter_capacity)
                .target_fpp(0.01)
                .unhardened()
                .seed(21)
                .build();
            store.insert_batch(members);
            store.enable_persistence(&PersistConfig::new(&dir)).expect("enable persistence");
            let mix: Vec<&[u8]> = members
                .iter()
                .zip(probes)
                .take(self.batch / 2)
                .flat_map(|(m, p)| [m.as_bytes(), p.as_bytes()])
                .collect();
            let stop = AtomicBool::new(false);
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    let (store, stop, mix) = (&store, &stop, &mix);
                    scope.spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            black_box(store.query_batch(mix));
                        }
                    });
                }
                self.time(out, "store/snapshot_while_serving", 1, || {
                    store.snapshot_to_disk().expect("snapshot")
                });
                stop.store(true, Ordering::Relaxed);
            });
            let _ = std::fs::remove_dir_all(&dir);
        }

        if self.selected("store/recovery_replay") {
            let dir = scratch.join("recovery");
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("create recovery dir");
            let persist = PersistConfig::new(&dir);
            let snap_count = if self.quick { 20_000 } else { 100_000 };
            let wal_count = if self.quick { 5_000 } else { 20_000 };
            {
                let mut store = BloomStore::builder()
                    .shards(8)
                    .capacity(self.filter_capacity)
                    .target_fpp(0.01)
                    .unhardened()
                    .seed(22)
                    .build();
                store.insert_batch(&members[..snap_count]);
                store.enable_persistence(&persist).expect("enable persistence");
                store.snapshot_to_disk().expect("snapshot");
                // These inserts live only in the write-ahead log.
                store.insert_batch(&members[snap_count..snap_count + wal_count]);
            }
            // Recovery compacts the directory (fold snapshot + prune), so
            // the pristine crashed-state files are restored before every
            // iteration; the restore is a couple of small file writes, tiny
            // next to the replay they set up.
            let crashed: Vec<(String, Vec<u8>)> = std::fs::read_dir(&dir)
                .expect("read recovery dir")
                .map(|entry| {
                    let entry = entry.expect("dir entry");
                    (
                        entry.file_name().to_string_lossy().into_owned(),
                        std::fs::read(entry.path()).expect("read crashed file"),
                    )
                })
                .collect();
            self.time(out, "store/recovery_replay", wal_count as u64, || {
                for entry in std::fs::read_dir(&dir).expect("read dir") {
                    let _ = std::fs::remove_file(entry.expect("dir entry").path());
                }
                for (name, bytes) in &crashed {
                    std::fs::write(dir.join(name), bytes).expect("restore crashed file");
                }
                <BloomStore>::recover(&persist).expect("recover")
            });
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// The TCP serving layer on a loopback socket, once per backend
    /// (`server/*` for the threaded worker pool, `server/async/*` for the
    /// epoll reactor): single-op round-trip latency, pipelined batch
    /// throughput (one `MQUERY` frame per batch), and an attack-mix stream
    /// — pipelined `MINSERT` frames of crafted polluting items interleaved
    /// with `MQUERY` probe frames, the traffic shape of
    /// `examples/remote_attack.rs`.
    fn server_workloads(
        &self,
        out: &mut Vec<TimingRecord>,
        observables: &mut Vec<ObservableRecord>,
        members: &[String],
        probes: &[String],
        backend: Backend,
        prefix: &str,
    ) {
        let batch = self.batch;
        let config = ServerConfig::with_backend(backend);

        // Hardened store behind the server — the recommended serving
        // posture — preloaded with the member set.
        let store = Arc::new(
            BloomStore::builder()
                .shards(8)
                .capacity(self.filter_capacity)
                .target_fpp(0.01)
                .seed(7)
                .build(),
        );
        store.insert_batch(members);
        let handle =
            Server::spawn(Arc::clone(&store), "127.0.0.1:0", config).expect("bind loopback");
        let mut client = Client::connect(handle.local_addr()).expect("connect");

        let mut i = 0usize;
        self.time(out, &format!("{prefix}query"), 1, || {
            i = (i + 1) % members.len();
            client.query(members[i].as_bytes()).expect("server query")
        });

        let mix: Vec<&[u8]> = members
            .iter()
            .zip(probes)
            .take(batch / 2)
            .flat_map(|(m, p)| [m.as_bytes(), p.as_bytes()])
            .collect();
        self.time(out, &format!("{prefix}query_batch"), batch as u64, || {
            client.query_batch(&mix).expect("server query batch")
        });

        // Scrape-amortised telemetry cost: the query_batch traffic with one
        // pipelined METRICS (or TRACE) frame per SCRAPE_EVERY batches — a
        // dashboard poller riding along with production load. Measured as a
        // PAIRED experiment: the bare and the two scraped conditions are
        // timed in interleaved rounds (bare, metrics, trace, bare, metrics,
        // trace, …) and the gate in main() compares median(scraped) /
        // median(bare) against the 1.05x budget. Interleaving matters on a
        // noisy single-core CI host: comparing two workloads measured
        // seconds apart flakes ±10% with scheduler drift, while interleaved
        // rounds see the same weather and the medians cancel it. Each timed
        // unit repeats the 16-batch + scrape pattern REPS times (~15 ms) so
        // a single scheduler preemption dents one unit by a few percent
        // instead of half.
        if prefix == "server/"
            && (self.selected("server/metrics_overhead") || self.selected("server/trace_overhead"))
        {
            const SCRAPE_EVERY: usize = 16;
            const REPS: usize = 3;
            let elements = (REPS * SCRAPE_EVERY * batch) as u64;
            let rounds = if self.quick { 17 } else { 31 };

            // One timed unit: REPS repetitions of 16 pipelined MQUERY
            // batches, each optionally trailed by one scrape frame
            // (1 = METRICS, 2 = TRACE). Returns ns/element.
            let mut burst = |scrape: u8| -> f64 {
                let start = Instant::now();
                for _ in 0..REPS {
                    for _ in 0..SCRAPE_EVERY {
                        client.send(&Command::QueryBatch(mix.clone())).expect("queue MQUERY");
                    }
                    match scrape {
                        1 => client.send(&Command::Metrics).expect("queue METRICS"),
                        2 => client.send(&Command::Trace).expect("queue TRACE"),
                        _ => {}
                    }
                    for _ in 0..SCRAPE_EVERY {
                        match client.recv().expect("mquery response") {
                            Response::BatchFound(answers) => assert_eq!(answers.len(), mix.len()),
                            other => panic!("expected MFOUND, got {}", other.name()),
                        }
                    }
                    match scrape {
                        1 => match client.recv().expect("metrics response") {
                            Response::Metrics(text) => {
                                black_box(text.len());
                            }
                            other => panic!("expected METRICS, got {}", other.name()),
                        },
                        2 => match client.recv().expect("trace response") {
                            Response::Trace(trace) => {
                                black_box(trace.events.len());
                            }
                            other => panic!("expected TRACE, got {}", other.name()),
                        },
                        _ => {}
                    }
                }
                start.elapsed().as_secs_f64() * 1e9 / elements as f64
            };

            // Warm-up round of each condition, then the interleaved rounds.
            burst(0);
            burst(1);
            burst(2);
            let mut bare = Vec::with_capacity(rounds);
            let mut scraped_metrics = Vec::with_capacity(rounds);
            let mut scraped_trace = Vec::with_capacity(rounds);
            for _ in 0..rounds {
                bare.push(burst(0));
                scraped_metrics.push(burst(1));
                scraped_trace.push(burst(2));
            }

            let paired_ratio = |scraped: &[f64]| median(scraped) / median(&bare);
            let emit = |out: &mut Vec<TimingRecord>, id: &str, ns: &[f64]| {
                if !self.selected(id) {
                    return;
                }
                let mut sorted = ns.to_vec();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are comparable"));
                let m = Measurement {
                    id: id.to_string(),
                    ns_per_op_median: median(ns) * elements as f64,
                    ns_per_op_mean: ns.iter().sum::<f64>() / ns.len() as f64 * elements as f64,
                    ns_per_op_best: sorted[0] * elements as f64,
                    samples: ns.len(),
                    iters_per_sample: 1,
                };
                let record = TimingRecord::from_measurement(m, elements);
                println!(
                    "{:<32} {:>10.1} ns/op  {:>10.1} Mops/s",
                    record.id,
                    record.ns_per_op_median,
                    record.ops_per_sec() / 1e6
                );
                out.push(record);
            };
            emit(out, "server/metrics_overhead", &scraped_metrics);
            emit(out, "server/trace_overhead", &scraped_trace);
            observables.push(ObservableRecord {
                id: "server/scrape_overhead".to_string(),
                metrics: vec![
                    ("metrics_scrape_ratio_median", paired_ratio(&scraped_metrics)),
                    ("trace_scrape_ratio_median", paired_ratio(&scraped_trace)),
                    ("rounds", rounds as f64),
                ],
            });
        }

        // Fault-injection hooks must be effectively free when no fault can
        // fire: the same paired-burst experiment as the scrape gates, with
        // the instrumented condition served under an ARMED plan whose only
        // rule targets a point the serving path never crosses
        // (SnapshotWrite). Armed-but-never-firing is strictly costlier than
        // disarmed — every socket hook takes the registry slow path instead
        // of one relaxed atomic load — so holding the armed/bare ratio
        // under the 1.05x budget proves the disarmed claim a fortiori.
        if prefix == "server/" && self.selected("server/fault_hooks_overhead") {
            const BURSTS: usize = 16;
            const REPS: usize = 3;
            let elements = (REPS * BURSTS * batch) as u64;
            let rounds = if self.quick { 17 } else { 31 };

            let mut burst = || -> f64 {
                let start = Instant::now();
                for _ in 0..REPS {
                    for _ in 0..BURSTS {
                        client.send(&Command::QueryBatch(mix.clone())).expect("queue MQUERY");
                    }
                    for _ in 0..BURSTS {
                        match client.recv().expect("mquery response") {
                            Response::BatchFound(answers) => assert_eq!(answers.len(), mix.len()),
                            other => panic!("expected MFOUND, got {}", other.name()),
                        }
                    }
                }
                start.elapsed().as_secs_f64() * 1e9 / elements as f64
            };
            // The rule waits for a SnapshotWrite hit that never comes, so
            // every point stays on its armed slow path without injecting
            // into the measured traffic.
            let plan = FaultPlan::new(0).fail_nth(FaultPoint::SnapshotWrite, u64::MAX);

            // Warm-up round of each condition, then the interleaved rounds.
            burst();
            {
                let _chaos = evilbloom_fault::arm(plan.clone());
                burst();
            }
            let mut bare = Vec::with_capacity(rounds);
            let mut armed = Vec::with_capacity(rounds);
            for _ in 0..rounds {
                bare.push(burst());
                let _chaos = evilbloom_fault::arm(plan.clone());
                armed.push(burst());
            }

            let mut sorted = armed.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are comparable"));
            let m = Measurement {
                id: "server/fault_hooks_overhead".to_string(),
                ns_per_op_median: median(&armed) * elements as f64,
                ns_per_op_mean: armed.iter().sum::<f64>() / armed.len() as f64 * elements as f64,
                ns_per_op_best: sorted[0] * elements as f64,
                samples: armed.len(),
                iters_per_sample: 1,
            };
            let record = TimingRecord::from_measurement(m, elements);
            println!(
                "{:<32} {:>10.1} ns/op  {:>10.1} Mops/s",
                record.id,
                record.ns_per_op_median,
                record.ops_per_sec() / 1e6
            );
            out.push(record);
            observables.push(ObservableRecord {
                id: "server/fault_hooks_overhead".to_string(),
                metrics: vec![
                    ("fault_hooks_ratio_median", median(&armed) / median(&bare)),
                    ("rounds", rounds as f64),
                ],
            });
        }
        drop(client);
        handle.shutdown();

        // Deletion over the wire: one pipelined MDELETE frame per iteration
        // against a counting-backed server (the only served family with a
        // deletion surface). Each iteration restores the deleted members, so
        // the counters are stationary; the per-element figure prices one
        // remote decrement plus the paired increment that restores it.
        if self.selected(&format!("{prefix}delete_batch")) {
            let counting = Arc::new(
                BloomStore::builder()
                    .shards(8)
                    .capacity(self.filter_capacity)
                    .target_fpp(0.01)
                    .seed(9)
                    .counting(4)
                    .build(),
            );
            counting.insert_batch(members);
            let handle =
                Server::spawn(Arc::clone(&counting), "127.0.0.1:0", config).expect("bind loopback");
            let mut client = Client::connect(handle.local_addr()).expect("connect");
            let frame: Vec<&[u8]> = members.iter().take(batch).map(String::as_bytes).collect();
            self.time(out, &format!("{prefix}delete_batch"), batch as u64, || {
                let removed = client.delete_batch(&frame).expect("server delete batch");
                client.insert_batch(&frame).expect("restore members");
                removed.iter().filter(|&&r| r).count()
            });
            drop(client);
            handle.shutdown();
        }

        if !self.selected(&format!("{prefix}attack_mix")) {
            return; // the offline crafting below is the expensive setup
        }
        // Attack mix runs against an unhardened victim (the deployment the
        // paper attacks): crafted items come from the offline pollution
        // search, probes hunt the false positives it manufactures.
        // Re-inserting the same crafted items every iteration is idempotent,
        // so the store's fill — and the per-op cost — stays stable.
        let victim = Arc::new(
            BloomStore::builder()
                .shards(8)
                .capacity(self.filter_capacity)
                .target_fpp(0.01)
                .unhardened()
                .seed(8)
                .build(),
        );
        let plan = craft_store_pollution(
            &victim,
            &UrlGenerator::new("perf-remote-evil"),
            batch / 2,
            self.pollution_attempts,
        )
        .expect("unhardened stores expose an adversarial view");
        assert_eq!(plan.items.len(), batch / 2, "crafting budget exhausted");
        let handle =
            Server::spawn(Arc::clone(&victim), "127.0.0.1:0", config).expect("bind loopback");
        let mut client = Client::connect(handle.local_addr()).expect("connect");
        let frame = 128usize;
        let crafted_frames: Vec<Vec<&[u8]>> =
            plan.items.chunks(frame).map(|c| c.iter().map(String::as_bytes).collect()).collect();
        let probe_frames: Vec<Vec<&[u8]>> = probes[..batch / 2]
            .chunks(frame)
            .map(|c| c.iter().map(String::as_bytes).collect())
            .collect();
        let frames = crafted_frames.len() + probe_frames.len();
        self.time(out, &format!("{prefix}attack_mix"), batch as u64, || {
            for (crafted, probe) in crafted_frames.iter().zip(&probe_frames) {
                client.send(&Command::InsertBatch(crafted.clone())).expect("queue MINSERT");
                client.send(&Command::QueryBatch(probe.clone())).expect("queue MQUERY");
            }
            let mut hits = 0usize;
            for _ in 0..frames {
                match client.recv().expect("attack-mix response") {
                    Response::BatchInserted { .. } => {}
                    Response::BatchFound(answers) => {
                        hits += answers.iter().filter(|&&a| a).count();
                    }
                    other => panic!("unexpected {} in attack mix", other.name()),
                }
            }
            hits
        });
        drop(client);
        handle.shutdown();
    }

    /// Connection-count scaling, the C10k observable: per-request RTT on an
    /// *active* connection while 64 / 1k / 8k mostly-idle connections are
    /// held open against the same server, threaded vs async. The async
    /// reactor keeps every connection *served* (an epoll entry each); the
    /// threaded backend keeps them merely *accepted* — connections beyond
    /// the worker pool are queued unserved, which is precisely the scaling
    /// wall this workload family documents.
    fn conn_scaling_workloads(&self, out: &mut Vec<TimingRecord>) {
        for backend in Backend::ALL.into_iter().filter(|b| b.is_supported()) {
            for (tier, conns) in self.conn_tiers {
                let id = format!("server/conn_scaling/{backend}/{tier}");
                if !self.selected(&id) {
                    continue;
                }
                if let Some(budget) = loopback_connection_budget() {
                    if budget < conns as u64 {
                        println!("{id:<40} skipped (fd budget {budget} < {conns} connections)");
                        continue;
                    }
                }
                let store = Arc::new(
                    BloomStore::builder()
                        .shards(8)
                        .capacity(100_000)
                        .target_fpp(0.01)
                        .seed(11)
                        .build(),
                );
                let handle =
                    Server::spawn(store, "127.0.0.1:0", ServerConfig::with_backend(backend))
                        .expect("bind loopback");
                // The active connection dials first: on the threaded
                // backend only the first `workers` connections are ever
                // served when the idle herd exceeds the pool.
                let mut active = Client::connect(handle.local_addr()).expect("connect active");
                active.ping().expect("active connection served");
                let idle: Vec<std::net::TcpStream> = (0..conns.saturating_sub(1))
                    .map(|i| {
                        // Pace the herd just below the listen backlog so a
                        // single-core host never drops a SYN into a 1s
                        // retransmission stall.
                        if i % 64 == 63 {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        std::net::TcpStream::connect(handle.local_addr())
                            .unwrap_or_else(|e| panic!("idle connect {i}: {e}"))
                    })
                    .collect();
                self.time(out, &id, 1, || active.ping().expect("active RTT"));
                drop(idle);
                drop(active);
                handle.shutdown();
            }
        }
    }

    /// The paper's quantitative core as observables: false-positive drift
    /// under a chosen-insertion (pollution) attack, on the classic filter
    /// and on the blocked fast path — demonstrating the attack carries over.
    fn pollution_workloads(&self, out: &mut Vec<ObservableRecord>) {
        let probes = 20_000u64;

        if self.selected("attack/pollution_drift/standard") {
            // Classic Figure 3 geometry: m = 3200, k = 4, 300 honest then
            // 150 crafted insertions.
            let mut standard = BloomFilter::new(
                FilterParams::explicit(3200, 4, 600),
                KirschMitzenmacher::new(Murmur3_128),
            );
            out.push(self.pollution_drift(
                "attack/pollution_drift/standard",
                probes,
                &mut standard,
            ));
        }

        if self.selected("attack/pollution_drift/blocked") {
            // Same budget on the blocked layout (3200 → 3584 bits, 7 blocks).
            let mut blocked =
                BlockedBloomFilter::new(FilterParams::explicit(3200, 4, 600), Murmur128Pair);
            let mut record =
                self.pollution_drift("attack/pollution_drift/blocked", probes, &mut blocked);
            let corrected = evilbloom_analysis::blocked::blocked_false_positive(
                blocked.m(),
                300,
                4,
                BLOCK_BITS,
            );
            record.metrics.push(("corrected_honest_fpp", corrected));
            out.push(record);
        }
    }

    fn pollution_drift<F>(&self, id: &str, probes: u64, filter: &mut F) -> ObservableRecord
    where
        F: evilbloom_attacks::target::TargetFilter + PollutionTarget,
    {
        for i in 0..300 {
            filter.insert_item(format!("honest-{i}").as_bytes());
        }
        let before = measured_fpp(filter, probes, "probe-before");
        let plan = craft_polluting_items(
            filter,
            &UrlGenerator::new("perf-pollution"),
            150,
            self.pollution_attempts,
        );
        for item in &plan.items {
            filter.insert_item(item.as_bytes());
        }
        let after = measured_fpp(filter, probes, "probe-after");
        println!(
            "{id:<40} fpp {before:.4} -> {after:.4} ({} crafted items, {:.1}x drift)",
            plan.items.len(),
            after / before.max(1e-9)
        );
        ObservableRecord {
            id: id.to_string(),
            metrics: vec![
                ("fpp_before", before),
                ("fpp_after", after),
                ("crafted_items", plan.items.len() as f64),
                ("predicted_fpp_after", plan.predicted_false_positive),
            ],
        }
    }
}

/// The two mutable filter shapes the pollution observables drive. (The
/// attack engines only need the read-only `TargetFilter` view; insertion is
/// the victim's side of the protocol.)
trait PollutionTarget {
    fn insert_item(&mut self, item: &[u8]);
}

impl PollutionTarget for BloomFilter {
    fn insert_item(&mut self, item: &[u8]) {
        self.insert(item);
    }
}

impl PollutionTarget for BlockedBloomFilter {
    fn insert_item(&mut self, item: &[u8]) {
        self.insert(item);
    }
}

fn measured_fpp<F: evilbloom_attacks::target::TargetFilter + ?Sized>(
    filter: &F,
    probes: u64,
    salt: &str,
) -> f64 {
    let mut false_positives = 0u64;
    for i in 0..probes {
        let item = format!("https://{salt}-{i}.example/");
        if filter.indexes_of(item.as_bytes()).iter().all(|&idx| filter.is_set(idx)) {
            false_positives += 1;
        }
    }
    false_positives as f64 / probes as f64
}

/// Instrumentation must be effectively free: when the run measured both
/// sides, the instrumented workload — scrape-amortised telemetry
/// (`server/metrics_overhead`, `server/trace_overhead`: pipelined `MQUERY`
/// traffic with one scrape frame amortised over every 16 batches) or
/// `server/fault_hooks_overhead` (the same traffic served under an armed
/// never-firing fault plan) — may cost at most 5% more per element than
/// bare query-batch traffic. The gate reads the paired-ratio observable
/// the workload records: every measurement round times a bare 16-batch
/// burst and the instrumented bursts back-to-back and the gate value is
/// the median of the per-round instrumented/bare ratios. Pairing is what
/// makes a hard 1.05x budget enforceable on shared CI hardware — the two
/// sides of each ratio ran milliseconds apart under the same scheduler
/// weather, so host noise cancels instead of flaking the gate.
fn paired_overhead_gate(report: &Report, observable: &str, key: &str, label: &str) -> bool {
    let Some(ratio) = report
        .observables
        .iter()
        .find(|o| o.id == observable)
        .and_then(|o| o.metrics.iter().find(|(k, _)| *k == key).map(|&(_, v)| v))
    else {
        return true; // --filter excluded the paired workload; nothing to gate
    };
    let ok = ratio <= 1.05;
    println!(
        "{} overhead gate: paired instrumented/bare burst ratio {ratio:.3}x (budget 1.05x){}",
        label.to_lowercase(),
        if ok { "" } else { "  OVER BUDGET" }
    );
    if !ok {
        eprintln!("PERF GATE: {label} overhead {ratio:.3}x exceeds the 1.05x budget");
    }
    ok
}

/// Median of a sample vector (the input need not be sorted).
fn median(ns: &[f64]) -> f64 {
    let mut sorted = ns.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are comparable"));
    if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    }
}

fn build_comparisons(timings: &[TimingRecord]) -> Vec<Comparison> {
    let ns = |id: &str| timings.iter().find(|t| t.id == id).map(|t| t.ns_per_op_median);
    let mut comparisons = Vec::new();
    let mut push = |id, baseline: &'static str, candidate: &'static str| {
        if let (Some(b), Some(c)) = (ns(baseline), ns(candidate)) {
            comparisons.push(Comparison { id, baseline, candidate, speedup: b / c });
        }
    };
    push("blocked_vs_standard_query", "filter/standard/query", "filter/blocked/query");
    push("blocked_vs_standard_insert", "filter/standard/insert", "filter/blocked/insert");
    push("batch_vs_loop_query_concurrent", "concurrent/query_loop", "concurrent/query_batch");
    push("batch_vs_loop_query_store", "store/query_loop", "store/query_batch");
    push("pipelined_batch_vs_single_op_server", "server/query", "server/query_batch");
    push(
        "metrics_scrape_amortized_vs_query_batch",
        "server/query_batch",
        "server/metrics_overhead",
    );
    push("trace_scrape_amortized_vs_query_batch", "server/query_batch", "server/trace_overhead");
    push("fault_hooks_vs_query_batch", "server/query_batch", "server/fault_hooks_overhead");
    push("async_vs_threaded_query", "server/query", "server/async/query");
    push("async_vs_threaded_query_batch", "server/query_batch", "server/async/query_batch");
    push("async_vs_threaded_attack_mix", "server/attack_mix", "server/async/attack_mix");
    push(
        "async_vs_threaded_8k_connections",
        "server/conn_scaling/threaded/c8k",
        "server/conn_scaling/async/c8k",
    );
    comparisons
}

/// Geometric mean of the ns/op of the calibration family (ids starting with
/// [`CALIBRATION_PREFIX`]). `None` if the set is empty.
fn calibration_ns(pairs: &[(String, f64)]) -> Option<f64> {
    let cal: Vec<f64> = pairs
        .iter()
        .filter(|(id, _)| id.starts_with(CALIBRATION_PREFIX))
        .map(|&(_, ns)| ns)
        .collect();
    if cal.is_empty() {
        return None;
    }
    Some((cal.iter().map(|ns| ns.ln()).sum::<f64>() / cal.len() as f64).exp())
}

/// The CI regression guard. Raw ns/op is machine-dependent, so both sides
/// are first normalised by their own run's calibration unit — the geometric
/// mean of the hash-family workloads: what is compared is "how many average
/// hash calls does one operation cost", which transfers across hosts.
/// Every timing workload is gated, *including* each calibration member (a
/// single hash regressing moves its own normalised cost far more than it
/// moves the mean, so calibration regressions still trip the guard). A
/// workload regresses when its normalised cost grows by more than
/// `tolerance` (default 25%, chosen to sit above quick-mode sampling noise;
/// see README).
fn compare_against_baseline(report: &Report, baseline: &Json, tolerance: f64) -> bool {
    let baseline_workloads =
        baseline.get("workloads").and_then(Json::as_array).expect("baseline has a workloads array");
    let baseline_pairs: Vec<(String, f64)> = baseline_workloads
        .iter()
        .filter_map(|w| {
            Some((w.get("id")?.as_str()?.to_string(), w.get("ns_per_op_median")?.as_f64()?))
        })
        .collect();
    let current_pairs: Vec<(String, f64)> =
        report.timings.iter().map(|t| (t.id.clone(), t.ns_per_op_median)).collect();
    let Some(current_cal) = calibration_ns(&current_pairs) else {
        eprintln!(
            "current run lacks the {CALIBRATION_PREFIX}* calibration workloads \
             (--filter excluded them); skipping guard"
        );
        return true;
    };
    let Some(baseline_cal) = calibration_ns(&baseline_pairs) else {
        eprintln!("baseline lacks the {CALIBRATION_PREFIX}* calibration workloads; skipping guard");
        return true;
    };

    println!(
        "\n{:<32} {:>12} {:>12} {:>8}",
        "regression guard", "base(norm)", "cur(norm)", "ratio"
    );
    let mut ok = true;
    for t in &report.timings {
        let Some(&(_, base)) = baseline_pairs.iter().find(|(id, _)| *id == t.id) else {
            println!("{:<32} {:>12} (new workload, not gated)", t.id, "-");
            continue;
        };
        let base_norm = base / baseline_cal;
        let cur_norm = t.ns_per_op_median / current_cal;
        let ratio = cur_norm / base_norm;
        let regressed = ratio > 1.0 + tolerance;
        println!(
            "{:<32} {:>12.2} {:>12.2} {:>7.2}x{}",
            t.id,
            base_norm,
            cur_norm,
            ratio,
            if regressed { "  REGRESSED" } else { "" }
        );
        ok &= !regressed;
    }
    ok
}
